// Reproduces Figure 4 of the paper: per attribute (ra, dec), the predicate-set
// histogram of ~400 requested values, the full KDE f-hat with a good
// bandwidth, an oversmoothed and an undersmoothed variant, and the paper's
// constant-time binned estimator f-breve — whose curve must be "almost
// identical" to f-hat (§4).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/kde.h"
#include "workload/generator.h"
#include "workload/query_log.h"

namespace sciborq {
namespace {

void RunAttribute(const std::string& attr, const std::vector<double>& values,
                  double domain_min, double domain_max, int beta) {
  const double width = (domain_max - domain_min) / beta;
  StreamingHistogram hist =
      bench::Unwrap(StreamingHistogram::Make(domain_min, width, beta));
  for (const double v : values) hist.Observe(v);

  const double h_good = SilvermanBandwidth(values);
  const FullKde f_hat = bench::Unwrap(FullKde::Make(values, h_good));
  const FullKde oversmoothed =
      bench::Unwrap(FullKde::Make(values, h_good * 8.0));
  const FullKde undersmoothed =
      bench::Unwrap(FullKde::Make(values, h_good / 8.0));
  const BinnedKde f_breve(&hist);

  std::printf("\n--- attribute '%s' (N=%zu predicate values, beta=%d, w=%.3f, "
              "silverman_h=%.3f) ---\n",
              attr.c_str(), values.size(), beta, width, h_good);
  std::printf("%10s %9s %12s %12s %12s %12s\n", "x", "hist_cnt", "f_hat",
              "oversmooth", "undersmooth", "f_breve");
  std::vector<double> hat_series;
  std::vector<double> breve_series;
  double peak_hat = 0.0;
  for (int i = 0; i < beta; ++i) {
    const double x = hist.BinCenter(i);
    const double fh = f_hat.Evaluate(x);
    const double fb = f_breve.Evaluate(x);
    hat_series.push_back(fh);
    breve_series.push_back(fb);
    peak_hat = std::max(peak_hat, fh);
    std::printf("%10.2f %9.0f %12.5f %12.5f %12.5f %12.5f\n", x,
                hist.bin(i).count, fh, oversmoothed.Evaluate(x),
                undersmoothed.Evaluate(x), fb);
  }
  const double l1 = L1Distance(hat_series, breve_series);
  const double l2 = L2Distance(hat_series, breve_series);
  std::printf("f_breve vs f_hat: L1=%.6f L2=%.6f (peak f_hat=%.5f, "
              "L1/peak=%.3f)\n", l1, l2, peak_hat, l1 / peak_hat);
  std::printf("integral checks: f_hat=%.4f f_breve=%.4f (paper: ∫f̆ = 1)\n",
              IntegrateDensity([&](double x) { return f_hat.Evaluate(x); },
                               domain_min - 50, domain_max + 50),
              IntegrateDensity([&](double x) { return f_breve.Evaluate(x); },
                               domain_min - 50, domain_max + 50));
}

}  // namespace
}  // namespace sciborq

int main() {
  using namespace sciborq;
  bench::Header(
      "FIG4: predicate-set histograms and density estimators (ra, dec)");
  bench::Expectation(
      "f_breve 'almost identical' to f_hat (bimodal, L1/peak small); "
      "oversmoothed unimodal; undersmoothed jagged; both attrs bimodal");

  // The paper's setting: 400 values observed in the predicate set of the
  // workload, attributes ra and dec.
  auto gen = bench::Unwrap(
      ConeWorkloadGenerator::Make(PaperFigure4WorkloadConfig(), 4));
  QueryLog log;
  for (int i = 0; i < 400; ++i) log.Record(gen.Next());

  RunAttribute("ra", log.PredicateSet("ra"), 120.0, 240.0, 40);
  RunAttribute("dec", log.PredicateSet("dec"), 0.0, 60.0, 40);

  bench::Measured(
      "see L1/peak lines above (≈0.0x); integrals ≈ 1; shapes as expected");
  return 0;
}
