// sciborq_server — the SciBORQ network daemon.
//
//   sciborq_server [--db-dir db/] [--data-dir data/] [--port 4242]
//                  [--max-connections 8] [--query-threads 1]
//                  [--metrics-port 9464]
//
// At least one of --db-dir / --data-dir is required.
//
// With --db-dir the engine is persistent: tables (columns AND their whole
// impression hierarchies) are recovered from the directory's snapshots plus
// a WAL replay on boot, every acknowledged ingest survives kill -9, and
// `\checkpoint` from sciborq_cli folds the WAL into fresh snapshots.
// Without it the engine is ephemeral, as before.
//
// Every *.csv under --data-dir is registered as a table named by its file
// stem (data/sky.csv -> table "sky") with the default impression hierarchy;
// stems already present in the recovered catalog are skipped, so the same
// command line is restart-safe. The server then accepts remote clients
// speaking the length-prefixed protocol (see src/server/wire.h;
// `sciborq_cli` is the reference client). SIGINT/SIGTERM shut down
// gracefully: in-flight queries finish and their responses are delivered
// before the process exits.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "server/server.h"
#include "util/log.h"

using namespace sciborq;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--db-dir DIR] [--data-dir DIR] [--port N]\n"
      "          [--max-connections N] [--query-threads N]\n"
      "          [--metrics-port N]\n"
      "  --db-dir DIR          persistent database directory: tables and\n"
      "                        impression hierarchies are recovered from it\n"
      "                        on boot (snapshot + WAL replay) and ingest is\n"
      "                        durable; \\checkpoint persists snapshots\n"
      "  --data-dir DIR        register every *.csv in DIR as a table\n"
      "                        (table name = file stem; already-recovered\n"
      "                        tables are skipped)\n"
      "  --port N              TCP port (default 4242; 0 = pick a free one)\n"
      "  --max-connections N   concurrent connections served (default 8)\n"
      "  --query-threads N     scan threads per query (default 1 = serial)\n"
      "  --metrics-port N      serve Prometheus text exposition on\n"
      "                        http://0.0.0.0:N/metrics (0 = pick a free\n"
      "                        port; omit to disable)\n"
      "at least one of --db-dir / --data-dir is required\n",
      argv0);
}

bool ParseIntFlag(const char* value, int* out) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir;
  std::string db_dir;
  int port = 4242;
  int max_connections = 8;
  int query_threads = 1;
  int metrics_port = -1;  // -1 = no metrics endpoint

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--data-dir" && has_value) {
      data_dir = argv[++i];
    } else if (arg == "--db-dir" && has_value) {
      db_dir = argv[++i];
    } else if (arg == "--port" && has_value) {
      if (!ParseIntFlag(argv[++i], &port)) {
        std::fprintf(stderr, "bad --port value '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--max-connections" && has_value) {
      if (!ParseIntFlag(argv[++i], &max_connections)) {
        std::fprintf(stderr, "bad --max-connections value '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--query-threads" && has_value) {
      if (!ParseIntFlag(argv[++i], &query_threads)) {
        std::fprintf(stderr, "bad --query-threads value '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--metrics-port" && has_value) {
      if (!ParseIntFlag(argv[++i], &metrics_port)) {
        std::fprintf(stderr, "bad --metrics-port value '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (data_dir.empty() && db_dir.empty()) {
    std::fprintf(stderr, "at least one of --db-dir / --data-dir is required\n");
    Usage(argv[0]);
    return 2;
  }

  EngineOptions engine_options;
  engine_options.query_threads = query_threads;
  std::unique_ptr<Engine> engine;
  if (!db_dir.empty()) {
    // Persistent boot: recover every table (snapshot + WAL replay).
    Result<std::unique_ptr<Engine>> opened =
        Engine::Open(db_dir, engine_options);
    if (!opened.ok()) {
      LogError("cannot open --db-dir '%s': %s", db_dir.c_str(),
               opened.status().ToString().c_str());
      return 1;
    }
    engine = std::move(opened).value();
    for (const std::string& table : engine->TableNames()) {
      const Result<int64_t> rows = engine->TableRows(table);
      LogInfo("recovered table '%s' (%lld rows) from %s", table.c_str(),
              static_cast<long long>(rows.value_or(0)), db_dir.c_str());
    }
    for (const std::string& warning : engine->recovery_warnings()) {
      LogWarn("recovery warning: %s", warning.c_str());
    }
  } else {
    engine = std::make_unique<Engine>(engine_options);
  }

  // Register the data directory's CSVs in sorted order (deterministic boot);
  // tables already recovered from --db-dir keep their durable state.
  if (!data_dir.empty()) {
    std::error_code ec;
    std::vector<std::filesystem::path> csvs;
    for (const auto& entry :
         std::filesystem::directory_iterator(data_dir, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".csv") {
        csvs.push_back(entry.path());
      }
    }
    if (ec) {
      LogError("cannot read --data-dir '%s': %s", data_dir.c_str(),
               ec.message().c_str());
      return 1;
    }
    std::sort(csvs.begin(), csvs.end());
    for (const auto& path : csvs) {
      const std::string table = path.stem().string();
      const std::vector<std::string> names = engine->TableNames();
      if (std::find(names.begin(), names.end(), table) != names.end()) {
        LogInfo("skipping %s: table '%s' already recovered from db",
                path.string().c_str(), table.c_str());
        continue;
      }
      const Result<int64_t> rows = engine->RegisterCsv(table, path.string());
      if (!rows.ok()) {
        LogError("failed to register '%s': %s", path.string().c_str(),
                 rows.status().ToString().c_str());
        return 1;
      }
      LogInfo("registered table '%s' (%lld rows) from %s", table.c_str(),
              static_cast<long long>(*rows), path.string().c_str());
    }
  }
  if (engine->TableNames().empty()) {
    LogWarn("no tables — serving an empty catalog");
  }

  ServerOptions server_options;
  server_options.port = port;
  server_options.max_connections = max_connections;
  SciborqServer server(engine.get(), server_options);
  if (Status st = server.Start(); !st.ok()) {
    LogError("start failed: %s", st.ToString().c_str());
    return 1;
  }
  std::optional<obs::MetricsHttpServer> metrics_server;
  if (metrics_port >= 0) {
    metrics_server.emplace(obs::DefaultRegistry(), metrics_port);
    if (Status st = metrics_server->Start(); !st.ok()) {
      LogError("metrics endpoint failed to start: %s", st.ToString().c_str());
      return 1;
    }
    LogInfo("metrics endpoint on http://0.0.0.0:%d/metrics",
            metrics_server->port());
  }
  LogInfo("sciborq_server listening on port %d (%d connection slots)",
          server.port(), max_connections);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  LogInfo("shutting down: draining in-flight queries...");
  if (metrics_server.has_value()) metrics_server->Stop();
  server.Stop();
  LogInfo("served %lld queries over %lld connections (%lld protocol "
          "errors); bye",
          static_cast<long long>(server.queries_served()),
          static_cast<long long>(server.connections_accepted()),
          static_cast<long long>(server.protocol_errors()));
  return 0;
}
