#include <gtest/gtest.h>

#include "column/table.h"
#include "exec/expr.h"

namespace sciborq {
namespace {

Table ObjTable() {
  Table t{Schema({Field{"id", DataType::kInt64, false},
                  Field{"ra", DataType::kDouble, true},
                  Field{"dec", DataType::kDouble, true},
                  Field{"cls", DataType::kString, true}})};
  auto add = [&t](int64_t id, Value ra, Value dec, Value cls) {
    ASSERT_TRUE(t.AppendRow({Value(id), std::move(ra), std::move(dec),
                             std::move(cls)})
                    .ok());
  };
  add(0, Value(150.0), Value(10.0), Value("GALAXY"));
  add(1, Value(185.0), Value(0.5), Value("STAR"));
  add(2, Value(186.0), Value(1.0), Value("GALAXY"));
  add(3, Value(240.0), Value(55.0), Value("QSO"));
  add(4, Value::Null(), Value(2.0), Value("GALAXY"));
  add(5, Value(185.5), Value::Null(), Value::Null());
  return t;
}

SelectionVector Sel(const Table& t, const Predicate& p) {
  auto r = SelectAll(t, p);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value() : SelectionVector{};
}

TEST(ExprTest, CompareOps) {
  const Table t = ObjTable();
  EXPECT_EQ(Sel(t, *Eq("id", Value(int64_t{2}))), (SelectionVector{2}));
  EXPECT_EQ(Sel(t, *Ne("id", Value(int64_t{2}))),
            (SelectionVector{0, 1, 3, 4, 5}));
  EXPECT_EQ(Sel(t, *Lt("ra", Value(160.0))), (SelectionVector{0}));
  EXPECT_EQ(Sel(t, *Le("ra", Value(185.0))), (SelectionVector{0, 1}));
  EXPECT_EQ(Sel(t, *Gt("ra", Value(186.0))), (SelectionVector{3}));
  EXPECT_EQ(Sel(t, *Ge("ra", Value(186.0))), (SelectionVector{2, 3}));
}

TEST(ExprTest, IntLiteralComparesAgainstDoubleColumn) {
  const Table t = ObjTable();
  EXPECT_EQ(Sel(t, *Lt("ra", Value(int64_t{160}))), (SelectionVector{0}));
}

TEST(ExprTest, StringComparisons) {
  const Table t = ObjTable();
  EXPECT_EQ(Sel(t, *Eq("cls", Value("GALAXY"))), (SelectionVector{0, 2, 4}));
  EXPECT_EQ(Sel(t, *Ne("cls", Value("GALAXY"))), (SelectionVector{1, 3}));
  EXPECT_EQ(Sel(t, *Lt("cls", Value("QSO"))), (SelectionVector{0, 2, 4}));
}

TEST(ExprTest, NullsNeverMatch) {
  const Table t = ObjTable();
  // Row 4 has null ra; row 5 has null cls.
  EXPECT_EQ(Sel(t, *Ge("ra", Value(0.0))), (SelectionVector{0, 1, 2, 3, 5}));
  EXPECT_EQ(Sel(t, *Ne("cls", Value("NOPE"))), (SelectionVector{0, 1, 2, 3, 4}));
}

TEST(ExprTest, ValidationErrors) {
  const Table t = ObjTable();
  EXPECT_FALSE(Eq("missing", Value(1.0))->Validate(t.schema()).ok());
  EXPECT_FALSE(Eq("ra", Value("text"))->Validate(t.schema()).ok());
  EXPECT_FALSE(Eq("cls", Value(1.0))->Validate(t.schema()).ok());
  EXPECT_FALSE(Eq("ra", Value::Null())->Validate(t.schema()).ok());
  EXPECT_TRUE(Eq("ra", Value(1.0))->Validate(t.schema()).ok());
}

TEST(ExprTest, Between) {
  const Table t = ObjTable();
  EXPECT_EQ(Sel(t, *Between("ra", 185.0, 186.0)), (SelectionVector{1, 2, 5}));
  EXPECT_FALSE(Between("cls", 0.0, 1.0)->Validate(t.schema()).ok());
}

TEST(ExprTest, ConeSelectsByDistance) {
  const Table t = ObjTable();
  // Cone at (185, 0.5) with radius 1.2 catches rows 1 (dist 0) and 2
  // (dist sqrt(1+0.25) ≈ 1.118); row 5 has null dec.
  EXPECT_EQ(Sel(t, *Cone("ra", "dec", 185.0, 0.5, 1.2)),
            (SelectionVector{1, 2}));
  EXPECT_EQ(Sel(t, *Cone("ra", "dec", 185.0, 0.5, 0.5)), (SelectionVector{1}));
}

TEST(ExprTest, ConeValidation) {
  const Table t = ObjTable();
  EXPECT_FALSE(Cone("cls", "dec", 0, 0, 1)->Validate(t.schema()).ok());
  EXPECT_FALSE(Cone("ra", "dec", 0, 0, -1)->Validate(t.schema()).ok());
  EXPECT_TRUE(Cone("ra", "dec", 0, 0, 0)->Validate(t.schema()).ok());
}

TEST(ExprTest, NotComplementsWithinCandidates) {
  const Table t = ObjTable();
  EXPECT_EQ(Sel(t, *Not(Eq("cls", Value("GALAXY")))),
            (SelectionVector{1, 3, 5}));  // nulls match NOT(eq) per complement
}

TEST(ExprTest, AndNarrows) {
  const Table t = ObjTable();
  EXPECT_EQ(Sel(t, *And(Eq("cls", Value("GALAXY")), Ge("ra", Value(180.0)))),
            (SelectionVector{2}));
}

TEST(ExprTest, OrUnions) {
  const Table t = ObjTable();
  EXPECT_EQ(Sel(t, *Or(Eq("id", Value(int64_t{0})), Eq("id", Value(int64_t{3})))),
            (SelectionVector{0, 3}));
}

TEST(ExprTest, NestedBooleanTree) {
  const Table t = ObjTable();
  auto p = And(Or(Eq("cls", Value("GALAXY")), Eq("cls", Value("QSO"))),
               Not(Lt("ra", Value(160.0))));
  // Row 4 (null ra) passes NOT(ra < 160): NOT is the complement of the
  // child's matches, and a null never matches the child comparison.
  EXPECT_EQ(Sel(t, *p), (SelectionVector{2, 3, 4}));
}

TEST(ExprTest, MatchesRowwise) {
  const Table t = ObjTable();
  const auto p = Cone("ra", "dec", 185.0, 0.5, 1.2);
  EXPECT_FALSE(p->Matches(t, 0));
  EXPECT_TRUE(p->Matches(t, 1));
  EXPECT_FALSE(p->Matches(t, 5));  // null dec
}

TEST(ExprTest, PredicatePointsCollectRequestedValues) {
  auto p = And(Cone("ra", "dec", 185.0, 0.5, 3.0), Between("z", 0.1, 0.3),
               Eq("cls", Value("GALAXY")), Gt("mag", Value(21.5)));
  std::vector<PredicatePoint> points;
  p->CollectPredicatePoints(&points);
  ASSERT_EQ(points.size(), 4u);  // ra, dec, z midpoint, mag; strings skipped
  EXPECT_EQ(points[0].column, "ra");
  EXPECT_DOUBLE_EQ(points[0].value, 185.0);
  EXPECT_EQ(points[1].column, "dec");
  EXPECT_DOUBLE_EQ(points[1].value, 0.5);
  EXPECT_EQ(points[2].column, "z");
  EXPECT_DOUBLE_EQ(points[2].value, 0.2);
  EXPECT_EQ(points[3].column, "mag");
  EXPECT_DOUBLE_EQ(points[3].value, 21.5);
}

TEST(ExprTest, CloneIsDeepAndEquivalent) {
  const Table t = ObjTable();
  auto p = And(Eq("cls", Value("GALAXY")), Cone("ra", "dec", 185, 0.5, 2.0));
  auto c = p->Clone();
  p.reset();
  EXPECT_EQ(Sel(t, *c), (SelectionVector{2}));
}

TEST(ExprTest, ToStringRendering) {
  EXPECT_EQ(Eq("x", Value(1.5))->ToString(), "x = 1.5");
  EXPECT_EQ(Eq("s", Value("hi"))->ToString(), "s = 'hi'");
  EXPECT_EQ(Between("x", 1.0, 2.0)->ToString(), "x BETWEEN 1 AND 2");
  EXPECT_EQ(Cone("a", "b", 1, 2, 3)->ToString(), "cone(a, b; 1, 2; r=3)");
  EXPECT_EQ(Not(Eq("x", Value(1.0)))->ToString(), "NOT (x = 1)");
  EXPECT_EQ(And(Eq("x", Value(1.0)), Eq("y", Value(2.0)))->ToString(),
            "(x = 1) AND (y = 2)");
}

TEST(ExprTest, SelectOnEmptyCandidates) {
  const Table t = ObjTable();
  SelectionVector out;
  ASSERT_TRUE(Eq("id", Value(int64_t{1}))->Select(t, {}, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ExprTest, SelectRespectsCandidateSubset) {
  const Table t = ObjTable();
  SelectionVector out;
  ASSERT_TRUE(
      Eq("cls", Value("GALAXY"))->Select(t, {0, 1}, &out).ok());
  EXPECT_EQ(out, (SelectionVector{0}));
}

TEST(ExprTest, ParamPlaceholderRefusesToExecuteUntilBound) {
  const Table t = ObjTable();
  const PredicatePtr unbound = Param("ra", CompareOp::kGt, 0);
  EXPECT_TRUE(unbound->HasUnboundParams());
  EXPECT_EQ(unbound->ToString(), "ra > ?");
  EXPECT_EQ(unbound->Validate(t.schema()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(SelectAll(t, *unbound).ok());
  // Clone preserves the placeholder; a composite tree reports it too.
  EXPECT_TRUE(unbound->Clone()->HasUnboundParams());
  const PredicatePtr tree =
      And(Eq("cls", Value("GALAXY")), Param("ra", CompareOp::kGt, 0));
  EXPECT_TRUE(tree->HasUnboundParams());

  // Binding turns the tree into a plain comparison with the same selection
  // as a hand-built one — and the bound clone carries no placeholders.
  const PredicatePtr bound = tree->BindParams({Value(185.5)}).value();
  EXPECT_FALSE(bound->HasUnboundParams());
  EXPECT_EQ(Sel(t, *bound),
            Sel(t, *And(Eq("cls", Value("GALAXY")),
                        Gt("ra", Value(185.5)))));

  // Bad binds: missing slot, NULL value.
  EXPECT_FALSE(tree->BindParams({}).ok());
  EXPECT_FALSE(tree->BindParams({Value::Null()}).ok());
}

}  // namespace
}  // namespace sciborq
