#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.h"

#include "core/hierarchy.h"
#include "skyserver/catalog.h"
#include "workload/interest_tracker.h"

namespace sciborq {
namespace {

using LayerSpec = ImpressionHierarchy::LayerSpec;

SkyCatalogConfig StreamConfig() {
  SkyCatalogConfig config;
  config.num_rows = 50'000;
  return config;
}

std::vector<LayerSpec> ThreeLayers() {
  return {{"L0", 10'000}, {"L1", 1'000}, {"L2", 100}};
}

TEST(HierarchyTest, MakeValidation) {
  const Schema schema = PhotoObjSchema();
  ImpressionSpec spec;
  EXPECT_FALSE(ImpressionHierarchy::Make(schema, {}, spec).ok());
  EXPECT_FALSE(
      ImpressionHierarchy::Make(schema, {{"a", 100}, {"b", 100}}, spec).ok());
  EXPECT_FALSE(
      ImpressionHierarchy::Make(schema, {{"a", 100}, {"b", 200}}, spec).ok());
  EXPECT_FALSE(ImpressionHierarchy::Make(schema, {{"a", 0}}, spec).ok());
  EXPECT_TRUE(ImpressionHierarchy::Make(schema, ThreeLayers(), spec).ok());
}

TEST(HierarchyTest, RejectsDuplicateLayerNames) {
  const Schema schema = PhotoObjSchema();
  ImpressionSpec spec;
  const auto result = ImpressionHierarchy::Make(
      schema, {{"L0", 10'000}, {"mid", 1'000}, {"L0", 100}}, spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The offending name is in the message so the caller can fix the spec.
  EXPECT_NE(result.status().message().find("'L0'"), std::string::npos)
      << result.status().message();
}

TEST(HierarchyTest, RejectsReservedLayerNameBase) {
  // "base" would collide with BoundedAnswer::answered_by's base-table
  // sentinel, making an approximate answer look exact.
  ImpressionSpec spec;
  const auto result = ImpressionHierarchy::Make(
      PhotoObjSchema(), {{"base", 10'000}, {"L1", 1'000}}, spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(HierarchyTest, LayerSizesAfterIngest) {
  SkyStream stream(StreamConfig(), 1);
  ImpressionSpec spec;
  spec.seed = 1;
  auto h = ImpressionHierarchy::Make(stream.schema(), ThreeLayers(), spec)
               .value();
  ASSERT_TRUE(h.IngestBatch(stream.NextBatch(30'000)).ok());
  EXPECT_EQ(h.num_layers(), 3);
  EXPECT_EQ(h.layer(0).size(), 10'000);
  EXPECT_EQ(h.layer(1).size(), 1'000);
  EXPECT_EQ(h.layer(2).size(), 100);
  EXPECT_EQ(h.population_seen(), 30'000);
  EXPECT_EQ(h.layer(0).name(), "L0");
  EXPECT_EQ(h.layer(2).name(), "L2");
}

TEST(HierarchyTest, SmallStreamsPropagatePartially) {
  SkyStream stream(StreamConfig(), 2);
  ImpressionSpec spec;
  auto h = ImpressionHierarchy::Make(stream.schema(), ThreeLayers(), spec)
               .value();
  ASSERT_TRUE(h.IngestBatch(stream.NextBatch(500)).ok());
  EXPECT_EQ(h.layer(0).size(), 500);
  EXPECT_EQ(h.layer(1).size(), 500);  // capped by parent content
  EXPECT_EQ(h.layer(2).size(), 100);
}

TEST(HierarchyTest, EscalationOrderSmallestFirst) {
  SkyStream stream(StreamConfig(), 3);
  ImpressionSpec spec;
  auto h = ImpressionHierarchy::Make(stream.schema(), ThreeLayers(), spec)
               .value();
  ASSERT_TRUE(h.IngestBatch(stream.NextBatch(20'000)).ok());
  const auto order = h.EscalationOrder();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0]->name(), "L2");
  EXPECT_EQ(order[1]->name(), "L1");
  EXPECT_EQ(order[2]->name(), "L0");
}

TEST(HierarchyTest, DerivedInclusionProbabilitiesCompose) {
  SkyStream stream(StreamConfig(), 4);
  ImpressionSpec spec;
  spec.seed = 4;
  auto h = ImpressionHierarchy::Make(stream.schema(), ThreeLayers(), spec)
               .value();
  ASSERT_TRUE(h.IngestBatch(stream.NextBatch(40'000)).ok());
  // Layer 0: pi = 10000/40000 = 0.25. Layer 1: 0.25 * 1000/10000 = 0.025.
  // Layer 2: 0.025 * 100/1000 = 0.0025.
  EXPECT_DOUBLE_EQ(h.layer(0).InclusionProbability(0), 0.25);
  EXPECT_DOUBLE_EQ(h.layer(1).InclusionProbability(0), 0.025);
  EXPECT_DOUBLE_EQ(h.layer(2).InclusionProbability(0), 0.0025);
}

TEST(HierarchyTest, DerivedRowsComeFromParent) {
  SkyStream stream(StreamConfig(), 5);
  ImpressionSpec spec;
  spec.seed = 5;
  auto h = ImpressionHierarchy::Make(stream.schema(), ThreeLayers(), spec)
               .value();
  ASSERT_TRUE(h.IngestBatch(stream.NextBatch(20'000)).ok());
  // Every objid in L1 must exist in L0 (derivation subsamples the parent).
  std::set<int64_t> parent_ids;
  const Column* l0 = h.layer(0).rows().ColumnByName("objid").value();
  for (int64_t i = 0; i < l0->size(); ++i) parent_ids.insert(l0->GetInt64(i));
  const Column* l1 = h.layer(1).rows().ColumnByName("objid").value();
  for (int64_t i = 0; i < l1->size(); ++i) {
    EXPECT_TRUE(parent_ids.count(l1->GetInt64(i)) > 0);
  }
}

TEST(HierarchyTest, DerivedLayerHasNoDuplicates) {
  SkyStream stream(StreamConfig(), 6);
  ImpressionSpec spec;
  spec.seed = 6;
  auto h = ImpressionHierarchy::Make(stream.schema(), ThreeLayers(), spec)
               .value();
  ASSERT_TRUE(h.IngestBatch(stream.NextBatch(20'000)).ok());
  std::set<int64_t> ids;
  const Column* l1 = h.layer(1).rows().ColumnByName("objid").value();
  for (int64_t i = 0; i < l1->size(); ++i) ids.insert(l1->GetInt64(i));
  EXPECT_EQ(ids.size(), static_cast<size_t>(l1->size()));
}

TEST(HierarchyTest, BiasInheritedByDerivedLayers) {
  SkyStream stream(StreamConfig(), 7);
  InterestTracker tracker =
      InterestTracker::Make({{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}})
          .value();
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    tracker.ObserveValue("ra", rng.Gaussian(150.0, 2.0));
    tracker.ObserveValue("dec", rng.Gaussian(12.0, 1.5));
  }
  ImpressionSpec spec;
  spec.policy = SamplingPolicy::kBiased;
  spec.tracker = &tracker;
  spec.seed = 7;
  // Small layers relative to the stream: bias needs turnover (cnt >> n)
  // before the focal concentration dominates the unconditional initial fill.
  auto h = ImpressionHierarchy::Make(
               stream.schema(), {{"L0", 2000}, {"L1", 400}, {"L2", 50}}, spec)
               .value();
  for (int b = 0; b < 10; ++b) {
    ASSERT_TRUE(h.IngestBatch(stream.NextBatch(10'000)).ok());
  }
  const auto focal_fraction = [](const Impression& imp) {
    const Column* ra = imp.rows().ColumnByName("ra").value();
    int64_t focal = 0;
    for (int64_t i = 0; i < imp.size(); ++i) {
      if (std::abs(ra->GetDouble(i) - 150.0) < 6.0) ++focal;
    }
    return static_cast<double>(focal) / static_cast<double>(imp.size());
  };
  // The smallest layer inherits the parent's concentration (within noise).
  const double f0 = focal_fraction(h.layer(0));
  const double f2 = focal_fraction(h.layer(2));
  EXPECT_GT(f0, 0.2);
  EXPECT_GT(f2, f0 * 0.5);
}

TEST(HierarchyTest, RefreshIntervalDefersDerivation) {
  SkyStream stream(StreamConfig(), 8);
  ImpressionSpec spec;
  spec.seed = 8;
  HierarchyOptions options;
  options.refresh_interval = 10'000;
  auto h = ImpressionHierarchy::Make(stream.schema(), ThreeLayers(), spec,
                                     options)
               .value();
  ASSERT_TRUE(h.IngestBatch(stream.NextBatch(3000)).ok());
  // Below the interval: derived layers still reflect the initial (empty)
  // refresh... but Make() refreshes once, so they are empty.
  EXPECT_EQ(h.layer(0).size(), 3000);
  const int64_t l1_before = h.layer(1).size();
  ASSERT_TRUE(h.IngestBatch(stream.NextBatch(8000)).ok());  // crosses 10k
  EXPECT_EQ(h.layer(1).size(), 1000);
  EXPECT_GE(h.layer(1).size(), l1_before);
}

TEST(HierarchyTest, ManualRefreshAlwaysWorks) {
  SkyStream stream(StreamConfig(), 9);
  ImpressionSpec spec;
  HierarchyOptions options;
  options.refresh_interval = 1'000'000;  // effectively never
  auto h = ImpressionHierarchy::Make(stream.schema(), ThreeLayers(), spec,
                                     options)
               .value();
  ASSERT_TRUE(h.IngestBatch(stream.NextBatch(5000)).ok());
  EXPECT_EQ(h.layer(1).size(), 0);  // not refreshed yet
  ASSERT_TRUE(h.RefreshDerivedLayers().ok());
  EXPECT_EQ(h.layer(1).size(), 1000);
}

TEST(HierarchyTest, ToStringListsLayers) {
  SkyStream stream(StreamConfig(), 10);
  ImpressionSpec spec;
  auto h = ImpressionHierarchy::Make(stream.schema(), ThreeLayers(), spec)
               .value();
  ASSERT_TRUE(h.IngestBatch(stream.NextBatch(1000)).ok());
  const std::string s = h.ToString();
  EXPECT_NE(s.find("L0"), std::string::npos);
  EXPECT_NE(s.find("L2"), std::string::npos);
}

// Sweep: derivation keeps probabilities in (0, 1] for any layer shape.
class HierarchyShapeSweep
    : public ::testing::TestWithParam<std::vector<int64_t>> {};

TEST_P(HierarchyShapeSweep, ProbabilitiesValid) {
  SkyStream stream(StreamConfig(), 11);
  std::vector<LayerSpec> layers;
  int i = 0;
  for (const int64_t cap : GetParam()) {
    layers.push_back({"L" + std::to_string(i++), cap});
  }
  ImpressionSpec spec;
  spec.seed = 11;
  auto h =
      ImpressionHierarchy::Make(stream.schema(), std::move(layers), spec)
          .value();
  ASSERT_TRUE(h.IngestBatch(stream.NextBatch(25'000)).ok());
  for (int layer = 0; layer < h.num_layers(); ++layer) {
    const Impression& imp = h.layer(layer);
    for (int64_t row = 0; row < imp.size(); ++row) {
      const double p = imp.InclusionProbability(row);
      EXPECT_GT(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
    EXPECT_TRUE(imp.Validate().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HierarchyShapeSweep,
    ::testing::Values(std::vector<int64_t>{20'000},
                      std::vector<int64_t>{20'000, 500},
                      std::vector<int64_t>{20'000, 2000, 200, 20},
                      std::vector<int64_t>{1000, 999, 998}));

}  // namespace
}  // namespace sciborq
