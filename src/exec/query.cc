#include "exec/query.h"

#include "util/string_util.h"

namespace sciborq {

AggregateQuery AggregateQuery::Clone() const {
  AggregateQuery out;
  out.aggregates = aggregates;
  out.table = table;
  out.filter = filter ? filter->Clone() : nullptr;
  out.group_by = group_by;
  return out;
}

QualityBound QueryBounds::Resolve(const QualityBound& defaults) const {
  QualityBound bound = defaults;
  if (time_budget_ms >= 0.0) bound.time_budget_seconds = time_budget_ms / 1e3;
  if (max_relative_error >= 0.0) bound.max_relative_error = max_relative_error;
  if (confidence >= 0.0) bound.confidence = confidence;
  if (exact) bound.max_relative_error = 0.0;
  return bound;
}

std::string QueryBounds::ToString() const {
  std::vector<std::string> terms;
  if (time_budget_ms >= 0.0) {
    terms.push_back(StrFormat("WITHIN %g MS", time_budget_ms));
  }
  if (max_relative_error >= 0.0) {
    terms.push_back(StrFormat("ERROR %g%%", max_relative_error * 100.0));
  }
  if (confidence >= 0.0) {
    terms.push_back(StrFormat("CONFIDENCE %g%%", confidence * 100.0));
  }
  if (exact) terms.push_back("EXACT");
  return Join(terms, " ");
}

BoundedQuery BoundedQuery::Clone() const {
  BoundedQuery out;
  out.query = query.Clone();
  out.bounds = bounds;
  return out;
}

std::string BoundedQuery::ToString() const { return RenderSql(query, bounds); }

std::string RenderSql(const AggregateQuery& query, const QueryBounds& bounds) {
  std::string out = query.ToString();
  const std::string clause = bounds.ToString();
  if (!clause.empty()) out += " " + clause;
  return out;
}

std::string_view ParamKindToString(ParamKind kind) {
  switch (kind) {
    case ParamKind::kCompareLiteral:
      return "comparison literal";
    case ParamKind::kWithinMs:
      return "WITHIN budget";
    case ParamKind::kErrorPct:
      return "ERROR bound";
  }
  return "unknown";
}

PreparedQuery PreparedQuery::Clone() const {
  PreparedQuery out;
  out.query = query.Clone();
  out.bounds = bounds;
  out.slots = slots;
  out.time_budget_slot = time_budget_slot;
  out.error_slot = error_slot;
  return out;
}

std::string PreparedQuery::ToString() const {
  std::string out = query.ToString();
  std::vector<std::string> terms;
  if (time_budget_slot >= 0) {
    terms.push_back("WITHIN ? MS");
  } else if (bounds.time_budget_ms >= 0.0) {
    terms.push_back(StrFormat("WITHIN %g MS", bounds.time_budget_ms));
  }
  if (error_slot >= 0) {
    terms.push_back("ERROR ?%");
  } else if (bounds.max_relative_error >= 0.0) {
    terms.push_back(
        StrFormat("ERROR %g%%", bounds.max_relative_error * 100.0));
  }
  if (bounds.confidence >= 0.0) {
    terms.push_back(StrFormat("CONFIDENCE %g%%", bounds.confidence * 100.0));
  }
  if (bounds.exact) terms.push_back("EXACT");
  const std::string clause = Join(terms, " ");
  if (!clause.empty()) out += " " + clause;
  return out;
}

namespace {

/// Numeric view of one bound parameter, rejecting strings and NULLs with a
/// message naming the slot and its role.
Result<double> NumericParam(const std::vector<Value>& params, int slot,
                            ParamKind kind) {
  const Value& v = params[static_cast<size_t>(slot)];
  if (!v.is_int64() && !v.is_double()) {
    return Status::InvalidArgument(StrFormat(
        "parameter %d (%s) must be numeric, got %s", slot,
        std::string(ParamKindToString(kind)).c_str(),
        v.is_null() ? "NULL" : ("'" + v.ToString() + "'").c_str()));
  }
  return v.AsDouble();
}

}  // namespace

Result<BoundedQuery> BindParams(const PreparedQuery& prepared,
                                const std::vector<Value>& params) {
  if (params.size() != prepared.slots.size()) {
    return Status::InvalidArgument(StrFormat(
        "statement expects %zu parameter(s), got %zu", prepared.slots.size(),
        params.size()));
  }
  BoundedQuery bound;
  bound.bounds = prepared.bounds;
  if (prepared.time_budget_slot >= 0) {
    SCIBORQ_ASSIGN_OR_RETURN(
        const double ms, NumericParam(params, prepared.time_budget_slot,
                                      ParamKind::kWithinMs));
    if (ms <= 0.0) {
      return Status::InvalidArgument(StrFormat(
          "parameter %d: WITHIN budget must be positive, got %g ms",
          prepared.time_budget_slot, ms));
    }
    bound.bounds.time_budget_ms = ms;
  }
  if (prepared.error_slot >= 0) {
    SCIBORQ_ASSIGN_OR_RETURN(
        const double pct,
        NumericParam(params, prepared.error_slot, ParamKind::kErrorPct));
    if (pct < 0.0) {
      return Status::InvalidArgument(StrFormat(
          "parameter %d: ERROR bound must be non-negative, got %g%%",
          prepared.error_slot, pct));
    }
    bound.bounds.max_relative_error = pct / 100.0;
  }
  bound.query.aggregates = prepared.query.aggregates;
  bound.query.table = prepared.query.table;
  bound.query.group_by = prepared.query.group_by;
  if (prepared.query.filter) {
    SCIBORQ_ASSIGN_OR_RETURN(bound.query.filter,
                             prepared.query.filter->BindParams(params));
  }
  return bound;
}

std::vector<PredicatePoint> AggregateQuery::PredicatePoints() const {
  std::vector<PredicatePoint> points;
  if (filter) filter->CollectPredicatePoints(&points);
  return points;
}

std::vector<PredicatePair> AggregateQuery::PredicatePairs() const {
  std::vector<PredicatePair> pairs;
  if (filter) filter->CollectPredicatePairs(&pairs);
  return pairs;
}

std::string AggregateQuery::ToString() const {
  std::vector<std::string> aggs;
  aggs.reserve(aggregates.size());
  for (const auto& a : aggregates) aggs.push_back(a.ToString());
  std::string out = "SELECT " + Join(aggs, ", ");
  if (!table.empty()) out += " FROM " + table;
  if (filter) out += " WHERE " + filter->ToString();
  if (!group_by.empty()) out += " GROUP BY " + group_by;
  return out;
}

Result<std::vector<QueryResultRow>> RunExact(const Table& table,
                                             const AggregateQuery& query,
                                             ThreadPool* pool) {
  return RunExact(table, query, pool, ExactRunOptions());
}

Result<std::vector<QueryResultRow>> RunExact(const Table& table,
                                             const AggregateQuery& query,
                                             ThreadPool* pool,
                                             const ExactRunOptions& options) {
  if (query.aggregates.empty()) {
    return Status::InvalidArgument("query has no aggregates");
  }
  if (options.moments) options.moments->clear();
  SelectionVector rows;
  if (query.filter) {
    SCIBORQ_ASSIGN_OR_RETURN(rows, SelectAll(table, *query.filter, pool));
  } else {
    rows.resize(static_cast<size_t>(table.num_rows()));
    for (int64_t i = 0; i < table.num_rows(); ++i) {
      rows[static_cast<size_t>(i)] = i;
    }
  }

  std::vector<QueryResultRow> out;
  if (query.group_by.empty()) {
    QueryResultRow row;
    row.group_key = Value::Null();
    row.input_rows = static_cast<int64_t>(rows.size());
    row.values.reserve(query.aggregates.size());
    std::vector<AggregateMoments> row_moments;
    for (const auto& spec : query.aggregates) {
      // Accumulate-then-finish equals ComputeAggregate exactly; it just also
      // exposes the mergeable state when a shard needs to ship it.
      SCIBORQ_ASSIGN_OR_RETURN(AggregateMoments acc,
                               AccumulateAggregate(table, rows, spec, pool));
      if (options.lenient) {
        row.values.push_back(acc.FinishLenient(spec.kind));
      } else {
        SCIBORQ_ASSIGN_OR_RETURN(double v, acc.Finish(spec.kind));
        row.values.push_back(v);
      }
      if (options.moments) row_moments.push_back(std::move(acc));
    }
    if (options.moments) options.moments->push_back(std::move(row_moments));
    out.push_back(std::move(row));
    return out;
  }

  GroupedAggOptions group_options;
  group_options.lenient = options.lenient;
  group_options.collect_moments = options.moments != nullptr;
  SCIBORQ_ASSIGN_OR_RETURN(
      std::vector<GroupRow> groups,
      ComputeGroupedAggregates(table, rows, query.group_by, query.aggregates,
                               pool, group_options));
  out.reserve(groups.size());
  for (auto& g : groups) {
    QueryResultRow row;
    row.group_key = std::move(g.key);
    row.values = std::move(g.aggregates);
    row.input_rows = g.group_rows;
    if (options.moments) options.moments->push_back(std::move(g.moments));
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace sciborq
