// Compressed + vectorized scan benchmarks: what the per-morsel encodings
// (RLE / frame-of-reference / dictionary) and zone maps buy on scan-heavy
// work, and proof that they change nothing about the answers.
//
//   footprint  — serialized bytes/row of the v2 encoded page vs the v1 plain
//                page, per column and for the whole table. Expectation: the
//                compression-friendly columns (sorted ints, run-y ints,
//                low-cardinality strings) shrink >= 2x.
//   scan       — SelectAll throughput (GB/s of plain-equivalent column data)
//                over the encoded table vs the sidecar-free scalar scan, for
//                a battery of predicates from skip-everything to scan-
//                everything. Expectation: encoded >= ~0.9x scalar on the
//                worst case and far above it when zone maps prune.
//   pruning    — fraction of complete morsels skipped outright for a
//                selective predicate (sciborq_morsels_skipped_total delta).
//
// Exits non-zero if any encoded answer — selection or aggregate — differs
// bit-for-bit from the scalar oracle, or if a footprint/throughput bar is
// missed. BENCH_JSON lines are grep-able from CI logs.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "column/encoding/encoding.h"
#include "column/serde.h"
#include "column/table.h"
#include "exec/expr.h"
#include "exec/query.h"
#include "obs/metrics.h"
#include "util/binio.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace sciborq;
using sciborq::bench::Header;
using sciborq::bench::JsonLine;
using sciborq::bench::Unwrap;

namespace {

constexpr int64_t kRows = 512 * 1024;  // 32 complete morsels
constexpr int kScanReps = 5;

/// Scan-bench table: one column per encoding regime.
///   id      int64  0..n sorted        -> frame-of-reference bit-packing
///   flag    int64  4096-row plateaus  -> run-length
///   station string 8 distinct values  -> dictionary
///   val     double uniform random     -> plain (zone maps only)
Table MakeScanTable() {
  const std::vector<std::string> stations = {"apo", "lick", "keck", "palomar",
                                             "gemini", "vlt", "subaru", "lbt"};
  Rng rng(1905);
  Column id(DataType::kInt64), flag(DataType::kInt64), val(DataType::kDouble),
      station(DataType::kString);
  for (Column* c : {&id, &flag, &val, &station}) c->Reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    id.AppendInt64(i);
    flag.AppendInt64(i / 4096);
    val.AppendDouble(rng.NextDouble() * 100.0);
    station.AppendString(stations[static_cast<size_t>(rng.NextUint64() % 8)]);
  }
  return Unwrap(Table::FromColumns(
      Schema({Field{"id", DataType::kInt64, false},
              Field{"flag", DataType::kInt64, false},
              Field{"val", DataType::kDouble, false},
              Field{"station", DataType::kString, false}}),
      {std::move(id), std::move(flag), std::move(val), std::move(station)}));
}

int64_t EncodedBytes(const Column& col, bool encoded_page) {
  BinaryWriter w;
  if (encoded_page) {
    EncodeColumnEncoded(col, &w);
  } else {
    EncodeColumn(col, &w);
  }
  return static_cast<int64_t>(w.buffer().size());
}

struct ScanCase {
  const char* name;
  PredicatePtr pred;
  /// Plain-equivalent bytes a scalar scan must touch (the filtered column's
  /// storage), the numerator of the GB/s figure for both paths.
  int64_t scanned_bytes;
};

std::vector<ScanCase> MakeScanCases(int64_t station_bytes) {
  std::vector<ScanCase> cases;
  const int64_t num_bytes = kRows * 8;
  // Zone maps kill every morsel: the headline pruning case.
  cases.push_back({"skip_all", Lt("val", Value(-1.0)), num_bytes});
  // Zone maps blanket-accept every morsel.
  cases.push_back({"match_all", Ge("val", Value(-1.0)), num_bytes});
  // Selective range on the sorted column: prunes all but one morsel, scans
  // the survivor through the FOR kernel path.
  cases.push_back({"id_band", Between("id", 100'000.0, 110'000.0), num_bytes});
  // Run-length domain scan: one comparison per 4096-row run.
  cases.push_back({"flag_eq", Eq("flag", Value(int64_t{64})), num_bytes});
  // Dictionary domain scan: 8 comparisons per morsel plus a code walk.
  cases.push_back({"station_eq", Eq("station", Value("keck")), station_bytes});
  // No pruning possible (uniform doubles, mid-range literal): the honest
  // kernel-vs-scalar case.
  cases.push_back({"val_half", Lt("val", Value(50.0)), num_bytes});
  return cases;
}

double BestScanSeconds(const Table& t, const Predicate& pred) {
  double best = 1e100;
  for (int rep = 0; rep < kScanReps; ++rep) {
    Stopwatch watch;
    const SelectionVector sel = Unwrap(SelectAll(t, pred));
    const double s = watch.ElapsedSeconds();
    if (s < best) best = s;
    if (!sel.empty() && sel.front() < 0) std::abort();  // keep the scan alive
  }
  return best;
}

bool BitIdenticalAggregates(const Table& plain, const Table& encoded,
                            ThreadPool* pool) {
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""},  {AggKind::kSum, "val"},
                  {AggKind::kAvg, "val"}, {AggKind::kMin, "id"},
                  {AggKind::kMax, "id"},  {AggKind::kVariance, "val"}};
  q.filter = Between("id", 50'000.0, 400'000.0);
  const auto a = Unwrap(RunExact(plain, q));
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), pool}) {
    const auto b = Unwrap(RunExact(encoded, q, p));
    if (a.size() != b.size()) return false;
    for (size_t r = 0; r < a.size(); ++r) {
      if (a[r].input_rows != b[r].input_rows) return false;
      if (a[r].values.size() != b[r].values.size()) return false;
      if (std::memcmp(a[r].values.data(), b[r].values.data(),
                      a[r].values.size() * sizeof(double)) != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  Header("scan: compressed columns + zone maps vs the scalar scan");

  const Table plain = MakeScanTable();
  Table encoded = plain;
  encoded.BuildEncoding();
  ThreadPool pool(4);

  // ---- footprint -----------------------------------------------------------
  bool footprint_ok = true;
  double table_plain_bytes = 0;
  double table_encoded_bytes = 0;
  for (int c = 0; c < plain.num_columns(); ++c) {
    const std::string& name = plain.schema().field(c).name;
    const int64_t v1 = EncodedBytes(plain.column(c), false);
    const int64_t v2 = EncodedBytes(plain.column(c), true);
    table_plain_bytes += static_cast<double>(v1);
    table_encoded_bytes += static_cast<double>(v2);
    const double ratio = static_cast<double>(v1) / static_cast<double>(v2);
    const bool friendly = name != "val";
    if (friendly && ratio < 2.0) footprint_ok = false;
    std::printf("footprint %-8s %8.2f B/row plain, %8.2f B/row encoded "
                "(%.1fx)%s\n",
                name.c_str(), static_cast<double>(v1) / kRows,
                static_cast<double>(v2) / kRows, ratio,
                friendly ? " [>=2x gate]" : "");
    JsonLine("scan_footprint")
        .Str("column", name)
        .Num("plain_bytes_per_row", static_cast<double>(v1) / kRows)
        .Num("encoded_bytes_per_row", static_cast<double>(v2) / kRows)
        .Num("compression_ratio", ratio)
        .Flag("gated", friendly)
        .Emit();
  }
  JsonLine("scan_footprint_table")
      .Int("rows", kRows)
      .Num("plain_bytes_per_row", table_plain_bytes / kRows)
      .Num("encoded_bytes_per_row", table_encoded_bytes / kRows)
      .Num("compression_ratio", table_plain_bytes / table_encoded_bytes)
      .Emit();

  // ---- scan throughput + answer equality -----------------------------------
  int mismatches = 0;
  double worst_relative = 1e100;
  for (ScanCase& sc : MakeScanCases(EncodedBytes(plain.column(3), false))) {
    // Equality gate first: serial and 4-thread encoded scans must reproduce
    // the scalar selection exactly.
    const SelectionVector oracle = Unwrap(SelectAll(plain, *sc.pred));
    if (Unwrap(SelectAll(encoded, *sc.pred)) != oracle ||
        Unwrap(SelectAll(encoded, *sc.pred, &pool)) != oracle) {
      std::fprintf(stderr, "FAILED: selection mismatch on %s\n", sc.name);
      ++mismatches;
      continue;
    }
    const double scalar_s = BestScanSeconds(plain, *sc.pred);
    const double encoded_s = BestScanSeconds(encoded, *sc.pred);
    const double gb = static_cast<double>(sc.scanned_bytes) / 1e9;
    const double relative = scalar_s / encoded_s;
    // Only the no-pruning case gates throughput: pruned cases are trivially
    // faster, and tiny absolute times are too noisy to gate individually.
    if (std::string(sc.name) == "val_half") worst_relative = relative;
    std::printf("scan %-10s scalar %7.2f GB/s, encoded %7.2f GB/s (%.2fx), "
                "%zu rows selected\n",
                sc.name, gb / scalar_s, gb / encoded_s, relative,
                oracle.size());
    JsonLine("scan_throughput")
        .Str("predicate", sc.name)
        .Num("scalar_gb_per_s", gb / scalar_s)
        .Num("encoded_gb_per_s", gb / encoded_s)
        .Num("encoded_over_scalar", relative)
        .Int("selected_rows", static_cast<int64_t>(oracle.size()))
        .Emit();
  }

  // ---- aggregate equality --------------------------------------------------
  const bool aggregates_identical =
      BitIdenticalAggregates(plain, encoded, &pool);
  if (!aggregates_identical) {
    std::fprintf(stderr, "FAILED: aggregate mismatch encoded vs scalar\n");
    ++mismatches;
  }

  // ---- morsel pruning ratio ------------------------------------------------
  obs::Counter* skipped = obs::DefaultRegistry()->GetCounter(
      "sciborq_morsels_skipped_total",
      "Scan morsels skipped entirely by zone-map pruning");
  const PredicatePtr selective = Between("id", 100'000.0, 110'000.0);
  const int64_t before = skipped->Value();
  (void)Unwrap(SelectAll(encoded, *selective));
  const int64_t morsels = kRows / kEncodingMorselRows;
  const double skip_ratio =
      static_cast<double>(skipped->Value() - before) /
      static_cast<double>(morsels);
  std::printf("pruning: %.0f%% of %lld morsels skipped for the id band\n",
              100.0 * skip_ratio, static_cast<long long>(morsels));
  JsonLine("scan_pruning")
      .Int("morsels", morsels)
      .Num("skip_ratio", skip_ratio)
      .Flag("aggregates_bit_identical", aggregates_identical)
      .Emit();

  // ---- gates ---------------------------------------------------------------
  if (mismatches > 0) {
    std::fprintf(stderr, "FAILED: %d encoded-vs-scalar mismatch(es)\n",
                 mismatches);
    return 1;
  }
  if (!footprint_ok) {
    std::fprintf(stderr,
                 "FAILED: a compression-friendly column missed the 2x bar\n");
    return 1;
  }
  if (worst_relative < 0.9) {
    std::fprintf(stderr,
                 "FAILED: encoded scan %.2fx of scalar on the no-pruning "
                 "case (bar: 0.9x)\n",
                 worst_relative);
    return 1;
  }
  if (skip_ratio < 0.9) {
    std::fprintf(stderr, "FAILED: skip ratio %.2f below 0.9\n", skip_ratio);
    return 1;
  }
  std::printf("scan bench OK\n");
  return 0;
}
