// sciborq_cli — interactive shell and one-shot client for sciborq_server.
//
//   sciborq_cli [--host 127.0.0.1] [--port 4242]            # REPL
//   sciborq_cli --port 4242 -e "SELECT COUNT(*) FROM sky ERROR 5%"
//   sciborq_cli --port 4242 -e "\prepare SELECT COUNT(*) FROM sky
//       WHERE r > ? ERROR 10%" -e "\exec 1 17.5"
//
// REPL commands (everything else is shipped as SQL):
//   \tables             catalog listing (schema + impression layers)
//   \describe TABLE     one table: schema + per-layer fill
//   \use TABLE          default table for FROM-less SQL
//   \prepare SQL        prepare a '?' template; prints the handle id
//   \exec ID ARGS...    bind + run: numbers stay numeric, 'quoted' or bare
//                       words become strings; ID may be `last` (the most
//                       recent \prepare of this process)
//   \close ID           free a prepared statement
//   \checkpoint [TABLE] persist TABLE (or every table) into the server's
//                       --db-dir: snapshot written atomically, WAL truncated
//   \drop TABLE         permanently remove TABLE: catalog entry, snapshot,
//                       and WAL segments (irreversible)
//   \stats [PREFIX]     server metrics snapshot (optionally filtered to
//                       names starting with PREFIX)
//   \slow               the server's bound-miss/slow-query ring, oldest
//                       first, with each query's escalation + phase trace
//   \ping               round-trip liveness check
//   \q                  quit
//
// Every query additionally prints the client-observed round-trip time next
// to the server-reported execution time, so wire overhead is visible.
//
// One-shot mode: every -e runs in order (REPL commands included), and the
// exit code is non-zero as soon as one fails — scriptable for smoke tests,
// including a \prepare/\exec round trip and wrong-arity \exec failures.

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "client/client.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

using namespace sciborq;

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host HOST] [--port N] [-e \"SQL\"]...\n"
               "  --host HOST  server host (default 127.0.0.1)\n"
               "  --port N     server port (default 4242)\n"
               "  -e SQL       run one statement (repeatable, in order; also\n"
               "               accepts REPL commands like \\prepare, \\exec),\n"
               "               print the outcome, exit non-zero on failure\n",
               argv0);
}

/// One bound parameter from a \exec argument: integer-looking tokens become
/// int64, other numbers double, everything else (incl. 'quoted') a string.
Value ParseParamToken(const std::string& token) {
  if (token.size() >= 2 && token.front() == '\'' && token.back() == '\'') {
    return Value(token.substr(1, token.size() - 2));
  }
  // Integers go through strtoll, not a double cast (which would be UB and
  // lossy past 2^53); out-of-range integers fall through to double.
  if (token.find_first_of(".eE") == std::string::npos) {
    errno = 0;
    char* end = nullptr;
    const long long i = std::strtoll(token.c_str(), &end, 10);
    if (end != token.c_str() && *end == '\0' && errno != ERANGE) {
      return Value(static_cast<int64_t>(i));
    }
  }
  char* end = nullptr;
  const double num = std::strtod(token.c_str(), &end);
  if (end != token.c_str() && *end == '\0') return Value(num);
  return Value(token);
}

/// Splits "\exec 3 17.5 'GALAXY GX'" arguments on whitespace, keeping
/// 'quoted strings' (which may contain spaces) as one token.
std::vector<std::string> SplitParamTokens(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i >= text.size()) break;
    std::string token;
    if (text[i] == '\'') {
      token += text[i++];
      while (i < text.size() && text[i] != '\'') token += text[i++];
      if (i < text.size()) token += text[i++];  // closing quote
    } else {
      while (i < text.size() &&
             !std::isspace(static_cast<unsigned char>(text[i]))) {
        token += text[i++];
      }
    }
    out.push_back(std::move(token));
  }
  return out;
}

/// Prints a query outcome; answers merged by a coordinator additionally get
/// an explicit partial-answer warning and one row per shard attempt.
/// `rtt_seconds` is the client-observed round trip (includes the wire),
/// printed beside the server-reported execution time.
void PrintOutcome(const QueryOutcome& outcome, double rtt_seconds) {
  std::printf("%s\n", outcome.ToString().c_str());
  std::printf("rtt: %.2fms client-observed (server reported %.2fms)\n",
              rtt_seconds * 1e3, outcome.elapsed_seconds * 1e3);
  if (outcome.shards_total == 0) return;
  if (outcome.partial) {
    std::printf(
        "warning: PARTIAL answer — %d of %d shards responded; error bounds "
        "widened to cover the missing slice\n",
        outcome.shards_responded, outcome.shards_total);
  }
  for (const LayerAttempt& attempt : outcome.attempts) {
    std::printf("  shard attempt: %s (err=%.4f, met=%s, %.2fms)\n",
                attempt.layer_name.c_str(), attempt.worst_relative_error,
                attempt.met_error_bound ? "yes" : "no",
                attempt.elapsed_seconds * 1e3);
  }
}

struct Cli {
  SciborqClient* client;
  /// Prepared handles live on the server session; this map only remembers
  /// the template text for friendlier output.
  std::map<int64_t, StatementInfo> statements;
  /// Id of the most recent \prepare — the target of `\exec last`.
  int64_t last_prepared = -1;
};

/// The word after a command, e.g. "\use sky" -> "sky"; empty when absent.
std::string ArgAfter(std::string_view trimmed, size_t command_len) {
  if (trimmed.size() <= command_len) return "";
  return std::string(StripWhitespace(trimmed.substr(command_len)));
}

bool IsCommand(std::string_view trimmed, std::string_view word) {
  if (trimmed == word) return true;
  return trimmed.size() > word.size() &&
         trimmed.substr(0, word.size()) == word &&
         (trimmed[word.size()] == ' ' || trimmed[word.size()] == '\t');
}

/// Executes one line (REPL or -e). Returns false when the session should
/// end; *ok reports whether the line succeeded.
bool HandleLine(Cli* cli, const std::string& line, bool* ok) {
  *ok = true;
  SciborqClient* client = cli->client;
  const std::string_view trimmed = StripWhitespace(line);
  if (trimmed.empty()) return true;
  if (trimmed == "\\q" || trimmed == "\\quit" || trimmed == "exit") {
    return false;
  }
  if (trimmed == "\\ping") {
    const Status st = client->Ping();
    *ok = st.ok();
    std::printf("%s\n", st.ok() ? "pong" : st.ToString().c_str());
    return true;
  }
  if (trimmed == "\\tables") {
    const Result<std::vector<TableInfo>> tables = client->ListTables();
    if (!tables.ok()) {
      *ok = false;
      std::printf("error: %s\n", tables.status().ToString().c_str());
      return true;
    }
    if (tables->empty()) std::printf("(no tables registered)\n");
    for (const TableInfo& info : *tables) {
      std::printf("%s\n", info.ToString().c_str());
    }
    return true;
  }
  if (IsCommand(trimmed, "\\describe")) {
    const std::string table = ArgAfter(trimmed, 9);
    if (table.empty()) {
      *ok = false;
      std::printf("usage: \\describe TABLE\n");
      return true;
    }
    const Result<std::vector<TableInfo>> tables = client->ListTables();
    if (!tables.ok()) {
      *ok = false;
      std::printf("error: %s\n", tables.status().ToString().c_str());
      return true;
    }
    for (const TableInfo& info : *tables) {
      if (info.name == table) {
        std::printf("%s\n", info.ToString().c_str());
        for (const ColumnStorageInfo& col : info.storage) {
          const double rows = info.rows > 0 ? static_cast<double>(info.rows)
                                            : 1.0;
          std::printf(
              "  column %s [%s]: %.2f bytes/row encoded (%.2f plain)\n",
              col.column.c_str(), col.encoding.c_str(),
              static_cast<double>(col.encoded_bytes) / rows,
              static_cast<double>(col.plain_bytes) / rows);
        }
        return true;
      }
    }
    *ok = false;
    std::printf("error: unknown table '%s' (try \\tables)\n", table.c_str());
    return true;
  }
  if (IsCommand(trimmed, "\\use")) {
    const std::string table = ArgAfter(trimmed, 4);
    if (table.empty()) {
      *ok = false;
      std::printf("usage: \\use TABLE\n");
      return true;
    }
    const Status st = client->Use(table);
    *ok = st.ok();
    std::printf("%s\n", st.ok() ? StrFormat("using '%s'", table.c_str()).c_str()
                                : st.ToString().c_str());
    return true;
  }
  if (IsCommand(trimmed, "\\prepare")) {
    const std::string sql = ArgAfter(trimmed, 8);
    if (sql.empty()) {
      *ok = false;
      std::printf("usage: \\prepare SQL (with ? placeholders)\n");
      return true;
    }
    const Result<StatementInfo> info = client->Prepare(sql);
    if (!info.ok()) {
      *ok = false;
      std::printf("error: %s\n", info.status().ToString().c_str());
      return true;
    }
    cli->statements[info->handle.id] = *info;
    cli->last_prepared = info->handle.id;
    std::printf("%s\n", info->ToString().c_str());
    std::printf("run it: \\exec %lld%s\n",
                static_cast<long long>(info->handle.id),
                info->num_params > 0 ? " PARAM..." : "");
    return true;
  }
  if (IsCommand(trimmed, "\\exec")) {
    std::vector<std::string> tokens = SplitParamTokens(trimmed.substr(5));
    if (tokens.empty()) {
      *ok = false;
      std::printf("usage: \\exec ID [PARAM...]\n");
      return true;
    }
    long long id;
    if (tokens[0] == "last") {
      // `last` targets the most recent \prepare of this process — scripts
      // (and the CI smoke) stay correct without tracking server-wide ids.
      if (cli->last_prepared < 0) {
        *ok = false;
        std::printf("error: no statement prepared yet (usage: \\exec last "
                    "[PARAM...])\n");
        return true;
      }
      id = cli->last_prepared;
    } else {
      char* end = nullptr;
      id = std::strtoll(tokens[0].c_str(), &end, 10);
      if (end == tokens[0].c_str() || *end != '\0') {
        *ok = false;
        std::printf("error: '%s' is not a statement id (usage: \\exec "
                    "ID|last [PARAM...])\n",
                    tokens[0].c_str());
        return true;
      }
    }
    std::vector<Value> params;
    params.reserve(tokens.size() - 1);
    for (size_t i = 1; i < tokens.size(); ++i) {
      params.push_back(ParseParamToken(tokens[i]));
    }
    Stopwatch rtt;
    const Result<QueryOutcome> outcome =
        client->Execute(StatementHandle{id}, params);
    if (!outcome.ok()) {
      *ok = false;
      std::printf("error: %s\n", outcome.status().ToString().c_str());
      return true;
    }
    PrintOutcome(*outcome, rtt.ElapsedSeconds());
    return true;
  }
  if (IsCommand(trimmed, "\\stats")) {
    const std::string prefix = ArgAfter(trimmed, 6);
    const Result<std::vector<obs::StatSample>> samples = client->ServerStats();
    if (!samples.ok()) {
      *ok = false;
      std::printf("error: %s\n", samples.status().ToString().c_str());
      return true;
    }
    int printed = 0;
    for (const obs::StatSample& sample : *samples) {
      if (!prefix.empty() &&
          sample.name.compare(0, prefix.size(), prefix) != 0) {
        continue;
      }
      std::printf("%s%s %.17g\n", sample.name.c_str(), sample.labels.c_str(),
                  sample.value);
      ++printed;
    }
    if (printed == 0) {
      std::printf(prefix.empty() ? "(no metrics recorded)\n"
                                 : "(no metrics match that prefix)\n");
    }
    return true;
  }
  if (trimmed == "\\slow") {
    const Result<std::vector<obs::SlowQueryEntry>> entries =
        client->SlowQueries();
    if (!entries.ok()) {
      *ok = false;
      std::printf("error: %s\n", entries.status().ToString().c_str());
      return true;
    }
    if (entries->empty()) {
      std::printf("(slow-query log is empty — every bound was met)\n");
      return true;
    }
    for (const obs::SlowQueryEntry& e : *entries) {
      std::printf("%s on '%s': %s\n", e.query_id.c_str(), e.table.c_str(),
                  e.sql.c_str());
      std::printf(
          "  asked: max_ms=%g max_error=%g confidence=%.2f exact=%s\n",
          e.asked_max_ms, e.asked_max_error, e.asked_confidence,
          e.asked_exact ? "yes" : "no");
      std::printf(
          "  delivered: error_bound_met=%s deadline_exceeded=%s "
          "elapsed=%.2fms answered_by=%s\n",
          e.error_bound_met ? "yes" : "no", e.deadline_exceeded ? "yes" : "no",
          e.elapsed_seconds * 1e3, e.answered_by.c_str());
      // The pre-rendered escalation + span trace, indented one level.
      size_t start = 0;
      while (start < e.trace.size()) {
        size_t nl = e.trace.find('\n', start);
        if (nl == std::string::npos) nl = e.trace.size();
        std::printf("  %.*s\n", static_cast<int>(nl - start),
                    e.trace.c_str() + start);
        start = nl + 1;
      }
    }
    return true;
  }
  if (IsCommand(trimmed, "\\checkpoint")) {
    const std::string table = ArgAfter(trimmed, 11);
    const Result<int64_t> count = client->Checkpoint(table);
    if (!count.ok()) {
      *ok = false;
      std::printf("error: %s\n", count.status().ToString().c_str());
      return true;
    }
    std::printf("checkpointed %lld table(s)%s%s\n",
                static_cast<long long>(*count), table.empty() ? "" : ": ",
                table.c_str());
    return true;
  }
  if (IsCommand(trimmed, "\\drop")) {
    const std::string table = ArgAfter(trimmed, 5);
    if (table.empty()) {
      *ok = false;
      std::printf("usage: \\drop TABLE\n");
      return true;
    }
    const Status st = client->DropTable(table);
    *ok = st.ok();
    std::printf("%s\n", st.ok()
                            ? StrFormat("dropped '%s'", table.c_str()).c_str()
                            : st.ToString().c_str());
    return true;
  }
  if (IsCommand(trimmed, "\\close")) {
    const std::string arg = ArgAfter(trimmed, 6);
    char* end = nullptr;
    const long long id = std::strtoll(arg.c_str(), &end, 10);
    if (arg.empty() || end == arg.c_str() || *end != '\0') {
      *ok = false;
      std::printf("usage: \\close ID\n");
      return true;
    }
    const Status st = client->CloseStatement(StatementHandle{id});
    *ok = st.ok();
    if (st.ok()) {
      cli->statements.erase(id);
      std::printf("closed statement #%lld\n", id);
    } else {
      std::printf("error: %s\n", st.ToString().c_str());
    }
    return true;
  }
  Stopwatch rtt;
  const Result<QueryOutcome> outcome = client->Query(trimmed);
  if (!outcome.ok()) {
    *ok = false;
    std::printf("error: %s\n", outcome.status().ToString().c_str());
    return true;
  }
  PrintOutcome(*outcome, rtt.ElapsedSeconds());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 4242;
  std::vector<std::string> one_shots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--host" && has_value) {
      host = argv[++i];
    } else if (arg == "--port" && has_value) {
      port = std::atoi(argv[++i]);
    } else if (arg == "-e" && has_value) {
      one_shots.push_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  Result<SciborqClient> client = SciborqClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect %s:%d failed: %s\n", host.c_str(), port,
                 client.status().ToString().c_str());
    return 1;
  }
  Cli cli{&*client, {}};

  if (!one_shots.empty()) {
    for (const std::string& statement : one_shots) {
      bool ok = true;
      const bool keep_going = HandleLine(&cli, statement, &ok);
      if (!ok) return 1;
      if (!keep_going) break;  // \q ends the batch, like it ends the REPL
    }
    return 0;
  }

  std::printf("connected to %s:%d — \\tables, \\describe TABLE, \\use TABLE, "
              "\\prepare SQL, \\exec ID PARAM..., \\close ID, "
              "\\checkpoint [TABLE], \\drop TABLE, \\stats [PREFIX], \\slow, "
              "\\ping, \\q; anything else is SQL\n",
              host.c_str(), port);
  std::string line;
  for (;;) {
    std::printf("sciborq> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    bool ok = true;
    if (!HandleLine(&cli, line, &ok)) break;
  }
  return 0;
}
