#include "skyserver/functions.h"

namespace sciborq {

PredicatePtr FGetNearbyObjEq(double ra, double dec, double radius_deg) {
  return Cone("ra", "dec", ra, dec, radius_deg);
}

AggregateQuery NearbyGalaxiesQuery(double ra, double dec, double radius_deg) {
  AggregateQuery q;
  q.aggregates.push_back(AggregateSpec{AggKind::kCount, ""});
  q.aggregates.push_back(AggregateSpec{AggKind::kAvg, "redshift"});
  q.filter = And(Eq("obj_class", Value("GALAXY")),
                 FGetNearbyObjEq(ra, dec, radius_deg));
  return q;
}

}  // namespace sciborq
