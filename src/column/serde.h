#ifndef SCIBORQ_COLUMN_SERDE_H_
#define SCIBORQ_COLUMN_SERDE_H_

#include "column/schema.h"
#include "column/table.h"
#include "column/value.h"
#include "util/binio.h"
#include "util/result.h"

namespace sciborq {

// ---------------------------------------------------------------------------
// Binary serialization of the column-layer types, shared by the wire
// protocol (server/wire.h keeps its byte format by delegating here) and the
// on-disk storage formats (storage/snapshot.h, storage/wal.h).
//
// Every decode is hostile-input safe: element counts are validated against
// the bytes that could possibly back them *before* any allocation, and all
// primitive reads are bounds-checked (util/binio.h), so a truncated or
// tampered buffer surfaces as InvalidArgument, never as UB or an OOM.
// ---------------------------------------------------------------------------

/// Rejects a claimed element count that the remaining bytes cannot possibly
/// back (each element needs at least `min_bytes_each` bytes), so hostile
/// counts fail before any allocation. Shared by every storage/wire decoder.
Status CheckDecodeCount(int64_t count, int64_t min_bytes_each,
                        const BinaryReader& r, const char* what);

/// Value: u8 tag (0 null, 1 int64, 2 double, 3 string) + payload.
void EncodeValue(const Value& v, BinaryWriter* w);
Result<Value> DecodeValue(BinaryReader* r);

/// Schema: u32 n + n × (string name | u8 type | bool nullable).
void EncodeSchema(const Schema& schema, BinaryWriter* w);
Result<Schema> DecodeSchema(BinaryReader* r);

/// Column: u8 type | i64 size | bool has_nulls | [validity bytes] | non-null
/// values in row order (int64/double as fixed 8 bytes, strings u32-prefixed).
/// Null slots are materialized back through Column::AppendNull, so a decoded
/// column is value-identical to the source (doubles bit-for-bit).
void EncodeColumn(const Column& col, BinaryWriter* w);
Result<Column> DecodeColumn(BinaryReader* r);

/// Table: schema | i64 rows | one Column per field. Decode cross-checks
/// every column against the schema type and the row count.
void EncodeTable(const Table& table, BinaryWriter* w);
Result<Table> DecodeTable(BinaryReader* r);

// ---------------------------------------------------------------------------
// v2 "encoded page" codecs — the compressed snapshot format. Columns are
// written in kEncodingMorselRows-row chunks, each chunk carrying the payload
// the per-morsel cost model picked (column/encoding/encoding.h): RLE or
// frame-of-reference bit-packing for int64, a dictionary for strings, raw
// values otherwise. Null slots are written with their storage defaults and
// restored through the validity prefix, so a decoded column is
// value-identical to the source (doubles bit-for-bit), exactly like v1.
//
// Layout: u8 type | i64 size | bool has_nulls | [validity bools] |
// u32 chunk count | chunks, where each chunk is u8 encoding tag + payload
// (see serde.cc). Decoding is hostile-input safe on the same terms as v1.
// ---------------------------------------------------------------------------

void EncodeColumnEncoded(const Column& col, BinaryWriter* w);
Result<Column> DecodeColumnEncoded(BinaryReader* r);

void EncodeTableEncoded(const Table& table, BinaryWriter* w);
Result<Table> DecodeTableEncoded(BinaryReader* r);

}  // namespace sciborq

#endif  // SCIBORQ_COLUMN_SERDE_H_
