// Bound-composition math for the coordinator's merge (coord/merge.h):
// COUNT/SUM compose additively, AVG/VAR merge Welford partials so the
// merged answer is bit-for-bit the single-node answer over the concatenated
// data, and the degraded path (missing shards) scales and widens honestly.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "coord/merge.h"
#include "exec/parser.h"
#include "skyserver/catalog.h"

namespace sciborq {
namespace {

TableOptions SmallLayers() {
  TableOptions options;
  options.layers = {{"L0", 4'096}, {"L1", 512}};
  options.seed = 7;
  return options;
}

/// rows [begin, end) of `src` as a standalone batch.
Table Slice(const Table& src, int64_t begin, int64_t end) {
  Table out(src.schema());
  out.Reserve(end - begin);
  for (int64_t r = begin; r < end; ++r) out.AppendRowFrom(src, r);
  return out;
}

/// An engine holding `batch` under table name "sky".
void LoadShard(Engine* engine, const Table& batch) {
  ASSERT_TRUE(engine->CreateTable("sky", batch.schema(), SmallLayers()).ok());
  if (batch.num_rows() > 0) {
    ASSERT_TRUE(engine->IngestBatch("sky", batch).ok());
  }
}

/// Runs `sql` with a mergeable answer requested (the shard side of a
/// coordinator fan-out).
QueryOutcome RunMergeable(Engine* engine, const std::string& sql) {
  BoundedQuery bounded = ParseBoundedQuery(sql).value();
  QueryExecOptions exec;
  exec.mergeable = true;
  return engine->Query(bounded, exec).value();
}

MergeOptions OptionsFor(const std::string& sql, int shards_total) {
  BoundedQuery bounded = ParseBoundedQuery(sql).value();
  MergeOptions options;
  options.aggregates = bounded.query.aggregates;
  options.shards_total = shards_total;
  return options;
}

ShardAnswer Answer(std::string label, QueryOutcome outcome) {
  ShardAnswer answer;
  answer.label = std::move(label);
  answer.outcome = std::move(outcome);
  return answer;
}

/// The full catalog + its two contiguous halves, loaded into three engines.
///
/// 32768 rows: the halves (16384 rows each) line up exactly with the
/// single node's morsel boundaries (kDefaultMorselRows), so the merged
/// Welford fold is the same computation tree as the single-node fold and
/// the answers match bit for bit, not just approximately.
class CoordMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SkyCatalogConfig config;
    config.num_rows = 32'768;
    const Table& full = (catalog_ = GenerateSkyCatalog(config, 11).value())
                            .photo_obj_all;
    const int64_t half = full.num_rows() / 2;
    LoadShard(&single_, full);
    LoadShard(&shard0_, Slice(full, 0, half));
    LoadShard(&shard1_, Slice(full, half, full.num_rows()));
  }

  SkyCatalog catalog_;
  Engine single_;
  Engine shard0_;
  Engine shard1_;
};

// Each shard's slice (4000 rows) folds as one morsel, so the merged Welford
// states are the single-node states and every aggregate — including the
// catastrophic-cancellation-prone VAR — matches bit for bit.
TEST_F(CoordMergeTest, MomentsMergeMatchesSingleNodeBitForBit) {
  const std::string sql =
      "SELECT COUNT(*), SUM(r), AVG(r), VAR(r), MIN(r), MAX(r) "
      "FROM sky EXACT";
  const QueryOutcome expected = RunMergeable(&single_, sql);
  Result<QueryOutcome> merged = MergeShardOutcomes(
      {Answer("shard0", RunMergeable(&shard0_, sql)),
       Answer("shard1", RunMergeable(&shard1_, sql))},
      OptionsFor(sql, 2));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  ASSERT_EQ(expected.rows.size(), merged->rows.size());
  for (size_t i = 0; i < expected.rows[0].values.size(); ++i) {
    const double e = expected.rows[0].values[i];
    const double m = merged->rows[0].values[i];
    EXPECT_EQ(0, std::memcmp(&e, &m, sizeof(double)))
        << "aggregate " << i << ": " << e << " vs " << m;
  }
  EXPECT_TRUE(EquivalentAnswerData(expected, *merged));
  EXPECT_TRUE(merged->exact);
  EXPECT_FALSE(merged->partial);
  EXPECT_EQ(2, merged->shards_responded);
  EXPECT_EQ(2, merged->shards_total);
  // Zero-width intervals on an exact merge.
  for (const auto& row : merged->estimates) {
    for (const AggregateEstimate& est : row) {
      EXPECT_TRUE(est.exact);
      EXPECT_EQ(est.ci_lo, est.estimate);
      EXPECT_EQ(est.ci_hi, est.estimate);
    }
  }
}

// Group keys arrive in different orders from different shards (a shard may
// not even hold every group); the merge aligns them by key value.
TEST_F(CoordMergeTest, GroupByAlignsKeysAcrossShards) {
  const std::string sql =
      "SELECT COUNT(*), AVG(r) FROM sky GROUP BY obj_class EXACT";
  const QueryOutcome expected = RunMergeable(&single_, sql);
  Result<QueryOutcome> merged = MergeShardOutcomes(
      {Answer("shard0", RunMergeable(&shard0_, sql)),
       Answer("shard1", RunMergeable(&shard1_, sql))},
      OptionsFor(sql, 2));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(expected.rows.size(), merged->rows.size());
  // Same groups, same values — order may differ, so match by key.
  for (const QueryResultRow& want : expected.rows) {
    bool found = false;
    for (const QueryResultRow& got : merged->rows) {
      if (!(got.group_key == want.group_key)) continue;
      found = true;
      EXPECT_EQ(want.input_rows, got.input_rows);
      ASSERT_EQ(want.values.size(), got.values.size());
      for (size_t i = 0; i < want.values.size(); ++i) {
        EXPECT_EQ(0, std::memcmp(&want.values[i], &got.values[i],
                                 sizeof(double)))
            << "group " << want.group_key.ToString() << " aggregate " << i;
      }
    }
    EXPECT_TRUE(found) << "missing group " << want.group_key.ToString();
  }
}

// A shard holding zero rows of the table is an identity contribution.
TEST_F(CoordMergeTest, EmptyShardIsIdentity) {
  const std::string sql = "SELECT COUNT(*), SUM(r), AVG(r) FROM sky EXACT";
  Engine empty;
  Table no_rows(catalog_.photo_obj_all.schema());
  LoadShard(&empty, no_rows);

  const QueryOutcome expected = RunMergeable(&single_, sql);
  Result<QueryOutcome> merged = MergeShardOutcomes(
      {Answer("shard0", RunMergeable(&single_, sql)),
       Answer("shard1", RunMergeable(&empty, sql))},
      OptionsFor(sql, 2));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(1u, merged->rows.size());
  for (size_t i = 0; i < expected.rows[0].values.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&expected.rows[0].values[i],
                             &merged->rows[0].values[i], sizeof(double)))
        << "aggregate " << i;
  }
  EXPECT_FALSE(merged->partial);
}

// COUNT and SUM compose additively in estimate mode, with standard errors
// adding in quadrature: se_merged^2 = sum(se_i^2).
TEST(CoordMergeMathTest, CountSumAdditivity) {
  const std::string sql = "SELECT COUNT(*), SUM(r) FROM sky ERROR 5%";
  auto make_shard = [](double count, double sum, double count_se,
                       double sum_se) {
    QueryOutcome o;
    o.table = "sky";
    QueryResultRow row;
    row.group_key = Value::Null();
    row.values = {count, sum};
    row.input_rows = static_cast<int64_t>(count);
    o.rows.push_back(row);
    AggregateEstimate ce;
    ce.estimate = count;
    ce.std_error = count_se;
    ce.ci_lo = count - 2 * count_se;
    ce.ci_hi = count + 2 * count_se;
    ce.sample_rows = static_cast<int64_t>(count) / 10;
    AggregateEstimate se_est = ce;
    se_est.estimate = sum;
    se_est.std_error = sum_se;
    se_est.ci_lo = sum - 2 * sum_se;
    se_est.ci_hi = sum + 2 * sum_se;
    o.estimates.push_back({ce, se_est});
    o.answered_by = "L0";
    o.exact = false;
    o.error_bound_met = true;
    return o;
  };

  Result<QueryOutcome> merged = MergeShardOutcomes(
      {Answer("shard0", make_shard(1000.0, 500.0, 30.0, 40.0)),
       Answer("shard1", make_shard(3000.0, 700.0, 40.0, 30.0))},
      OptionsFor(sql, 2));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  EXPECT_DOUBLE_EQ(4000.0, merged->rows[0].values[0]);
  EXPECT_DOUBLE_EQ(1200.0, merged->rows[0].values[1]);
  // sqrt(30^2 + 40^2) = 50 for both, by construction.
  EXPECT_DOUBLE_EQ(50.0, merged->estimates[0][0].std_error);
  EXPECT_DOUBLE_EQ(50.0, merged->estimates[0][1].std_error);
  EXPECT_FALSE(merged->exact);
  EXPECT_FALSE(merged->partial);
  // The interval brackets the estimate symmetrically.
  EXPECT_LT(merged->estimates[0][0].ci_lo, 4000.0);
  EXPECT_GT(merged->estimates[0][0].ci_hi, 4000.0);
  EXPECT_NEAR(merged->estimates[0][0].ci_hi - 4000.0,
              4000.0 - merged->estimates[0][0].ci_lo, 1e-9);
}

// One responder out of two: the answer survives but is flagged partial,
// COUNT/SUM scale up by total/responded, the error widens to cover the
// missing slice, and nothing claims exactness.
TEST_F(CoordMergeTest, SingleResponderDegrades) {
  const std::string sql = "SELECT COUNT(*), SUM(r) FROM sky EXACT";
  const QueryOutcome half = RunMergeable(&shard0_, sql);
  const double half_count = half.rows[0].values[0];
  const double half_sum = half.rows[0].values[1];

  ShardAnswer dead;
  dead.label = "shard1";
  dead.status = Status::DeadlineExceeded("connect timed out after 2000ms");
  Result<QueryOutcome> merged = MergeShardOutcomes(
      {Answer("shard0", half), dead}, OptionsFor(sql, 2));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  EXPECT_TRUE(merged->partial);
  EXPECT_EQ(1, merged->shards_responded);
  EXPECT_EQ(2, merged->shards_total);
  EXPECT_FALSE(merged->exact);
  EXPECT_FALSE(merged->error_bound_met);
  // COUNT and SUM scale by 2/1 — the merge's estimate of the full table.
  EXPECT_DOUBLE_EQ(2.0 * half_count, merged->rows[0].values[0]);
  EXPECT_DOUBLE_EQ(2.0 * half_sum, merged->rows[0].values[1]);
  // The widened error covers the missing half: se >= |est| * missing_frac.
  const AggregateEstimate& count_est = merged->estimates[0][0];
  EXPECT_GE(count_est.std_error, 0.5 * std::fabs(count_est.estimate) - 1e-9);
  EXPECT_FALSE(count_est.exact);
  EXPECT_LT(count_est.ci_lo, count_est.estimate);
  EXPECT_GT(count_est.ci_hi, count_est.estimate);
  // The dead shard shows up in the escalation trace.
  bool saw_unreachable = false;
  for (const LayerAttempt& attempt : merged->attempts) {
    if (attempt.layer_name.find("shard1/") == 0 &&
        attempt.layer_name.find("unreachable") != std::string::npos) {
      saw_unreachable = true;
      EXPECT_FALSE(attempt.met_error_bound);
      EXPECT_TRUE(std::isinf(attempt.worst_relative_error));
    }
  }
  EXPECT_TRUE(saw_unreachable);
}

// No responder at all is an error, not a fabricated answer.
TEST(CoordMergeMathTest, NoResponderIsAnError) {
  const std::string sql = "SELECT COUNT(*) FROM sky EXACT";
  ShardAnswer dead0;
  dead0.label = "shard0";
  dead0.status = Status::IOError("connection refused");
  ShardAnswer dead1;
  dead1.label = "shard1";
  dead1.status = Status::DeadlineExceeded("recv timed out");
  Result<QueryOutcome> merged =
      MergeShardOutcomes({dead0, dead1}, OptionsFor(sql, 2));
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("0/2"), std::string::npos)
      << merged.status().ToString();
}

// Responders that disagree on result shape indicate a topology bug; the
// merge refuses rather than guessing.
TEST_F(CoordMergeTest, ShapeMismatchRejected) {
  const QueryOutcome two_aggs =
      RunMergeable(&shard0_, "SELECT COUNT(*), AVG(r) FROM sky EXACT");
  const QueryOutcome one_agg =
      RunMergeable(&shard1_, "SELECT COUNT(*) FROM sky EXACT");
  Result<QueryOutcome> merged = MergeShardOutcomes(
      {Answer("shard0", two_aggs), Answer("shard1", one_agg)},
      OptionsFor("SELECT COUNT(*), AVG(r) FROM sky EXACT", 2));
  EXPECT_FALSE(merged.ok());
}

// Catalog merge: rows sum, shard counts tally, names sort.
TEST(CoordMergeMathTest, TableInfosMerge) {
  TableInfo a0;
  a0.name = "sky";
  a0.rows = 4000;
  TableInfo a1;
  a1.name = "sky";
  a1.rows = 4000;
  TableInfo b;
  b.name = "aux";
  b.rows = 10;
  const std::vector<TableInfo> merged = MergeTableInfos({{a0}, {a1, b}});
  ASSERT_EQ(2u, merged.size());
  EXPECT_EQ("aux", merged[0].name);
  EXPECT_EQ(1, merged[0].shards);
  EXPECT_EQ("sky", merged[1].name);
  EXPECT_EQ(8000, merged[1].rows);
  EXPECT_EQ(2, merged[1].shards);
}

}  // namespace
}  // namespace sciborq
