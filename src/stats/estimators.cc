#include "stats/estimators.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace sciborq {

double NormalQuantile(double p) {
  // Acklam's rational approximation to the inverse normal CDF.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double AggregateEstimate::RelativeError() const {
  if (exact) return 0.0;
  const double half_width = 0.5 * (ci_hi - ci_lo);
  if (half_width <= 0.0) return 0.0;
  if (estimate == 0.0) return std::numeric_limits<double>::infinity();
  return half_width / std::abs(estimate);
}

std::string AggregateEstimate::ToString() const {
  if (exact) {
    return StrFormat("%.6g (exact, %lld rows)", estimate,
                     static_cast<long long>(sample_rows));
  }
  return StrFormat("%.6g  [%0.6g, %0.6g] @%.0f%%  (rel_err=%.4f, n=%lld)",
                   estimate, ci_lo, ci_hi, confidence * 100.0, RelativeError(),
                   static_cast<long long>(sample_rows));
}

double FinitePopulationCorrection(int64_t sample_n, int64_t population_n) {
  if (population_n <= 1 || sample_n >= population_n) {
    return sample_n >= population_n ? 0.0 : 1.0;
  }
  return std::sqrt(static_cast<double>(population_n - sample_n) /
                   static_cast<double>(population_n - 1));
}

namespace {

/// Mean and (sample) variance in one pass (Welford).
void MeanVar(const std::vector<double>& values, double* mean, double* var) {
  double m = 0.0;
  double m2 = 0.0;
  int64_t k = 0;
  for (const double v : values) {
    ++k;
    const double d = v - m;
    m += d / static_cast<double>(k);
    m2 += d * (v - m);
  }
  *mean = m;
  *var = k > 1 ? m2 / static_cast<double>(k - 1) : 0.0;
}

AggregateEstimate MakeEstimate(double est, double std_error, double confidence,
                               int64_t sample_rows) {
  AggregateEstimate out;
  out.estimate = est;
  out.std_error = std_error;
  out.confidence = confidence;
  out.sample_rows = sample_rows;
  const double z = NormalQuantile(0.5 + confidence / 2.0);
  out.ci_lo = est - z * std_error;
  out.ci_hi = est + z * std_error;
  return out;
}

Status ValidateConfidence(double confidence) {
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  return Status::OK();
}

}  // namespace

Result<AggregateEstimate> EstimateMeanUniform(const std::vector<double>& values,
                                              int64_t population_n,
                                              double confidence) {
  SCIBORQ_RETURN_NOT_OK(ValidateConfidence(confidence));
  if (values.empty()) {
    return Status::InvalidArgument("cannot estimate a mean from 0 sample rows");
  }
  const auto n = static_cast<int64_t>(values.size());
  double mean = 0.0;
  double var = 0.0;
  MeanVar(values, &mean, &var);
  const double fpc = FinitePopulationCorrection(n, population_n);
  const double se = std::sqrt(var / static_cast<double>(n)) * fpc;
  AggregateEstimate out = MakeEstimate(mean, se, confidence, n);
  out.exact = population_n > 0 && n >= population_n;
  return out;
}

Result<AggregateEstimate> EstimateSumUniform(const std::vector<double>& values,
                                             int64_t population_n,
                                             double confidence) {
  SCIBORQ_ASSIGN_OR_RETURN(AggregateEstimate mean_est,
                           EstimateMeanUniform(values, population_n, confidence));
  const auto scale = static_cast<double>(population_n);
  AggregateEstimate out = mean_est;
  out.estimate *= scale;
  out.std_error *= scale;
  out.ci_lo *= scale;
  out.ci_hi *= scale;
  return out;
}

Result<AggregateEstimate> EstimateCountUniform(int64_t matching,
                                               int64_t sample_n,
                                               int64_t population_n,
                                               double confidence) {
  SCIBORQ_RETURN_NOT_OK(ValidateConfidence(confidence));
  if (sample_n <= 0) {
    return Status::InvalidArgument("cannot estimate a count from 0 sample rows");
  }
  if (matching < 0 || matching > sample_n) {
    return Status::InvalidArgument("matching count outside [0, sample_n]");
  }
  const double p = static_cast<double>(matching) / static_cast<double>(sample_n);
  const auto population = static_cast<double>(population_n);
  const double fpc = FinitePopulationCorrection(sample_n, population_n);
  const double se_p =
      std::sqrt(p * (1.0 - p) / static_cast<double>(sample_n)) * fpc;
  AggregateEstimate out =
      MakeEstimate(p * population, se_p * population, confidence, sample_n);
  out.ci_lo = std::max(0.0, out.ci_lo);
  out.ci_hi = std::min(population, out.ci_hi);
  out.exact = sample_n >= population_n;
  return out;
}

namespace {

Status ValidateHtInputs(const std::vector<double>& values,
                        const std::vector<double>& inclusion_probs) {
  if (values.size() != inclusion_probs.size()) {
    return Status::InvalidArgument(
        "values and inclusion probabilities differ in length");
  }
  for (const double pi : inclusion_probs) {
    if (!(pi > 0.0) || pi > 1.0 || !std::isfinite(pi)) {
      return Status::InvalidArgument(
          "inclusion probabilities must be in (0, 1]");
    }
  }
  return Status::OK();
}

}  // namespace

Result<AggregateEstimate> EstimateSumHorvitzThompson(
    const std::vector<double>& values,
    const std::vector<double>& inclusion_probs, double confidence) {
  SCIBORQ_RETURN_NOT_OK(ValidateConfidence(confidence));
  SCIBORQ_RETURN_NOT_OK(ValidateHtInputs(values, inclusion_probs));
  double ht_sum = 0.0;
  double var = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double expanded = values[i] / inclusion_probs[i];
    ht_sum += expanded;
    var += (1.0 - inclusion_probs[i]) * expanded * expanded;
  }
  return MakeEstimate(ht_sum, std::sqrt(var), confidence,
                      static_cast<int64_t>(values.size()));
}

Result<AggregateEstimate> EstimateMeanHorvitzThompson(
    const std::vector<double>& values,
    const std::vector<double>& inclusion_probs, double confidence) {
  SCIBORQ_RETURN_NOT_OK(ValidateConfidence(confidence));
  SCIBORQ_RETURN_NOT_OK(ValidateHtInputs(values, inclusion_probs));
  if (values.empty()) {
    return Status::InvalidArgument("cannot estimate a mean from 0 sample rows");
  }
  double ht_sum = 0.0;
  double ht_count = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    ht_sum += values[i] / inclusion_probs[i];
    ht_count += 1.0 / inclusion_probs[i];
  }
  const double ratio = ht_sum / ht_count;
  // Linearized (Taylor) variance of the Hájek ratio estimator:
  // Var ≈ (1/N̂²) Σ (1 − π_i) ((y_i − ratio) / π_i)².
  double var = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double resid = (values[i] - ratio) / inclusion_probs[i];
    var += (1.0 - inclusion_probs[i]) * resid * resid;
  }
  var /= ht_count * ht_count;
  return MakeEstimate(ratio, std::sqrt(var), confidence,
                      static_cast<int64_t>(values.size()));
}

Result<AggregateEstimate> EstimateCountHorvitzThompson(
    const std::vector<double>& inclusion_probs, double confidence) {
  const std::vector<double> ones(inclusion_probs.size(), 1.0);
  return EstimateSumHorvitzThompson(ones, inclusion_probs, confidence);
}

}  // namespace sciborq
