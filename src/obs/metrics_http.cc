#include "obs/metrics_http.h"

#include <string>

#include "util/string_util.h"

namespace sciborq {
namespace obs {

namespace {

/// Parses "GET /path ..." out of a raw request head; empty on anything else.
std::string RequestPath(std::string_view head) {
  if (head.substr(0, 4) != "GET ") return "";
  head.remove_prefix(4);
  const size_t end = head.find_first_of(" \r\n");
  if (end == std::string_view::npos) return "";
  return std::string(head.substr(0, end));
}

std::string HttpResponse(int code, std::string_view reason,
                         std::string_view content_type,
                         std::string_view body) {
  std::string out = StrFormat(
      "HTTP/1.1 %d %.*s\r\n"
      "Content-Type: %.*s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      code, static_cast<int>(reason.size()), reason.data(),
      static_cast<int>(content_type.size()), content_type.data(), body.size());
  out.append(body.data(), body.size());
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(Registry* registry, int port)
    : registry_(registry), requested_port_(port) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start() {
  if (started_.load()) {
    return Status::FailedPrecondition("metrics server already started");
  }
  auto listener = TcpListener::Bind(requested_port_);
  if (!listener.ok()) return listener.status();
  listener_.emplace(std::move(listener).value());
  port_ = listener_->port();
  started_.store(true);
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!started_.load() || stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.reset();
  started_.store(false);
}

void MetricsHttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    auto conn = listener_->Accept();
    if (!conn.ok()) {
      if (stopping_.load()) return;
      continue;
    }
    // Scrapes are rare and cheap; handling inline keeps the server one
    // thread. A stalled scraper can't wedge us forever: 2s receive budget.
    HandleConnection(std::move(conn).value());
  }
}

void MetricsHttpServer::HandleConnection(TcpConn conn) {
  (void)conn.SetRecvTimeout(2000);
  std::string head;
  char buf[1024];
  // Read until the end of the request head; the request body (none for GET)
  // is irrelevant, so stop at the blank line or a sane size cap.
  while (head.find("\r\n\r\n") == std::string::npos && head.size() < 8192) {
    auto n = conn.RecvSome(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) break;
    head.append(buf, static_cast<size_t>(n.value()));
  }
  if (head.empty()) return;
  const std::string path = RequestPath(head);
  std::string response;
  if (path == "/metrics") {
    response = HttpResponse(200, "OK",
                            "text/plain; version=0.0.4; charset=utf-8",
                            registry_->RenderPrometheus());
  } else {
    response = HttpResponse(404, "Not Found", "text/plain",
                            "only /metrics lives here\n");
  }
  (void)conn.SendRaw(response);
  conn.Shutdown();
}

}  // namespace obs
}  // namespace sciborq
