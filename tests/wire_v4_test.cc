// Version gating of the v4 (observability) wire codec: v1-v3 encodings must
// stay byte-identical to older builds no matter what trace fields an outcome
// carries, v4 encodings must round-trip the query id and phase spans
// bit-exactly, and the kStats/kSlowLog payload codecs must survive hostile
// counts and truncation at every byte offset.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "server/wire.h"

namespace sciborq {
namespace {

std::string EncodedOutcome(const QueryOutcome& outcome, uint8_t version) {
  WireWriter w;
  EncodeOutcome(outcome, &w, version);
  return w.Take();
}

QueryOutcome MakeTracedOutcome() {
  QueryOutcome outcome;
  outcome.table = "sky";
  outcome.sql = "SELECT COUNT(*) FROM sky ERROR 5%";
  QueryResultRow row;
  row.group_key = Value::Null();
  row.values = {512.0};
  row.input_rows = 64;
  outcome.rows.push_back(row);
  AggregateEstimate est;
  est.estimate = 512.0;
  est.ci_lo = 500.0;
  est.ci_hi = 524.0;
  est.sample_rows = 64;
  outcome.estimates.push_back({est});
  outcome.answered_by = "l1";
  outcome.error_bound_met = true;
  outcome.elapsed_seconds = 0.0042;
  LayerAttempt attempt;
  attempt.layer_name = "l1";
  attempt.met_error_bound = true;
  outcome.attempts.push_back(attempt);
  // The trace fields under test.
  outcome.query_id = "qc-17";
  outcome.spans = {{"parse", 0.0, 0.0001},
                   {"plan", 0.0001, 0.0002},
                   {"shard0/execute", 0.0005, 0.0031}};
  return outcome;
}

std::vector<obs::StatSample> MakeSamples() {
  return {{"sciborq_queries_total", "{instance=\"server-1\"}", 42.0},
          {"sciborq_query_seconds_bucket",
           "{instance=\"server-1\",le=\"0.001\"}", 17.0},
          {"sciborq_recovery_warnings", "", 0.0}};
}

std::vector<obs::SlowQueryEntry> MakeSlowEntries() {
  obs::SlowQueryEntry e;
  e.query_id = "q-9";
  e.table = "sky";
  e.sql = "SELECT AVG(r) FROM sky WITHIN 1 MS ERROR 0.001%";
  e.asked_max_ms = 1.0;
  e.asked_max_error = 0.00001;
  e.asked_confidence = 0.95;
  e.asked_exact = false;
  e.error_bound_met = false;
  e.deadline_exceeded = true;
  e.elapsed_seconds = 0.00112;
  e.answered_by = "l0";
  e.trace = "attempt l0: ...\nspan parse: start=0.000ms dur=0.010ms";
  obs::SlowQueryEntry e2;
  e2.query_id = "qc-3";
  e2.sql = "SELECT COUNT(*) FROM sky EXACT";
  e2.asked_exact = true;
  e2.error_bound_met = true;
  return {e, e2};
}

TEST(WireV4Test, V1ThroughV3EncodingsIgnoreTraceFields) {
  QueryOutcome with = MakeTracedOutcome();
  QueryOutcome without = MakeTracedOutcome();
  without.query_id.clear();
  without.spans.clear();
  // A v1/v2/v3 peer must receive the exact bytes an older build would have
  // produced, whatever trace state the outcome carries.
  EXPECT_EQ(EncodedOutcome(with, kWireVersionV1),
            EncodedOutcome(without, kWireVersionV1));
  EXPECT_EQ(EncodedOutcome(with, kWireVersionV2),
            EncodedOutcome(without, kWireVersionV2));
  EXPECT_EQ(EncodedOutcome(with, kWireVersionV3),
            EncodedOutcome(without, kWireVersionV3));
  // And the v4 encodings differ (the fields really travel).
  EXPECT_NE(EncodedOutcome(with, kWireVersionV4),
            EncodedOutcome(without, kWireVersionV4));
}

TEST(WireV4Test, V4OutcomeRoundTripsTraceFields) {
  const QueryOutcome outcome = MakeTracedOutcome();
  const std::string bytes = EncodedOutcome(outcome, kWireVersionV4);
  WireReader r(bytes);
  Result<QueryOutcome> decoded = DecodeOutcome(&r, kWireVersionV4);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ("qc-17", decoded->query_id);
  ASSERT_EQ(3u, decoded->spans.size());
  EXPECT_EQ("parse", decoded->spans[0].name);
  EXPECT_EQ("shard0/execute", decoded->spans[2].name);
  EXPECT_EQ(outcome.spans[2].start_seconds, decoded->spans[2].start_seconds);
  EXPECT_EQ(outcome.spans[2].duration_seconds,
            decoded->spans[2].duration_seconds);
  // Bijective at v4 too.
  EXPECT_EQ(bytes, EncodedOutcome(*decoded, kWireVersionV4));
}

TEST(WireV4Test, V3DecodeLeavesTraceDefaults) {
  const QueryOutcome outcome = MakeTracedOutcome();
  const std::string bytes = EncodedOutcome(outcome, kWireVersionV3);
  WireReader r(bytes);
  Result<QueryOutcome> decoded = DecodeOutcome(&r, kWireVersionV3);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_TRUE(decoded->query_id.empty());
  EXPECT_TRUE(decoded->spans.empty());
}

TEST(WireV4Test, StatSamplesRoundTrip) {
  const std::vector<obs::StatSample> samples = MakeSamples();
  WireWriter w;
  EncodeStatSamples(samples, &w);
  const std::string bytes = w.Take();
  WireReader r(bytes);
  Result<std::vector<obs::StatSample>> decoded = DecodeStatSamples(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  ASSERT_EQ(samples.size(), decoded->size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].name, (*decoded)[i].name);
    EXPECT_EQ(samples[i].labels, (*decoded)[i].labels);
    EXPECT_EQ(samples[i].value, (*decoded)[i].value);
  }
  // Bijective.
  WireWriter again;
  EncodeStatSamples(*decoded, &again);
  EXPECT_EQ(bytes, again.Take());
}

TEST(WireV4Test, SlowQueriesRoundTrip) {
  const std::vector<obs::SlowQueryEntry> entries = MakeSlowEntries();
  WireWriter w;
  EncodeSlowQueries(entries, &w);
  const std::string bytes = w.Take();
  WireReader r(bytes);
  Result<std::vector<obs::SlowQueryEntry>> decoded = DecodeSlowQueries(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  ASSERT_EQ(entries.size(), decoded->size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].query_id, (*decoded)[i].query_id);
    EXPECT_EQ(entries[i].table, (*decoded)[i].table);
    EXPECT_EQ(entries[i].sql, (*decoded)[i].sql);
    EXPECT_EQ(entries[i].asked_max_ms, (*decoded)[i].asked_max_ms);
    EXPECT_EQ(entries[i].asked_max_error, (*decoded)[i].asked_max_error);
    EXPECT_EQ(entries[i].asked_confidence, (*decoded)[i].asked_confidence);
    EXPECT_EQ(entries[i].asked_exact, (*decoded)[i].asked_exact);
    EXPECT_EQ(entries[i].error_bound_met, (*decoded)[i].error_bound_met);
    EXPECT_EQ(entries[i].deadline_exceeded, (*decoded)[i].deadline_exceeded);
    EXPECT_EQ(entries[i].elapsed_seconds, (*decoded)[i].elapsed_seconds);
    EXPECT_EQ(entries[i].answered_by, (*decoded)[i].answered_by);
    EXPECT_EQ(entries[i].trace, (*decoded)[i].trace);
  }
  // Bijective.
  WireWriter again;
  EncodeSlowQueries(*decoded, &again);
  EXPECT_EQ(bytes, again.Take());
}

TEST(WireV4Test, HostileStatCountRejected) {
  // A count claiming more samples than the buffer could possibly back must
  // fail before allocating.
  WireWriter w;
  w.PutU32(0x7fffffff);
  WireReader r(w.buffer());
  Result<std::vector<obs::StatSample>> decoded = DecodeStatSamples(&r);
  EXPECT_FALSE(decoded.ok());

  WireWriter w2;
  w2.PutU32(0x7fffffff);
  WireReader r2(w2.buffer());
  Result<std::vector<obs::SlowQueryEntry>> slow = DecodeSlowQueries(&r2);
  EXPECT_FALSE(slow.ok());
}

TEST(WireV4Test, TruncationFuzzNeverCrashes) {
  // Every strict prefix of a valid payload must decode to a clean error (or,
  // for a lucky prefix, a shorter valid parse) — never a crash or over-read.
  {
    WireWriter w;
    EncodeStatSamples(MakeSamples(), &w);
    const std::string bytes = w.Take();
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      WireReader r(std::string_view(bytes).substr(0, cut));
      Result<std::vector<obs::StatSample>> decoded = DecodeStatSamples(&r);
      if (decoded.ok()) {
        EXPECT_TRUE(r.remaining() >= 0);
      }
    }
  }
  {
    WireWriter w;
    EncodeSlowQueries(MakeSlowEntries(), &w);
    const std::string bytes = w.Take();
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      WireReader r(std::string_view(bytes).substr(0, cut));
      Result<std::vector<obs::SlowQueryEntry>> decoded = DecodeSlowQueries(&r);
      if (decoded.ok()) {
        EXPECT_TRUE(r.remaining() >= 0);
      }
    }
  }
  {
    const std::string bytes =
        EncodedOutcome(MakeTracedOutcome(), kWireVersionV4);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      WireReader r(std::string_view(bytes).substr(0, cut));
      Result<QueryOutcome> decoded = DecodeOutcome(&r, kWireVersionV4);
      if (decoded.ok()) {
        EXPECT_TRUE(r.remaining() >= 0);
      }
    }
  }
  SUCCEED();
}

TEST(WireV4Test, V4OpcodesRejectOlderVersionStamps) {
  // kStats/kSlowLog are v4 opcodes: a frame stamping them v3 is a protocol
  // error.
  EXPECT_FALSE(
      DecodeRequest(EncodeRequest(Opcode::kStats, "", kWireVersionV3)).ok());
  EXPECT_FALSE(
      DecodeRequest(EncodeRequest(Opcode::kSlowLog, "", kWireVersionV3)).ok());

  // Stamped with their own version they decode fine.
  Result<RequestFrame> stats = DecodeRequest(EncodeRequest(Opcode::kStats, ""));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(Opcode::kStats, stats->opcode);
  EXPECT_EQ(kWireVersionV4, stats->version);

  Result<RequestFrame> slow = DecodeRequest(EncodeRequest(Opcode::kSlowLog, ""));
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  EXPECT_EQ(Opcode::kSlowLog, slow->opcode);
  EXPECT_EQ(kWireVersionV4, slow->version);
}

TEST(WireV4Test, V4QueryStampTravelsThrough) {
  // A v4-stamped kQuery (sql + flags + query id) keeps its version byte so
  // the server knows to read the trailing query id and answer in v4.
  WireWriter w;
  w.PutString("SELECT COUNT(*) FROM sky");
  w.PutU8(0x1);
  w.PutString("qc-99");
  Result<RequestFrame> req =
      DecodeRequest(EncodeRequest(Opcode::kQuery, w.buffer(), kWireVersionV4));
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(kWireVersionV4, req->version);
  WireReader payload(req->payload);
  Result<std::string> sql = payload.ReadString();
  ASSERT_TRUE(sql.ok());
  Result<uint8_t> flags = payload.ReadU8();
  ASSERT_TRUE(flags.ok());
  Result<std::string> query_id = payload.ReadString();
  ASSERT_TRUE(query_id.ok());
  EXPECT_EQ("qc-99", *query_id);
  EXPECT_TRUE(payload.ExpectEnd().ok());
}

}  // namespace
}  // namespace sciborq
