#include "storage/table_store.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <set>
#include <utility>

#include "column/serde.h"
#include "storage/file_io.h"
#include "util/string_util.h"

namespace sciborq {

namespace {

constexpr uint8_t kRecordCreateTable = 1;
constexpr uint8_t kRecordIngestBatch = 2;

constexpr char kSnapshotSuffix[] = ".snapshot";
constexpr char kWalSuffix[] = ".wal";

}  // namespace

Status TableStore::ValidateTableName(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (name == "." || name == "..") {
    return Status::InvalidArgument("table name must not be '.' or '..'");
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) {
      return Status::InvalidArgument(StrFormat(
          "table name '%s' cannot be persisted: names become file names and "
          "may only contain [A-Za-z0-9_.-]",
          name.c_str()));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<TableStore>> TableStore::Open(std::string db_dir) {
  if (db_dir.empty()) {
    return Status::InvalidArgument("db directory path must be non-empty");
  }
  std::error_code ec;
  std::filesystem::create_directories(db_dir, ec);
  if (ec) {
    return Status::IOError(StrFormat("cannot create db directory %s: %s",
                                     db_dir.c_str(), ec.message().c_str()));
  }
  // A checkpoint interrupted before its rename leaves a *.tmp sibling; it
  // was never the live snapshot, so it is safe to discard.
  for (const auto& entry : std::filesystem::directory_iterator(db_dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tmp") {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  return std::unique_ptr<TableStore>(new TableStore(std::move(db_dir)));
}

std::string TableStore::SnapshotPath(const std::string& table) const {
  return dir_ + "/" + table + kSnapshotSuffix;
}

std::string TableStore::WalPath(const std::string& table) const {
  return dir_ + "/" + table + kWalSuffix;
}

Result<std::vector<RecoveredTable>> TableStore::Recover() {
  // Discover table names from both file kinds (a snapshot can outlive its
  // WAL and vice versa).
  std::set<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == kSnapshotSuffix || ext == kWalSuffix) {
      names.insert(entry.path().stem().string());
    }
  }
  if (ec) {
    return Status::IOError(StrFormat("cannot scan db directory %s: %s",
                                     dir_.c_str(), ec.message().c_str()));
  }

  std::vector<RecoveredTable> out;
  for (const std::string& name : names) {
    SCIBORQ_RETURN_NOT_OK(ValidateTableName(name));
    RecoveredTable recovered;
    recovered.name = name;
    int64_t last_seq = 0;
    const std::string snapshot_path = SnapshotPath(name);
    if (PathExists(snapshot_path)) {
      SCIBORQ_ASSIGN_OR_RETURN(TableSnapshot snap,
                               ReadTableSnapshot(snapshot_path));
      if (snap.table != name) {
        return Status::InvalidArgument(StrFormat(
            "snapshot %s claims to hold table '%s'", snapshot_path.c_str(),
            snap.table.c_str()));
      }
      last_seq = snap.last_seq;
      recovered.snapshot = std::move(snap);
    }

    const std::string wal_path = WalPath(name);
    std::unique_ptr<WalWriter> wal;
    if (PathExists(wal_path)) {
      SCIBORQ_ASSIGN_OR_RETURN(const WalScanResult scan, ScanWal(wal_path));
      if (!recovered.snapshot && scan.records.empty()) {
        // A WAL with no snapshot behind it and no complete record: a crash
        // interrupted the very first CreateTable before its create record
        // became durable. Nothing was ever acknowledged, so drop the stray
        // file instead of refusing the whole boot.
        ::unlink(wal_path.c_str());
        continue;
      }
      recovered.wal_tail_dropped = scan.torn_tail;
      recovered.wal_tail_error = scan.tail_error;
      for (const std::string& payload : scan.records) {
        Result<WalRecord> record = DecodeWalRecord(payload);
        if (!record.ok()) {
          return Status::InvalidArgument(
              StrFormat("wal %s: %s", wal_path.c_str(),
                        record.status().message().c_str()));
        }
        if (record->type == WalRecord::Type::kCreateTable) {
          recovered.created_schema = std::move(record->schema);
          recovered.created_config = std::move(record->config);
        } else if (record->seq > last_seq) {
          // seq <= last_seq means the batch is already folded into the
          // snapshot (a crash between snapshot rename and WAL reset).
          recovered.batches.push_back(
              PendingBatch{record->seq, std::move(*record->batch)});
        }
      }
      // Reopen for appending; this also truncates the torn tail on disk.
      SCIBORQ_ASSIGN_OR_RETURN(WalWriter writer,
                               WalWriter::OpenExisting(wal_path,
                                                       scan.valid_bytes));
      wal = std::make_unique<WalWriter>(std::move(writer));
    } else {
      SCIBORQ_ASSIGN_OR_RETURN(WalWriter writer, WalWriter::Create(wal_path));
      wal = std::make_unique<WalWriter>(std::move(writer));
    }

    if (!recovered.snapshot && !recovered.created_schema) {
      return Status::InvalidArgument(StrFormat(
          "table '%s' has neither a snapshot nor a create-table WAL record — "
          "the db directory is damaged",
          name.c_str()));
    }
    std::sort(recovered.batches.begin(), recovered.batches.end(),
              [](const PendingBatch& a, const PendingBatch& b) {
                return a.seq < b.seq;
              });
    {
      MutexLock lock(&mu_);
      wals_[name] = std::move(wal);
    }
    out.push_back(std::move(recovered));
  }
  return out;
}

Result<WalWriter*> TableStore::FindWal(const std::string& name) {
  MutexLock lock(&mu_);
  const auto it = wals_.find(name);
  if (it == wals_.end()) {
    return Status::NotFound(
        StrFormat("no WAL open for table '%s'", name.c_str()));
  }
  return it->second.get();
}

Status TableStore::LogCreate(const std::string& name, const Schema& schema,
                             const PersistedTableConfig& config) {
  SCIBORQ_RETURN_NOT_OK(ValidateTableName(name));
  SCIBORQ_ASSIGN_OR_RETURN(WalWriter wal, WalWriter::Create(WalPath(name)));
  SCIBORQ_RETURN_NOT_OK(wal.Append(EncodeCreateRecord(schema, config)));
  MutexLock lock(&mu_);
  wals_[name] = std::make_unique<WalWriter>(std::move(wal));
  return Status::OK();
}

Result<int64_t> TableStore::LogBatch(const std::string& name,
                                     const Table& batch, int64_t seq) {
  SCIBORQ_ASSIGN_OR_RETURN(WalWriter * wal, FindWal(name));
  const int64_t offset_before = wal->size_bytes();
  SCIBORQ_RETURN_NOT_OK(wal->Append(EncodeBatchRecord(seq, batch)));
  return offset_before;
}

Status TableStore::UnlogBatch(const std::string& name, int64_t offset_before) {
  SCIBORQ_ASSIGN_OR_RETURN(WalWriter * wal, FindWal(name));
  return wal->TruncateTo(offset_before);
}

void TableStore::DropWal(const std::string& name) {
  {
    MutexLock lock(&mu_);
    wals_.erase(name);  // closes the fd
  }
  ::unlink(WalPath(name).c_str());
}

Status TableStore::WriteCheckpoint(const TableSnapshot& snap) {
  SCIBORQ_ASSIGN_OR_RETURN(WalWriter * wal, FindWal(snap.table));
  SCIBORQ_RETURN_NOT_OK(WriteTableSnapshot(snap, SnapshotPath(snap.table)));
  // The snapshot is durable; dropping the covered batches is now safe. A
  // crash before this reset is handled by recovery's seq comparison.
  return wal->Reset();
}

// -- WAL record codecs ------------------------------------------------------

std::string EncodeCreateRecord(const Schema& schema,
                               const PersistedTableConfig& config) {
  BinaryWriter w;
  w.PutU8(kRecordCreateTable);
  w.PutI64(0);
  EncodeSchema(schema, &w);
  EncodePersistedConfig(config, &w);
  return std::move(w).Take();
}

std::string EncodeBatchRecord(int64_t seq, const Table& batch) {
  BinaryWriter w;
  w.PutU8(kRecordIngestBatch);
  w.PutI64(seq);
  EncodeTable(batch, &w);
  return std::move(w).Take();
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  BinaryReader r(payload);
  WalRecord record;
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t type, r.ReadU8());
  SCIBORQ_ASSIGN_OR_RETURN(record.seq, r.ReadI64());
  switch (type) {
    case kRecordCreateTable: {
      record.type = WalRecord::Type::kCreateTable;
      SCIBORQ_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(&r));
      record.schema = std::move(schema);
      SCIBORQ_ASSIGN_OR_RETURN(PersistedTableConfig config,
                               DecodePersistedConfig(&r));
      record.config = std::move(config);
      break;
    }
    case kRecordIngestBatch: {
      record.type = WalRecord::Type::kIngestBatch;
      if (record.seq <= 0) {
        return Status::InvalidArgument(StrFormat(
            "ingest record carries non-positive sequence %lld",
            static_cast<long long>(record.seq)));
      }
      SCIBORQ_ASSIGN_OR_RETURN(Table batch, DecodeTable(&r));
      record.batch = std::move(batch);
      break;
    }
    default:
      return Status::InvalidArgument(
          StrFormat("unknown WAL record type %u", type));
  }
  SCIBORQ_RETURN_NOT_OK(r.ExpectEnd());
  return record;
}

}  // namespace sciborq
