#ifndef SCIBORQ_WORKLOAD_QUERY_LOG_H_
#define SCIBORQ_WORKLOAD_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "exec/query.h"
#include "util/result.h"

namespace sciborq {

/// One executed query with its position in the workload and the bounds it
/// ran under. The SkyServer query logs the paper mines are modeled by this
/// in-process log.
struct LoggedQuery {
  int64_t sequence = 0;
  AggregateQuery query;
  QueryBounds bounds;  ///< default-constructed when recorded without bounds

  /// The replayable SQL text: query + bounds clause. ParseBoundedQuery(Sql())
  /// reproduces both (round-trip tested in tests/engine_test.cc).
  std::string Sql() const;
};

/// A bounded in-memory log of executed queries. The window size bounds both
/// memory and how far back the "interest" definition reaches — the paper
/// defines the predicate set "over a period of time or over a predefined
/// number of queries" (§4); the window is that predefined number.
///
/// Not internally synchronized: the log carries no mutex of its own. Every
/// instance is a guarded member of its owner (Engine::TableEntry::log is
/// GUARDED_BY(workload_mu)), so the thread-safety analysis enforces the
/// protocol at the owner's access sites.
class QueryLog {
 public:
  /// window_size <= 0 means unbounded.
  explicit QueryLog(int64_t window_size = 0) : window_size_(window_size) {}

  /// Records a deep copy of the query.
  void Record(const AggregateQuery& query);

  /// Records a deep copy of the query together with its bounds clause, so
  /// the log replays with the original contract.
  void Record(const BoundedQuery& query);

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  int64_t total_recorded() const { return next_sequence_; }
  const std::deque<LoggedQuery>& entries() const { return entries_; }

  /// The predicate set of one attribute: every value of `column` requested by
  /// any predicate of any logged query, in log order. (§4: "the set of all
  /// values of the interesting attributes that are requested".)
  std::vector<double> PredicateSet(const std::string& column) const;

  /// Attribute names that appear in at least one predicate, sorted.
  std::vector<std::string> PredicateColumns() const;

  void Clear();

  /// Replaces the log's contents with recovered entries (persistent
  /// storage). Entries keep their original sequence numbers;
  /// `total_recorded` continues the global counter. Entries beyond the
  /// window are trimmed oldest-first, exactly as Record would have.
  void RestoreState(int64_t total_recorded, std::deque<LoggedQuery> entries);

 private:
  int64_t window_size_;
  int64_t next_sequence_ = 0;
  std::deque<LoggedQuery> entries_;
};

}  // namespace sciborq

#endif  // SCIBORQ_WORKLOAD_QUERY_LOG_H_
