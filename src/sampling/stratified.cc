#include "sampling/stratified.h"

namespace sciborq {

Result<StratifiedSampler> StratifiedSampler::Make(int64_t capacity,
                                                  int max_strata,
                                                  uint64_t seed) {
  if (max_strata < 1) {
    return Status::InvalidArgument("need at least one stratum");
  }
  if (capacity < max_strata) {
    return Status::InvalidArgument("capacity must cover one row per stratum");
  }
  return StratifiedSampler(capacity / max_strata, max_strata, seed);
}

ReservoirDecision StratifiedSampler::Offer(int64_t stratum) {
  ++seen_;
  int64_t key = stratum % max_strata_;
  if (key < 0) key += max_strata_;
  auto it = strata_.find(key);
  if (it == strata_.end()) {
    if (static_cast<int>(strata_.size()) >= max_strata_) {
      // All stratum indices taken; fold into the densest existing bucket.
      it = strata_.begin();
    } else {
      const int index = static_cast<int>(strata_.size());
      auto sampler = ReservoirSampler::Make(
          per_stratum_, seed_ ^ (0x9E3779B97F4A7C15ULL * (key + 1)));
      it = strata_
               .emplace(key, std::make_pair(index, std::move(sampler).value()))
               .first;
    }
  }
  const ReservoirDecision local = it->second.second.Offer();
  if (!local.accepted) return local;
  return ReservoirDecision{
      true, static_cast<int64_t>(it->second.first) * per_stratum_ + local.slot};
}

double StratifiedSampler::InclusionProbability(int64_t stratum) const {
  int64_t key = stratum % max_strata_;
  if (key < 0) key += max_strata_;
  const auto it = strata_.find(key);
  if (it == strata_.end()) return 1.0;
  return it->second.second.InclusionProbability();
}

}  // namespace sciborq
