#ifndef SCIBORQ_UTIL_STATUS_H_
#define SCIBORQ_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace sciborq {

/// Error categories used across the library. Modeled after the Arrow/RocksDB
/// convention: the library never throws; fallible operations return a Status
/// (or a Result<T>, see util/result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kDeadlineExceeded,
  kQualityBoundExceeded,  ///< error bound not met even at the base data
  kNotImplemented,
  kIOError,
  kInternal,
  kDataLoss,  ///< stored data is unreadable (unknown format, corruption)
};

/// Returns the canonical name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. The OK status carries no
/// allocation; error statuses carry a code and a human-readable message.
///
/// [[nodiscard]] at the class level: a dropped Status is a swallowed error,
/// so every compiler (not just Clang) rejects call sites that ignore one.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status QualityBoundExceeded(std::string msg) {
    return Status(StatusCode::kQualityBoundExceeded, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsQualityBoundExceeded() const {
    return code_ == StatusCode::kQualityBoundExceeded;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

}  // namespace sciborq

#endif  // SCIBORQ_UTIL_STATUS_H_
