// Version gating of the v6 wire additions: the kDropTable opcode and the
// optional kCreateTable retention block. The block must round-trip bit-exactly
// at v6, stay invisible in pre-v6 encodings (byte-identical to older builds),
// and decode hostile or truncated buffers to clean errors — plus one e2e pass
// driving a windowed table entirely over the wire.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "client/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "workload/telemetry.h"

namespace sciborq {
namespace {

RetentionPolicy WindowPolicy() {
  RetentionPolicy policy;
  policy.time_column = "ts";
  policy.bucket_width = 1'000;
  policy.window_buckets = 10;
  policy.checkpoint_on_evict = false;
  policy.last_seen_capacity = 512;
  policy.last_seen_expected_ingest = 8'192;
  return policy;
}

std::string EncodedPolicy(const RetentionPolicy& policy) {
  WireWriter w;
  EncodeRetentionPolicy(policy, &w);
  return w.Take();
}

TEST(WireV6Test, RetentionPolicyRoundTrips) {
  const RetentionPolicy policy = WindowPolicy();
  const std::string bytes = EncodedPolicy(policy);
  WireReader r(bytes);
  Result<RetentionPolicy> decoded = DecodeRetentionPolicy(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_TRUE(*decoded == policy);
  // Bijective.
  EXPECT_EQ(EncodedPolicy(*decoded), bytes);
}

TEST(WireV6Test, DisabledPolicyIsASingleZeroByte) {
  const std::string bytes = EncodedPolicy(RetentionPolicy());
  EXPECT_EQ(bytes, std::string(1, '\0'));
  WireReader r(bytes);
  Result<RetentionPolicy> decoded = DecodeRetentionPolicy(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->enabled());
}

TEST(WireV6Test, HostilePolicyFieldsRejected) {
  // Flag set but empty time_column.
  {
    WireWriter w;
    w.PutBool(true);
    w.PutString("");
    w.PutI64(1'000);
    w.PutI64(10);
    w.PutBool(true);
    w.PutI64(512);
    w.PutI64(8'192);
    WireReader r(w.buffer());
    EXPECT_FALSE(DecodeRetentionPolicy(&r).ok());
  }
  // Non-positive geometry and capacities.
  const auto rejects = [](int64_t width, int64_t window, int64_t capacity,
                          int64_t expected) {
    WireWriter w;
    w.PutBool(true);
    w.PutString("ts");
    w.PutI64(width);
    w.PutI64(window);
    w.PutBool(true);
    w.PutI64(capacity);
    w.PutI64(expected);
    WireReader r(w.buffer());
    return !DecodeRetentionPolicy(&r).ok();
  };
  EXPECT_TRUE(rejects(0, 10, 512, 8'192));
  EXPECT_TRUE(rejects(-5, 10, 512, 8'192));
  EXPECT_TRUE(rejects(1'000, 0, 512, 8'192));
  EXPECT_TRUE(rejects(1'000, 10, 0, 8'192));
  EXPECT_TRUE(rejects(1'000, 10, 512, -1));
  EXPECT_FALSE(rejects(1'000, 10, 512, 0));  // 0 = "use the default D"
}

TEST(WireV6Test, TruncationFuzzNeverCrashes) {
  const std::string bytes = EncodedPolicy(WindowPolicy());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WireReader r(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(DecodeRetentionPolicy(&r).ok()) << "cut " << cut;
  }
}

TEST(WireV6Test, DropTableRequiresV6) {
  const Result<RequestFrame> v6 =
      DecodeRequest(EncodeRequest(Opcode::kDropTable, "t"));
  ASSERT_TRUE(v6.ok()) << v6.status().ToString();
  EXPECT_EQ(v6->opcode, Opcode::kDropTable);
  EXPECT_EQ(v6->version, kWireVersionV6);
  // An older stamp cannot name the new opcode.
  EXPECT_FALSE(
      DecodeRequest(EncodeRequest(Opcode::kDropTable, "t", kWireVersionV5))
          .ok());
  // And pre-v6 stamps on pre-v6 opcodes still decode (no regression).
  EXPECT_TRUE(
      DecodeRequest(EncodeRequest(Opcode::kQuery, "q", kWireVersionV5)).ok());
}

TEST(WireV6Test, CreateTablePayloadWithoutRetentionIsPreV6Bytes) {
  // The v6 retention block is strictly additive: a v6 create for a plain
  // table is the pre-v6 payload plus exactly one has_retention=0 byte.
  const Schema schema = TelemetryGenerator::TableSchema();
  WireWriter pre_v6;
  pre_v6.PutString("t");
  EncodeSchema(schema, &pre_v6);
  pre_v6.PutU64(42);
  WireWriter v6;
  v6.PutString("t");
  EncodeSchema(schema, &v6);
  v6.PutU64(42);
  EncodeRetentionPolicy(RetentionPolicy(), &v6);
  EXPECT_EQ(v6.buffer(), pre_v6.buffer() + std::string(1, '\0'));
}

TEST(WireV6Test, WindowedTableLifecycleOverTheWire) {
  Engine engine;
  SciborqServer server(&engine);
  ASSERT_TRUE(server.Start().ok());
  SciborqClient client =
      SciborqClient::Connect("127.0.0.1", server.port()).value();

  RetentionPolicy policy = WindowPolicy();
  policy.bucket_width = 100;
  policy.window_buckets = 3;
  ASSERT_TRUE(client
                  .CreateTable("telemetry", TelemetryGenerator::TableSchema(),
                               policy, /*seed=*/7)
                  .ok());

  Table batch(TelemetryGenerator::TableSchema());
  batch.AppendNumericRow({1, 50, 1.5});    // bucket 0 — about to age out
  batch.AppendNumericRow({2, 120, 2.5});
  batch.AppendNumericRow({1, 380, 3.5});   // advances the window past 0
  EXPECT_EQ(client.Ingest("telemetry", batch).value(), 3);

  const QueryOutcome exact =
      client.Query("SELECT LAST(value) FROM telemetry BY station_id EXACT")
          .value();
  ASSERT_EQ(exact.rows.size(), 2u);
  EXPECT_EQ(exact.rows[0].values[0], 3.5);
  EXPECT_EQ(exact.rows[1].values[0], 2.5);
  const QueryOutcome count =
      client.Query("SELECT COUNT(*) FROM telemetry EXACT").value();
  EXPECT_EQ(count.rows[0].values[0], 2.0);  // the bucket-0 row was evicted

  const QueryOutcome bounded =
      client
          .Query(
              "SELECT LAST(value) FROM telemetry BY station_id WITHIN 50 MS")
          .value();
  EXPECT_EQ(bounded.answered_by, "last-seen");
  EXPECT_FALSE(bounded.exact);

  ASSERT_TRUE(client.DropTable("telemetry").ok());
  const Result<QueryOutcome> gone =
      client.Query("SELECT COUNT(*) FROM telemetry EXACT");
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client.DropTable("telemetry").code(), StatusCode::kNotFound);
  server.Stop();
}

}  // namespace
}  // namespace sciborq
