#ifndef SCIBORQ_SAMPLING_BIASED_RESERVOIR_H_
#define SCIBORQ_SAMPLING_BIASED_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "sampling/decision.h"
#include "util/result.h"
#include "util/rng.h"

namespace sciborq {

/// The paper's biased-sampling reservoir (Figure 6, §4). Each arriving tuple
/// t carries a workload weight — the binned density estimate f̆(t) times the
/// predicate-set size N — and is accepted with probability
///     P(accept t) = f̆(t) · N · n / cnt
/// (clamped to 1), where n is the impression capacity and cnt the number of
/// tuples seen. Tuples from frequently queried regions therefore displace
/// irrelevant ones, concentrating the reservoir around the focal points.
///
/// Like Fig. 3, the printed Fig. 6 re-uses the acceptance draw as the victim
/// slot (smp[floor(rnd*n)]), which — because rnd is conditioned small for
/// low-weight tuples — skews placement. `paper_faithful` reproduces that
/// verbatim; the default draws an independent uniform victim, matching the
/// text ("another randomly chosen one is thrown out").
///
/// For estimation the sampler tracks (a) the running total of offered weight
/// and (b) an *acceptance curve* — cumulative post-fill acceptances sampled
/// at fixed offer intervals. The curve lets callers reconstruct a first-order
/// retention probability for a row that arrived at stream position t with
/// weight w:
///     π ≈ P(accept at t) · P(survive to the end)
///       = min(1, n·w/t) · exp(-(A(T) - A(t)) / n)
/// where A(·) is cumulative acceptances (each acceptance evicts a uniformly
/// random resident, so survival decays by (1 - 1/n) per acceptance). For
/// unit weights this collapses to the exact Algorithm-R inclusion n/T.
/// This model backs the Horvitz–Thompson estimators in stats/estimators.h.
class BiasedReservoirSampler {
 public:
  /// InvalidArgument when capacity <= 0.
  static Result<BiasedReservoirSampler> Make(int64_t capacity, uint64_t seed,
                                             bool paper_faithful = false);

  /// Decides about the next stream tuple whose workload weight is `weight`
  /// (= f̆(t)·N >= 0). Negative/NaN weights are treated as 0 (never sampled
  /// once the reservoir is full).
  ReservoirDecision Offer(double weight);

  int64_t capacity() const { return capacity_; }
  int64_t seen() const { return seen_; }
  int64_t size() const { return seen_ < capacity_ ? seen_ : capacity_; }
  bool full() const { return seen_ >= capacity_; }

  /// Total weight offered so far (Σ_j w_j).
  double total_weight() const { return total_weight_; }

  /// Approximate first-order inclusion probability of a tuple with weight w
  /// under the weights seen so far (the coarse Σw surrogate; the retention
  /// model below is sharper when arrival positions are known).
  double InclusionProbability(double weight) const;

  /// Post-fill acceptances so far (A(T) in the retention model).
  int64_t accepted_post_fill() const { return accepted_post_fill_; }
  /// Cumulative post-fill acceptances recorded every curve_interval() offers:
  /// curve()[k] = acceptances within the first (k+1)·interval offers.
  const std::vector<int64_t>& acceptance_curve() const { return curve_; }
  int64_t curve_interval() const { return curve_interval_; }

  /// Resumable sampler state (persistent storage): stream position, weight
  /// accounting, the acceptance curve, and the RNG.
  struct State {
    int64_t seen = 0;
    double total_weight = 0.0;
    int64_t accepted_post_fill = 0;
    int64_t curve_interval = 0;
    std::vector<int64_t> curve;
    Rng::State rng;
  };
  State SaveState() const;
  static Result<BiasedReservoirSampler> Restore(int64_t capacity,
                                                bool paper_faithful,
                                                State state);

 private:
  BiasedReservoirSampler(int64_t capacity, uint64_t seed, bool paper_faithful)
      : capacity_(capacity), paper_faithful_(paper_faithful), rng_(seed) {}

  int64_t capacity_;
  bool paper_faithful_;
  int64_t seen_ = 0;
  double total_weight_ = 0.0;
  int64_t accepted_post_fill_ = 0;
  int64_t curve_interval_ = 4096;
  std::vector<int64_t> curve_;
  Rng rng_;
};

}  // namespace sciborq

#endif  // SCIBORQ_SAMPLING_BIASED_RESERVOIR_H_
