#ifndef SCIBORQ_SKYSERVER_CATALOG_H_
#define SCIBORQ_SKYSERVER_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "column/table.h"
#include "util/result.h"
#include "util/rng.h"

namespace sciborq {

/// A synthetic stand-in for the SDSS SkyServer warehouse (§2.1). The paper's
/// experiments need (a) a PhotoObjAll-shaped fact table whose spatial
/// distribution is non-uniform and differs from where the workload looks,
/// and (b) dimension tables reachable by foreign keys. The generator
/// reproduces both at laptop scale, fully seeded.
///
/// PhotoObjAll schema:
///   objid:int64, field_id:int64, ra:double, dec:double,
///   u,g,r,i,z:double (magnitudes), redshift:double, obj_class:string
///   {GALAXY, STAR, QSO}
struct SkyCatalogConfig {
  int64_t num_rows = 600'000;  ///< the paper's Fig. 7 base is >600k tuples
  double ra_min = 120.0;
  double ra_max = 240.0;
  double dec_min = 0.0;
  double dec_max = 60.0;
  /// Galactic structure: dense clusters over a uniform background.
  int num_clusters = 24;
  double cluster_sd = 4.0;
  double background_fraction = 0.35;
  /// Dimension sizing: sky fields (images) of roughly uniform footprint.
  int fields_per_axis = 16;
  /// Magnitude/redshift model parameters.
  double redshift_mean = 0.12;
  double redshift_sd = 0.08;
};

/// The generated warehouse: the fact table plus its dimensions.
struct SkyCatalog {
  Table photo_obj_all;
  Table field;      ///< field_id:int64, ra_center:double, dec_center:double,
                    ///< seeing:double, airmass:double
  Table photo_tag;  ///< obj_class:string, description:string

  /// Convenience: an astronomer's Galaxy view — PhotoObjAll restricted to
  /// obj_class = 'GALAXY' (§2.1: "Table Galaxy is a view of PhotoObjAll").
  Result<Table> GalaxyView() const;
};

/// Generates the synthetic warehouse. Deterministic for a given seed.
Result<SkyCatalog> GenerateSkyCatalog(const SkyCatalogConfig& config,
                                      uint64_t seed);

/// Generates only the fact table rows in `count` batches, invoking `sink`
/// after each batch — the incremental daily-ingest shape of §3.3 that
/// impression builders consume. Batches share the clustered sky model.
class SkyStream {
 public:
  SkyStream(const SkyCatalogConfig& config, uint64_t seed);

  /// Next batch of `batch_rows` fact rows (schema identical to PhotoObjAll).
  Table NextBatch(int64_t batch_rows);

  const Schema& schema() const { return schema_; }
  int64_t produced() const { return produced_; }

 private:
  void AppendRow(Table* table);

  SkyCatalogConfig config_;
  Rng rng_;
  Schema schema_;
  std::vector<double> cluster_ra_;
  std::vector<double> cluster_dec_;
  int64_t produced_ = 0;
};

/// The PhotoObjAll schema shared by generator and tests.
Schema PhotoObjSchema();

}  // namespace sciborq

#endif  // SCIBORQ_SKYSERVER_CATALOG_H_
