#include "column/schema.h"

#include "util/string_util.h"

namespace sciborq {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

Result<int> Schema::FieldIndex(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound(StrFormat("no field named '%s'", name.c_str()));
  }
  return it->second;
}

bool Schema::HasField(const std::string& name) const {
  return index_.count(name) > 0;
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Field> projected;
  projected.reserve(names.size());
  for (const auto& name : names) {
    SCIBORQ_ASSIGN_OR_RETURN(int idx, FieldIndex(name));
    projected.push_back(fields_[static_cast<size_t>(idx)]);
  }
  return Schema(std::move(projected));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const auto& f : fields_) {
    parts.push_back(StrFormat("%s:%s", f.name.c_str(),
                              std::string(DataTypeToString(f.type)).c_str()));
  }
  return Join(parts, ", ");
}

bool Schema::Equals(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace sciborq
