#ifndef SCIBORQ_STATS_DESCRIPTIVE_H_
#define SCIBORQ_STATS_DESCRIPTIVE_H_

#include <cstdint>
#include <vector>

namespace sciborq {

/// Single-pass mean/variance accumulator (Welford). Mergeable, so parallel
/// load shards can combine their statistics.
class RunningMoments {
 public:
  void Add(double value);
  void Merge(const RunningMoments& other);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 values.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Raw sum of squared deviations (the Welford M2 partial). Exposed so the
  /// state can travel between processes and Merge on the far side exactly as
  /// it would have in-process — reconstructing M2 from variance() is not
  /// bit-exact.
  double m2() const { return m2_; }

  /// Rebuilds an accumulator from transported state (the wire decode path).
  /// Merging a FromState copy behaves identically to merging the original.
  static RunningMoments FromState(int64_t count, double mean, double m2,
                                  double min, double max);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolation quantile of already-sorted data; q in [0, 1].
/// Precondition: `sorted` non-empty and ascending.
double QuantileSorted(const std::vector<double>& sorted, double q);

/// Bins `data` into `num_bins` equi-width counts over [lo, hi); out-of-range
/// values are clamped into the edge bins. The raw material of Figure 7.
std::vector<int64_t> BinCounts(const std::vector<double>& data, double lo,
                               double hi, int num_bins);

/// Mean absolute / root-mean-square difference between two equal-length
/// series (used to compare f̂ and f̆ curves for Figure 4).
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);
double L2Distance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace sciborq

#endif  // SCIBORQ_STATS_DESCRIPTIVE_H_
