// End-to-end tests for the distributed coordinator: real shard servers on
// ephemeral loopback ports, a SciborqCoordinator fanning out over them, and
// the failure paths — a dead shard, a silent shard — that must degrade the
// answer instead of failing or hanging it.

#include "coord/coordinator.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "client/client.h"
#include "coord/shard_map.h"
#include "server/server.h"
#include "server/socket.h"
#include "skyserver/catalog.h"

namespace sciborq {
namespace {

TableOptions SmallLayers() {
  TableOptions options;
  options.layers = {{"l0", 2'048}, {"l1", 256}};
  options.seed = 7;
  return options;
}

/// Accepts connections and reads frames but never answers — the "hung
/// shard" the deadline machinery exists for.
class SilentShard {
 public:
  SilentShard() {
    listener_.emplace(TcpListener::Bind(0).value());
    thread_ = std::thread([this] {
      while (true) {
        Result<TcpConn> conn = listener_->Accept();
        if (!conn.ok()) return;  // listener shut down
        conns_.push_back(
            std::make_unique<TcpConn>(std::move(conn).value()));
      }
    });
  }

  ~SilentShard() {
    listener_->Shutdown();
    thread_.join();
    listener_->Close();
  }

  int port() const { return listener_->port(); }

 private:
  std::optional<TcpListener> listener_;
  std::thread thread_;
  // Held open, never serviced.
  std::vector<std::unique_ptr<TcpConn>> conns_;
};

/// Two empty shard servers plus a single-node reference engine holding the
/// same catalog the coordinator will distribute.
class CoordTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SkyCatalogConfig config;
    config.num_rows = 32'768;
    catalog_ = GenerateSkyCatalog(config, 11).value();

    ServerOptions server_options;
    server_options.port = 0;
    for (int s = 0; s < 2; ++s) {
      shard_engines_[s] = std::make_unique<Engine>();
      shard_servers_[s] = std::make_unique<SciborqServer>(
          shard_engines_[s].get(), server_options);
      ASSERT_TRUE(shard_servers_[s]->Start().ok());
    }

    ASSERT_TRUE(reference_
                    .CreateTable("photo_obj_all",
                                 catalog_.photo_obj_all.schema(),
                                 SmallLayers())
                    .ok());
    ASSERT_TRUE(
        reference_.IngestBatch("photo_obj_all", catalog_.photo_obj_all).ok());
  }

  void TearDown() override {
    for (auto& server : shard_servers_) {
      if (server) server->Stop();
    }
  }

  ShardMap BothShards() const {
    ShardMap map;
    map.SetDefaultShards({{"127.0.0.1", shard_servers_[0]->port()},
                          {"127.0.0.1", shard_servers_[1]->port()}});
    return map;
  }

  /// Loads the first half of the catalog straight into shard 0's engine —
  /// the fixture for failure-path tests where the coordinator's own ingest
  /// routing would (correctly) refuse to run against a broken topology.
  void LoadHalfIntoShard0() {
    const Table& full = catalog_.photo_obj_all;
    Table half(full.schema());
    const int64_t n = full.num_rows() / 2;
    half.Reserve(n);
    for (int64_t r = 0; r < n; ++r) half.AppendRowFrom(full, r);
    ASSERT_TRUE(shard_engines_[0]
                    ->CreateTable("photo_obj_all", full.schema(),
                                  SmallLayers())
                    .ok());
    ASSERT_TRUE(shard_engines_[0]->IngestBatch("photo_obj_all", half).ok());
  }

  /// Creates + distributes the catalog through the coordinator itself.
  void Distribute(SciborqCoordinator* coordinator) {
    ASSERT_TRUE(coordinator
                    ->CreateTable("photo_obj_all",
                                  catalog_.photo_obj_all.schema(), 42)
                    .ok());
    Result<int64_t> rows =
        coordinator->IngestBatch("photo_obj_all", catalog_.photo_obj_all);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(32'768, *rows);
  }

  SkyCatalog catalog_;
  Engine reference_;
  std::unique_ptr<Engine> shard_engines_[2];
  std::unique_ptr<SciborqServer> shard_servers_[2];
};

TEST_F(CoordTest, IngestRoutesContiguousSlices) {
  SciborqCoordinator coordinator(BothShards());
  Distribute(&coordinator);

  // Rows split evenly across the two shards...
  EXPECT_EQ(16'384, shard_engines_[0]->TableRows("photo_obj_all").value());
  EXPECT_EQ(16'384, shard_engines_[1]->TableRows("photo_obj_all").value());

  // ...and the merged catalog reports the union.
  Result<std::vector<TableInfo>> tables = coordinator.ListTables();
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(1u, tables->size());
  EXPECT_EQ("photo_obj_all", (*tables)[0].name);
  EXPECT_EQ(32'768, (*tables)[0].rows);
  EXPECT_EQ(2, (*tables)[0].shards);
}

TEST_F(CoordTest, MergedExactAnswerEqualsSingleNode) {
  SciborqCoordinator coordinator(BothShards());
  Distribute(&coordinator);

  const std::string sql =
      "SELECT COUNT(*), SUM(r), AVG(r), VAR(r), MIN(r), MAX(r) "
      "FROM photo_obj_all EXACT";
  Result<QueryOutcome> merged = coordinator.Query(sql);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  Result<QueryOutcome> local = reference_.Query(sql);
  ASSERT_TRUE(local.ok());

  EXPECT_TRUE(EquivalentAnswerData(*merged, *local))
      << "merged: " << merged->ToString()
      << "\nlocal: " << local->ToString();
  // Bit-for-bit: each shard's 16384-row slice is exactly one morsel, so the
  // coordinator's Welford merge is the single node's own fold tree.
  ASSERT_EQ(1u, merged->rows.size());
  for (size_t i = 0; i < local->rows[0].values.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&local->rows[0].values[i],
                             &merged->rows[0].values[i], sizeof(double)))
        << "aggregate " << i;
  }
  EXPECT_TRUE(merged->exact);
  EXPECT_FALSE(merged->partial);
  EXPECT_EQ(2, merged->shards_responded);
  EXPECT_EQ(2, merged->shards_total);
  // Per-shard attempts in the trace.
  bool saw0 = false, saw1 = false;
  for (const LayerAttempt& attempt : merged->attempts) {
    if (attempt.layer_name.rfind("shard0/", 0) == 0) saw0 = true;
    if (attempt.layer_name.rfind("shard1/", 0) == 0) saw1 = true;
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
}

TEST_F(CoordTest, WireFaceServesUnmodifiedClients) {
  CoordinatorOptions options;
  options.port = 0;
  SciborqCoordinator coordinator(BothShards(), options);
  Distribute(&coordinator);
  ASSERT_TRUE(coordinator.Start().ok());

  Result<SciborqClient> client =
      SciborqClient::Connect("127.0.0.1", coordinator.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());

  // Catalog over the wire carries the shard count.
  Result<std::vector<TableInfo>> tables = client->ListTables();
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(1u, tables->size());
  EXPECT_EQ(2, (*tables)[0].shards);

  // Session defaults work like a single node's.
  ASSERT_TRUE(client->Use("photo_obj_all").ok());
  Result<QueryOutcome> remote = client->Query("SELECT COUNT(*) EXACT");
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(32'768.0, remote->rows[0].values[0]);
  EXPECT_EQ(2, remote->shards_total);

  // Unknown default table is refused with the session's error shape.
  EXPECT_FALSE(client->Use("nope").ok());

  // Prepared statements execute through the fan-out.
  Result<StatementInfo> stmt =
      client->Prepare("SELECT COUNT(*) FROM photo_obj_all WHERE ra > ? EXACT");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  Result<QueryOutcome> executed =
      client->Execute(stmt->handle, {Value(180.0)});
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();
  Result<QueryOutcome> local = reference_.Query(
      "SELECT COUNT(*) FROM photo_obj_all WHERE ra > 180 EXACT");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->rows[0].values[0], executed->rows[0].values[0]);
  EXPECT_TRUE(client->CloseStatement(stmt->handle).ok());

  coordinator.Stop();
}

TEST_F(CoordTest, DeadShardDegradesInsteadOfFailing) {
  // The live shard holds the first half of the data in-process; the other
  // endpoint is port 1 on loopback — connection refused immediately.
  LoadHalfIntoShard0();
  ShardMap map;
  map.SetDefaultShards(
      {{"127.0.0.1", shard_servers_[0]->port()}, {"127.0.0.1", 1}});
  CoordinatorOptions options;
  options.connect_timeout_ms = 500;
  SciborqCoordinator coordinator(std::move(map), options);

  Result<QueryOutcome> merged =
      coordinator.Query("SELECT COUNT(*), SUM(r) FROM photo_obj_all EXACT");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged->partial);
  EXPECT_EQ(1, merged->shards_responded);
  EXPECT_EQ(2, merged->shards_total);
  EXPECT_FALSE(merged->exact);
  EXPECT_FALSE(merged->error_bound_met);
  // COUNT scales to estimate the full population from the live half.
  EXPECT_EQ(32'768.0, merged->rows[0].values[0]);
  // The interval admits the missing slice.
  EXPECT_GT(merged->estimates[0][0].ci_hi, merged->estimates[0][0].ci_lo);
}

TEST_F(CoordTest, SilentShardHitsDeadlineNotHang) {
  LoadHalfIntoShard0();
  SilentShard silent;
  ShardMap map;
  map.SetDefaultShards(
      {{"127.0.0.1", shard_servers_[0]->port()}, {"127.0.0.1", silent.port()}});
  CoordinatorOptions options;
  options.default_shard_timeout_ms = 400;  // unbounded-query deadline
  options.connect_timeout_ms = 500;
  SciborqCoordinator coordinator(std::move(map), options);

  const auto start = std::chrono::steady_clock::now();
  Result<QueryOutcome> merged =
      coordinator.Query("SELECT COUNT(*) FROM photo_obj_all EXACT");
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged->partial);
  EXPECT_EQ(1, merged->shards_responded);
  // Bounded by the shard deadline plus slack, nowhere near a hang.
  EXPECT_LT(wall, 5.0);
}

TEST(ClientDeadlineTest, RecvTimeoutSurfacesAsDeadlineExceeded) {
  SilentShard silent;
  ClientOptions options;
  options.recv_timeout_ms = 200;
  Result<SciborqClient> client =
      SciborqClient::Connect("127.0.0.1", silent.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const Status st = client->Ping();
  EXPECT_EQ(StatusCode::kDeadlineExceeded, st.code()) << st.ToString();
}

TEST_F(CoordTest, StitchedTraceCoversBothShards) {
  SciborqCoordinator coordinator(BothShards());
  Distribute(&coordinator);

  Result<QueryOutcome> merged =
      coordinator.Query("SELECT COUNT(*), AVG(r) FROM photo_obj_all EXACT");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_FALSE(merged->query_id.empty());

  // One stitched trace: the coordinator's own phases plus each shard's
  // spans re-homed under shardN/ prefixes.
  auto has_phase = [&merged](std::string_view name) {
    for (const PhaseSpan& span : merged->spans) {
      if (span.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_phase("plan"));
  EXPECT_TRUE(has_phase("fanout"));
  EXPECT_TRUE(has_phase("merge"));

  double shard_sums[2] = {0.0, 0.0};
  int shard_spans[2] = {0, 0};
  for (const PhaseSpan& span : merged->spans) {
    EXPECT_GE(span.start_seconds, 0.0) << span.name;
    EXPECT_GE(span.duration_seconds, 0.0) << span.name;
    // Every span — coordinator or stitched shard — lives inside the query's
    // reported wall clock (shard spans are offset by the fan-out start, and
    // each shard finished before the merge did).
    EXPECT_LE(span.start_seconds + span.duration_seconds,
              merged->elapsed_seconds + 5e-3)
        << span.name;
    for (int s = 0; s < 2; ++s) {
      const std::string prefix = "shard" + std::to_string(s) + "/";
      if (span.name.rfind(prefix, 0) == 0) {
        ++shard_spans[s];
        shard_sums[s] += span.duration_seconds;
      }
    }
  }
  for (int s = 0; s < 2; ++s) {
    // Both shards contributed spans, and each shard's sequential phase
    // durations sum to no more than the whole distributed query took.
    EXPECT_GT(shard_spans[s], 0) << "shard " << s;
    EXPECT_LE(shard_sums[s], merged->elapsed_seconds + 5e-3) << "shard " << s;
  }
}

TEST_F(CoordTest, QueryIdPropagatesOverTheWire) {
  // The propagation mechanism itself, without the coordinator's budget
  // rewriting: a v4 mergeable query carries an explicit id to the shard
  // server, whose engine records it in the outcome AND — after a
  // deterministic bound miss (1-microsecond budget, near-zero error: the
  // first layer answers, misses, and the blown deadline forbids
  // escalation) — in its slow-query ring.
  LoadHalfIntoShard0();
  Result<SciborqClient> client =
      SciborqClient::Connect("127.0.0.1", shard_servers_[0]->port());
  ASSERT_TRUE(client.ok());
  Result<QueryOutcome> outcome = client->QueryMergeable(
      "SELECT AVG(r) FROM photo_obj_all WITHIN 0.001 MS ERROR 0.0001%",
      "qc-propagated-7");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ("qc-propagated-7", outcome->query_id);
  EXPECT_FALSE(outcome->error_bound_met);

  const std::vector<obs::SlowQueryEntry> slow =
      shard_engines_[0]->SlowQueries();
  ASSERT_FALSE(slow.empty());
  EXPECT_EQ("qc-propagated-7", slow.back().query_id);
}

TEST_F(CoordTest, DegradedAnswerLandsInCoordinatorSlowLog) {
  // A partial answer (one shard dead) must be recorded in the coordinator's
  // own ring under the merged query's id, with the full stitched trace.
  LoadHalfIntoShard0();
  ShardMap map;
  map.SetDefaultShards(
      {{"127.0.0.1", shard_servers_[0]->port()}, {"127.0.0.1", 1}});
  CoordinatorOptions options;
  options.connect_timeout_ms = 500;
  SciborqCoordinator coordinator(std::move(map), options);

  Result<QueryOutcome> merged =
      coordinator.Query("SELECT COUNT(*) FROM photo_obj_all EXACT");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_TRUE(merged->partial);
  ASSERT_FALSE(merged->query_id.empty());

  const std::vector<obs::SlowQueryEntry> slow = coordinator.SlowQueries();
  ASSERT_FALSE(slow.empty());
  const obs::SlowQueryEntry& entry = slow.back();
  EXPECT_EQ(merged->query_id, entry.query_id);
  EXPECT_EQ("photo_obj_all", entry.table);
  EXPECT_TRUE(entry.asked_exact);
  EXPECT_FALSE(entry.trace.empty());
}

TEST(ClientDeadlineTest, ConnectTimeoutDoesNotHang) {
  // RFC 5737 TEST-NET-1 address: on a normal network the packets go
  // nowhere and connect would hang for minutes without the deadline. Some
  // sandboxed environments intercept and accept the connect instead, so
  // the only portable assertion is the timing one: with the deadline set,
  // Connect returns promptly either way.
  ClientOptions options;
  options.connect_timeout_ms = 300;
  const auto start = std::chrono::steady_clock::now();
  Result<SciborqClient> client =
      SciborqClient::Connect("192.0.2.1", 4242, options);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(wall, 5.0);
}

}  // namespace
}  // namespace sciborq
