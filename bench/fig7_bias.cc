// Reproduces Figure 7 of the paper: the distributions of ra and dec in (a)
// the base data (>600k tuples), (b) a 10k-tuple uniform impression, and (c) a
// 10k-tuple biased impression steered by the Figure-4 workload interest. The
// paper's claim: "the impression created with bias contains many more tuples
// from the areas of interest".

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/impression_builder.h"
#include "skyserver/catalog.h"
#include "stats/descriptive.h"
#include "workload/generator.h"

namespace sciborq {
namespace {

std::vector<double> ColumnValues(const Table& table, const std::string& name) {
  const Column* col = table.ColumnByName(name).value();
  std::vector<double> out;
  out.reserve(static_cast<size_t>(col->size()));
  for (int64_t i = 0; i < col->size(); ++i) out.push_back(col->GetDouble(i));
  return out;
}

void PrintRows(const std::string& attr, double lo, double hi, int bins,
               const std::vector<double>& base,
               const std::vector<double>& uniform,
               const std::vector<double>& biased) {
  const auto base_counts = BinCounts(base, lo, hi, bins);
  const auto uni_counts = BinCounts(uniform, lo, hi, bins);
  const auto bias_counts = BinCounts(biased, lo, hi, bins);
  std::printf("\n--- attribute '%s' ---\n", attr.c_str());
  std::printf("%10s %12s %12s %12s\n", "bin_left", "base", "uniform", "biased");
  const double width = (hi - lo) / bins;
  for (int i = 0; i < bins; ++i) {
    std::printf("%10.2f %12lld %12lld %12lld\n", lo + i * width,
                static_cast<long long>(base_counts[static_cast<size_t>(i)]),
                static_cast<long long>(uni_counts[static_cast<size_t>(i)]),
                static_cast<long long>(bias_counts[static_cast<size_t>(i)]));
  }
}

double FocalFraction(const std::vector<double>& values, double center,
                     double halfwidth) {
  int64_t n = 0;
  for (const double v : values) {
    if (std::abs(v - center) <= halfwidth) ++n;
  }
  return values.empty() ? 0.0
                        : static_cast<double>(n) /
                              static_cast<double>(values.size());
}

}  // namespace
}  // namespace sciborq

int main() {
  using namespace sciborq;
  bench::Header("FIG7: base data vs 10k uniform vs 10k biased impression");
  bench::Expectation(
      "uniform histogram ∝ base; biased has large peaks at the focal points "
      "(ra≈150/215, dec≈12/40) — 'many more tuples from the areas of "
      "interest'");

  // The paper's base: >600k tuples.
  SkyCatalogConfig config;
  config.num_rows = 600'000;
  const SkyCatalog catalog = bench::Unwrap(GenerateSkyCatalog(config, 7));

  // Interest from the Figure-4 workload (same predicate set). The paper
  // builds *per-attribute* impressions ("two impressions of 10.000 tuples
  // for each attribute"), so each biased impression is steered by one
  // attribute's f-breve alone.
  InterestTracker ra_tracker = bench::Unwrap(
      InterestTracker::Make({{"ra", 120.0, 3.0, 40}}));
  InterestTracker dec_tracker = bench::Unwrap(
      InterestTracker::Make({{"dec", 0.0, 1.5, 40}}));
  auto gen = bench::Unwrap(
      ConeWorkloadGenerator::Make(PaperFigure4WorkloadConfig(), 4));
  for (int i = 0; i < 400; ++i) {
    const AggregateQuery q = gen.Next();
    ra_tracker.ObserveQuery(q);
    dec_tracker.ObserveQuery(q);
  }

  ImpressionSpec uniform_spec;
  uniform_spec.name = "uniform-10k";
  uniform_spec.capacity = 10'000;
  uniform_spec.seed = 7;
  auto uniform_builder = bench::Unwrap(
      ImpressionBuilder::Make(catalog.photo_obj_all.schema(), uniform_spec));

  ImpressionSpec ra_spec = uniform_spec;
  ra_spec.name = "biased-ra-10k";
  ra_spec.policy = SamplingPolicy::kBiased;
  ra_spec.tracker = &ra_tracker;
  auto ra_builder = bench::Unwrap(
      ImpressionBuilder::Make(catalog.photo_obj_all.schema(), ra_spec));
  ImpressionSpec dec_spec = ra_spec;
  dec_spec.name = "biased-dec-10k";
  dec_spec.tracker = &dec_tracker;
  auto dec_builder = bench::Unwrap(
      ImpressionBuilder::Make(catalog.photo_obj_all.schema(), dec_spec));

  SCIBORQ_CHECK(uniform_builder.IngestBatch(catalog.photo_obj_all).ok());
  SCIBORQ_CHECK(ra_builder.IngestBatch(catalog.photo_obj_all).ok());
  SCIBORQ_CHECK(dec_builder.IngestBatch(catalog.photo_obj_all).ok());

  const auto base_ra = ColumnValues(catalog.photo_obj_all, "ra");
  const auto base_dec = ColumnValues(catalog.photo_obj_all, "dec");
  const auto uni_ra = ColumnValues(uniform_builder.impression().rows(), "ra");
  const auto uni_dec = ColumnValues(uniform_builder.impression().rows(), "dec");
  const auto bias_ra = ColumnValues(ra_builder.impression().rows(), "ra");
  const auto bias_dec = ColumnValues(dec_builder.impression().rows(), "dec");

  PrintRows("ra", 120.0, 240.0, 30, base_ra, uni_ra, bias_ra);
  PrintRows("dec", 0.0, 60.0, 30, base_dec, uni_dec, bias_dec);

  std::printf("\nfocal concentration (fraction of tuples within the window):\n");
  std::printf("%-26s %10s %10s %10s %14s\n", "window", "base", "uniform",
              "biased", "biased/uniform");
  struct Window {
    const char* label;
    const std::vector<double>* base;
    const std::vector<double>* uni;
    const std::vector<double>* bias;
    double center;
    double halfwidth;
  };
  const Window windows[] = {
      {"ra in 150±6", &base_ra, &uni_ra, &bias_ra, 150.0, 6.0},
      {"ra in 215±6", &base_ra, &uni_ra, &bias_ra, 215.0, 6.0},
      {"dec in 12±6", &base_dec, &uni_dec, &bias_dec, 12.0, 6.0},
      {"dec in 40±6", &base_dec, &uni_dec, &bias_dec, 40.0, 6.0},
  };
  std::string gains;
  for (const auto& w : windows) {
    const double fb = FocalFraction(*w.base, w.center, w.halfwidth);
    const double fu = FocalFraction(*w.uni, w.center, w.halfwidth);
    const double fi = FocalFraction(*w.bias, w.center, w.halfwidth);
    const double gain = fu > 0 ? fi / fu : 0.0;
    gains += StrFormat(" %.2fx", gain);
    std::printf("%-26s %10.4f %10.4f %10.4f %14.2f\n", w.label, fb, fu, fi,
                gain);
  }
  bench::Measured(StrFormat(
      "focal-window gains biased/uniform:%s (ordered as printed; gains track "
      "each focus's share of the workload interest, as Fig. 6 prescribes)",
      gains.c_str()));
  return 0;
}
