// CLAIM-ERR (§1, §3.1, §3.2): "the larger the impression, the longer the
// processing time and the smaller the error bounds", and biased impressions
// give tighter errors *on focal queries* at equal size — with the documented
// downside off-focus. Sweeps impression size for both policies and reports
// observed relative error and CI width for focal and anti-focal aggregates.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/bounded_executor.h"
#include "core/impression_builder.h"
#include "skyserver/catalog.h"
#include "skyserver/functions.h"

namespace sciborq {
namespace {

struct Row {
  int64_t size;
  double uni_focal_err, uni_focal_ci;
  double bias_focal_err, bias_focal_ci;
  double uni_far_err, bias_far_err;
};

double RelErrOrNan(const Result<BoundedAnswer>& ans, double truth) {
  if (!ans.ok() || ans.value().rows.empty()) return -1.0;
  return std::abs(ans.value().rows[0].values[0] - truth) / truth;
}
double CiWidthRel(const Result<BoundedAnswer>& ans, double truth) {
  if (!ans.ok() || ans.value().estimates.empty()) return -1.0;
  const auto& est = ans.value().estimates[0][0];
  return (est.ci_hi - est.ci_lo) / (2.0 * truth);
}

}  // namespace
}  // namespace sciborq

int main() {
  using namespace sciborq;
  bench::Header("CLAIM-ERR: relative error vs impression size");
  bench::Expectation(
      "error shrinks ~1/sqrt(size) for both policies; biased < uniform on "
      "focal queries; uniform <= biased far from focus");

  SkyCatalogConfig config;
  config.num_rows = 400'000;
  const SkyCatalog catalog = bench::Unwrap(GenerateSkyCatalog(config, 11));

  InterestTracker tracker = bench::MakeRaDecTracker();
  auto gen =
      bench::Unwrap(ConeWorkloadGenerator::Make(bench::FocusedWorkload(), 11));
  for (int i = 0; i < 400; ++i) tracker.ObserveQuery(gen.Next());

  AggregateQuery focal;
  focal.aggregates = {{AggKind::kCount, ""}};
  focal.filter = FGetNearbyObjEq(150.0, 12.0, 3.0);
  AggregateQuery far;
  far.aggregates = {{AggKind::kCount, ""}};
  far.filter = FGetNearbyObjEq(185.0, 55.0, 5.0);

  const double focal_truth =
      RunExact(catalog.photo_obj_all, focal).value()[0].values[0];
  const double far_truth =
      RunExact(catalog.photo_obj_all, far).value()[0].values[0];
  std::printf("focal cone truth: %.0f rows; anti-focal cone truth: %.0f rows "
              "(of %lld)\n",
              focal_truth, far_truth,
              static_cast<long long>(config.num_rows));

  std::printf("%9s | %11s %11s %11s %11s | %11s %11s\n", "size",
              "uni_foc_err", "uni_foc_ci", "bia_foc_err", "bia_foc_ci",
              "uni_far_err", "bia_far_err");
  for (const int64_t size : {1'000, 3'000, 10'000, 30'000, 100'000}) {
    ImpressionSpec uni;
    uni.capacity = size;
    uni.seed = 100 + static_cast<uint64_t>(size);
    auto ub = bench::Unwrap(
        ImpressionBuilder::Make(catalog.photo_obj_all.schema(), uni));
    ImpressionSpec bia = uni;
    bia.policy = SamplingPolicy::kBiased;
    bia.tracker = &tracker;
    auto bb = bench::Unwrap(
        ImpressionBuilder::Make(catalog.photo_obj_all.schema(), bia));
    SCIBORQ_CHECK(ub.IngestBatch(catalog.photo_obj_all).ok());
    SCIBORQ_CHECK(bb.IngestBatch(catalog.photo_obj_all).ok());

    const auto uf = EstimateOnImpression(ub.impression(), focal, 0.95);
    const auto bf = EstimateOnImpression(bb.impression(), focal, 0.95);
    const auto ur = EstimateOnImpression(ub.impression(), far, 0.95);
    const auto br = EstimateOnImpression(bb.impression(), far, 0.95);
    std::printf("%9lld | %11.4f %11.4f %11.4f %11.4f | %11.4f %11.4f\n",
                static_cast<long long>(size), RelErrOrNan(uf, focal_truth),
                CiWidthRel(uf, focal_truth), RelErrOrNan(bf, focal_truth),
                CiWidthRel(bf, focal_truth), RelErrOrNan(ur, far_truth),
                RelErrOrNan(br, far_truth));
  }
  bench::Measured(
      "columns above: errors fall with size; bia_foc_* < uni_foc_* at every "
      "size; uni_far_err <= bia_far_err (negative value = estimator failed "
      "for lack of matching rows)");
  return 0;
}
