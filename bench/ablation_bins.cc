// ABL-BINS (§4 design choice): f̆ replaces the O(N) f̂ with an O(β) sum over
// bin statistics, with bandwidth pinned to the bin width. Sweeps β and
// reports (a) the L1 distance between f̆ and f̂ — accuracy — and (b) the
// per-evaluation latency of both — the constant-time claim.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/kde.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "workload/generator.h"
#include "workload/query_log.h"

int main() {
  using namespace sciborq;
  bench::Header("ABL-BINS: binned-KDE accuracy and cost vs bin count beta");
  bench::Expectation(
      "f_breve eval time ~constant in N and linear in beta, orders of "
      "magnitude below f_hat's O(N); accuracy improves up to beta ≈ 32-64 "
      "then saturates");

  // Large predicate set so the O(N) cost of f̂ is visible.
  auto gen = bench::Unwrap(
      ConeWorkloadGenerator::Make(PaperFigure4WorkloadConfig(), 31));
  QueryLog log;
  for (int i = 0; i < 20'000; ++i) log.Record(gen.Next());
  const std::vector<double> values = log.PredicateSet("ra");

  const FullKde f_hat =
      bench::Unwrap(FullKde::Make(values, SilvermanBandwidth(values)));

  // Reference series from f̂ on a fixed grid.
  std::vector<double> grid;
  for (double x = 120.0; x <= 240.0; x += 0.5) grid.push_back(x);
  std::vector<double> hat_series;
  hat_series.reserve(grid.size());
  double peak = 0.0;
  Stopwatch hat_watch;
  for (const double x : grid) {
    hat_series.push_back(f_hat.Evaluate(x));
    peak = std::max(peak, hat_series.back());
  }
  const double hat_ns_per_eval =
      hat_watch.ElapsedSeconds() * 1e9 / static_cast<double>(grid.size());

  std::printf("N=%zu predicate values; f_hat: %.0f ns/eval\n\n", values.size(),
              hat_ns_per_eval);
  std::printf("%6s %14s %14s %14s\n", "beta", "L1/peak", "ns_per_eval",
              "speedup_vs_fhat");
  for (const int beta : {4, 8, 16, 32, 64, 128, 256, 512}) {
    StreamingHistogram hist =
        bench::Unwrap(StreamingHistogram::Make(120.0, 120.0 / beta, beta));
    for (const double v : values) hist.Observe(v);
    const BinnedKde f_breve(&hist);
    std::vector<double> breve_series;
    breve_series.reserve(grid.size());
    Stopwatch watch;
    // Repeat evaluations for a stable timing at small beta.
    constexpr int kReps = 50;
    double sink = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      for (const double x : grid) sink += f_breve.Evaluate(x);
    }
    const double ns_per_eval = watch.ElapsedSeconds() * 1e9 /
                               static_cast<double>(grid.size() * kReps);
    for (const double x : grid) breve_series.push_back(f_breve.Evaluate(x));
    const double l1 = L1Distance(hat_series, breve_series) / peak;
    std::printf("%6d %14.5f %14.1f %14.1fx\n", beta, l1, ns_per_eval,
                hat_ns_per_eval / ns_per_eval);
    if (sink < 0) std::printf("%f", sink);  // keep the loop alive
  }
  bench::Measured(
      "L1/peak drops then plateaus; ns_per_eval scales with beta, far below "
      "f_hat");
  return 0;
}
