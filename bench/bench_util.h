#ifndef SCIBORQ_BENCH_BENCH_UTIL_H_
#define SCIBORQ_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/result.h"
#include "util/string_util.h"
#include "workload/generator.h"
#include "workload/interest_tracker.h"

namespace sciborq::bench {

/// Unwraps a Result in bench code, aborting with the error on failure.
template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void Header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Expectation(const std::string& what) {
  std::printf("paper_expectation= %s\n", what.c_str());
}

inline void Measured(const std::string& what) {
  std::printf("measured=          %s\n", what.c_str());
}

/// Machine-readable bench output: one `BENCH_JSON {...}` line per
/// measurement, grep-able from CI logs so the perf trajectory across PRs has
/// data points. Keys are emitted in insertion order; values are JSON
/// numbers/strings/bools.
///
///   JsonLine("server_qps").Int("clients", 4).Num("qps", qps).Emit();
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) { Str("bench", bench); }

  JsonLine& Num(const std::string& key, double v) {
    // JSON has no Inf/NaN; encode them as strings.
    if (std::isfinite(v)) return Field(key, StrFormat("%.6g", v));
    return Str(key, v != v ? "nan" : (v > 0 ? "inf" : "-inf"));
  }
  JsonLine& Int(const std::string& key, int64_t v) {
    return Field(key, StrFormat("%lld", static_cast<long long>(v)));
  }
  JsonLine& Flag(const std::string& key, bool v) {
    return Field(key, v ? "true" : "false");
  }
  JsonLine& Str(const std::string& key, const std::string& v) {
    std::string escaped = "\"";
    for (const char c : v) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    escaped += '"';
    return Field(key, escaped);
  }

  void Emit() const { std::printf("BENCH_JSON {%s}\n", fields_.c_str()); }

 private:
  JsonLine& Field(const std::string& key, const std::string& rendered) {
    if (!fields_.empty()) fields_ += ", ";
    fields_ += StrFormat("\"%s\": %s", key.c_str(), rendered.c_str());
    return *this;
  }

  std::string fields_;
};

/// The ra/dec interest tracker geometry used across benches (the paper's
/// attribute pair, §4).
inline InterestTracker MakeRaDecTracker() {
  return Unwrap(InterestTracker::Make(
      {{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}}));
}

/// A tightly focused two-spot exploration workload (the fGetNearbyObjEq
/// regime: focal mass small relative to impression capacity).
inline ConeWorkloadConfig FocusedWorkload() {
  ConeWorkloadConfig config;
  config.focal_points = {FocalPoint{150.0, 12.0, 0.55, 2.0},
                         FocalPoint{215.0, 40.0, 0.45, 2.0}};
  return config;
}

}  // namespace sciborq::bench

#endif  // SCIBORQ_BENCH_BENCH_UTIL_H_
