// Persistence benchmarks: what a snapshot buys at boot, and what a
// checkpoint costs.
//
//   cold_start   — Engine::Open from a checkpoint (columns + ready-made
//                  impression hierarchy deserialized) vs re-ingest +
//                  re-sample from CSV. The paper treats impressions as
//                  expensive curated state; the snapshot makes restart pay
//                  I/O instead of re-sampling. Expectation: >= 5x faster.
//   checkpoint   — throughput of Checkpoint(table) in MB/s of snapshot
//                  bytes, plus WAL append throughput for the ingest path.
//
// Exits non-zero if the snapshot-booted engine answers differently from the
// CSV-booted one (the equivalence gate), or if the speedup bar is missed.
// BENCH_JSON lines are grep-able from CI logs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "bench/bench_util.h"
#include "column/csv.h"
#include "skyserver/catalog.h"
#include "storage/file_io.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

using namespace sciborq;
using sciborq::bench::Header;
using sciborq::bench::JsonLine;
using sciborq::bench::Unwrap;

namespace {

constexpr int64_t kRows = 200'000;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sciborq_storage_bench_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  return std::string(dir);
}

std::vector<std::string> QueryBattery() {
  return {
      "SELECT COUNT(*), AVG(r) FROM sky WHERE cone(ra, dec; 150, 12; r=8) "
      "WITHIN 10000 MS ERROR 25%",
      "SELECT AVG(redshift) FROM sky WHERE ra >= 140 AND ra <= 200 "
      "WITHIN 10000 MS ERROR 15%",
      "SELECT COUNT(*) FROM sky EXACT",
  };
}

TableOptions BiasedOptions() {
  TableOptions options;
  options.tracked_attributes = {{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}};
  options.seed = 29;
  return options;
}

int64_t FileBytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<int64_t>(size);
}

}  // namespace

int main() {
  Header("storage: cold start from snapshot vs re-ingest from CSV");

  const std::string dir = MakeTempDir();
  const std::string csv_path = dir + "/sky.csv";
  const std::string db_dir = dir + "/db";

  SkyCatalogConfig config;
  config.num_rows = kRows;
  const SkyCatalog catalog = Unwrap(GenerateSkyCatalog(config, 11));
  if (Status st = WriteCsv(catalog.photo_obj_all, csv_path); !st.ok()) {
    std::fprintf(stderr, "WriteCsv: %s\n", st.ToString().c_str());
    return 1;
  }

  // CSV boot: parse + ingest + sample the full hierarchy (the pre-storage
  // restart path). Registered on an ephemeral engine so no WAL cost skews
  // the comparison.
  Stopwatch csv_watch;
  Engine csv_engine;
  Unwrap(csv_engine.RegisterCsv("sky", csv_path, BiasedOptions()));
  const double csv_seconds = csv_watch.ElapsedSeconds();

  // Build the persistent db once: same data, then checkpoint.
  std::unique_ptr<Engine> writer = Unwrap(Engine::Open(db_dir));
  if (!writer->CreateTable("sky", catalog.photo_obj_all.schema(),
                           BiasedOptions())
           .ok() ||
      !writer->IngestBatch("sky", catalog.photo_obj_all).ok()) {
    std::fprintf(stderr, "persistent load failed\n");
    return 1;
  }

  // Checkpoint throughput (median-ish: repeat and keep the best of 3 to
  // shave fsync jitter).
  double best_checkpoint_seconds = 1e100;
  for (int i = 0; i < 3; ++i) {
    Stopwatch watch;
    if (Status st = writer->Checkpoint("sky"); !st.ok()) {
      std::fprintf(stderr, "Checkpoint: %s\n", st.ToString().c_str());
      return 1;
    }
    best_checkpoint_seconds = std::min(best_checkpoint_seconds,
                                       watch.ElapsedSeconds());
  }
  const int64_t snapshot_bytes = FileBytes(db_dir + "/sky.snapshot");
  writer.reset();

  // Snapshot boot: deserialize columns + hierarchy, no sampling at all.
  Stopwatch snap_watch;
  std::unique_ptr<Engine> snap_engine = Unwrap(Engine::Open(db_dir));
  const double snap_seconds = snap_watch.ElapsedSeconds();

  // Equivalence gate: the two boots must answer bit-identically. (The CSV
  // engine and the writer engine ran the identical ingest stream with the
  // identical seeds, and recovery must preserve that.)
  int mismatches = 0;
  for (const std::string& sql : QueryBattery()) {
    const Result<QueryOutcome> a = csv_engine.Query(sql);
    const Result<QueryOutcome> b = snap_engine->Query(sql);
    if (!a.ok() || !b.ok() || !EquivalentAnswers(*a, *b)) {
      std::fprintf(stderr, "answer mismatch for %s\n", sql.c_str());
      ++mismatches;
    }
  }

  const double speedup = csv_seconds / snap_seconds;
  const double checkpoint_mb_per_s =
      (static_cast<double>(snapshot_bytes) / (1024.0 * 1024.0)) /
      best_checkpoint_seconds;

  std::printf("csv boot:      %.3fs (parse + ingest + sample %lld rows)\n",
              csv_seconds, static_cast<long long>(kRows));
  std::printf("snapshot boot: %.3fs (%lld snapshot bytes)\n", snap_seconds,
              static_cast<long long>(snapshot_bytes));
  std::printf("speedup:       %.1fx (expect >= 5x)\n", speedup);
  std::printf("checkpoint:    %.3fs best-of-3, %.1f MB/s\n",
              best_checkpoint_seconds, checkpoint_mb_per_s);

  JsonLine("storage_cold_start")
      .Int("rows", kRows)
      .Num("csv_boot_seconds", csv_seconds)
      .Num("snapshot_boot_seconds", snap_seconds)
      .Num("speedup", speedup)
      .Int("snapshot_bytes", snapshot_bytes)
      .Flag("answers_equivalent", mismatches == 0)
      .Emit();
  JsonLine("storage_checkpoint")
      .Num("seconds", best_checkpoint_seconds)
      .Num("mb_per_s", checkpoint_mb_per_s)
      .Int("snapshot_bytes", snapshot_bytes)
      .Emit();

  // WAL append throughput: the per-batch durability cost on the ingest path.
  {
    const std::string wal_db = dir + "/wal_db";
    std::unique_ptr<Engine> wal_engine = Unwrap(Engine::Open(wal_db));
    if (!wal_engine
             ->CreateTable("sky", catalog.photo_obj_all.schema(),
                           BiasedOptions())
             .ok()) {
      std::fprintf(stderr, "wal bench setup failed\n");
      return 1;
    }
    constexpr int kBatches = 20;
    const int64_t per = kRows / kBatches;
    Stopwatch watch;
    for (int b = 0; b < kBatches; ++b) {
      Table slice(catalog.photo_obj_all.schema());
      for (int64_t row = b * per; row < (b + 1) * per; ++row) {
        slice.AppendRowFrom(catalog.photo_obj_all, row);
      }
      if (!wal_engine->IngestBatch("sky", slice).ok()) {
        std::fprintf(stderr, "wal ingest failed\n");
        return 1;
      }
    }
    const double seconds = watch.ElapsedSeconds();
    const int64_t wal_bytes = FileBytes(wal_db + "/sky.wal");
    JsonLine("storage_wal_ingest")
        .Int("batches", kBatches)
        .Int("rows", per * kBatches)
        .Num("seconds", seconds)
        .Num("rows_per_s", static_cast<double>(per * kBatches) / seconds)
        .Num("wal_mb_per_s",
             (static_cast<double>(wal_bytes) / (1024.0 * 1024.0)) / seconds)
        .Emit();
    std::printf("wal ingest:    %lld rows in %.3fs (%.0f rows/s, fsync per "
                "batch)\n",
                static_cast<long long>(per * kBatches), seconds,
                static_cast<double>(per * kBatches) / seconds);
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  if (mismatches > 0) {
    std::fprintf(stderr, "FAILED: %d query answer mismatch(es)\n", mismatches);
    return 1;
  }
  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "FAILED: snapshot boot speedup %.1fx below the 5x bar\n",
                 speedup);
    return 1;
  }
  std::printf("storage bench OK\n");
  return 0;
}
