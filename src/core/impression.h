#ifndef SCIBORQ_CORE_IMPRESSION_H_
#define SCIBORQ_CORE_IMPRESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "column/table.h"
#include "util/result.h"

namespace sciborq {

/// How the rows of an impression were selected.
enum class SamplingPolicy {
  kUniform,   ///< reservoir Algorithm R (Fig. 2)
  kLastSeen,  ///< recency-biased fixed-probability reservoir (Fig. 3)
  kBiased,    ///< workload-biased reservoir steered by f̆ (Fig. 6, §4)
};

std::string_view SamplingPolicyToString(SamplingPolicy policy);

/// The complete value state of one Impression, as plain data — what
/// persistent storage serializes (storage/snapshot.h) and what
/// Impression::FromState rebuilds bit-identically. Field-for-field mirror of
/// the Impression privates; every estimator input (weights, provenance,
/// pinned probabilities, the acceptance model) travels with the rows.
struct ImpressionState {
  std::string name;
  int64_t capacity = 0;
  SamplingPolicy policy = SamplingPolicy::kUniform;
  Table rows;
  std::vector<double> weights;
  std::vector<int64_t> source_ids;
  std::vector<double> explicit_probs;  ///< empty unless derived
  int64_t population_seen = 0;
  double population_weight = 0.0;
  int64_t freshness_k = 0;
  int64_t expected_ingest = 0;
  std::vector<int64_t> acceptance_curve;
  int64_t curve_interval = 0;
  int64_t total_accepted = 0;
};

/// An impression (§3): a bounded, columnar, workload-aware sample of a base
/// relation that is itself a query target. Beyond the sampled rows it keeps
/// exactly the bookkeeping the bounded executor needs to turn raw sample
/// aggregates into population estimates with confidence intervals:
///
///  - per-row workload weights (biased policy) or 1.0,
///  - per-row provenance (position in the base stream),
///  - the population size streamed past the builder and its total weight,
///  - optionally, explicit per-row inclusion probabilities (set when an
///    impression is *derived* from a parent layer, where the chain
///    π_child = π_parent · n_child / n_parent is pinned at derivation time).
class Impression {
 public:
  Impression(std::string name, Schema schema, int64_t capacity,
             SamplingPolicy policy);

  const std::string& name() const { return name_; }
  SamplingPolicy policy() const { return policy_; }
  int64_t capacity() const { return capacity_; }

  const Table& rows() const { return rows_; }
  int64_t size() const { return rows_.num_rows(); }

  /// Base tuples streamed past the sampler (cnt in the paper's figures).
  int64_t population_seen() const { return population_seen_; }
  /// Σ of workload weights over the streamed population (biased policy).
  double population_weight() const { return population_weight_; }

  const std::vector<double>& row_weights() const { return weights_; }
  const std::vector<int64_t>& source_ids() const { return source_ids_; }

  /// First-order inclusion probability of stored row `row`:
  ///  - explicit probabilities, when set (derived impressions);
  ///  - uniform: n / cnt;
  ///  - biased: min(1, n · w_row / Σw) — the conditioned-Poisson surrogate;
  ///  - last-seen: n / min(cnt, W) where W = n·D/k is the effective recency
  ///    window the sample turns over (estimates then speak about the recent
  ///    window rather than the full history — by design, §3.3).
  double InclusionProbability(int64_t row) const;

  /// Memory footprint of the sampled rows (the §3.1 size knob).
  int64_t MemoryUsageBytes() const { return rows_.MemoryUsageBytes(); }

  /// Deep copy with a new name (layer derivation, snapshotting).
  Impression Clone(std::string new_name) const;

  /// Deep copy of the full value state, for serialization.
  ImpressionState SaveState() const;

  /// Rebuilds an impression from captured (or deserialized) state.
  /// InvalidArgument when the state is internally inconsistent (parallel
  /// array lengths, capacity bounds) — the second line of defense behind the
  /// storage layer's checksums.
  static Result<Impression> FromState(ImpressionState state);

  /// Checks the parallel arrays and table agree.
  Status Validate() const;

  std::string ToString() const;

  // -- Mutation interface used by builders/derivation (not user code). --

  /// Appends `src_row` of `src` with the given weight/provenance.
  void AppendSampledRow(const Table& src, int64_t src_row, double weight,
                        int64_t source_id);
  /// Overwrites slot `slot` (reservoir eviction).
  void ReplaceSampledRow(int64_t slot, const Table& src, int64_t src_row,
                         double weight, int64_t source_id);
  void set_population_seen(int64_t n) { population_seen_ = n; }
  void set_population_weight(double w) { population_weight_ = w; }
  /// Pins explicit inclusion probabilities (derived impressions). Length
  /// must equal size().
  Status SetExplicitInclusionProbabilities(std::vector<double> probs);
  /// Last-seen parameters, needed for the effective-window semantics.
  void set_last_seen_params(int64_t k, int64_t expected_ingest) {
    freshness_k_ = k;
    expected_ingest_ = expected_ingest;
  }

  /// Retention model for biased impressions: the sampler's acceptance curve
  /// (cumulative post-fill acceptances every `interval` offers) plus the
  /// final total. With it, a row that arrived at position t with weight w
  /// has π ≈ min(1, n·w/t) · exp(-(A(T) − A(t)) / n). Updated by the builder
  /// after every batch.
  void set_acceptance_model(std::vector<int64_t> curve, int64_t interval,
                            int64_t total_accepted) {
    acceptance_curve_ = std::move(curve);
    curve_interval_ = interval;
    total_accepted_ = total_accepted;
  }
  bool has_acceptance_model() const { return curve_interval_ > 0; }

 private:
  std::string name_;
  int64_t capacity_;
  SamplingPolicy policy_;
  Table rows_;
  std::vector<double> weights_;
  std::vector<int64_t> source_ids_;
  std::vector<double> explicit_probs_;  ///< empty unless derived
  int64_t population_seen_ = 0;
  double population_weight_ = 0.0;
  int64_t freshness_k_ = 0;
  int64_t expected_ingest_ = 0;
  std::vector<int64_t> acceptance_curve_;
  int64_t curve_interval_ = 0;
  int64_t total_accepted_ = 0;

  /// Interpolated cumulative post-fill acceptances after `position` offers.
  double AcceptancesAt(double position) const;
};

}  // namespace sciborq

#endif  // SCIBORQ_CORE_IMPRESSION_H_
