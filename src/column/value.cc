#include "column/value.h"

#include "util/string_util.h"

namespace sciborq {

std::string Value::ToString() const {
  if (is_null()) return "";
  if (is_int64()) return StrFormat("%lld", static_cast<long long>(int64()));
  if (is_double()) return StrFormat("%.17g", dbl());
  return str();
}

}  // namespace sciborq
