#ifndef SCIBORQ_EXEC_AGGREGATE_H_
#define SCIBORQ_EXEC_AGGREGATE_H_

#include <string>
#include <vector>

#include "column/table.h"
#include "column/types.h"
#include "stats/descriptive.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace sciborq {

/// Aggregate functions supported by the bounded executor. COUNT ignores its
/// column; the others require a numeric column and skip nulls. kLast —
/// LAST(col), the newest value by the table's retention time column — is
/// answered by the latest-value path (retention/last_query.h), never by
/// moment aggregation, and only on tables with a retention policy.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax, kVariance, kLast };

std::string_view AggKindToString(AggKind kind);

/// One aggregate to compute, e.g. {kAvg, "redshift"}.
struct AggregateSpec {
  AggKind kind = AggKind::kCount;
  std::string column;  ///< empty for COUNT(*)

  std::string ToString() const;
};

/// The mergeable state behind one aggregate value: the Welford moments of
/// the non-null column values plus the COUNT(*)-only row tally that never
/// touches a column. This is what a shard ships to a coordinator — merging
/// two states and finishing equals finishing the concatenated stream, and is
/// bit-identical to the single-node fold whenever the merge order matches
/// the morsel fold order (see ParallelMorselReduce).
struct AggregateMoments {
  int64_t count_only = 0;  ///< COUNT(*) rows counted without a column value
  RunningMoments moments;  ///< moments of the non-null column values

  void Add(double v) { moments.Add(v); }
  void AddRowOnly() { ++count_only; }

  /// Folds another state in (parallel partials, sibling shards).
  void Merge(const AggregateMoments& other) {
    moments.Merge(other.moments);
    count_only += other.count_only;
  }

  /// The aggregate's value. InvalidArgument for AVG/MIN/MAX over zero rows
  /// and VAR under two — the strict single-node contract.
  Result<double> Finish(AggKind kind) const;

  /// Like Finish, but degenerate inputs yield NaN instead of an error — the
  /// shard contract: an empty shard slice must still answer so its
  /// (identity) state can merge with its siblings'.
  double FinishLenient(AggKind kind) const;
};

/// Bit-for-bit equality (doubles via BitIdentical, so NaN == NaN) — the wire
/// round-trip guarantee for transported partials.
inline bool operator==(const AggregateMoments& a, const AggregateMoments& b) {
  return a.count_only == b.count_only &&
         a.moments.count() == b.moments.count() &&
         BitIdentical(a.moments.mean(), b.moments.mean()) &&
         BitIdentical(a.moments.m2(), b.moments.m2()) &&
         BitIdentical(a.moments.min(), b.moments.min()) &&
         BitIdentical(a.moments.max(), b.moments.max());
}

/// Exact aggregate over the selected rows of a table. This is both the
/// base-data truth path and the per-impression raw statistic (the bounded
/// executor scales raw sample statistics into population estimates).
///
/// With a pool, the scan is morsel-parallel: per-morsel partial accumulators
/// merge in morsel order, so the result is bit-identical to the serial scan
/// at any thread count.
Result<double> ComputeAggregate(const Table& table,
                                const SelectionVector& rows,
                                const AggregateSpec& spec,
                                ThreadPool* pool = nullptr);

/// The accumulation half of ComputeAggregate: scans the selected rows into a
/// mergeable AggregateMoments without finishing it. ComputeAggregate is
/// exactly AccumulateAggregate + Finish, so a shard that ships the state and
/// a coordinator that finishes the merged state reproduce the single-node
/// value.
Result<AggregateMoments> AccumulateAggregate(const Table& table,
                                             const SelectionVector& rows,
                                             const AggregateSpec& spec,
                                             ThreadPool* pool = nullptr);

/// Gathers the non-null numeric values of `column` at `rows` — the sample
/// vector handed to the statistical estimators.
Result<std::vector<double>> GatherNumeric(const Table& table,
                                          const SelectionVector& rows,
                                          const std::string& column);

/// One output row of a grouped aggregation.
struct GroupRow {
  Value key;
  std::vector<double> aggregates;  ///< one per spec, in input order
  int64_t group_rows = 0;          ///< selected rows in this group
  /// Mergeable state behind each aggregate; filled only when
  /// GroupedAggOptions::collect_moments is set.
  std::vector<AggregateMoments> moments;
};

/// Knobs for the grouped scan beyond the default single-node behavior.
struct GroupedAggOptions {
  bool lenient = false;          ///< FinishLenient instead of Finish
  bool collect_moments = false;  ///< fill GroupRow::moments
};

/// Exact hash group-by over the selected rows: groups on `group_column`
/// (int64 or string) and computes every spec per group. Output is ordered by
/// first appearance of the group in `rows` — also under a pool, where
/// per-morsel group tables merge in morsel order (deterministic, identical
/// to serial).
Result<std::vector<GroupRow>> ComputeGroupedAggregates(
    const Table& table, const SelectionVector& rows,
    const std::string& group_column, const std::vector<AggregateSpec>& specs,
    ThreadPool* pool = nullptr, const GroupedAggOptions& options = {});

}  // namespace sciborq

#endif  // SCIBORQ_EXEC_AGGREGATE_H_
