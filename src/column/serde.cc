#include "column/serde.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "column/encoding/encoding.h"
#include "util/string_util.h"

namespace sciborq {

namespace {

constexpr uint8_t kValueTagNull = 0;
constexpr uint8_t kValueTagInt64 = 1;
constexpr uint8_t kValueTagDouble = 2;
constexpr uint8_t kValueTagString = 3;

Result<DataType> DataTypeFromWire(uint8_t tag) {
  switch (tag) {
    case 0:
      return DataType::kInt64;
    case 1:
      return DataType::kDouble;
    case 2:
      return DataType::kString;
    default:
      return Status::InvalidArgument(
          StrFormat("wire: unknown data type tag %u", tag));
  }
}

uint8_t DataTypeToWire(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return 0;
    case DataType::kDouble:
      return 1;
    case DataType::kString:
      return 2;
  }
  return 0;  // unreachable: enum is exhaustive
}

}  // namespace

Status CheckDecodeCount(int64_t count, int64_t min_bytes_each,
                        const BinaryReader& r, const char* what) {
  if (count < 0) {
    return Status::InvalidArgument(
        StrFormat("serde: negative %s count %lld", what,
                  static_cast<long long>(count)));
  }
  if (min_bytes_each > 0 && count > r.remaining() / min_bytes_each) {
    return Status::InvalidArgument(StrFormat(
        "serde: %s count %lld exceeds what the %lld remaining bytes could "
        "hold",
        what, static_cast<long long>(count),
        static_cast<long long>(r.remaining())));
  }
  return Status::OK();
}

// -- Value ------------------------------------------------------------------

void EncodeValue(const Value& v, BinaryWriter* w) {
  if (v.is_null()) {
    w->PutU8(kValueTagNull);
  } else if (v.is_int64()) {
    w->PutU8(kValueTagInt64);
    w->PutI64(v.int64());
  } else if (v.is_double()) {
    w->PutU8(kValueTagDouble);
    w->PutF64(v.dbl());
  } else {
    w->PutU8(kValueTagString);
    w->PutString(v.str());
  }
}

// GCC 12 (-O2 with sanitizers) reports a spurious maybe-uninitialized on the
// string alternative inside Result<Value>'s variant when the string was
// produced by a ReadString defined in another TU; the value is always
// initialized before use (guarded by ok()).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

Result<Value> DecodeValue(BinaryReader* r) {
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t tag, r->ReadU8());
  switch (tag) {
    case kValueTagNull:
      return Value::Null();
    case kValueTagInt64: {
      SCIBORQ_ASSIGN_OR_RETURN(const int64_t v, r->ReadI64());
      return Value(v);
    }
    case kValueTagDouble: {
      SCIBORQ_ASSIGN_OR_RETURN(const double v, r->ReadF64());
      return Value(v);
    }
    case kValueTagString: {
      SCIBORQ_ASSIGN_OR_RETURN(std::string v, r->ReadString());
      return Value(std::move(v));
    }
    default:
      return Status::InvalidArgument(
          StrFormat("wire: unknown value tag %u", tag));
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

// -- Schema -----------------------------------------------------------------

void EncodeSchema(const Schema& schema, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(schema.num_fields()));
  for (const Field& field : schema.fields()) {
    w->PutString(field.name);
    w->PutU8(DataTypeToWire(field.type));
    w->PutBool(field.nullable);
  }
}

Result<Schema> DecodeSchema(BinaryReader* r) {
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t n, r->ReadU32());
  // Each field needs at least a 4-byte name length + type + nullable.
  SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(n, 6, *r, "schema field"));
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Field field;
    SCIBORQ_ASSIGN_OR_RETURN(field.name, r->ReadString());
    SCIBORQ_ASSIGN_OR_RETURN(const uint8_t tag, r->ReadU8());
    SCIBORQ_ASSIGN_OR_RETURN(field.type, DataTypeFromWire(tag));
    SCIBORQ_ASSIGN_OR_RETURN(field.nullable, r->ReadBool());
    fields.push_back(std::move(field));
  }
  return Schema(std::move(fields));
}

// -- Column -----------------------------------------------------------------

void EncodeColumn(const Column& col, BinaryWriter* w) {
  w->PutU8(DataTypeToWire(col.type()));
  w->PutI64(col.size());
  const bool has_nulls = col.has_nulls();
  w->PutBool(has_nulls);
  if (has_nulls) {
    for (int64_t row = 0; row < col.size(); ++row) {
      w->PutBool(!col.IsNull(row));
    }
  }
  // Null-free numeric columns (the common science-data shape) are written
  // with one bulk copy on little-endian hosts — byte-identical to the
  // element loop, an order of magnitude faster for checkpoint throughput.
  if (kHostLittleEndian && !has_nulls && col.type() == DataType::kInt64) {
    w->PutRaw(col.data_int64().data(),
              static_cast<size_t>(col.size()) * sizeof(int64_t));
    return;
  }
  if (kHostLittleEndian && !has_nulls && col.type() == DataType::kDouble) {
    w->PutRaw(col.data_double().data(),
              static_cast<size_t>(col.size()) * sizeof(double));
    return;
  }
  for (int64_t row = 0; row < col.size(); ++row) {
    if (col.IsNull(row)) continue;
    switch (col.type()) {
      case DataType::kInt64:
        w->PutI64(col.GetInt64(row));
        break;
      case DataType::kDouble:
        w->PutF64(col.GetDouble(row));
        break;
      case DataType::kString:
        w->PutString(col.GetString(row));
        break;
    }
  }
}

Result<Column> DecodeColumn(BinaryReader* r) {
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t tag, r->ReadU8());
  SCIBORQ_ASSIGN_OR_RETURN(const DataType type, DataTypeFromWire(tag));
  SCIBORQ_ASSIGN_OR_RETURN(const int64_t size, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(const bool has_nulls, r->ReadBool());
  // Minimum bytes per row: 1 validity byte when nulls are present, else the
  // smallest possible value (a 4-byte string length).
  SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(size, has_nulls ? 1 : 4, *r, "column row"));
  // Bulk fast path, mirroring EncodeColumn: a null-free numeric column is
  // one contiguous LE array.
  if (kHostLittleEndian && !has_nulls && type != DataType::kString) {
    SCIBORQ_ASSIGN_OR_RETURN(
        const std::string_view raw,
        r->ReadRaw(static_cast<size_t>(size) * sizeof(int64_t)));
    if (type == DataType::kInt64) {
      std::vector<int64_t> values(static_cast<size_t>(size));
      if (!raw.empty()) std::memcpy(values.data(), raw.data(), raw.size());
      return Column::FromInt64Vector(std::move(values));
    }
    std::vector<double> values(static_cast<size_t>(size));
    if (!raw.empty()) std::memcpy(values.data(), raw.data(), raw.size());
    return Column::FromDoubleVector(std::move(values));
  }
  Column col(type);
  col.Reserve(size);
  std::vector<uint8_t> valid;
  if (has_nulls) {
    valid.resize(static_cast<size_t>(size));
    for (int64_t row = 0; row < size; ++row) {
      SCIBORQ_ASSIGN_OR_RETURN(const bool v, r->ReadBool());
      valid[static_cast<size_t>(row)] = v ? 1 : 0;
    }
  }
  for (int64_t row = 0; row < size; ++row) {
    if (has_nulls && valid[static_cast<size_t>(row)] == 0) {
      col.AppendNull();
      continue;
    }
    switch (type) {
      case DataType::kInt64: {
        SCIBORQ_ASSIGN_OR_RETURN(const int64_t v, r->ReadI64());
        col.AppendInt64(v);
        break;
      }
      case DataType::kDouble: {
        SCIBORQ_ASSIGN_OR_RETURN(const double v, r->ReadF64());
        col.AppendDouble(v);
        break;
      }
      case DataType::kString: {
        SCIBORQ_ASSIGN_OR_RETURN(std::string v, r->ReadString());
        col.AppendString(std::move(v));
        break;
      }
    }
  }
  return col;
}

// -- Column, v2 encoded pages -----------------------------------------------

namespace {

void EncodePlainChunk(const Column& col, int64_t begin, int64_t end,
                      BinaryWriter* w) {
  switch (col.type()) {
    case DataType::kInt64:
      if (kHostLittleEndian) {
        w->PutRaw(col.data_int64().data() + begin,
                  static_cast<size_t>(end - begin) * sizeof(int64_t));
        return;
      }
      for (int64_t row = begin; row < end; ++row) {
        w->PutI64(col.GetInt64(row));
      }
      return;
    case DataType::kDouble:
      if (kHostLittleEndian) {
        w->PutRaw(col.data_double().data() + begin,
                  static_cast<size_t>(end - begin) * sizeof(double));
        return;
      }
      for (int64_t row = begin; row < end; ++row) {
        w->PutF64(col.GetDouble(row));
      }
      return;
    case DataType::kString:
      for (int64_t row = begin; row < end; ++row) {
        w->PutString(col.GetString(row));
      }
      return;
  }
}

void EncodeColumnChunk(const Column& col, int64_t begin, int64_t end,
                       BinaryWriter* w) {
  const EncodedMorsel m = EncodeMorsel(col, begin, end);
  w->PutU8(static_cast<uint8_t>(m.encoding));
  switch (m.encoding) {
    case ColumnEncoding::kPlain:
      EncodePlainChunk(col, begin, end, w);
      return;
    case ColumnEncoding::kRle:
      w->PutU32(static_cast<uint32_t>(m.rle_values.size()));
      for (size_t run = 0; run < m.rle_values.size(); ++run) {
        w->PutI64(m.rle_values[run]);
        w->PutU32(static_cast<uint32_t>(m.rle_lengths[run]));
      }
      return;
    case ColumnEncoding::kFor:
      w->PutI64(m.for_reference);
      w->PutU8(m.for_bits);
      w->PutU32(static_cast<uint32_t>(m.for_words.size()));
      if (kHostLittleEndian) {
        w->PutRaw(m.for_words.data(), m.for_words.size() * sizeof(uint64_t));
      } else {
        for (const uint64_t word : m.for_words) w->PutU64(word);
      }
      return;
    case ColumnEncoding::kDict:
      w->PutU32(static_cast<uint32_t>(m.dict_values.size()));
      for (const std::string& v : m.dict_values) w->PutString(v);
      for (const uint32_t code : m.dict_codes) w->PutU32(code);
      return;
  }
}

/// Decodes one chunk's `rows` int64 values into `out`.
Status DecodeInt64Chunk(BinaryReader* r, uint8_t tag, int64_t rows,
                        int64_t* out) {
  switch (static_cast<ColumnEncoding>(tag)) {
    case ColumnEncoding::kPlain: {
      if (kHostLittleEndian) {
        SCIBORQ_ASSIGN_OR_RETURN(
            const std::string_view raw,
            r->ReadRaw(static_cast<size_t>(rows) * sizeof(int64_t)));
        if (!raw.empty()) std::memcpy(out, raw.data(), raw.size());
        return Status::OK();
      }
      for (int64_t i = 0; i < rows; ++i) {
        SCIBORQ_ASSIGN_OR_RETURN(out[i], r->ReadI64());
      }
      return Status::OK();
    }
    case ColumnEncoding::kRle: {
      SCIBORQ_ASSIGN_OR_RETURN(const uint32_t runs, r->ReadU32());
      SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(runs, 12, *r, "RLE run"));
      int64_t pos = 0;
      for (uint32_t run = 0; run < runs; ++run) {
        SCIBORQ_ASSIGN_OR_RETURN(const int64_t value, r->ReadI64());
        SCIBORQ_ASSIGN_OR_RETURN(const uint32_t len, r->ReadU32());
        if (len == 0 || pos + static_cast<int64_t>(len) > rows) {
          return Status::InvalidArgument(
              "serde: RLE run lengths do not tile the chunk");
        }
        for (uint32_t i = 0; i < len; ++i) out[pos + i] = value;
        pos += len;
      }
      if (pos != rows) {
        return Status::InvalidArgument(
            "serde: RLE runs cover fewer rows than the chunk holds");
      }
      return Status::OK();
    }
    case ColumnEncoding::kFor: {
      SCIBORQ_ASSIGN_OR_RETURN(const int64_t reference, r->ReadI64());
      SCIBORQ_ASSIGN_OR_RETURN(const uint8_t bits, r->ReadU8());
      SCIBORQ_ASSIGN_OR_RETURN(const uint32_t words, r->ReadU32());
      if (bits > 63) {
        return Status::InvalidArgument(
            StrFormat("serde: FOR bit width %u out of range", bits));
      }
      const int64_t expected_words =
          (rows * static_cast<int64_t>(bits) + 63) / 64;
      if (static_cast<int64_t>(words) != expected_words) {
        return Status::InvalidArgument(StrFormat(
            "serde: FOR word count %u does not match %lld packed rows", words,
            static_cast<long long>(rows)));
      }
      std::vector<uint64_t> packed(words);
      if (kHostLittleEndian) {
        SCIBORQ_ASSIGN_OR_RETURN(
            const std::string_view raw,
            r->ReadRaw(static_cast<size_t>(words) * sizeof(uint64_t)));
        if (!raw.empty()) std::memcpy(packed.data(), raw.data(), raw.size());
      } else {
        for (uint32_t i = 0; i < words; ++i) {
          SCIBORQ_ASSIGN_OR_RETURN(packed[i], r->ReadU64());
        }
      }
      const uint64_t ref = static_cast<uint64_t>(reference);
      for (int64_t i = 0; i < rows; ++i) {
        out[i] = static_cast<int64_t>(ref + UnpackBit(packed, i, bits));
      }
      return Status::OK();
    }
    case ColumnEncoding::kDict:
      break;
  }
  return Status::InvalidArgument(
      StrFormat("serde: unknown int64 chunk encoding tag %u", tag));
}

/// Decodes one chunk's `rows` strings, appending to `out`.
Status DecodeStringChunk(BinaryReader* r, uint8_t tag, int64_t rows,
                         std::vector<std::string>* out) {
  switch (static_cast<ColumnEncoding>(tag)) {
    case ColumnEncoding::kPlain:
      for (int64_t i = 0; i < rows; ++i) {
        SCIBORQ_ASSIGN_OR_RETURN(std::string v, r->ReadString());
        out->push_back(std::move(v));
      }
      return Status::OK();
    case ColumnEncoding::kDict: {
      SCIBORQ_ASSIGN_OR_RETURN(const uint32_t dict_n, r->ReadU32());
      SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(dict_n, 4, *r, "dictionary value"));
      std::vector<std::string> dict;
      dict.reserve(dict_n);
      for (uint32_t i = 0; i < dict_n; ++i) {
        SCIBORQ_ASSIGN_OR_RETURN(std::string v, r->ReadString());
        dict.push_back(std::move(v));
      }
      for (int64_t i = 0; i < rows; ++i) {
        SCIBORQ_ASSIGN_OR_RETURN(const uint32_t code, r->ReadU32());
        if (code >= dict_n) {
          return Status::InvalidArgument(StrFormat(
              "serde: dictionary code %u out of range (%u values)", code,
              dict_n));
        }
        out->push_back(dict[code]);
      }
      return Status::OK();
    }
    case ColumnEncoding::kRle:
    case ColumnEncoding::kFor:
      break;
  }
  return Status::InvalidArgument(
      StrFormat("serde: unknown string chunk encoding tag %u", tag));
}

}  // namespace

void EncodeColumnEncoded(const Column& col, BinaryWriter* w) {
  w->PutU8(DataTypeToWire(col.type()));
  w->PutI64(col.size());
  const bool has_nulls = col.has_nulls();
  w->PutBool(has_nulls);
  if (has_nulls) {
    for (int64_t row = 0; row < col.size(); ++row) {
      w->PutBool(!col.IsNull(row));
    }
  }
  const int64_t chunks =
      (col.size() + kEncodingMorselRows - 1) / kEncodingMorselRows;
  w->PutU32(static_cast<uint32_t>(chunks));
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t begin = c * kEncodingMorselRows;
    const int64_t end = std::min(col.size(), begin + kEncodingMorselRows);
    EncodeColumnChunk(col, begin, end, w);
  }
}

Result<Column> DecodeColumnEncoded(BinaryReader* r) {
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t tag, r->ReadU8());
  SCIBORQ_ASSIGN_OR_RETURN(const DataType type, DataTypeFromWire(tag));
  SCIBORQ_ASSIGN_OR_RETURN(const int64_t size, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(const bool has_nulls, r->ReadBool());
  SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(size, has_nulls ? 1 : 0, *r,
                                         "encoded column row"));
  std::vector<uint8_t> valid;
  if (has_nulls) {
    valid.resize(static_cast<size_t>(size));
    for (int64_t row = 0; row < size; ++row) {
      SCIBORQ_ASSIGN_OR_RETURN(const bool v, r->ReadBool());
      valid[static_cast<size_t>(row)] = v ? 1 : 0;
    }
  }
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t chunks, r->ReadU32());
  const int64_t expected_chunks =
      (size + kEncodingMorselRows - 1) / kEncodingMorselRows;
  if (static_cast<int64_t>(chunks) != expected_chunks) {
    return Status::InvalidArgument(StrFormat(
        "serde: encoded column declares %u chunks, %lld rows need %lld",
        chunks, static_cast<long long>(size),
        static_cast<long long>(expected_chunks)));
  }
  // The smallest well-formed chunk (a bits=0 FOR frame) is 14 bytes, so a
  // hostile row count cannot claim more chunks than the buffer could back.
  // Value storage below still grows chunk-by-chunk, keeping the peak
  // allocation proportional to bytes actually decoded.
  SCIBORQ_RETURN_NOT_OK(
      CheckDecodeCount(expected_chunks, 14, *r, "encoded column chunk"));

  if (type == DataType::kString) {
    std::vector<std::string> values;
    for (int64_t c = 0; c < expected_chunks; ++c) {
      const int64_t begin = c * kEncodingMorselRows;
      const int64_t end = std::min(size, begin + kEncodingMorselRows);
      SCIBORQ_ASSIGN_OR_RETURN(const uint8_t chunk_tag, r->ReadU8());
      SCIBORQ_RETURN_NOT_OK(
          DecodeStringChunk(r, chunk_tag, end - begin, &values));
    }
    Column col(DataType::kString);
    col.Reserve(size);
    for (int64_t row = 0; row < size; ++row) {
      if (has_nulls && valid[static_cast<size_t>(row)] == 0) {
        col.AppendNull();
      } else {
        col.AppendString(std::move(values[static_cast<size_t>(row)]));
      }
    }
    return col;
  }

  // Numeric: every chunk materializes into one contiguous int64 buffer (the
  // double layout is the same 8 bytes, reinterpreted below).
  std::vector<int64_t> values;
  for (int64_t c = 0; c < expected_chunks; ++c) {
    const int64_t begin = c * kEncodingMorselRows;
    const int64_t end = std::min(size, begin + kEncodingMorselRows);
    values.resize(static_cast<size_t>(end));
    SCIBORQ_ASSIGN_OR_RETURN(const uint8_t chunk_tag, r->ReadU8());
    if (type == DataType::kDouble &&
        static_cast<ColumnEncoding>(chunk_tag) != ColumnEncoding::kPlain) {
      return Status::InvalidArgument(StrFormat(
          "serde: double chunk carries non-plain encoding tag %u", chunk_tag));
    }
    SCIBORQ_RETURN_NOT_OK(
        DecodeInt64Chunk(r, chunk_tag, end - begin, values.data() + begin));
  }
  if (type == DataType::kInt64) {
    if (!has_nulls) return Column::FromInt64Vector(std::move(values));
    Column col(DataType::kInt64);
    col.Reserve(size);
    for (int64_t row = 0; row < size; ++row) {
      if (valid[static_cast<size_t>(row)] == 0) {
        col.AppendNull();
      } else {
        col.AppendInt64(values[static_cast<size_t>(row)]);
      }
    }
    return col;
  }
  std::vector<double> dbl(static_cast<size_t>(size));
  if (!values.empty()) {
    std::memcpy(dbl.data(), values.data(), values.size() * sizeof(double));
  }
  if (!has_nulls) return Column::FromDoubleVector(std::move(dbl));
  Column col(DataType::kDouble);
  col.Reserve(size);
  for (int64_t row = 0; row < size; ++row) {
    if (valid[static_cast<size_t>(row)] == 0) {
      col.AppendNull();
    } else {
      col.AppendDouble(dbl[static_cast<size_t>(row)]);
    }
  }
  return col;
}

void EncodeTableEncoded(const Table& table, BinaryWriter* w) {
  EncodeSchema(table.schema(), w);
  w->PutI64(table.num_rows());
  for (int i = 0; i < table.num_columns(); ++i) {
    EncodeColumnEncoded(table.column(i), w);
  }
}

Result<Table> DecodeTableEncoded(BinaryReader* r) {
  SCIBORQ_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(r));
  SCIBORQ_ASSIGN_OR_RETURN(const int64_t rows, r->ReadI64());
  if (rows < 0) {
    return Status::InvalidArgument(StrFormat(
        "serde: negative table row count %lld", static_cast<long long>(rows)));
  }
  std::vector<Column> columns;
  columns.reserve(static_cast<size_t>(schema.num_fields()));
  for (int i = 0; i < schema.num_fields(); ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(Column col, DecodeColumnEncoded(r));
    if (col.type() != schema.field(i).type) {
      return Status::InvalidArgument(StrFormat(
          "serde: column %d type does not match its schema field", i));
    }
    if (col.size() != rows) {
      return Status::InvalidArgument(StrFormat(
          "serde: column %d has %lld rows, table declares %lld", i,
          static_cast<long long>(col.size()), static_cast<long long>(rows)));
    }
    columns.push_back(std::move(col));
  }
  return Table::FromColumns(std::move(schema), std::move(columns));
}

// -- Table ------------------------------------------------------------------

void EncodeTable(const Table& table, BinaryWriter* w) {
  EncodeSchema(table.schema(), w);
  w->PutI64(table.num_rows());
  for (int i = 0; i < table.num_columns(); ++i) {
    EncodeColumn(table.column(i), w);
  }
}

Result<Table> DecodeTable(BinaryReader* r) {
  SCIBORQ_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(r));
  SCIBORQ_ASSIGN_OR_RETURN(const int64_t rows, r->ReadI64());
  if (rows < 0) {
    return Status::InvalidArgument(StrFormat(
        "serde: negative table row count %lld", static_cast<long long>(rows)));
  }
  std::vector<Column> columns;
  columns.reserve(static_cast<size_t>(schema.num_fields()));
  for (int i = 0; i < schema.num_fields(); ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(Column col, DecodeColumn(r));
    if (col.type() != schema.field(i).type) {
      return Status::InvalidArgument(StrFormat(
          "serde: column %d type does not match its schema field", i));
    }
    if (col.size() != rows) {
      return Status::InvalidArgument(StrFormat(
          "serde: column %d has %lld rows, table declares %lld", i,
          static_cast<long long>(col.size()), static_cast<long long>(rows)));
    }
    columns.push_back(std::move(col));
  }
  return Table::FromColumns(std::move(schema), std::move(columns));
}

}  // namespace sciborq
