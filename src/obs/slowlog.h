#ifndef SCIBORQ_OBS_SLOWLOG_H_
#define SCIBORQ_OBS_SLOWLOG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace sciborq {
namespace obs {

/// One bound-miss / slow-query record: what was asked, what was delivered,
/// and the full escalation trace — the forensic unit the `\slow` CLI command
/// dumps. `trace` is pre-rendered text (one line per layer attempt and
/// phase span) so the record survives the wire without dragging the full
/// QueryOutcome along.
struct SlowQueryEntry {
  std::string query_id;
  std::string table;
  std::string sql;
  /// Bounds asked: the resolved query bound (<=0 means unbounded / unset).
  double asked_max_ms = 0.0;
  double asked_max_error = 0.0;
  double asked_confidence = 0.0;
  bool asked_exact = false;
  /// Bounds delivered.
  bool error_bound_met = false;
  bool deadline_exceeded = false;
  double elapsed_seconds = 0.0;
  std::string answered_by;
  std::string trace;
};

/// Fixed-capacity ring of SlowQueryEntry, newest overwriting oldest. Writes
/// are off the happy path (only bound misses / deadline blows record), so a
/// plain mutex is the right tool — no lock-free heroics for a cold buffer.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 128) : capacity_(capacity) {}
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  void Record(SlowQueryEntry entry) EXCLUDES(mu_) {
    if (capacity_ == 0) return;
    MutexLock lock(&mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(entry));
    } else {
      ring_[next_] = std::move(entry);
    }
    next_ = (next_ + 1) % capacity_;
    ++recorded_;
  }

  /// Entries oldest-first (the order they were recorded).
  std::vector<SlowQueryEntry> Snapshot() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    std::vector<SlowQueryEntry> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
      out = ring_;
    } else {
      for (size_t i = 0; i < ring_.size(); ++i) {
        out.push_back(ring_[(next_ + i) % capacity_]);
      }
    }
    return out;
  }

  /// Total entries ever recorded (>= Snapshot().size() once the ring wraps).
  int64_t recorded() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return recorded_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::vector<SlowQueryEntry> ring_ GUARDED_BY(mu_);
  size_t next_ GUARDED_BY(mu_) = 0;
  int64_t recorded_ GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace sciborq

#endif  // SCIBORQ_OBS_SLOWLOG_H_
