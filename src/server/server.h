#ifndef SCIBORQ_SERVER_SERVER_H_
#define SCIBORQ_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>

#include "api/engine.h"
#include "server/socket.h"
#include "server/wire.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace sciborq {

class Session;

struct ServerOptions {
  /// TCP port to listen on; 0 picks a free ephemeral port (port() reports
  /// the bound one — the tests' and benches' no-conflict mode).
  int port = 0;
  /// Concurrent connections served at once: the size of the handler
  /// ThreadPool, one (blocking) handler per connection. Further accepted
  /// connections queue in the pool until a worker frees up.
  int max_connections = 8;
  /// Per-frame ceiling enforced before a request body is read.
  int64_t max_frame_bytes = kMaxFrameBytes;
};

/// The network face of an Engine: a blocking-socket TCP server speaking the
/// length-prefixed protocol of server/wire.h, thread-per-connection over the
/// library's ThreadPool. Each connection owns one api/Session, so `USE` and
/// default bounds persist per client while every query still flows through
/// the one thread-safe Engine — N connections are just N concurrent callers
/// of Engine::Query, the shape engine_test already proves deterministic.
///
/// Lifecycle: Start() binds and returns; Stop() is graceful — it stops
/// accepting, half-closes every connection's read side so handlers finish
/// the request in flight (response included), then joins. The destructor
/// calls Stop().
class SciborqServer {
 public:
  /// `engine` is non-owning and must outlive the server.
  SciborqServer(Engine* engine, ServerOptions options = ServerOptions());
  ~SciborqServer();

  SciborqServer(const SciborqServer&) = delete;
  SciborqServer& operator=(const SciborqServer&) = delete;

  /// Binds the listener and starts the accept thread. FailedPrecondition if
  /// already started.
  Status Start();

  /// Graceful shutdown: drains in-flight requests, then joins all threads.
  /// Idempotent; no-op when never started.
  void Stop();

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }
  bool running() const { return started_.load() && !stopping_.load(); }

  int64_t connections_accepted() const { return connections_accepted_.load(); }
  int64_t queries_served() const { return queries_served_.load(); }
  int64_t statements_prepared() const { return statements_prepared_.load(); }
  int64_t checkpoints_taken() const { return checkpoints_taken_.load(); }
  int64_t protocol_errors() const { return protocol_errors_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(std::shared_ptr<TcpConn> conn);
  /// Dispatches one decoded request to the connection's session; returns the
  /// response body to send.
  std::string HandleRequest(const RequestFrame& request, Session* session);

  Engine* engine_;
  ServerOptions options_;
  int port_ = -1;

  std::optional<TcpListener> listener_;
  std::unique_ptr<ThreadPool> handler_pool_;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  /// Live connections, for Stop() to half-close. Handlers register on entry
  /// and deregister (under the same lock) before destroying the conn.
  Mutex conns_mu_;
  std::unordered_map<int64_t, TcpConn*> active_conns_ GUARDED_BY(conns_mu_);
  int64_t next_conn_id_ GUARDED_BY(conns_mu_) = 0;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> queries_served_{0};
  std::atomic<int64_t> statements_prepared_{0};
  std::atomic<int64_t> checkpoints_taken_{0};
  std::atomic<int64_t> protocol_errors_{0};
};

}  // namespace sciborq

#endif  // SCIBORQ_SERVER_SERVER_H_
