#include "exec/aggregate.h"

#include <limits>
#include <unordered_map>

#include "stats/descriptive.h"
#include "util/string_util.h"

namespace sciborq {

std::string_view AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kVariance:
      return "VAR";
    case AggKind::kLast:
      return "LAST";
  }
  return "?";
}

std::string AggregateSpec::ToString() const {
  if (kind == AggKind::kCount && column.empty()) return "COUNT(*)";
  return StrFormat("%s(%s)", std::string(AggKindToString(kind)).c_str(),
                   column.c_str());
}

namespace {

Result<const Column*> NumericColumn(const Table& table,
                                    const std::string& name) {
  SCIBORQ_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(name));
  if (!IsNumeric(col->type())) {
    return Status::InvalidArgument(
        StrFormat("aggregate requires numeric column, got '%s'", name.c_str()));
  }
  return col;
}

}  // namespace

Result<double> AggregateMoments::Finish(AggKind kind) const {
  switch (kind) {
    case AggKind::kCount:
      return static_cast<double>(count_only + moments.count());
    case AggKind::kSum:
      return moments.mean() * static_cast<double>(moments.count());
    case AggKind::kAvg:
      if (moments.count() == 0) {
        return Status::InvalidArgument("AVG over zero rows");
      }
      return moments.mean();
    case AggKind::kMin:
      if (moments.count() == 0) {
        return Status::InvalidArgument("MIN over zero rows");
      }
      return moments.min();
    case AggKind::kMax:
      if (moments.count() == 0) {
        return Status::InvalidArgument("MAX over zero rows");
      }
      return moments.max();
    case AggKind::kVariance:
      if (moments.count() < 2) {
        return Status::InvalidArgument("VAR needs at least two rows");
      }
      return moments.variance();
    case AggKind::kLast:
      return Status::InvalidArgument(
          "LAST is answered by the latest-value path, not moment aggregation");
  }
  return Status::Internal("unreachable aggregate kind");
}

double AggregateMoments::FinishLenient(AggKind kind) const {
  Result<double> v = Finish(kind);
  if (v.ok()) return *v;
  return std::numeric_limits<double>::quiet_NaN();
}

Result<AggregateMoments> AccumulateAggregate(const Table& table,
                                             const SelectionVector& rows,
                                             const AggregateSpec& spec,
                                             ThreadPool* pool) {
  AggregateMoments acc;
  if (spec.kind == AggKind::kCount && spec.column.empty()) {
    acc.count_only = static_cast<int64_t>(rows.size());
    return acc;
  }
  SCIBORQ_ASSIGN_OR_RETURN(const Column* col, NumericColumn(table, spec.column));
  // Morsel-parallel scan: per-morsel partial accumulators merged in morsel
  // order. The serial path folds the identical sequence, so results match
  // bit-for-bit at any thread count.
  ParallelMorselReduce<AggregateMoments>(
      pool, static_cast<int64_t>(rows.size()), kDefaultMorselRows,
      [&rows, col](int64_t begin, int64_t end) {
        AggregateMoments partial;
        // Dense fast path: when this slice of the selection is a contiguous
        // ascending row range (the common case after zone-map blanket
        // matches) over a null-free column, stream the raw storage with no
        // per-row gather. The Add sequence is exactly the general loop's,
        // so the result stays bit-identical.
        const int64_t n = end - begin;
        if (n > 0 && !col->has_nulls()) {
          const int64_t first = rows[static_cast<size_t>(begin)];
          const int64_t last = rows[static_cast<size_t>(end - 1)];
          if (last - first + 1 == n) {
            bool dense = true;
            for (int64_t i = begin; i < end; ++i) {
              if (rows[static_cast<size_t>(i)] != first + (i - begin)) {
                dense = false;
                break;
              }
            }
            if (dense) {
              if (col->type() == DataType::kDouble) {
                const double* v = col->data_double().data();
                for (int64_t r = first; r <= last; ++r) partial.Add(v[r]);
              } else {
                const int64_t* v = col->data_int64().data();
                for (int64_t r = first; r <= last; ++r) {
                  partial.Add(static_cast<double>(v[r]));
                }
              }
              return partial;
            }
          }
        }
        for (int64_t i = begin; i < end; ++i) {
          const int64_t row = rows[static_cast<size_t>(i)];
          if (col->IsNull(row)) continue;
          partial.Add(col->NumericAt(row));
        }
        return partial;
      },
      [&acc](AggregateMoments&& partial) { acc.Merge(partial); });
  return acc;
}

Result<double> ComputeAggregate(const Table& table, const SelectionVector& rows,
                                const AggregateSpec& spec, ThreadPool* pool) {
  if (spec.kind == AggKind::kCount && spec.column.empty()) {
    return static_cast<double>(rows.size());
  }
  SCIBORQ_ASSIGN_OR_RETURN(const AggregateMoments acc,
                           AccumulateAggregate(table, rows, spec, pool));
  return acc.Finish(spec.kind);
}

Result<std::vector<double>> GatherNumeric(const Table& table,
                                          const SelectionVector& rows,
                                          const std::string& column) {
  SCIBORQ_ASSIGN_OR_RETURN(const Column* col, NumericColumn(table, column));
  std::vector<double> out;
  out.reserve(rows.size());
  for (const int64_t row : rows) {
    if (col->IsNull(row)) continue;
    out.push_back(col->NumericAt(row));
  }
  return out;
}

namespace {

/// Hash aggregation state over one stream of selected rows: group keys in
/// first-appearance order plus one accumulator per spec per group. Serves
/// both as the per-morsel partial of the parallel scan and as the global fold
/// target.
struct GroupSet {
  const Column* key_col = nullptr;
  const std::vector<const Column*>* inputs = nullptr;
  const std::vector<AggregateSpec>* specs = nullptr;

  std::vector<Value> keys;
  std::vector<int64_t> group_rows;
  std::vector<std::vector<AggregateMoments>> accs;
  std::unordered_map<int64_t, size_t> int_groups;
  std::unordered_map<std::string, size_t> str_groups;

  size_t AppendGroup(Value key) {
    keys.push_back(std::move(key));
    accs.emplace_back(specs->size());
    group_rows.push_back(0);
    return accs.size() - 1;
  }

  size_t GroupIndexForKey(const Value& key) {
    if (key.is_int64()) {
      const auto [it, inserted] = int_groups.emplace(key.int64(), accs.size());
      return inserted ? AppendGroup(key) : it->second;
    }
    const auto [it, inserted] = str_groups.emplace(key.str(), accs.size());
    return inserted ? AppendGroup(key) : it->second;
  }

  void AbsorbRow(int64_t row) {
    if (key_col->IsNull(row)) return;  // SQL semantics: NULL keys dropped
    // Boxing the key into a Value is deferred to first appearance so the
    // per-row path costs one hash probe, not a string copy.
    size_t g = 0;
    if (key_col->type() == DataType::kInt64) {
      const int64_t key = key_col->GetInt64(row);
      const auto [it, inserted] = int_groups.emplace(key, accs.size());
      g = inserted ? AppendGroup(Value(key)) : it->second;
    } else {
      const auto [it, inserted] =
          str_groups.emplace(key_col->GetString(row), accs.size());
      g = inserted ? AppendGroup(Value(it->first)) : it->second;
    }
    ++group_rows[g];
    for (size_t s = 0; s < specs->size(); ++s) {
      if ((*inputs)[s] == nullptr) {
        accs[g][s].AddRowOnly();
      } else if (!(*inputs)[s]->IsNull(row)) {
        accs[g][s].Add((*inputs)[s]->NumericAt(row));
      }
    }
  }

  /// Folds a partial in: partial groups merge in their first-appearance
  /// order, so the global group order equals the serial scan's order.
  void MergePartial(const GroupSet& partial) {
    for (size_t pg = 0; pg < partial.keys.size(); ++pg) {
      const size_t g = GroupIndexForKey(partial.keys[pg]);
      group_rows[g] += partial.group_rows[pg];
      for (size_t s = 0; s < specs->size(); ++s) {
        accs[g][s].Merge(partial.accs[pg][s]);
      }
    }
  }
};

}  // namespace

Result<std::vector<GroupRow>> ComputeGroupedAggregates(
    const Table& table, const SelectionVector& rows,
    const std::string& group_column, const std::vector<AggregateSpec>& specs,
    ThreadPool* pool, const GroupedAggOptions& options) {
  SCIBORQ_ASSIGN_OR_RETURN(const Column* key_col,
                           table.ColumnByName(group_column));
  if (key_col->type() == DataType::kDouble) {
    return Status::InvalidArgument(
        "grouping on double columns is not supported (bin them first)");
  }

  // Pre-resolve aggregate input columns once.
  std::vector<const Column*> inputs(specs.size(), nullptr);
  for (size_t s = 0; s < specs.size(); ++s) {
    if (specs[s].kind == AggKind::kCount && specs[s].column.empty()) continue;
    SCIBORQ_ASSIGN_OR_RETURN(inputs[s], NumericColumn(table, specs[s].column));
  }

  GroupSet global;
  global.key_col = key_col;
  global.inputs = &inputs;
  global.specs = &specs;
  ParallelMorselReduce<GroupSet>(
      pool, static_cast<int64_t>(rows.size()), kDefaultMorselRows,
      [&rows, key_col, &inputs, &specs](int64_t begin, int64_t end) {
        GroupSet partial;
        partial.key_col = key_col;
        partial.inputs = &inputs;
        partial.specs = &specs;
        for (int64_t i = begin; i < end; ++i) {
          partial.AbsorbRow(rows[static_cast<size_t>(i)]);
        }
        return partial;
      },
      [&global](GroupSet&& partial) { global.MergePartial(partial); });

  std::vector<GroupRow> out;
  out.reserve(global.keys.size());
  for (size_t g = 0; g < global.keys.size(); ++g) {
    GroupRow group_row;
    group_row.key = std::move(global.keys[g]);
    group_row.group_rows = global.group_rows[g];
    group_row.aggregates.reserve(specs.size());
    for (size_t s = 0; s < specs.size(); ++s) {
      if (options.lenient) {
        group_row.aggregates.push_back(global.accs[g][s].FinishLenient(specs[s].kind));
      } else {
        SCIBORQ_ASSIGN_OR_RETURN(double v, global.accs[g][s].Finish(specs[s].kind));
        group_row.aggregates.push_back(v);
      }
    }
    if (options.collect_moments) group_row.moments = std::move(global.accs[g]);
    out.push_back(std::move(group_row));
  }
  return out;
}

}  // namespace sciborq
