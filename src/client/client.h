#ifndef SCIBORQ_CLIENT_CLIENT_H_
#define SCIBORQ_CLIENT_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/engine.h"
#include "server/socket.h"
#include "server/wire.h"

namespace sciborq {

struct ClientOptions {
  /// Ceiling for one response frame (a hostile or buggy server cannot make
  /// the client allocate more than this).
  int64_t max_frame_bytes = kMaxFrameBytes;
};

/// Synchronous client for a SciborqServer: one TCP connection, one
/// request/response in flight. The server pairs the connection with a
/// Session, so Use() and SetDefaultBounds() persist for subsequent bare SQL
/// exactly as they would with a local api/Session. Query() returns the full
/// QueryOutcome — estimates with confidence intervals, the escalation
/// trace, answered_by — decoded bit-identically to what Engine::Query
/// produced on the server (the wire tests' round-trip guarantee).
///
/// Not thread-safe: one client per thread, like Session. Any number of
/// clients can talk to one server concurrently.
class SciborqClient {
 public:
  /// Connects and returns a ready client. IOError on refusal/resolution.
  static Result<SciborqClient> Connect(const std::string& host, int port,
                                       ClientOptions options = ClientOptions());

  SciborqClient(SciborqClient&&) = default;
  SciborqClient& operator=(SciborqClient&&) = default;

  /// Ships the SQL (with optional in-SQL bounds clause) and decodes the
  /// outcome. Engine-side errors (unknown table, parse errors) come back as
  /// the original Status code and message.
  Result<QueryOutcome> Query(std::string_view sql);

  /// Prepares a `?` template on the server (parsed once, server-side). The
  /// returned info carries the handle id, the normalized template SQL, and
  /// the parameter count the server will enforce. Handles are scoped to
  /// this connection's session and die with it.
  Result<StatementInfo> Prepare(std::string_view sql);

  /// Binds `params` (one per `?`, in text order) and executes a statement
  /// prepared on this connection — no SQL travels, no parsing server-side.
  /// Arity/type mismatches come back as InvalidArgument, code-intact.
  Result<QueryOutcome> Execute(StatementHandle handle,
                               const std::vector<Value>& params);

  /// Frees a statement prepared on this connection.
  Status CloseStatement(StatementHandle handle);

  /// Sets the connection's default table for FROM-less SQL.
  Status Use(const std::string& table);

  /// Sets the connection's default bounds for SQL without a bounds clause.
  Status SetDefaultBounds(const QueryBounds& bounds);

  /// Catalog listing: every registered table with row count, schema, and
  /// impression-layer summary.
  Result<std::vector<TableInfo>> ListTables();

  /// Asks the server to checkpoint `table` ("" = every table) into its db
  /// directory; returns how many tables were checkpointed. Servers running
  /// without --db-dir answer FailedPrecondition.
  Result<int64_t> Checkpoint(const std::string& table = "");

  /// Round-trip liveness check.
  Status Ping();

  bool connected() const { return conn_.valid(); }
  void Close() { conn_.Close(); }

 private:
  SciborqClient(TcpConn conn, ClientOptions options)
      : conn_(std::move(conn)), options_(options) {}

  /// Sends one request frame and decodes the response envelope: checks the
  /// version, the echoed opcode, and the embedded status; returns the
  /// payload bytes on success.
  Result<std::string> RoundTrip(Opcode op, std::string_view payload);

  TcpConn conn_;
  ClientOptions options_;
};

}  // namespace sciborq

#endif  // SCIBORQ_CLIENT_CLIENT_H_
