#include <gtest/gtest.h>

#include <cmath>

#include "column/table.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/interest_tracker.h"
#include "workload/query_log.h"

namespace sciborq {
namespace {

AggregateQuery ConeQuery(double ra, double dec, double r) {
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  q.filter = Cone("ra", "dec", ra, dec, r);
  return q;
}

// ------------------------------------------------------------- QueryLog ---

TEST(QueryLogTest, RecordsAndExtractsPredicateSet) {
  QueryLog log;
  log.Record(ConeQuery(185.0, 0.5, 2.0));
  log.Record(ConeQuery(186.0, 1.5, 2.0));
  EXPECT_EQ(log.size(), 2);
  const auto ra_set = log.PredicateSet("ra");
  EXPECT_EQ(ra_set, (std::vector<double>{185.0, 186.0}));
  const auto dec_set = log.PredicateSet("dec");
  EXPECT_EQ(dec_set, (std::vector<double>{0.5, 1.5}));
  EXPECT_TRUE(log.PredicateSet("z").empty());
}

TEST(QueryLogTest, WindowEvictsOldest) {
  QueryLog log(2);
  log.Record(ConeQuery(1.0, 0, 1));
  log.Record(ConeQuery(2.0, 0, 1));
  log.Record(ConeQuery(3.0, 0, 1));
  EXPECT_EQ(log.size(), 2);
  EXPECT_EQ(log.total_recorded(), 3);
  EXPECT_EQ(log.PredicateSet("ra"), (std::vector<double>{2.0, 3.0}));
}

TEST(QueryLogTest, PredicateColumnsSorted) {
  QueryLog log;
  log.Record(ConeQuery(1, 2, 3));
  EXPECT_EQ(log.PredicateColumns(), (std::vector<std::string>{"dec", "ra"}));
}

TEST(QueryLogTest, RecordClonesDeeply) {
  QueryLog log;
  {
    AggregateQuery q = ConeQuery(9.0, 0, 1);
    log.Record(q);
  }  // original destroyed
  EXPECT_EQ(log.PredicateSet("ra"), (std::vector<double>{9.0}));
}

TEST(QueryLogTest, ClearResets) {
  QueryLog log;
  log.Record(ConeQuery(1, 2, 3));
  log.Clear();
  EXPECT_EQ(log.size(), 0);
  EXPECT_EQ(log.total_recorded(), 0);
}

// ------------------------------------------------------- InterestTracker ---

InterestTracker MakeRaDecTracker() {
  return InterestTracker::Make(
             {{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}})
      .value();
}

TEST(InterestTrackerTest, MakeValidation) {
  EXPECT_FALSE(InterestTracker::Make({}).ok());
  EXPECT_FALSE(
      InterestTracker::Make({{"ra", 0, 1, 10}, {"ra", 0, 1, 10}}).ok());
  EXPECT_FALSE(InterestTracker::Make({{"ra", 0, 0.0, 10}}).ok());
}

TEST(InterestTrackerTest, ObserveQueryFoldsPoints) {
  InterestTracker tracker = MakeRaDecTracker();
  tracker.ObserveQuery(ConeQuery(150.0, 12.0, 2.0));
  EXPECT_EQ(tracker.observed_points(), 2);
  const auto* ra_hist = tracker.HistogramFor("ra").value();
  EXPECT_EQ(ra_hist->total_count(), 1);
  EXPECT_FALSE(tracker.HistogramFor("zzz").ok());
}

TEST(InterestTrackerTest, UntrackedColumnsIgnored) {
  InterestTracker tracker = MakeRaDecTracker();
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  q.filter = Between("redshift", 0.1, 0.2);
  tracker.ObserveQuery(q);
  EXPECT_EQ(tracker.observed_points(), 0);
}

Table SkyRows() {
  Table t{Schema({Field{"ra", DataType::kDouble, false},
                  Field{"dec", DataType::kDouble, false}})};
  t.AppendNumericRow({150.0, 12.0});   // focal
  t.AppendNumericRow({230.0, 55.0});   // far from focus
  t.AppendNumericRow({151.0, 13.0});   // near focal
  return t;
}

TEST(InterestTrackerTest, ColdTrackerGivesUnitWeights) {
  InterestTracker tracker = MakeRaDecTracker();
  const Table rows = SkyRows();
  const auto bound = tracker.BindColumns(rows.schema());
  for (int64_t r = 0; r < rows.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(tracker.TupleWeight(rows, bound, r), 1.0);
  }
}

TEST(InterestTrackerTest, FocalTuplesWeighHigher) {
  InterestTracker tracker = MakeRaDecTracker();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    tracker.ObserveQuery(
        ConeQuery(rng.Gaussian(150.0, 3.0), rng.Gaussian(12.0, 2.0), 2.0));
  }
  const Table rows = SkyRows();
  const auto bound = tracker.BindColumns(rows.schema());
  const double w_focal = tracker.TupleWeight(rows, bound, 0);
  const double w_far = tracker.TupleWeight(rows, bound, 1);
  const double w_near = tracker.TupleWeight(rows, bound, 2);
  EXPECT_GT(w_focal, 10.0 * w_far);
  EXPECT_GT(w_near, w_far);
}

TEST(InterestTrackerTest, BindColumnsHandlesMissing) {
  InterestTracker tracker = MakeRaDecTracker();
  Table t{Schema({Field{"ra", DataType::kDouble, false}})};
  t.AppendNumericRow({150.0});
  const auto bound = tracker.BindColumns(t.schema());
  ASSERT_EQ(bound.size(), 2u);
  EXPECT_EQ(bound[0], 0);
  EXPECT_EQ(bound[1], -1);
  tracker.ObserveValue("ra", 150.0);
  EXPECT_GT(tracker.TupleWeight(t, bound, 0), 0.0);
}

TEST(InterestTrackerTest, DecayFadesOldInterest) {
  InterestTracker tracker = MakeRaDecTracker();
  for (int i = 0; i < 100; ++i) tracker.ObserveValue("ra", 150.0);
  const Table rows = SkyRows();
  const auto bound = tracker.BindColumns(rows.schema());
  const double before = tracker.TupleWeight(rows, bound, 0);
  tracker.Decay(0.01);
  const double after = tracker.TupleWeight(rows, bound, 0);
  EXPECT_LT(after, before);
}

TEST(InterestTrackerTest, CombineModes) {
  for (const auto mode :
       {CombineMode::kGeometricMean, CombineMode::kProduct, CombineMode::kSum,
        CombineMode::kMax}) {
    InterestTracker tracker =
        InterestTracker::Make({{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}},
                              mode)
            .value();
    for (int i = 0; i < 50; ++i) {
      tracker.ObserveValue("ra", 150.0);
      tracker.ObserveValue("dec", 12.0);
    }
    const Table rows = SkyRows();
    const auto bound = tracker.BindColumns(rows.schema());
    const double w_focal = tracker.TupleWeight(rows, bound, 0);
    const double w_far = tracker.TupleWeight(rows, bound, 1);
    EXPECT_GT(w_focal, w_far) << "mode=" << static_cast<int>(mode);
  }
}

TEST(InterestTrackerTest, FreezeEstimatorsSnapshot) {
  InterestTracker tracker = MakeRaDecTracker();
  tracker.ObserveValue("ra", 150.0);
  auto frozen = tracker.FreezeEstimators();
  ASSERT_EQ(frozen.size(), 2u);
  const double before = frozen[0].Evaluate(150.0);
  for (int i = 0; i < 100; ++i) tracker.ObserveValue("ra", 230.0);
  EXPECT_DOUBLE_EQ(frozen[0].Evaluate(150.0), before);
}

// ------------------------------------------------------------ Generators ---

TEST(GeneratorTest, MakeValidation) {
  ConeWorkloadConfig empty;
  EXPECT_FALSE(ConeWorkloadGenerator::Make(empty, 1).ok());
  ConeWorkloadConfig bad = PaperFigure4WorkloadConfig();
  bad.focal_points[0].weight = 0.0;
  EXPECT_FALSE(ConeWorkloadGenerator::Make(bad, 1).ok());
}

TEST(GeneratorTest, DeterministicForSeed) {
  auto a = ConeWorkloadGenerator::Make(PaperFigure4WorkloadConfig(), 5).value();
  auto b = ConeWorkloadGenerator::Make(PaperFigure4WorkloadConfig(), 5).value();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Next().ToString(), b.Next().ToString());
  }
}

TEST(GeneratorTest, QueriesClusterAroundFocalPoints) {
  auto gen = ConeWorkloadGenerator::Make(PaperFigure4WorkloadConfig(), 7).value();
  QueryLog log;
  for (int i = 0; i < 400; ++i) log.Record(gen.Next());
  const auto ra = log.PredicateSet("ra");
  ASSERT_EQ(ra.size(), 400u);
  int near_focus = 0;
  for (const double v : ra) {
    if (std::abs(v - 150.0) < 18.0 || std::abs(v - 215.0) < 24.0) ++near_focus;
  }
  EXPECT_GT(near_focus, 380);
}

TEST(GeneratorTest, RadiusRespectsMinimum) {
  ConeWorkloadConfig config = PaperFigure4WorkloadConfig();
  config.radius_mean = 0.1;  // will often draw below min
  config.min_radius = 0.25;
  auto gen = ConeWorkloadGenerator::Make(config, 9).value();
  for (int i = 0; i < 100; ++i) {
    const std::string s = gen.Next().ToString();
    EXPECT_EQ(s.find("r=-"), std::string::npos) << s;
  }
}

TEST(ShiftingGeneratorTest, PhasesSwitch) {
  ConeWorkloadConfig phase1;
  phase1.focal_points = {FocalPoint{150.0, 10.0, 1.0, 0.5}};
  ConeWorkloadConfig phase2;
  phase2.focal_points = {FocalPoint{220.0, 50.0, 1.0, 0.5}};
  auto gen =
      ShiftingWorkloadGenerator::Make({phase1, phase2}, 10, 11).value();
  QueryLog log;
  for (int i = 0; i < 20; ++i) {
    if (i < 10) {
      EXPECT_EQ(gen.current_phase(), 0);
    }
    log.Record(gen.Next());
  }
  EXPECT_EQ(gen.current_phase(), 1);
  const auto ra = log.PredicateSet("ra");
  for (int i = 0; i < 10; ++i) EXPECT_LT(std::abs(ra[i] - 150.0), 10.0);
  for (int i = 10; i < 20; ++i) EXPECT_LT(std::abs(ra[i] - 220.0), 10.0);
}

TEST(ShiftingGeneratorTest, MakeValidation) {
  EXPECT_FALSE(ShiftingWorkloadGenerator::Make({}, 10, 1).ok());
  ConeWorkloadConfig phase;
  phase.focal_points = {FocalPoint{}};
  EXPECT_FALSE(ShiftingWorkloadGenerator::Make({phase}, 0, 1).ok());
}

TEST(ShiftingGeneratorTest, StaysInLastPhase) {
  ConeWorkloadConfig phase;
  phase.focal_points = {FocalPoint{150.0, 10.0, 1.0, 1.0}};
  auto gen = ShiftingWorkloadGenerator::Make({phase, phase}, 5, 13).value();
  for (int i = 0; i < 30; ++i) gen.Next();
  EXPECT_EQ(gen.current_phase(), 1);
  EXPECT_EQ(gen.generated(), 30);
}

}  // namespace
}  // namespace sciborq
