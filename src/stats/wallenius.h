#ifndef SCIBORQ_STATS_WALLENIUS_H_
#define SCIBORQ_STATS_WALLENIUS_H_

#include <cstdint>

#include "util/result.h"

namespace sciborq {

/// Wallenius' noncentral hypergeometric distribution — the *competitive*
/// biased-urn model of the paper's reference [6] (Fog 2008 treats Wallenius
/// and Fisher side by side). Items are drawn one at a time without
/// replacement, each draw picking an interesting item with probability
/// proportional to omega times the remaining interesting mass. This is the
/// exact model of sequential biased eviction, whereas Fisher's variant
/// (stats/noncentral_hypergeometric.h) models independent inclusion
/// conditioned on the total — the two agree as the sampling fraction
/// vanishes and bracket the reservoir behaviour in between.
class WalleniusNoncentralHypergeometric {
 public:
  /// InvalidArgument unless m1, m2 >= 0, 0 <= n <= m1 + m2, omega > 0.
  static Result<WalleniusNoncentralHypergeometric> Make(int64_t m1, int64_t m2,
                                                        int64_t n,
                                                        double omega);

  int64_t m1() const { return m1_; }
  int64_t m2() const { return m2_; }
  int64_t n() const { return n_; }
  double omega() const { return omega_; }
  int64_t support_min() const { return support_min_; }
  int64_t support_max() const { return support_max_; }

  /// P(X = x) via the Wallenius integral
  ///   C(m1,x) C(m2,n-x) ∫₀¹ (1 − t^{ω/D})^x (1 − t^{1/D})^{n−x} dt,
  ///   D = ω(m1−x) + (m2−n+x),
  /// evaluated with an adaptive Simpson rule. Intended for moderate n
  /// (the support scan of Mean() costs O(n) integrals).
  double Pmf(int64_t x) const;

  /// Exact-by-summation mean/variance over the support (uses Pmf).
  double Mean() const;
  double Variance() const;

  /// Fog's implicit-equation approximation of the mean: the root of
  ///   (1 − μ/m1)^{1/ω} = 1 − (n−μ)/m2,
  /// found by bisection — O(log(1/eps)), no integrals.
  double ApproxMean() const;

 private:
  WalleniusNoncentralHypergeometric(int64_t m1, int64_t m2, int64_t n,
                                    double omega);

  int64_t m1_;
  int64_t m2_;
  int64_t n_;
  double omega_;
  int64_t support_min_;
  int64_t support_max_;
};

}  // namespace sciborq

#endif  // SCIBORQ_STATS_WALLENIUS_H_
