#include <gtest/gtest.h>

#include <cmath>

#include "core/bounded_executor.h"
#include "skyserver/catalog.h"
#include "skyserver/functions.h"
#include "util/stopwatch.h"

namespace sciborq {
namespace {

using LayerSpec = ImpressionHierarchy::LayerSpec;

/// Shared fixture: one 100k-row catalog, a three-layer uniform hierarchy.
class BoundedExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SkyCatalogConfig config;
    config.num_rows = 100'000;
    catalog_ = new SkyCatalog(GenerateSkyCatalog(config, 99).value());
    ImpressionSpec spec;
    spec.seed = 99;
    hierarchy_ = new ImpressionHierarchy(
        ImpressionHierarchy::Make(catalog_->photo_obj_all.schema(),
                                  {{"L0", 20'000}, {"L1", 2'000}, {"L2", 200}},
                                  spec)
            .value());
    ASSERT_TRUE(hierarchy_->IngestBatch(catalog_->photo_obj_all).ok());
  }
  static void TearDownTestSuite() {
    delete hierarchy_;
    delete catalog_;
    hierarchy_ = nullptr;
    catalog_ = nullptr;
  }

  static AggregateQuery WholeSkyAvg() {
    AggregateQuery q;
    q.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "r"}};
    return q;
  }

  static SkyCatalog* catalog_;
  static ImpressionHierarchy* hierarchy_;
};

SkyCatalog* BoundedExecutorTest::catalog_ = nullptr;
ImpressionHierarchy* BoundedExecutorTest::hierarchy_ = nullptr;

TEST_F(BoundedExecutorTest, LooseBoundAnsweredBySmallestLayer) {
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  QualityBound bound;
  bound.max_relative_error = 0.5;
  const BoundedAnswer ans = exec.Answer(WholeSkyAvg(), bound).value();
  EXPECT_TRUE(ans.error_bound_met);
  EXPECT_EQ(ans.answered_by, "L2");
  ASSERT_EQ(ans.attempts.size(), 1u);
  EXPECT_EQ(ans.attempts[0].layer_name, "L2");
}

TEST_F(BoundedExecutorTest, TightBoundEscalates) {
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  QualityBound bound;
  bound.max_relative_error = 0.002;
  const BoundedAnswer ans = exec.Answer(WholeSkyAvg(), bound).value();
  EXPECT_TRUE(ans.error_bound_met);
  // Must have tried more than one layer.
  EXPECT_GT(ans.attempts.size(), 1u);
}

TEST_F(BoundedExecutorTest, ZeroBoundGoesToBase) {
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  QualityBound bound;
  bound.max_relative_error = 0.0;  // demand exactness
  const BoundedAnswer ans = exec.Answer(WholeSkyAvg(), bound).value();
  EXPECT_EQ(ans.answered_by, "base");
  EXPECT_TRUE(ans.error_bound_met);
  ASSERT_FALSE(ans.estimates.empty());
  EXPECT_TRUE(ans.estimates[0][0].exact);
  EXPECT_DOUBLE_EQ(ans.estimates[0][0].estimate, 100'000.0);
}

TEST_F(BoundedExecutorTest, EstimatesNearTruth) {
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  QualityBound bound;
  bound.max_relative_error = 0.05;
  const AggregateQuery q = WholeSkyAvg();
  const BoundedAnswer ans = exec.Answer(q, bound).value();
  const auto truth = RunExact(catalog_->photo_obj_all, q).value();
  ASSERT_EQ(ans.rows.size(), 1u);
  EXPECT_NEAR(ans.rows[0].values[0], truth[0].values[0],
              0.10 * truth[0].values[0]);
  EXPECT_NEAR(ans.rows[0].values[1], truth[0].values[1],
              0.10 * std::abs(truth[0].values[1]));
}

TEST_F(BoundedExecutorTest, SelectiveQueryEscalatesFurther) {
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  QualityBound bound;
  bound.max_relative_error = 0.10;
  // A 2-degree cone holds a small fraction of the sky: tiny layers see few
  // matches and their count CI is wide.
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  q.filter = FGetNearbyObjEq(185.0, 30.0, 2.0);
  const BoundedAnswer ans = exec.Answer(q, bound).value();
  EXPECT_TRUE(ans.error_bound_met);
  EXPECT_NE(ans.answered_by, "L2");
  // Sanity of the final estimate against truth.
  const auto truth = RunExact(catalog_->photo_obj_all, q).value();
  if (!ans.estimates[0][0].exact) {
    EXPECT_NEAR(ans.rows[0].values[0], truth[0].values[0],
                0.25 * truth[0].values[0] + 5.0);
  }
}

TEST_F(BoundedExecutorTest, MinMaxForcesBase) {
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  QualityBound bound;
  bound.max_relative_error = 0.5;
  AggregateQuery q;
  q.aggregates = {{AggKind::kMax, "redshift"}};
  const BoundedAnswer ans = exec.Answer(q, bound).value();
  // Sample extremes carry infinite relative error -> base fallback.
  EXPECT_EQ(ans.answered_by, "base");
  EXPECT_TRUE(ans.error_bound_met);
}

TEST_F(BoundedExecutorTest, MinMaxWithoutFallbackReportsUnmet) {
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  QualityBound bound;
  bound.max_relative_error = 0.5;
  bound.allow_base_fallback = false;
  AggregateQuery q;
  q.aggregates = {{AggKind::kMax, "redshift"}};
  const BoundedAnswer ans = exec.Answer(q, bound).value();
  EXPECT_FALSE(ans.error_bound_met);
  EXPECT_NE(ans.answered_by, "base");
  // Best-effort answer still present (the sample max).
  ASSERT_EQ(ans.rows.size(), 1u);
  EXPECT_GT(ans.rows[0].values[0], 0.0);
}

TEST_F(BoundedExecutorTest, GroupedEstimates) {
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  QualityBound bound;
  bound.max_relative_error = 0.10;
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "redshift"}};
  q.group_by = "obj_class";
  const BoundedAnswer ans = exec.Answer(q, bound).value();
  EXPECT_EQ(ans.rows.size(), 3u);
  const auto truth = RunExact(catalog_->photo_obj_all, q).value();
  // Match rows by key and compare counts within 20%.
  for (const auto& truth_row : truth) {
    bool found = false;
    for (size_t i = 0; i < ans.rows.size(); ++i) {
      if (ans.rows[i].group_key == truth_row.group_key) {
        found = true;
        EXPECT_NEAR(ans.rows[i].values[0], truth_row.values[0],
                    0.2 * truth_row.values[0]);
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(BoundedExecutorTest, TimeBudgetShortCircuits) {
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  QualityBound bound;
  bound.max_relative_error = 1e-9;  // unreachable by sampling
  bound.time_budget_seconds = 1e-5;  // essentially no time
  bound.allow_base_fallback = true;
  const BoundedAnswer ans = exec.Answer(WholeSkyAvg(), bound).value();
  // Either it answered from a small layer before the deadline or flagged the
  // deadline; it must NOT have burned through to base.
  EXPECT_NE(ans.answered_by, "base");
  EXPECT_FALSE(ans.error_bound_met);
  EXPECT_TRUE(ans.deadline_exceeded);
}

TEST_F(BoundedExecutorTest, GenerousBudgetStillMeetsBound) {
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  QualityBound bound;
  bound.max_relative_error = 0.05;
  bound.time_budget_seconds = 30.0;
  const BoundedAnswer ans = exec.Answer(WholeSkyAvg(), bound).value();
  EXPECT_TRUE(ans.error_bound_met);
  EXPECT_FALSE(ans.deadline_exceeded);
  EXPECT_LT(ans.elapsed_seconds, 30.0);
}

TEST_F(BoundedExecutorTest, AdaptiveFeedbackLoop) {
  QueryLog log;
  InterestTracker tracker =
      InterestTracker::Make({{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}})
          .value();
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_, &log, &tracker);
  QualityBound bound;
  bound.max_relative_error = 0.5;
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  q.filter = FGetNearbyObjEq(150.0, 12.0, 3.0);
  ASSERT_TRUE(exec.Answer(q, bound).ok());
  EXPECT_EQ(log.size(), 1);
  EXPECT_EQ(tracker.observed_points(), 2);
}

TEST_F(BoundedExecutorTest, AdaptCanBeDisabled) {
  QueryLog log;
  BoundedExecutorOptions options;
  options.adapt = false;
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_, &log, nullptr,
                       options);
  QualityBound bound;
  bound.max_relative_error = 0.5;
  ASSERT_TRUE(exec.Answer(WholeSkyAvg(), bound).ok());
  EXPECT_EQ(log.size(), 0);
}

TEST_F(BoundedExecutorTest, MalformedQueryFails) {
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  AggregateQuery empty;
  EXPECT_FALSE(exec.Answer(empty, QualityBound{}).ok());
}

TEST_F(BoundedExecutorTest, AnswerToStringIsInformative) {
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  QualityBound bound;
  bound.max_relative_error = 0.5;
  const BoundedAnswer ans = exec.Answer(WholeSkyAvg(), bound).value();
  const std::string s = ans.ToString();
  EXPECT_NE(s.find("error_bound_met=yes"), std::string::npos);
  EXPECT_NE(s.find("L2"), std::string::npos);
}

TEST_F(BoundedExecutorTest, TinyBudgetNeverTriggersBaseScan) {
  // Predictive admission for the base fallback: once a layer answer exists,
  // a budget that clearly cannot fit a full base scan must not launch one —
  // even if the deadline has not expired yet when the layers finish.
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  QualityBound bound;
  bound.max_relative_error = 1e-12;  // unreachable by sampling -> wants base
  bound.allow_base_fallback = true;
  // Budget chosen so the smallest layers can answer but a 100k-row base scan
  // predictably cannot fit. Warm the executor's per-row cost model first.
  QualityBound warm;
  warm.max_relative_error = 0.5;
  ASSERT_TRUE(exec.Answer(WholeSkyAvg(), warm).ok());
  Stopwatch base_clock;
  ASSERT_TRUE(RunExact(catalog_->photo_obj_all, WholeSkyAvg()).ok());
  const double base_seconds = base_clock.ElapsedSeconds();
  bound.time_budget_seconds = base_seconds * 0.05;
  const BoundedAnswer ans = exec.Answer(WholeSkyAvg(), bound).value();
  EXPECT_NE(ans.answered_by, "base");
  EXPECT_FALSE(ans.error_bound_met);
  EXPECT_TRUE(ans.deadline_exceeded);
  ASSERT_FALSE(ans.rows.empty());  // best layer answer still returned
  for (const auto& attempt : ans.attempts) {
    EXPECT_FALSE(attempt.is_base);
  }
}

TEST_F(BoundedExecutorTest, UnlimitedBudgetStillReachesBase) {
  // The admission gate must not block the base fallback when the budget is
  // unlimited (the ZeroBoundGoesToBase contract, re-checked next to the
  // gate's test for contrast).
  BoundedExecutor exec(&catalog_->photo_obj_all, hierarchy_);
  QualityBound bound;
  bound.max_relative_error = 1e-12;
  const BoundedAnswer ans = exec.Answer(WholeSkyAvg(), bound).value();
  EXPECT_EQ(ans.answered_by, "base");
  EXPECT_TRUE(ans.error_bound_met);
}

// ------------------------------------------------- EstimateOnImpression ---

TEST_F(BoundedExecutorTest, EstimateOnEmptyImpressionFails) {
  Impression empty("e", catalog_->photo_obj_all.schema(), 10,
                   SamplingPolicy::kUniform);
  EXPECT_FALSE(EstimateOnImpression(empty, WholeSkyAvg(), 0.95).ok());
}

TEST_F(BoundedExecutorTest, EstimateCountCiContainsTruthUsually) {
  const Impression& layer = hierarchy_->layer(1);  // 2000 rows
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  q.filter = Between("ra", 150.0, 200.0);
  const BoundedAnswer ans = EstimateOnImpression(layer, q, 0.99).value();
  const auto truth = RunExact(catalog_->photo_obj_all, q).value();
  EXPECT_GE(truth[0].values[0], ans.estimates[0][0].ci_lo * 0.95);
  EXPECT_LE(truth[0].values[0], ans.estimates[0][0].ci_hi * 1.05);
}

TEST_F(BoundedExecutorTest, EstimateGroupedOnDoubleKeyRejected) {
  const Impression& layer = hierarchy_->layer(2);
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  q.group_by = "ra";
  EXPECT_FALSE(EstimateOnImpression(layer, q, 0.95).ok());
}

// Confidence sweep: higher confidence always widens the interval.
class ConfidenceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConfidenceSweep, IntervalWidthMonotone) {
  SkyCatalogConfig config;
  config.num_rows = 20'000;
  const SkyCatalog catalog = GenerateSkyCatalog(config, 7).value();
  ImpressionSpec spec;
  spec.capacity = 1000;
  auto builder =
      ImpressionBuilder::Make(catalog.photo_obj_all.schema(), spec).value();
  ASSERT_TRUE(builder.IngestBatch(catalog.photo_obj_all).ok());
  AggregateQuery q;
  q.aggregates = {{AggKind::kAvg, "r"}};
  const double conf = GetParam();
  const auto lo = EstimateOnImpression(builder.impression(), q, conf).value();
  const auto hi =
      EstimateOnImpression(builder.impression(), q, conf + 0.04).value();
  EXPECT_GT(hi.estimates[0][0].ci_hi - hi.estimates[0][0].ci_lo,
            lo.estimates[0][0].ci_hi - lo.estimates[0][0].ci_lo);
}

INSTANTIATE_TEST_SUITE_P(Confidences, ConfidenceSweep,
                         ::testing::Values(0.5, 0.8, 0.9, 0.95));

}  // namespace
}  // namespace sciborq
