#ifndef SCIBORQ_COLUMN_TYPES_H_
#define SCIBORQ_COLUMN_TYPES_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace sciborq {

/// Physical column types. The science-warehouse workloads SciBORQ targets are
/// dominated by numeric observation attributes; strings cover identifiers and
/// class labels.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

inline std::string_view DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

inline bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

/// Row indices selected by a filter; shared currency between operators
/// (MonetDB-style late materialization: operators exchange candidate lists).
using SelectionVector = std::vector<int64_t>;

}  // namespace sciborq

#endif  // SCIBORQ_COLUMN_TYPES_H_
