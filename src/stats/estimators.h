#ifndef SCIBORQ_STATS_ESTIMATORS_H_
#define SCIBORQ_STATS_ESTIMATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "column/types.h"
#include "util/result.h"

namespace sciborq {

/// The quantile function of the standard normal (inverse CDF), via Acklam's
/// rational approximation (|relative error| < 1.15e-9). Domain: (0, 1).
double NormalQuantile(double p);

/// A point estimate with its sampling uncertainty, as returned to the user by
/// bounded query processing. `relative_error` is the half-width of the
/// confidence interval divided by |estimate| (infinite when estimate == 0 and
/// the half-width is positive); this is the quantity checked against the
/// user's error bound.
struct AggregateEstimate {
  double estimate = 0.0;
  double std_error = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  double confidence = 0.95;
  int64_t sample_rows = 0;   ///< rows that contributed to the estimate
  bool exact = false;        ///< true when computed on the full base data

  /// CI half-width / |estimate|; +inf for a zero estimate with positive CI.
  double RelativeError() const;

  std::string ToString() const;
};

/// Exact field-wise equality, doubles bit-for-bit (so NaN == NaN, matching
/// the wire layer's bit-exact round-trip guarantee).
inline bool operator==(const AggregateEstimate& a, const AggregateEstimate& b) {
  return BitIdentical(a.estimate, b.estimate) &&
         BitIdentical(a.std_error, b.std_error) &&
         BitIdentical(a.ci_lo, b.ci_lo) && BitIdentical(a.ci_hi, b.ci_hi) &&
         BitIdentical(a.confidence, b.confidence) &&
         a.sample_rows == b.sample_rows && a.exact == b.exact;
}

/// Finite population correction sqrt((N - n) / (N - 1)); 1 when N <= 1.
double FinitePopulationCorrection(int64_t sample_n, int64_t population_n);

// ---------------------------------------------------------------------------
// Uniform (simple random sample) estimators — classic survey statistics with
// CLT confidence intervals and finite-population correction.
// ---------------------------------------------------------------------------

/// Estimates the population mean from a uniform sample of `values` drawn from
/// a population of `population_n` rows.
Result<AggregateEstimate> EstimateMeanUniform(const std::vector<double>& values,
                                              int64_t population_n,
                                              double confidence = 0.95);

/// Estimates the population sum (N * sample mean).
Result<AggregateEstimate> EstimateSumUniform(const std::vector<double>& values,
                                             int64_t population_n,
                                             double confidence = 0.95);

/// Estimates the number of population rows satisfying a predicate, given that
/// `matching` of `sample_n` sampled rows match.
Result<AggregateEstimate> EstimateCountUniform(int64_t matching,
                                               int64_t sample_n,
                                               int64_t population_n,
                                               double confidence = 0.95);

// ---------------------------------------------------------------------------
// Horvitz–Thompson estimators for biased (unequal-probability) samples.
// Each sampled row carries its inclusion probability pi_i; the HT estimator
//   sum = Σ y_i / pi_i
// is unbiased for any probability design. Variance uses the Poisson-design
// approximation Σ (1 - pi_i) (y_i / pi_i)^2, which is the standard surrogate
// when joint inclusion probabilities are unavailable (Fog's Fisher model is
// exactly the conditioned-Poisson design).
// ---------------------------------------------------------------------------

/// HT estimate of the population sum of y over rows matching a predicate.
/// `values[i]` and `inclusion_probs[i]` describe the i-th *matching* sampled
/// row. Rows with pi <= 0 are InvalidArgument.
Result<AggregateEstimate> EstimateSumHorvitzThompson(
    const std::vector<double>& values,
    const std::vector<double>& inclusion_probs, double confidence = 0.95);

/// HT (Hájek ratio) estimate of the population mean of y over matching rows:
/// HT-sum(y) / HT-sum(1), with a linearized variance.
Result<AggregateEstimate> EstimateMeanHorvitzThompson(
    const std::vector<double>& values,
    const std::vector<double>& inclusion_probs, double confidence = 0.95);

/// HT estimate of the population count of matching rows: Σ 1 / pi_i.
Result<AggregateEstimate> EstimateCountHorvitzThompson(
    const std::vector<double>& inclusion_probs, double confidence = 0.95);

}  // namespace sciborq

#endif  // SCIBORQ_STATS_ESTIMATORS_H_
