#include "core/bounded_executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "exec/aggregate.h"
#include "exec/expr.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace sciborq {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Estimates one aggregate from the matching sampled rows and their
/// inclusion probabilities.
Result<AggregateEstimate> EstimateOneAggregate(
    const Table& sample, const SelectionVector& matching,
    const std::vector<double>& probs, const AggregateSpec& spec,
    double confidence) {
  if (matching.empty()) {
    // No sampled row matched. The point estimate is 0 but the sample carries
    // no information about how large the true answer could be (a small
    // sample easily misses a rare subpopulation entirely), so the interval
    // is unbounded and an error-bounded query escalates to a larger layer.
    AggregateEstimate est;
    est.estimate = 0.0;
    est.std_error = kInf;
    est.ci_lo = spec.kind == AggKind::kCount ? 0.0 : -kInf;
    est.ci_hi = kInf;
    est.confidence = confidence;
    est.sample_rows = 0;
    return est;
  }
  switch (spec.kind) {
    case AggKind::kCount:
      return EstimateCountHorvitzThompson(probs, confidence);
    case AggKind::kSum: {
      SCIBORQ_ASSIGN_OR_RETURN(std::vector<double> values,
                               GatherNumeric(sample, matching, spec.column));
      if (values.size() != probs.size()) {
        return Status::InvalidArgument(
            "SUM estimation does not support NULLs in the measure column");
      }
      return EstimateSumHorvitzThompson(values, probs, confidence);
    }
    case AggKind::kAvg: {
      SCIBORQ_ASSIGN_OR_RETURN(std::vector<double> values,
                               GatherNumeric(sample, matching, spec.column));
      if (values.empty()) {
        return Status::InvalidArgument("AVG over zero matching sample rows");
      }
      if (values.size() != probs.size()) {
        return Status::InvalidArgument(
            "AVG estimation does not support NULLs in the measure column");
      }
      return EstimateMeanHorvitzThompson(values, probs, confidence);
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      SCIBORQ_ASSIGN_OR_RETURN(std::vector<double> values,
                               GatherNumeric(sample, matching, spec.column));
      if (values.empty()) {
        return Status::InvalidArgument("MIN/MAX over zero matching rows");
      }
      AggregateEstimate est;
      est.estimate = spec.kind == AggKind::kMin
                         ? *std::min_element(values.begin(), values.end())
                         : *std::max_element(values.begin(), values.end());
      // Sample extremes carry no distribution-free error bound: an unseen
      // tuple can be arbitrarily more extreme. Report an unbounded CI so
      // error-bounded queries escalate to the base data.
      est.std_error = kInf;
      est.ci_lo = -kInf;
      est.ci_hi = kInf;
      est.confidence = confidence;
      est.sample_rows = static_cast<int64_t>(values.size());
      return est;
    }
    case AggKind::kVariance: {
      SCIBORQ_ASSIGN_OR_RETURN(std::vector<double> values,
                               GatherNumeric(sample, matching, spec.column));
      if (values.size() < 2) {
        return Status::InvalidArgument("VAR needs two matching sample rows");
      }
      double mean = 0.0;
      for (const double v : values) mean += v;
      mean /= static_cast<double>(values.size());
      double ss = 0.0;
      for (const double v : values) ss += (v - mean) * (v - mean);
      const double var = ss / static_cast<double>(values.size() - 1);
      AggregateEstimate est;
      est.estimate = var;
      // Normal-theory standard error of s^2: s^2 * sqrt(2/(m-1)).
      est.std_error =
          var * std::sqrt(2.0 / static_cast<double>(values.size() - 1));
      const double z = NormalQuantile(0.5 + confidence / 2.0);
      est.ci_lo = var - z * est.std_error;
      est.ci_hi = var + z * est.std_error;
      est.confidence = confidence;
      est.sample_rows = static_cast<int64_t>(values.size());
      return est;
    }
    case AggKind::kLast:
      return Status::InvalidArgument(
          "LAST is answered by the latest-value path, not the bounded "
          "executor");
  }
  return Status::Internal("unreachable aggregate kind");
}

/// Estimates every aggregate over one set of matching rows, appending a
/// result row + estimate row to the answer.
Status EstimateRow(const Table& sample, const SelectionVector& matching,
                   const std::vector<double>& probs,
                   const AggregateQuery& query, double confidence, Value key,
                   BoundedAnswer* answer) {
  QueryResultRow row;
  row.group_key = std::move(key);
  row.input_rows = static_cast<int64_t>(matching.size());
  std::vector<AggregateEstimate> ests;
  ests.reserve(query.aggregates.size());
  for (const auto& spec : query.aggregates) {
    SCIBORQ_ASSIGN_OR_RETURN(
        AggregateEstimate est,
        EstimateOneAggregate(sample, matching, probs, spec, confidence));
    row.values.push_back(est.estimate);
    ests.push_back(est);
  }
  answer->rows.push_back(std::move(row));
  answer->estimates.push_back(std::move(ests));
  return Status::OK();
}

double WorstRelativeError(const BoundedAnswer& answer) {
  double worst = 0.0;
  for (const auto& row : answer.estimates) {
    for (const auto& est : row) {
      worst = std::max(worst, est.RelativeError());
    }
  }
  return worst;
}

}  // namespace

Result<BoundedAnswer> EstimateOnImpression(const Impression& impression,
                                           const AggregateQuery& query,
                                           double confidence,
                                           ThreadPool* pool) {
  if (query.aggregates.empty()) {
    return Status::InvalidArgument("query has no aggregates");
  }
  if (impression.size() == 0) {
    return Status::FailedPrecondition("impression is empty");
  }
  const Table& sample = impression.rows();
  SelectionVector matching;
  if (query.filter) {
    SCIBORQ_ASSIGN_OR_RETURN(matching, SelectAll(sample, *query.filter, pool));
  } else {
    matching.resize(static_cast<size_t>(sample.num_rows()));
    for (int64_t i = 0; i < sample.num_rows(); ++i) {
      matching[static_cast<size_t>(i)] = i;
    }
  }

  BoundedAnswer answer;
  answer.answered_by = impression.name();

  if (query.group_by.empty()) {
    std::vector<double> probs;
    probs.reserve(matching.size());
    for (const int64_t row : matching) {
      probs.push_back(impression.InclusionProbability(row));
    }
    SCIBORQ_RETURN_NOT_OK(EstimateRow(sample, matching, probs, query,
                                      confidence, Value::Null(), &answer));
    return answer;
  }

  // Grouped: partition the matching rows by key, estimate per group. Groups
  // entirely unseen by the sample are (necessarily) absent — a fundamental
  // limitation of sampling shared by all AQP systems.
  SCIBORQ_ASSIGN_OR_RETURN(const Column* key_col,
                           sample.ColumnByName(query.group_by));
  if (key_col->type() == DataType::kDouble) {
    return Status::InvalidArgument(
        "grouping on double columns is not supported (bin them first)");
  }
  std::vector<Value> keys;
  std::vector<SelectionVector> partitions;
  std::unordered_map<int64_t, size_t> int_groups;
  std::unordered_map<std::string, size_t> str_groups;
  for (const int64_t row : matching) {
    if (key_col->IsNull(row)) continue;
    size_t idx = 0;
    if (key_col->type() == DataType::kInt64) {
      const auto [it, inserted] =
          int_groups.emplace(key_col->GetInt64(row), partitions.size());
      idx = it->second;
      if (inserted) {
        keys.emplace_back(key_col->GetInt64(row));
        partitions.emplace_back();
      }
    } else {
      const auto [it, inserted] =
          str_groups.emplace(key_col->GetString(row), partitions.size());
      idx = it->second;
      if (inserted) {
        keys.emplace_back(key_col->GetString(row));
        partitions.emplace_back();
      }
    }
    partitions[idx].push_back(row);
  }
  for (size_t g = 0; g < partitions.size(); ++g) {
    std::vector<double> probs;
    probs.reserve(partitions[g].size());
    for (const int64_t row : partitions[g]) {
      probs.push_back(impression.InclusionProbability(row));
    }
    SCIBORQ_RETURN_NOT_OK(EstimateRow(sample, partitions[g], probs, query,
                                      confidence, keys[g], &answer));
  }
  return answer;
}

std::string BoundedAnswer::ToString() const {
  std::string out = StrFormat(
      "BoundedAnswer(by=%s, error_bound_met=%s, deadline_exceeded=%s, "
      "%.3fms, %zu row(s))",
      answered_by.c_str(), error_bound_met ? "yes" : "no",
      deadline_exceeded ? "yes" : "no", elapsed_seconds * 1e3, rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    if (!rows[r].group_key.is_null()) {
      out += "\n  group " + rows[r].group_key.ToString() + ":";
    }
    for (const auto& est : estimates[r]) {
      out += "\n    " + est.ToString();
    }
  }
  return out;
}

BoundedExecutor::BoundedExecutor(const Table* base,
                                 const ImpressionHierarchy* hierarchy,
                                 QueryLog* log, InterestTracker* tracker,
                                 Options options)
    : base_(base),
      hierarchy_(hierarchy),
      log_(log),
      tracker_(tracker),
      options_(options) {
  SCIBORQ_CHECK(base_ != nullptr);
  SCIBORQ_CHECK(hierarchy_ != nullptr);
  if (options_.shared_pool != nullptr) {
    pool_ = options_.shared_pool;
  } else {
    const int threads = ThreadPool::ResolveThreadCount(options_.num_threads);
    if (threads > 1) {
      owned_pool_ = std::make_unique<ThreadPool>(threads);
      pool_ = owned_pool_.get();
    }
  }
}

Result<BoundedAnswer> BoundedExecutor::Answer(const AggregateQuery& query,
                                              const QualityBound& bound) {
  Stopwatch total;
  const Deadline deadline =
      bound.time_budget_seconds > 0.0
          ? Deadline::AfterSeconds(bound.time_budget_seconds)
          : Deadline::Unlimited();

  // The adaptive feedback loop (§3.1): every answered query sharpens the
  // focal-point statistics for subsequent impression maintenance.
  if (options_.adapt) {
    if (log_ != nullptr) log_->Record(query);
    if (tracker_ != nullptr) tracker_->ObserveQuery(query);
  }

  BoundedAnswer best;
  bool have_answer = false;
  std::vector<LayerAttempt> attempts;

  std::vector<const Impression*> order = hierarchy_->EscalationOrder();
  for (const Impression* layer : order) {
    if (layer->size() == 0) continue;
    // Predictive admission: skip escalation when the next layer clearly
    // cannot finish inside the remaining budget (keep the answer we have).
    if (deadline.limited() && have_answer && est_seconds_per_row_ > 0.0) {
      const double predicted =
          est_seconds_per_row_ * static_cast<double>(layer->size());
      if (predicted > deadline.RemainingSeconds()) {
        best.deadline_exceeded = true;
        break;
      }
    }
    // Always attempt at least the smallest layer, even on a blown budget:
    // the contract is "the most representative result obtainable within the
    // time frame" (§1), and the smallest impression is that result.
    if (deadline.Expired() && have_answer) {
      best.deadline_exceeded = true;
      break;
    }
    Stopwatch layer_watch;
    Result<BoundedAnswer> attempt =
        EstimateOnImpression(*layer, query, bound.confidence, pool_);
    const double elapsed = layer_watch.ElapsedSeconds();
    if (layer->size() > 0) {
      const double per_row = elapsed / static_cast<double>(layer->size());
      est_seconds_per_row_ = est_seconds_per_row_ > 0.0
                                 ? 0.5 * (est_seconds_per_row_ + per_row)
                                 : per_row;
    }
    LayerAttempt trace;
    trace.layer_name = layer->name();
    trace.layer_rows = layer->size();
    trace.elapsed_seconds = elapsed;
    if (!attempt.ok()) {
      // A layer can legitimately fail (e.g. zero matching rows on a tiny
      // impression) — escalate.
      trace.worst_relative_error = kInf;
      attempts.push_back(std::move(trace));
      continue;
    }
    const double worst = WorstRelativeError(attempt.value());
    trace.matching_rows =
        attempt.value().rows.empty() ? 0 : attempt.value().rows[0].input_rows;
    trace.worst_relative_error = worst;
    trace.met_error_bound =
        bound.max_relative_error > 0.0 && worst <= bound.max_relative_error;
    attempts.push_back(trace);

    best = std::move(attempt).value();
    have_answer = true;
    if (trace.met_error_bound) {
      best.error_bound_met = true;
      best.attempts = std::move(attempts);
      best.elapsed_seconds = total.ElapsedSeconds();
      return best;
    }
  }

  // Final escalation: the base columns, "for a zero error margin" (§3.2) —
  // unless forbidden, the clock ran out, or the predicted full-scan cost
  // cannot fit the remaining budget. Predictive admission applies to the
  // base table exactly as to impression layers: a 10 ms budget must never
  // launch an unbounded base scan just because the deadline has not expired
  // *yet*. With no layer answer at all, the scan proceeds regardless —
  // "always return the best answer obtained so far" requires obtaining one.
  bool base_admitted = bound.allow_base_fallback && !best.deadline_exceeded &&
                       !deadline.Expired();
  if (base_admitted && deadline.limited() && have_answer &&
      est_seconds_per_row_ > 0.0) {
    const double predicted =
        est_seconds_per_row_ * static_cast<double>(base_->num_rows());
    if (predicted > deadline.RemainingSeconds()) {
      base_admitted = false;
      best.deadline_exceeded = true;
    }
  }
  if (base_admitted) {
    Stopwatch base_watch;
    SCIBORQ_ASSIGN_OR_RETURN(std::vector<QueryResultRow> exact_rows,
                             RunExact(*base_, query, pool_));
    BoundedAnswer exact;
    exact.rows = std::move(exact_rows);
    exact.answered_by = "base";
    exact.error_bound_met = true;
    for (const auto& row : exact.rows) {
      std::vector<AggregateEstimate> ests;
      ests.reserve(row.values.size());
      for (const double v : row.values) {
        AggregateEstimate est;
        est.estimate = v;
        est.ci_lo = v;
        est.ci_hi = v;
        est.confidence = bound.confidence;
        est.sample_rows = row.input_rows;
        est.exact = true;
        ests.push_back(est);
      }
      exact.estimates.push_back(std::move(ests));
    }
    LayerAttempt trace;
    trace.layer_name = "base";
    trace.layer_rows = base_->num_rows();
    trace.elapsed_seconds = base_watch.ElapsedSeconds();
    trace.met_error_bound = true;
    trace.is_base = true;
    trace.matching_rows =
        exact.rows.empty() ? 0 : exact.rows[0].input_rows;
    attempts.push_back(trace);
    exact.attempts = std::move(attempts);
    exact.elapsed_seconds = total.ElapsedSeconds();
    exact.deadline_exceeded = deadline.Expired();
    return exact;
  }

  if (!have_answer) {
    return Status::QualityBoundExceeded(
        "no layer produced an answer within the budget");
  }
  best.error_bound_met = false;
  best.deadline_exceeded = best.deadline_exceeded || deadline.Expired();
  best.attempts = std::move(attempts);
  best.elapsed_seconds = total.ElapsedSeconds();
  return best;
}

}  // namespace sciborq
