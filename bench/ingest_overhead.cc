// CLAIM-INGEST (§3.3): impressions "are constructed with little overhead
// during the load phase, without the need to visit the base tables after the
// data is stored". Measures ingest throughput of the bare generator, of
// load + Algorithm R, load + Last Seen, load + biased reservoir (including
// the per-tuple f̆ weight computation), and load + a full 3-layer hierarchy.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/hierarchy.h"
#include "core/impression_builder.h"
#include "skyserver/catalog.h"

namespace sciborq {
namespace {

constexpr int64_t kBatch = 50'000;

SkyCatalogConfig StreamConfig() {
  SkyCatalogConfig config;
  config.num_rows = kBatch;
  return config;
}

InterestTracker* SharedTracker() {
  static InterestTracker* tracker = [] {
    auto* t = new InterestTracker(bench::MakeRaDecTracker());
    auto gen = bench::Unwrap(
        ConeWorkloadGenerator::Make(bench::FocusedWorkload(), 29));
    for (int i = 0; i < 400; ++i) t->ObserveQuery(gen.Next());
    return t;
  }();
  return tracker;
}

void BM_LoadOnly(benchmark::State& state) {
  SkyStream stream(StreamConfig(), 29);
  for (auto _ : state) {
    Table batch = stream.NextBatch(kBatch);
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_LoadOnly);

void BM_LoadPlusUniform(benchmark::State& state) {
  SkyStream stream(StreamConfig(), 29);
  ImpressionSpec spec;
  spec.capacity = 10'000;
  spec.seed = 29;
  auto builder = bench::Unwrap(ImpressionBuilder::Make(stream.schema(), spec));
  for (auto _ : state) {
    const Table batch = stream.NextBatch(kBatch);
    SCIBORQ_CHECK(builder.IngestBatch(batch).ok());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_LoadPlusUniform);

void BM_LoadPlusLastSeen(benchmark::State& state) {
  SkyStream stream(StreamConfig(), 29);
  ImpressionSpec spec;
  spec.capacity = 10'000;
  spec.policy = SamplingPolicy::kLastSeen;
  spec.expected_ingest = kBatch;
  spec.seed = 29;
  auto builder = bench::Unwrap(ImpressionBuilder::Make(stream.schema(), spec));
  for (auto _ : state) {
    const Table batch = stream.NextBatch(kBatch);
    SCIBORQ_CHECK(builder.IngestBatch(batch).ok());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_LoadPlusLastSeen);

void BM_LoadPlusBiased(benchmark::State& state) {
  SkyStream stream(StreamConfig(), 29);
  ImpressionSpec spec;
  spec.capacity = 10'000;
  spec.policy = SamplingPolicy::kBiased;
  spec.tracker = SharedTracker();
  spec.seed = 29;
  auto builder = bench::Unwrap(ImpressionBuilder::Make(stream.schema(), spec));
  for (auto _ : state) {
    const Table batch = stream.NextBatch(kBatch);
    SCIBORQ_CHECK(builder.IngestBatch(batch).ok());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_LoadPlusBiased);

void BM_LoadPlusHierarchy(benchmark::State& state) {
  SkyStream stream(StreamConfig(), 29);
  ImpressionSpec spec;
  spec.policy = SamplingPolicy::kBiased;
  spec.tracker = SharedTracker();
  spec.seed = 29;
  auto hierarchy = bench::Unwrap(ImpressionHierarchy::Make(
      stream.schema(), {{"L0", 10'000}, {"L1", 1'000}, {"L2", 100}}, spec));
  for (auto _ : state) {
    const Table batch = stream.NextBatch(kBatch);
    SCIBORQ_CHECK(hierarchy.IngestBatch(batch).ok());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_LoadPlusHierarchy);

}  // namespace
}  // namespace sciborq

int main(int argc, char** argv) {
  sciborq::bench::Header("CLAIM-INGEST: load throughput with impression maintenance");
  sciborq::bench::Expectation(
      "items_per_second of load+sampling within a small factor of bare load; "
      "biased adds the O(beta) f-breve weight per tuple; hierarchy adds the "
      "derived-layer refresh");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sciborq::bench::Measured("compare items_per_second across the five variants");
  return 0;
}
