#include "stats/histogram2d.h"

#include <algorithm>
#include <cmath>

#include "stats/kde.h"
#include "util/string_util.h"

namespace sciborq {

Result<StreamingHistogram2D> StreamingHistogram2D::Make(
    double min_x, double width_x, int bins_x, double min_y, double width_y,
    int bins_y) {
  if (bins_x <= 0 || bins_y <= 0) {
    return Status::InvalidArgument("2-D histogram needs positive bin counts");
  }
  if (!(width_x > 0.0) || !(width_y > 0.0) || !std::isfinite(width_x) ||
      !std::isfinite(width_y)) {
    return Status::InvalidArgument("2-D histogram widths must be positive");
  }
  if (!std::isfinite(min_x) || !std::isfinite(min_y)) {
    return Status::InvalidArgument("2-D histogram origin must be finite");
  }
  return StreamingHistogram2D(min_x, width_x, bins_x, min_y, width_y, bins_y);
}

int StreamingHistogram2D::CellIndexX(double x) const {
  const double raw = (x - min_x_) / width_x_;
  if (raw < 0.0) return 0;
  const int idx = static_cast<int>(raw);
  return idx >= bins_x_ ? bins_x_ - 1 : idx;
}

int StreamingHistogram2D::CellIndexY(double y) const {
  const double raw = (y - min_y_) / width_y_;
  if (raw < 0.0) return 0;
  const int idx = static_cast<int>(raw);
  return idx >= bins_y_ ? bins_y_ - 1 : idx;
}

void StreamingHistogram2D::Observe(double x, double y) {
  const double rx = (x - min_x_) / width_x_;
  const double ry = (y - min_y_) / width_y_;
  if (rx < 0.0 || rx >= bins_x_ || ry < 0.0 || ry >= bins_y_) {
    ++clamped_count_;
  }
  CellStats& c =
      cells_[static_cast<size_t>(CellIndexY(y)) * static_cast<size_t>(bins_x_) +
             static_cast<size_t>(CellIndexX(x))];
  c.count += 1.0;
  c.mean_x += (x - c.mean_x) / c.count;
  c.mean_y += (y - c.mean_y) / c.count;
  ++total_count_;
  weighted_total_ += 1.0;
}

void StreamingHistogram2D::Decay(double factor, double prune_below) {
  if (factor >= 1.0) return;
  weighted_total_ = 0.0;
  for (auto& c : cells_) {
    c.count *= factor;
    if (c.count < prune_below) c = CellStats{};
    weighted_total_ += c.count;
  }
}

Status StreamingHistogram2D::Merge(const StreamingHistogram2D& other) {
  if (other.bins_x_ != bins_x_ || other.bins_y_ != bins_y_ ||
      other.width_x_ != width_x_ || other.width_y_ != width_y_ ||
      other.min_x_ != min_x_ || other.min_y_ != min_y_) {
    return Status::InvalidArgument(
        "cannot merge 2-D histograms with different geometry");
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    CellStats& a = cells_[i];
    const CellStats& b = other.cells_[i];
    const double total = a.count + b.count;
    if (total > 0.0) {
      a.mean_x = (a.mean_x * a.count + b.mean_x * b.count) / total;
      a.mean_y = (a.mean_y * a.count + b.mean_y * b.count) / total;
    }
    a.count = total;
  }
  total_count_ += other.total_count_;
  clamped_count_ += other.clamped_count_;
  weighted_total_ += other.weighted_total_;
  return Status::OK();
}

void StreamingHistogram2D::Reset() {
  for (auto& c : cells_) c = CellStats{};
  total_count_ = 0;
  clamped_count_ = 0;
  weighted_total_ = 0.0;
}

std::string StreamingHistogram2D::ToString() const {
  std::string out = StrFormat(
      "StreamingHistogram2D(%dx%d cells, wx=%.4g, wy=%.4g, N=%lld)", bins_x_,
      bins_y_, width_x_, width_y_, static_cast<long long>(total_count_));
  for (int j = 0; j < bins_y_; ++j) {
    for (int i = 0; i < bins_x_; ++i) {
      const CellStats& c = cell(i, j);
      if (c.count <= 0.0) continue;
      out += StrFormat("\n  cell(%d,%d): c=%.3f m=(%.4g, %.4g)", i, j, c.count,
                       c.mean_x, c.mean_y);
    }
  }
  return out;
}

double BinnedKde2D::Evaluate(double x, double y) const {
  const double n = hist_->weighted_total();
  if (n <= 0.0) return 0.0;
  const double wx = hist_->width_x();
  const double wy = hist_->width_y();
  double acc = 0.0;
  for (const auto& c : hist_->cells()) {
    if (c.count <= 0.0) continue;
    acc += c.count * KernelValue(KernelType::kGaussian, (x - c.mean_x) / wx) *
           KernelValue(KernelType::kGaussian, (y - c.mean_y) / wy);
  }
  return acc / (n * wx * wy);
}

}  // namespace sciborq
