#ifndef SCIBORQ_STATS_KDE_H_
#define SCIBORQ_STATS_KDE_H_

#include <cstdint>
#include <vector>

#include "stats/histogram.h"
#include "util/result.h"

namespace sciborq {

/// Kernel shapes for density estimation. The paper uses the standard normal;
/// Epanechnikov is provided as the classical efficiency-optimal alternative.
enum class KernelType {
  kGaussian,
  kEpanechnikov,
};

/// K(u): the kernel evaluated at a normalized offset.
double KernelValue(KernelType kernel, double u);

/// The full kernel density estimator f-hat of the paper (§4):
///   f̂(x) = N^{-1} Σ_i K_h(x − x_i),  K_h(u) = h^{-1} K(u / h).
/// It stores all N observed predicate values, so evaluation is O(N) — this is
/// exactly the cost the binned estimator below is designed to avoid.
class FullKde {
 public:
  /// InvalidArgument when `points` is empty or `bandwidth` is not positive.
  static Result<FullKde> Make(std::vector<double> points, double bandwidth,
                              KernelType kernel = KernelType::kGaussian);

  /// Density estimate at x; O(N).
  double Evaluate(double x) const;

  double bandwidth() const { return bandwidth_; }
  int64_t num_points() const { return static_cast<int64_t>(points_.size()); }

 private:
  FullKde(std::vector<double> points, double bandwidth, KernelType kernel)
      : points_(std::move(points)), bandwidth_(bandwidth), kernel_(kernel) {}

  std::vector<double> points_;
  double bandwidth_;
  KernelType kernel_;
};

/// Silverman's rule-of-thumb bandwidth: 0.9 * min(sd, IQR/1.34) * n^{-1/5}.
/// Returns 0 for fewer than 2 points or degenerate spread.
double SilvermanBandwidth(const std::vector<double>& points);

/// Scott's rule: 1.06 * sd * n^{-1/5}.
double ScottBandwidth(const std::vector<double>& points);

/// The paper's constant-time binned estimator f-breve (§4):
///   f̆(x) = 1 / (N·w) Σ_{i=1..β} c_i · φ((x − m_i) / w)
/// where (c_i, m_i) are the per-bin count and mean of the predicate-set
/// histogram and the bandwidth is pinned to the bin width w. Evaluation is
/// O(β) with β ≪ N and independent of the workload size.
///
/// Holds a non-owning pointer to the histogram so that the estimate tracks
/// the live workload statistics (the adaptivity property of §3.1); the
/// histogram must outlive the estimator. Use Snapshot() for a frozen copy.
class BinnedKde {
 public:
  explicit BinnedKde(const StreamingHistogram* hist,
                     KernelType kernel = KernelType::kGaussian)
      : hist_(hist), kernel_(kernel) {}

  /// Density estimate at x; O(β). Returns 0 when no values observed yet.
  double Evaluate(double x) const;

  /// The workload mass N backing the estimate (weighted under decay).
  double total_weight() const { return hist_->weighted_total(); }

  const StreamingHistogram& histogram() const { return *hist_; }

 private:
  const StreamingHistogram* hist_;
  KernelType kernel_;
};

/// A frozen f-breve: copies the (c_i, m_i) pairs out of a histogram so the
/// estimate no longer changes. Used when an impression layer is derived and
/// its interest profile must be pinned.
class FrozenBinnedKde {
 public:
  explicit FrozenBinnedKde(const StreamingHistogram& hist,
                           KernelType kernel = KernelType::kGaussian);

  double Evaluate(double x) const;
  double total_weight() const { return total_weight_; }

 private:
  std::vector<StreamingHistogram::BinStats> bins_;
  double bin_width_;
  double total_weight_;
  KernelType kernel_;
};

/// Simpson-rule integral of a density over [lo, hi]; test/diagnostic helper
/// for verifying that estimators integrate to ~1 (the paper's §4 identity).
template <typename F>
double IntegrateDensity(const F& f, double lo, double hi, int steps = 2000) {
  if (steps % 2 != 0) ++steps;
  const double h = (hi - lo) / steps;
  double acc = f(lo) + f(hi);
  for (int i = 1; i < steps; ++i) {
    acc += f(lo + h * i) * ((i % 2 == 0) ? 2.0 : 4.0);
  }
  return acc * h / 3.0;
}

}  // namespace sciborq

#endif  // SCIBORQ_STATS_KDE_H_
