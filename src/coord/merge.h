#ifndef SCIBORQ_COORD_MERGE_H_
#define SCIBORQ_COORD_MERGE_H_

#include <string>
#include <vector>

#include "api/engine.h"
#include "exec/aggregate.h"
#include "util/result.h"

namespace sciborq {

/// One shard's contribution to a fan-out: its label ("shard0", ...), the
/// transport/engine status, and — when the status is OK — the outcome it
/// returned plus how long the round trip took.
struct ShardAnswer {
  std::string label;
  Status status = Status::OK();
  QueryOutcome outcome;
  double elapsed_seconds = 0.0;
};

struct MergeOptions {
  /// The aggregates of the fanned-out query, in SELECT order — each kind
  /// decides its composition rule (COUNT/SUM add, AVG/VAR merge moments or
  /// weight by rows, MIN/MAX take the extreme).
  std::vector<AggregateSpec> aggregates;
  /// Confidence level for the composed intervals.
  double confidence = 0.95;
  /// Shards the query fanned out to; fewer OK answers => degraded merge.
  int shards_total = 0;
};

/// Composes the shards' partial answers into one global QueryOutcome.
///
/// Two regimes:
///  - *Moments merge* — every responder answered exactly and shipped its
///    Welford partials (QueryExecOptions::mergeable). States merge per group
///    key in shard order via RunningMoments::Merge, then finish; whenever
///    each shard's slice folded as one morsel, the merged values are
///    bit-identical to a single-node run over the concatenated data.
///  - *Estimate composition* — at least one responder answered from an
///    impression (no partials). Point estimates compose per the aggregate's
///    kind with error propagation: COUNT/SUM sum (se^2 adds), AVG weights by
///    input rows, VAR row-weights the shard variances, MIN/MAX take the
///    extreme (se of the winning shard). Intervals use the normal quantile
///    at `confidence`.
///
/// Degraded mode (OK answers < shards_total): the merge still answers from
/// the responders, but flags `partial`, scales COUNT/SUM up by
/// total/responded, widens every standard error by the missing fraction,
/// and clears exact/error_bound_met — the caller knows exactly what the
/// answer covers. The escalation trace lists every shard's attempts under a
/// "shardN/" prefix; unreachable shards contribute a synthetic attempt with
/// infinite error.
///
/// Errors: InvalidArgument when no shard answered OK, or when responders
/// disagree on result shape (different aggregate counts).
Result<QueryOutcome> MergeShardOutcomes(const std::vector<ShardAnswer>& shards,
                                        const MergeOptions& options);

/// Merges per-shard catalog listings into the coordinator's view: one entry
/// per table name with rows/population/log depth summed, the first
/// responder's schema and layer geometry, and `shards` = how many shards
/// hold the table. Output sorted by name.
std::vector<TableInfo> MergeTableInfos(
    const std::vector<std::vector<TableInfo>>& per_shard);

}  // namespace sciborq

#endif  // SCIBORQ_COORD_MERGE_H_
