#include "util/binio.h"

#include <cstring>

#include "util/string_util.h"

namespace sciborq {

// -- BinaryWriter -----------------------------------------------------------

void BinaryWriter::PutU32(uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(bytes, 4);
}

void BinaryWriter::PutU64(uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(bytes, 8);
}

void BinaryWriter::PutF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void BinaryWriter::PutRaw(const void* data, size_t n) {
  // Empty vectors hand their (possibly null) data() straight here; append
  // with a null pointer is formally UB even for n == 0.
  if (n == 0) return;
  buf_.append(static_cast<const char*>(data), n);
}

// -- BinaryReader -----------------------------------------------------------

Result<uint8_t> BinaryReader::ReadU8() {
  if (remaining() < 1) {
    return Status::InvalidArgument("wire: truncated message (need 1 byte)");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<bool> BinaryReader::ReadBool() {
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t b, ReadU8());
  if (b > 1) {
    return Status::InvalidArgument(
        StrFormat("wire: bool byte must be 0/1, got %u", b));
  }
  return b == 1;
}

Result<uint32_t> BinaryReader::ReadU32() {
  if (remaining() < 4) {
    return Status::InvalidArgument("wire: truncated message (need 4 bytes)");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  if (remaining() < 8) {
    return Status::InvalidArgument("wire: truncated message (need 8 bytes)");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  SCIBORQ_ASSIGN_OR_RETURN(const uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> BinaryReader::ReadF64() {
  SCIBORQ_ASSIGN_OR_RETURN(const uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t len, ReadU32());
  if (static_cast<int64_t>(len) > remaining()) {
    return Status::InvalidArgument(
        StrFormat("wire: string length %u exceeds the %lld remaining bytes",
                  len, static_cast<long long>(remaining())));
  }
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

Result<std::string_view> BinaryReader::ReadRaw(size_t n) {
  if (static_cast<int64_t>(n) > remaining()) {
    return Status::InvalidArgument(
        StrFormat("wire: %zu raw bytes requested, %lld remain", n,
                  static_cast<long long>(remaining())));
  }
  const std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

Status BinaryReader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("wire: %lld trailing byte(s) after message",
                  static_cast<long long>(remaining())));
  }
  return Status::OK();
}

}  // namespace sciborq
