// SkyServer exploration: the paper's §2.1 scenario through the Engine
// facade. An astronomer's historical cone-query trace is replayed into the
// engine's workload state (RecordWorkload — the SkyServer log mining), the
// overnight load then builds *biased* impressions concentrated on the
// explored region, and next morning the same scientific questions come back
// far faster than the base scan, with confidence intervals — asked through
// a Session that carries the table and the contract.
//
// Also demonstrates the dimension join (Field) over a layer snapshot.

#include <cstdio>

#include "api/engine.h"
#include "api/session.h"
#include "exec/join.h"
#include "skyserver/catalog.h"
#include "workload/generator.h"

using namespace sciborq;

namespace {

template <typename T>
T OrDie(Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "fatal: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

void OrDie(Status st) {
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // The warehouse: fact table + dimensions.
  SkyCatalogConfig config;
  config.num_rows = 600'000;
  const SkyCatalog catalog = OrDie(GenerateSkyCatalog(config, 7));
  std::printf("PhotoObjAll: %lld rows | Field: %lld rows | PhotoTag: %lld rows\n\n",
              static_cast<long long>(catalog.photo_obj_all.num_rows()),
              static_cast<long long>(catalog.field.num_rows()),
              static_cast<long long>(catalog.photo_tag.num_rows()));

  // The engine table: interest tracked on (ra, dec) => biased impressions.
  Engine engine;
  TableOptions table_options;
  table_options.layers = {{"day", 30'000}, {"hour", 3'000}};
  table_options.tracked_attributes = {{"ra", 120.0, 3.0, 40},
                                      {"dec", 0.0, 1.5, 40}};
  table_options.seed = 7;
  OrDie(engine.CreateTable("photo_obj_all", catalog.photo_obj_all.schema(),
                           table_options));

  // Phase 1 — the astronomer's exploration history around (150, 12): each
  // logged query sharpens the interest histograms before any data loads.
  ConeWorkloadConfig exploration;
  exploration.focal_points = {FocalPoint{150.0, 12.0, 1.0, 2.0}};
  auto generator = OrDie(ConeWorkloadGenerator::Make(exploration, 7));
  std::printf("replaying 200 exploration queries into the workload state...\n");
  for (int i = 0; i < 200; ++i) {
    OrDie(engine.RecordWorkload("photo_obj_all", generator.Next()));
  }
  const auto logged = OrDie(engine.LoggedSql("photo_obj_all"));
  std::printf("query log holds %zu replayable statements, e.g.\n  %s\n\n",
              logged.size(), logged.front().c_str());

  // Phase 2 — overnight load: impressions are built *during* ingest, biased
  // by the tracked interest.
  OrDie(engine.IngestBatch("photo_obj_all", catalog.photo_obj_all));
  std::printf("%s\n\n", OrDie(engine.DescribeTable("photo_obj_all")).c_str());

  // Phase 3 — next morning: the same scientific question, with bounds, via
  // a session that pins the table and default contract once.
  Session session(&engine);
  OrDie(session.Use("photo_obj_all"));
  QueryBounds default_bounds;
  default_bounds.max_relative_error = 0.10;
  session.set_default_bounds(default_bounds);

  const QueryOutcome fast = OrDie(session.Query(
      "SELECT COUNT(*), AVG(redshift) "
      "WHERE (obj_class = 'GALAXY') AND (cone(ra, dec; 150.5, 12.5; r=2.5))"));
  std::printf("bounded answer (10%% error accepted):\n%s\n\n",
              fast.ToString().c_str());

  const QueryOutcome exact = OrDie(session.Query(
      "SELECT COUNT(*), AVG(redshift) "
      "WHERE (obj_class = 'GALAXY') AND (cone(ra, dec; 150.5, 12.5; r=2.5)) "
      "EXACT"));
  std::printf("exact answer: count=%.0f avg_z=%.4f in %.1f ms (vs %.1f ms "
              "bounded)\n\n",
              exact.rows[0].values[0], exact.rows[0].values[1],
              exact.elapsed_seconds * 1e3, fast.elapsed_seconds * 1e3);

  // Bonus: dimension join on a layer snapshot — observing conditions of the
  // explored region, estimated from the sample.
  const Table sample = OrDie(engine.LayerSnapshot("photo_obj_all", 0));
  const Table joined =
      OrDie(HashJoin(sample, "field_id", catalog.field, "field_id"));
  AggregateQuery seeing;
  seeing.aggregates = {{AggKind::kAvg, "seeing"}};
  seeing.filter = Cone("ra", "dec", 150.5, 12.5, 2.5);
  const auto seeing_rows = OrDie(RunExact(joined, seeing));
  std::printf("impression ⋈ Field: avg seeing near the focus = %.3f arcsec\n",
              seeing_rows[0].values[0]);
  return 0;
}
