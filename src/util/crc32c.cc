#include "util/crc32c.h"

#include <array>

namespace sciborq {

namespace {

/// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

/// 4 lookup tables (slicing-by-4): table[0] is the classic byte-at-a-time
/// table, table[k] advances a byte that sits k positions deeper in the word.
struct Tables {
  uint32_t t[4][256];
};

constexpr Tables BuildTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (int k = 1; k < 4; ++k) {
      tables.t[k][i] =
          (tables.t[k - 1][i] >> 8) ^ tables.t[0][tables.t[k - 1][i] & 0xffu];
    }
  }
  return tables;
}

constexpr Tables kTables = BuildTables();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xffu] ^ kTables.t[2][(crc >> 8) & 0xffu] ^
          kTables.t[1][(crc >> 16) & 0xffu] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xffu];
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace sciborq
