#ifndef SCIBORQ_EXEC_SORT_H_
#define SCIBORQ_EXEC_SORT_H_

#include <string>

#include "column/table.h"
#include "util/result.h"

namespace sciborq {

/// Returns the row ids of `table` ordered by `column` (nulls last). This is a
/// *blocking* operator — the paper's §3.2 point that blocking operators make
/// pipeline-cutting time bounds unsound is exactly why impressions bound time
/// by input size instead.
Result<SelectionVector> SortedOrder(const Table& table,
                                    const std::string& column,
                                    bool ascending = true);

/// Materializes the sorted table.
Result<Table> SortTable(const Table& table, const std::string& column,
                        bool ascending = true);

/// The first k row ids in sorted order (partial sort; O(n log k)).
Result<SelectionVector> TopK(const Table& table, const std::string& column,
                             int64_t k, bool ascending = true);

}  // namespace sciborq

#endif  // SCIBORQ_EXEC_SORT_H_
