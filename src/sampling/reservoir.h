#ifndef SCIBORQ_SAMPLING_RESERVOIR_H_
#define SCIBORQ_SAMPLING_RESERVOIR_H_

#include <cstdint>

#include "sampling/decision.h"
#include "util/result.h"
#include "util/rng.h"

namespace sciborq {

/// Vitter's reservoir Algorithm R, exactly the paper's Figure 2: tuple number
/// cnt (1-based) is accepted with probability n/cnt and evicts a uniformly
/// random victim. After any prefix of the stream, every seen tuple is in the
/// sample with equal probability n/cnt — the uniform baseline against which
/// biased impressions are compared.
class ReservoirSampler {
 public:
  /// InvalidArgument when capacity <= 0.
  static Result<ReservoirSampler> Make(int64_t capacity, uint64_t seed);

  /// Decides about the next stream tuple.
  ReservoirDecision Offer();

  /// Bulk-load decision in the style of Vitter's Algorithm X: how many
  /// upcoming tuples to reject outright, then which slot the tuple after them
  /// occupies. The sampler accounts for all skip+1 tuples internally. Caller
  /// pattern:
  ///   auto [skip, slot] = sampler.OfferWithSkip();
  ///   stream.Advance(skip);
  ///   if (!stream.Done()) store(slot, stream.Current());
  /// Only valid once the reservoir is full (use Offer() while filling).
  struct SkipDecision {
    int64_t skip = 0;
    int64_t slot = -1;
  };
  SkipDecision OfferWithSkip();

  int64_t capacity() const { return capacity_; }
  /// Tuples offered so far (cnt in the paper).
  int64_t seen() const { return seen_; }
  /// Rows currently held (min(seen, capacity)).
  int64_t size() const { return seen_ < capacity_ ? seen_ : capacity_; }
  bool full() const { return seen_ >= capacity_; }

  /// Uniform inclusion probability n/cnt of any seen tuple (1 while filling).
  double InclusionProbability() const;

  /// Resumable sampler state (persistent storage): the stream position and
  /// the RNG. Restoring it continues the acceptance sequence bit-identically.
  struct State {
    int64_t seen = 0;
    Rng::State rng;
  };
  State SaveState() const { return State{seen_, rng_.SaveState()}; }
  /// InvalidArgument on a nonsensical state (negative seen count).
  static Result<ReservoirSampler> Restore(int64_t capacity, const State& state);

 private:
  ReservoirSampler(int64_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  int64_t capacity_;
  int64_t seen_ = 0;
  Rng rng_;
};

}  // namespace sciborq

#endif  // SCIBORQ_SAMPLING_RESERVOIR_H_
