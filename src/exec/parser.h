#ifndef SCIBORQ_EXEC_PARSER_H_
#define SCIBORQ_EXEC_PARSER_H_

#include <string>

#include "exec/query.h"
#include "util/result.h"

namespace sciborq {

/// Parses the SQL-ish aggregate dialect that AggregateQuery::ToString /
/// BoundedQuery::ToString emit, so textual query logs (the raw material of
/// the paper's workload mining, §2.1) can be replayed into a QueryLog /
/// InterestTracker — and, via the bounds clause, re-executed under their
/// original resource/quality contract:
///
///   SELECT COUNT(*), AVG(redshift) FROM photo_obj_all
///   WHERE (obj_class = 'GALAXY') AND (cone(ra, dec; 185, 0; r=3))
///   GROUP BY obj_class WITHIN 50 MS ERROR 5% CONFIDENCE 99%
///
/// Grammar (case-insensitive keywords):
///   bounded  := query [bounds]
///   query    := SELECT agg (',' agg)* [FROM ident] [WHERE or_expr]
///               [GROUP BY ident]
///   bounds   := [WITHIN number MS] [ERROR number '%']
///               [CONFIDENCE number '%'] [EXACT]   (at least one term)
///   agg      := (COUNT|SUM|AVG|MIN|MAX|VAR) '(' ('*' | ident) ')'
///   or_expr  := and_expr (OR and_expr)*
///   and_expr := unary (AND unary)*
///   unary    := NOT unary | '(' or_expr ')' | primary
///   primary  := ident op literal
///             | ident BETWEEN number AND number
///             | CONE '(' ident ',' ident ';' number ',' number ';'
///               ['r' '='] number ')'
///   op       := '=' | '<>' | '<' | '<=' | '>' | '>='
///   literal  := number | "'" chars "'"
/// Integer-looking numbers become int64 literals, others double.
/// Bounds validation: WITHIN budget must be positive, ERROR non-negative,
/// CONFIDENCE strictly inside (0, 100)%.
///
/// Prepared statements (ParsePreparedQuery only) additionally accept a `?`
/// parameter placeholder in the comparison-literal position (`ident op ?`)
/// and in the numeric position of `WITHIN ? MS` / `ERROR ? %`; each `?`
/// becomes a ParamSlot of the returned PreparedQuery, in text order.
/// ParseQuery/ParseBoundedQuery reject `?` with a pointer at Engine::Prepare.
///
/// Errors name the byte offset of the offending token and carry a short
/// caret excerpt of the surrounding text:
///
///   expected 'ms' at offset 30
///     ...ELECT COUNT(*) WITHIN 50 SEC...
///                                 ^
///
/// Round-trip guarantee: parsing q.ToString() produces a query whose
/// ToString() equals the original, and ParsePreparedQuery round-trips
/// PreparedQuery::ToString templates (tested in tests/parser_test.cc).

/// Full dialect: query plus the optional in-SQL bounds clause.
Result<BoundedQuery> ParseBoundedQuery(const std::string& text);

/// Full dialect plus `?` parameter placeholders — the parse-once half of the
/// prepared-statement API. Bind with BindParams (exec/query.h) or run
/// through Engine::Prepare / Engine::Execute.
Result<PreparedQuery> ParsePreparedQuery(const std::string& text);

/// Query only; fails with InvalidArgument when a bounds clause is present
/// (callers that cannot honor bounds must not silently drop them).
Result<AggregateQuery> ParseQuery(const std::string& text);

/// Parses only a predicate expression (the or_expr production).
Result<PredicatePtr> ParsePredicate(const std::string& text);

}  // namespace sciborq

#endif  // SCIBORQ_EXEC_PARSER_H_
