// Socket-path throughput: N remote clients hammering sciborq over the wire
// (encode -> TCP loopback -> frame decode -> parse -> escalation -> encode
// -> decode) vs the same workload calling Engine::Query in-process. The gap
// between the two is the cost of the network face; the acceptance bar is ≥ 4
// concurrent clients with zero protocol errors and remote answers
// bit-identical to in-process ones.
//
// Emits BENCH_JSON lines for the perf trajectory. Exits non-zero on any
// protocol error or a remote/in-process answer mismatch, so CI can run it
// as a correctness smoke as well as a perf probe.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "bench/bench_util.h"
#include "client/client.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "skyserver/catalog.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

using namespace sciborq;
using sciborq::bench::Header;
using sciborq::bench::JsonLine;
using sciborq::bench::Unwrap;

namespace {

constexpr int64_t kBaseRows = 100'000;
constexpr int kQueriesPerClient = 200;

std::string MakeSql(int index) {
  const double ra = 130.0 + 10.0 * (index % 10);
  const double dec = 5.0 + 5.0 * (index % 11);
  return StrFormat(
      "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
      "WHERE cone(ra, dec; %g, %g; r=8) ERROR 25%%",
      ra, dec);
}

// Template-heavy remote workload: same box query, shifting focal points.
constexpr char kBoxTemplate[] =
    "SELECT COUNT(*) FROM photo_obj_all "
    "WHERE ra >= ? AND ra <= ? AND dec >= ? AND dec <= ? ERROR 25%";

std::vector<Value> BoxParams(int index) {
  const double ra = 130.0 + 10.0 * (index % 10);
  const double dec = 5.0 + 5.0 * (index % 11);
  return {Value(ra - 20.0), Value(ra + 20.0), Value(dec - 20.0),
          Value(dec + 20.0)};
}

std::string BoxSql(int index) {
  const double ra = 130.0 + 10.0 * (index % 10);
  const double dec = 5.0 + 5.0 * (index % 11);
  return StrFormat(
      "SELECT COUNT(*) FROM photo_obj_all "
      "WHERE ra >= %.17g AND ra <= %.17g AND dec >= %.17g AND dec <= %.17g "
      "ERROR 25%%",
      ra - 20.0, ra + 20.0, dec - 20.0, dec + 20.0);
}

/// N in-process client threads (the PR-2 baseline shape).
double RunInProcess(Engine* engine, int threads, int64_t* failures) {
  std::atomic<int64_t> failed{0};
  std::vector<std::thread> clients;
  Stopwatch watch;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([engine, t, &failed] {
      for (int i = 0; i < kQueriesPerClient; ++i) {
        if (!engine->Query(MakeSql(t * kQueriesPerClient + i)).ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  const double seconds = watch.ElapsedSeconds();
  *failures = failed.load();
  return static_cast<double>(threads) * kQueriesPerClient / seconds;
}

/// N remote clients, each with its own TCP connection.
double RunRemote(int port, int threads, int64_t* failures) {
  std::atomic<int64_t> failed{0};
  std::vector<std::thread> clients;
  Stopwatch watch;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([port, t, &failed] {
      Result<SciborqClient> client = SciborqClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failed.fetch_add(kQueriesPerClient, std::memory_order_relaxed);
        return;
      }
      for (int i = 0; i < kQueriesPerClient; ++i) {
        if (!client->Query(MakeSql(t * kQueriesPerClient + i)).ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  const double seconds = watch.ElapsedSeconds();
  *failures = failed.load();
  return static_cast<double>(threads) * kQueriesPerClient / seconds;
}

}  // namespace

int main() {
  Header("server_qps: bounded SQL over TCP loopback vs in-process");

  SkyCatalogConfig config;
  config.num_rows = kBaseRows;
  const SkyCatalog catalog = Unwrap(GenerateSkyCatalog(config, 11));

  Engine engine;
  TableOptions table_options;
  table_options.layers = {{"l0", 20'000}, {"l1", 2'000}};
  table_options.seed = 11;
  if (Status st = engine.CreateTable("photo_obj_all",
                                     catalog.photo_obj_all.schema(),
                                     table_options);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = engine.IngestBatch("photo_obj_all", catalog.photo_obj_all);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  ServerOptions server_options;
  server_options.port = 0;  // any free port
  server_options.max_connections = 16;
  SciborqServer server(&engine, server_options);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("base: %lld rows; server on port %d; %d hw threads\n\n",
              static_cast<long long>(kBaseRows), server.port(),
              static_cast<int>(std::thread::hardware_concurrency()));

  // Correctness gate first: a remote bounded query must return the same
  // answer (estimates, answered_by, escalation trace) as Engine::Query for
  // the same SQL on the same table state.
  {
    const std::string sql = MakeSql(3);
    Result<SciborqClient> client =
        SciborqClient::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
      return 1;
    }
    const Result<QueryOutcome> remote = client->Query(sql);
    const Result<QueryOutcome> local = engine.Query(sql);
    if (!remote.ok() || !local.ok()) {
      std::fprintf(stderr, "equivalence probe failed: remote=%s local=%s\n",
                   remote.status().ToString().c_str(),
                   local.status().ToString().c_str());
      return 1;
    }
    if (!EquivalentAnswers(*remote, *local)) {
      std::fprintf(stderr, "MISMATCH: remote answer differs from in-process\n"
                           "remote: %s\nlocal:  %s\n",
                   remote->ToString().c_str(), local->ToString().c_str());
      return 1;
    }
    std::printf("equivalence: remote == in-process (answered_by=%s) ✓\n\n",
                remote->answered_by.c_str());
  }

  std::printf("%-14s %-10s %12s %10s\n", "path", "clients", "qps", "failures");
  bool any_failures = false;
  for (const int threads : {1, 2, 4, 8}) {
    int64_t failures = 0;
    const double qps = RunInProcess(&engine, threads, &failures);
    std::printf("%-14s %-10d %12.0f %10lld\n", "in-process", threads, qps,
                static_cast<long long>(failures));
    JsonLine("server_qps_baseline")
        .Int("clients", threads)
        .Num("qps", qps)
        .Int("failures", failures)
        .Emit();
    any_failures = any_failures || failures != 0;
  }
  for (const int threads : {1, 2, 4, 8}) {
    int64_t failures = 0;
    const double qps = RunRemote(server.port(), threads, &failures);
    std::printf("%-14s %-10d %12.0f %10lld\n", "tcp-loopback", threads, qps,
                static_cast<long long>(failures));
    JsonLine("server_qps")
        .Int("clients", threads)
        .Num("qps", qps)
        .Int("failures", failures)
        .Int("base_rows", kBaseRows)
        .Emit();
    any_failures = any_failures || failures != 0;
  }

  // Prepared vs reparse over the wire: one connection, the SQL string per
  // call vs a bound handle. Both pay the same round trip and execution; the
  // prepared path ships a smaller payload and skips server-side parsing.
  Header("remote prepared vs reparse: one box template");
  {
    constexpr int kWarmup = 100;
    constexpr int kIters = 1500;
    Result<SciborqClient> client =
        SciborqClient::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
      return 1;
    }
    const Result<StatementInfo> stmt = client->Prepare(kBoxTemplate);
    if (!stmt.ok()) {
      std::fprintf(stderr, "prepare: %s\n", stmt.status().ToString().c_str());
      return 1;
    }
    // Correctness gate: the remote bound execution must carry the same
    // answer as the in-process fully-rendered query.
    for (int i = 0; i < 5; ++i) {
      const Result<QueryOutcome> remote =
          client->Execute(stmt->handle, BoxParams(i));
      const Result<QueryOutcome> local = engine.Query(BoxSql(i));
      if (!remote.ok() || !local.ok() ||
          !EquivalentAnswers(*remote, *local)) {
        std::fprintf(stderr,
                     "MISMATCH: remote Execute != in-process Query(rendered) "
                     "at i=%d\n",
                     i);
        return 1;
      }
    }
    for (int i = 0; i < kWarmup; ++i) {
      (void)client->Query(BoxSql(i));
      (void)client->Execute(stmt->handle, BoxParams(i));
    }
    Stopwatch reparse_watch;
    for (int i = 0; i < kIters; ++i) {
      if (!client->Query(BoxSql(i)).ok()) {
        std::fprintf(stderr, "remote reparse query failed at i=%d\n", i);
        return 1;
      }
    }
    const double reparse_qps = kIters / reparse_watch.ElapsedSeconds();
    Stopwatch prepared_watch;
    for (int i = 0; i < kIters; ++i) {
      if (!client->Execute(stmt->handle, BoxParams(i)).ok()) {
        std::fprintf(stderr, "remote execute failed at i=%d\n", i);
        return 1;
      }
    }
    const double prepared_qps = kIters / prepared_watch.ElapsedSeconds();
    std::printf("reparse:  %10.0f qps (SQL string per call)\n"
                "prepared: %10.0f qps (bound handle per call)\n"
                "speedup:  %10.2fx\n",
                reparse_qps, prepared_qps, prepared_qps / reparse_qps);
    JsonLine("server_prepared_vs_reparse")
        .Num("prepared_qps", prepared_qps)
        .Num("reparse_qps", reparse_qps)
        .Num("speedup", prepared_qps / reparse_qps)
        .Int("iters", kIters)
        .Emit();
    if (Status st = client->CloseStatement(stmt->handle); !st.ok()) {
      std::fprintf(stderr, "close: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Metrics overhead gate over the full wire path (per-opcode histograms,
  // byte counters, engine metrics, spans on every outcome). One remote
  // client; obs::SetEnabled(false) is the baseline.
  Header("metrics overhead: instrumented vs baseline (obs disabled)");
  {
    constexpr int kIters = 1000;
    Result<SciborqClient> client =
        SciborqClient::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
      return 1;
    }
    const auto run_once = [&client](int salt) -> double {
      Stopwatch watch;
      for (int i = 0; i < kIters; ++i) {
        if (!client->Query(MakeSql(salt + i)).ok()) return -1.0;
      }
      return kIters / watch.ElapsedSeconds();
    };
    double baseline_qps = 0.0;
    double instrumented_qps = 0.0;
    bool failed_run = false;
    for (int round = 0; round < 3 && !failed_run; ++round) {
      obs::SetEnabled(false);
      const double base = run_once(round * kIters);
      obs::SetEnabled(true);
      const double inst = run_once(round * kIters);
      failed_run = base < 0.0 || inst < 0.0;
      baseline_qps = std::max(baseline_qps, base);
      instrumented_qps = std::max(instrumented_qps, inst);
    }
    obs::SetEnabled(true);
    if (failed_run) {
      std::fprintf(stderr, "metrics overhead run failed\n");
      return 1;
    }
    const double overhead_ratio = instrumented_qps / baseline_qps;
    std::printf("baseline (obs off): %10.0f qps\n"
                "instrumented:       %10.0f qps\n"
                "ratio:              %10.3f\n",
                baseline_qps, instrumented_qps, overhead_ratio);
    JsonLine("server_metrics_overhead")
        .Num("instrumented_qps", instrumented_qps)
        .Num("baseline_qps", baseline_qps)
        .Num("ratio", overhead_ratio)
        .Int("iters", kIters)
        .Emit();
    if (overhead_ratio < 0.97) {
      std::fprintf(stderr,
                   "metrics overhead gate FAILED: instrumented %.0f qps is "
                   "under 97%% of baseline %.0f qps (ratio %.3f)\n",
                   instrumented_qps, baseline_qps, overhead_ratio);
      return 1;
    }
  }

  server.Stop();
  std::printf("\nserver totals: %lld queries, %lld connections, %lld protocol "
              "errors\n",
              static_cast<long long>(server.queries_served()),
              static_cast<long long>(server.connections_accepted()),
              static_cast<long long>(server.protocol_errors()));
  if (any_failures || server.protocol_errors() != 0) {
    std::fprintf(stderr, "FAILED: query failures or protocol errors\n");
    return 1;
  }
  return 0;
}
