// CLAIM-ESC (§3.2): "if the error bound requested is not met during
// execution, the query evaluation moves to an impression on a lower level,
// with a higher level of detail ... ultimately the base columns for a zero
// error margin". Sweeps the requested error bound and traces which layer of
// a 4-layer hierarchy answers, the error achieved, and the time spent.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/bounded_executor.h"
#include "skyserver/catalog.h"
#include "skyserver/functions.h"

int main() {
  using namespace sciborq;
  bench::Header("CLAIM-ESC: layer escalation under tightening error bounds");
  bench::Expectation(
      "loose bounds answered by the smallest layer; tightening the bound "
      "walks up the hierarchy; bound 0 reaches the base with exact answers; "
      "elapsed time grows with the answering layer");

  SkyCatalogConfig config;
  config.num_rows = 500'000;
  const SkyCatalog catalog = bench::Unwrap(GenerateSkyCatalog(config, 17));

  ImpressionSpec spec;
  spec.seed = 17;
  auto hierarchy = bench::Unwrap(ImpressionHierarchy::Make(
      catalog.photo_obj_all.schema(),
      {{"L0-100k", 100'000}, {"L1-10k", 10'000}, {"L2-1k", 1'000},
       {"L3-100", 100}},
      spec));
  SCIBORQ_CHECK(hierarchy.IngestBatch(catalog.photo_obj_all).ok());

  BoundedExecutor exec(&catalog.photo_obj_all, &hierarchy);
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "redshift"}};
  q.filter = FGetNearbyObjEq(160.0, 25.0, 8.0);
  const auto truth = RunExact(catalog.photo_obj_all, q).value();
  std::printf("query: %s  (truth: count=%.0f avg=%.4f)\n\n",
              q.ToString().c_str(), truth[0].values[0], truth[0].values[1]);

  std::printf("%10s | %-9s %9s %12s %12s %10s %8s\n", "bound", "layer",
              "layers", "count_est", "worst_relerr", "time_ms", "met");
  for (const double bound_value :
       {0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.0}) {
    QualityBound bound;
    bound.max_relative_error = bound_value;
    const BoundedAnswer ans = exec.Answer(q, bound).value();
    double worst = 0.0;
    for (const auto& row : ans.estimates) {
      for (const auto& est : row) worst = std::max(worst, est.RelativeError());
    }
    std::printf("%10.3f | %-9s %9zu %12.1f %12.5f %10.3f %8s\n", bound_value,
                ans.answered_by.c_str(), ans.attempts.size(),
                ans.rows[0].values[0], worst, ans.elapsed_seconds * 1e3,
                ans.error_bound_met ? "yes" : "no");
  }
  bench::Measured(
      "layer column walks L3-100 -> L2-1k -> L1-10k -> L0-100k -> base as "
      "the bound tightens; time_ms grows alongside");
  return 0;
}
