#ifndef SCIBORQ_SAMPLING_WEIGHTED_ARES_H_
#define SCIBORQ_SAMPLING_WEIGHTED_ARES_H_

#include <cstdint>
#include <vector>

#include "sampling/decision.h"
#include "util/result.h"
#include "util/rng.h"

namespace sciborq {

/// Weighted reservoir sampling *without* replacement by exponential keys
/// (Efraimidis & Spirakis A-Res). Each tuple draws key = u^(1/w); the
/// reservoir keeps the n largest keys. This is the statistically exact
/// counterpart to the paper's heuristic Fig. 6 scheme and serves as the gold
/// baseline in tests and the ablation bench: inclusion probabilities follow
/// the weighted-without-replacement design precisely.
class WeightedAResSampler {
 public:
  /// InvalidArgument when capacity <= 0.
  static Result<WeightedAResSampler> Make(int64_t capacity, uint64_t seed);

  /// Offers a tuple with weight w > 0 (w <= 0 is never sampled once full).
  ReservoirDecision Offer(double weight);

  int64_t capacity() const { return capacity_; }
  int64_t seen() const { return seen_; }
  int64_t size() const { return static_cast<int64_t>(heap_.size()); }
  bool full() const { return size() >= capacity_; }

 private:
  WeightedAResSampler(int64_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  struct Entry {
    double key;
    int64_t slot;
  };
  /// Min-heap on key: heap_[0] is the weakest resident.
  void SiftDown(size_t i);
  void SiftUp(size_t i);

  int64_t capacity_;
  int64_t seen_ = 0;
  std::vector<Entry> heap_;
  Rng rng_;
};

}  // namespace sciborq

#endif  // SCIBORQ_SAMPLING_WEIGHTED_ARES_H_
