#ifndef SCIBORQ_STORAGE_TABLE_STORE_H_
#define SCIBORQ_STORAGE_TABLE_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "column/table.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace sciborq {

// ---------------------------------------------------------------------------
// TableStore — the database directory.
//
// Layout (flat, one snapshot plus a run of WAL segments per table):
//
//   <db_dir>/<table>.snapshot   last checkpoint (storage/snapshot.h format)
//   <db_dir>/<table>.wal.N      WAL segment N (storage/wal.h frames);
//                               batches ingested since the checkpoint live in
//                               the contiguous run of segments, appends go to
//                               the highest-numbered one
//   <db_dir>/<table>.dropped    tombstone: a DropTable was interrupted after
//                               the decision became durable — recovery
//                               finishes deleting the table's files
//
// Pre-segmentation databases hold a single `<table>.wal`; recovery renames it
// to `<table>.wal.0` (and refuses a directory carrying both forms — that can
// only be manual tampering).
//
// WAL record vocabulary (payload = u8 type | i64 seq | body):
//
//   type 1  create-table            seq 0,  body = Schema | config
//   type 2  ingest-batch            seq 1+, body = Table (column/serde.h)
//   type 3  create-table+retention  seq 0,  body = Schema | config with the
//                                   retention block (windowed tables only —
//                                   plain tables keep writing type 1, so
//                                   their WAL bytes match pre-retention
//                                   builds exactly)
//
// Segmentation exists so that retention can reclaim disk without rewriting
// history: the active segment rotates (seals) when it reaches the size
// threshold or when the engine forces a rotation at a time-bucket boundary,
// and once a snapshot covers a sealed segment's batches — or eviction has
// aged them all out — the segment is *deleted*, never rewritten. Deletion is
// prefix-only (lowest indices first), so the surviving run stays contiguous;
// recovery refuses a gap in the middle (a missing sealed segment is lost
// acknowledged data) and accepts a torn tail only in the highest-numbered
// segment (appends only ever ran there).
//
// A table registered but never checkpointed exists as segments alone (the
// first record is create-table); after the first checkpoint the segments hold
// only post-snapshot batches. Checkpoint ordering makes every crash window
// safe: the snapshot is written atomically (temp + rename + dir fsync) and
// only then are the sealed segments unlinked and the active one reset — a
// crash between the two leaves batches on disk whose sequence numbers the
// snapshot already covers, and recovery skips them by comparing against
// TableSnapshot::last_seq (and re-deletes fully-covered sealed segments, so
// a half-finished GC converges instead of accumulating).
// ---------------------------------------------------------------------------

/// One WAL batch awaiting replay.
struct PendingBatch {
  int64_t seq = 0;
  Table batch;
};

/// Everything recovery found for one table.
struct RecoveredTable {
  std::string name;
  /// The last checkpoint, when one exists.
  std::optional<TableSnapshot> snapshot;
  /// From the WAL create-table record (present when the table was created
  /// after the last checkpoint — in particular for never-checkpointed
  /// tables).
  std::optional<Schema> created_schema;
  std::optional<PersistedTableConfig> created_config;
  /// Batches with seq > snapshot.last_seq, ascending.
  std::vector<PendingBatch> batches;
  /// True when a torn or corrupt WAL tail was dropped during recovery.
  bool wal_tail_dropped = false;
  std::string wal_tail_error;
};

/// One segment of a table's WAL, as reported by WalSegments.
struct WalSegmentInfo {
  int64_t index = 0;
  /// Highest batch sequence the segment holds (0 when it holds none — e.g.
  /// a sealed segment carrying only the create record).
  int64_t last_seq = 0;
  bool sealed = false;
};

/// Filesystem face of the persistence subsystem: owns the db directory and
/// one segmented WAL per table. Thread-safe; per-table call ordering is the
/// engine's responsibility (it serializes under the table's data lock).
class TableStore {
 public:
  /// Default rotation threshold: appends move to a fresh segment once the
  /// active one reaches this size.
  static constexpr int64_t kDefaultSegmentBytes = 4 << 20;

  /// Opens (creating if needed) the directory. Leftover `*.tmp` files from a
  /// checkpoint interrupted before its rename are deleted.
  static Result<std::unique_ptr<TableStore>> Open(std::string db_dir);

  /// Scans the directory and reconstructs the durable state of every table:
  /// finishes interrupted drops (tombstones), migrates legacy single-file
  /// WALs, reads each snapshot, scans each segment (truncating a torn tail in
  /// the highest-numbered one; refusing one anywhere else), deletes sealed
  /// segments the snapshot fully covers, and opens the highest segment for
  /// appending. Sorted by table name. A corrupt snapshot, a bad segment
  /// header, or a gap in the segment run fails recovery — silent data loss
  /// is worse than a refused boot.
  Result<std::vector<RecoveredTable>> Recover();

  /// Appends the create-table record to a fresh segment 0 for `name`.
  Status LogCreate(const std::string& name, const Schema& schema,
                   const PersistedTableConfig& config);

  /// Appends one ingest-batch record, durable before returning, rotating to
  /// a fresh segment first when the active one is at the size threshold.
  /// Returns the active segment's size *before* the append — an undo cookie
  /// for UnlogBatch (valid until the next append, which is exactly the undo
  /// window the engine uses).
  Result<int64_t> LogBatch(const std::string& name, const Table& batch,
                           int64_t seq);

  /// Truncates the active segment back to a LogBatch cookie — the undo for a
  /// batch whose in-memory application failed after it was logged (without
  /// it, the caller would be told the ingest failed while a restart
  /// resurrects the rows).
  Status UnlogBatch(const std::string& name, int64_t offset_before);

  /// Seals the active segment and starts a fresh one. The engine forces this
  /// at time-bucket boundaries so whole buckets can later be reclaimed by
  /// deleting segments. No-op when the active segment holds no records (no
  /// header-only segments mid-run).
  Status RotateWal(const std::string& name);

  /// Deletes the longest prefix of *sealed* segments whose batches all carry
  /// seq <= covered_seq. Refuses (FailedPrecondition) unless a snapshot file
  /// exists for the table: without one, the create-table record in segment 0
  /// is the only durable record of the table's existence. Returns the number
  /// of segments deleted. Idempotent — re-running with the same covered_seq
  /// deletes nothing further.
  Result<int> GcWalSegments(const std::string& name, int64_t covered_seq);

  /// The table's current segment run, ascending by index; the last entry is
  /// the active segment.
  Result<std::vector<WalSegmentInfo>> WalSegments(const std::string& name);

  /// Closes and deletes a table's WAL segments — the undo of LogCreate when
  /// a registration fails after it (otherwise the create record would
  /// resurrect an empty table at the next boot). Best-effort unlink.
  void DropWal(const std::string& name);

  /// Permanently removes a table from disk: closes its WAL, then durably
  /// writes a `<table>.dropped` tombstone *before* unlinking the snapshot
  /// and segments, so a crash mid-delete is finished by recovery instead of
  /// resurrecting a half-deleted table.
  Status DropTable(const std::string& name);

  /// Writes the snapshot atomically, then deletes the sealed segments and
  /// resets the active one (every batch they held is now covered). The
  /// snapshot format is chosen per table: v3 when the config carries a
  /// retention policy, v2 otherwise — so plain tables keep producing
  /// byte-identical pre-retention snapshot files.
  Status WriteCheckpoint(const TableSnapshot& snap);

  /// True when a checkpoint exists on disk for `table`.
  bool HasSnapshot(const std::string& table) const;

  /// Storage restricts table names to [A-Za-z0-9_.-] (they become file
  /// names); InvalidArgument otherwise.
  static Status ValidateTableName(const std::string& name);

  const std::string& dir() const { return dir_; }

  /// Rotation threshold; settable before concurrent use (engine open time).
  int64_t segment_bytes() const { return segment_bytes_; }
  void set_segment_bytes(int64_t bytes) {
    segment_bytes_ = bytes > 0 ? bytes : kDefaultSegmentBytes;
  }

  std::string SnapshotPath(const std::string& table) const;
  std::string SegmentPath(const std::string& table, int64_t index) const;
  std::string TombstonePath(const std::string& table) const;
  /// Pre-segmentation single-file path, recognized only to migrate it.
  std::string LegacyWalPath(const std::string& table) const;

 private:
  struct SealedSegment {
    int64_t index = 0;
    int64_t last_seq = 0;
  };
  /// A table's open WAL: the active writer plus the ledger of sealed
  /// segments still on disk. Owned by one table's ingest path (serialized by
  /// the engine's per-table locks); mu_ guards only the map structure.
  struct TableWal {
    std::unique_ptr<WalWriter> active;
    int64_t active_index = 0;
    int64_t active_records = 0;
    int64_t active_last_seq = 0;
    std::vector<SealedSegment> sealed;  ///< ascending by index
  };

  explicit TableStore(std::string dir) : dir_(std::move(dir)) {}

  Result<TableWal*> FindWal(const std::string& name);
  Status RotateLocked(const std::string& name, TableWal* wal);
  /// Unlinks every on-disk file belonging to `name` except the tombstone.
  void UnlinkTableFiles(const std::string& name);
  void UpdateSegmentsGauge(const std::string& name, int64_t count);

  std::string dir_;
  int64_t segment_bytes_ = kDefaultSegmentBytes;
  Mutex mu_;
  /// Guards the map structure only: each TableWal is owned by one table's
  /// ingest path (serialized by the engine's per-table locks), so writes to
  /// an already-registered WAL happen outside mu_.
  std::unordered_map<std::string, std::unique_ptr<TableWal>> wals_
      GUARDED_BY(mu_);
};

/// WAL payload codecs, exposed for tests. EncodeCreateRecord emits type 3
/// (create with retention block) when the config carries an enabled
/// RetentionPolicy and the pre-retention type 1 bytes otherwise.
std::string EncodeCreateRecord(const Schema& schema,
                               const PersistedTableConfig& config);
std::string EncodeBatchRecord(int64_t seq, const Table& batch);

struct WalRecord {
  enum class Type { kCreateTable, kIngestBatch };
  Type type = Type::kIngestBatch;
  int64_t seq = 0;
  std::optional<Schema> schema;                  ///< create only
  std::optional<PersistedTableConfig> config;    ///< create only
  std::optional<Table> batch;                    ///< ingest only
};
Result<WalRecord> DecodeWalRecord(std::string_view payload);

}  // namespace sciborq

#endif  // SCIBORQ_STORAGE_TABLE_STORE_H_
