#include "api/session.h"

#include "exec/parser.h"
#include "util/check.h"

namespace sciborq {

Session::Session(Engine* engine) : engine_(engine) {
  SCIBORQ_CHECK(engine_ != nullptr);
#ifndef NDEBUG
  owner_thread_ = std::this_thread::get_id();
#endif
}

Status Session::Use(const std::string& table) {
  CheckOwningThread();
  SCIBORQ_ASSIGN_OR_RETURN(const int64_t rows, engine_->TableRows(table));
  (void)rows;  // existence check only
  table_ = table;
  return Status::OK();
}

Result<QueryOutcome> Session::Query(std::string_view sql) {
  CheckOwningThread();
  SCIBORQ_ASSIGN_OR_RETURN(BoundedQuery bounded,
                           ParseBoundedQuery(std::string(sql)));
  if (bounded.query.table.empty()) {
    if (table_.empty()) {
      return Status::InvalidArgument(
          "SQL has no FROM clause and the session has no default table: "
          "call Use() first");
    }
    bounded.query.table = table_;
  }
  if (!bounded.bounds.any()) bounded.bounds = bounds_;
  SCIBORQ_ASSIGN_OR_RETURN(QueryOutcome outcome, engine_->Query(bounded));
  ++queries_run_;
  total_seconds_ += outcome.elapsed_seconds;
  return outcome;
}

}  // namespace sciborq
