#ifndef SCIBORQ_EXEC_QUERY_H_
#define SCIBORQ_EXEC_QUERY_H_

#include <string>
#include <vector>

#include "column/table.h"
#include "exec/aggregate.h"
#include "exec/expr.h"
#include "util/result.h"

namespace sciborq {

/// A declarative aggregate query — the unit of work SciBORQ answers with
/// bounds. SELECT <aggregates> FROM t [WHERE filter] [GROUP BY group_by].
/// The same descriptor runs exactly on base data (RunExact) or approximately
/// on an impression (core/bounded_executor.h), and is what the workload log
/// records to extract the predicate set.
struct AggregateQuery {
  std::vector<AggregateSpec> aggregates;
  PredicatePtr filter;    ///< null = no WHERE clause
  std::string group_by;   ///< empty = ungrouped

  AggregateQuery() = default;
  AggregateQuery(AggregateQuery&&) = default;
  AggregateQuery& operator=(AggregateQuery&&) = default;

  /// Deep copy (predicates are unique_ptr-owned).
  AggregateQuery Clone() const;

  /// The requested values of every predicate in the query (§4).
  std::vector<PredicatePoint> PredicatePoints() const;

  /// Correlated attribute pairs requested by joint predicates (cones).
  std::vector<PredicatePair> PredicatePairs() const;

  /// SQL-ish rendering for logs.
  std::string ToString() const;
};

/// One result row: the group key (null Value for ungrouped queries) plus one
/// value per aggregate, and the number of input rows that fed the group.
struct QueryResultRow {
  Value group_key;
  std::vector<double> values;
  int64_t input_rows = 0;
};

/// Exact evaluation against any table (base data or a materialized sample).
/// Ungrouped queries yield exactly one row. With a pool, the filter and
/// aggregation scans run morsel-parallel and produce results bit-identical
/// to the serial path (deterministic merges in morsel order).
Result<std::vector<QueryResultRow>> RunExact(const Table& table,
                                             const AggregateQuery& query,
                                             ThreadPool* pool = nullptr);

}  // namespace sciborq

#endif  // SCIBORQ_EXEC_QUERY_H_
