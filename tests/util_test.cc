#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace sciborq {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::QualityBoundExceeded("x").code(),
            StatusCode::kQualityBoundExceeded);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
  EXPECT_FALSE(Status::IOError("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad bins").ToString(),
            "InvalidArgument: bad bins");
}

TEST(StatusTest, PredicateHelpers) {
  EXPECT_TRUE(Status::DeadlineExceeded("t").IsDeadlineExceeded());
  EXPECT_FALSE(Status::OK().IsDeadlineExceeded());
  EXPECT_TRUE(Status::QualityBoundExceeded("q").IsQualityBoundExceeded());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

// ---------------------------------------------------------------- Result --

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(99), 99);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto add = [](int a, int b) -> Result<int> {
    SCIBORQ_ASSIGN_OR_RETURN(int x, ParsePositive(a));
    SCIBORQ_ASSIGN_OR_RETURN(int y, ParsePositive(b));
    return x + y;
  };
  EXPECT_EQ(add(2, 3).value(), 5);
  EXPECT_FALSE(add(2, -3).ok());
  EXPECT_FALSE(add(-2, 3).ok());
}

TEST(ResultTest, ReturnNotOkPropagates) {
  auto f = [](bool fail) -> Status {
    SCIBORQ_RETURN_NOT_OK(fail ? Status::Internal("x") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(f(false).ok());
  EXPECT_EQ(f(true).code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.NextDouble();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInRangeAndCoversAll) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextBoundedApproximatelyUniform) {
  Rng rng(17);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 200000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.05);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(19);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianScaling) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(31);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, BernoulliRate) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(41);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(99);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// ------------------------------------------------------------- Stopwatch --

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.ElapsedSeconds(), 0.008);
  EXPECT_GE(sw.ElapsedMicros(), 8000);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 0.005);
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  Deadline d = Deadline::Unlimited();
  EXPECT_FALSE(d.limited());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(std::isinf(d.RemainingSeconds()));
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  Deadline d = Deadline::AfterSeconds(0.01);
  EXPECT_TRUE(d.limited());
  EXPECT_FALSE(d.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.RemainingSeconds(), 0.0);
}

// ----------------------------------------------------------- string_util --

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringUtilTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t\r\n"), "");
}

TEST(StringUtilTest, HumanCount) {
  EXPECT_EQ(HumanCount(950), "950.0");
  EXPECT_EQ(HumanCount(1536), "1.5K");
  EXPECT_EQ(HumanCount(2'500'000), "2.5M");
  EXPECT_EQ(HumanCount(3.2e9), "3.2B");
}

}  // namespace
}  // namespace sciborq
