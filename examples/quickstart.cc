// Quickstart: the smallest end-to-end SciBORQ program.
//
// 1. Generate a synthetic sky catalog (the base data).
// 2. Build a two-layer hierarchy of uniform impressions over it.
// 3. Ask an aggregate question with an error bound and a time budget.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "core/bounded_executor.h"
#include "skyserver/catalog.h"
#include "skyserver/functions.h"

using namespace sciborq;

int main() {
  // ---- 1. Base data: 500k synthetic PhotoObjAll rows. -------------------
  SkyCatalogConfig config;
  config.num_rows = 500'000;
  Result<SkyCatalog> catalog = GenerateSkyCatalog(config, /*seed=*/42);
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  const Table& base = catalog->photo_obj_all;
  std::printf("base data: %lld rows, schema: %s\n",
              static_cast<long long>(base.num_rows()),
              base.schema().ToString().c_str());

  // ---- 2. Impressions: a 50k layer and a 5k layer derived from it. ------
  ImpressionSpec spec;  // default policy: uniform reservoir (Algorithm R)
  spec.seed = 42;
  Result<ImpressionHierarchy> hierarchy = ImpressionHierarchy::Make(
      base.schema(), {{"large", 50'000}, {"small", 5'000}}, spec);
  if (!hierarchy.ok()) {
    std::fprintf(stderr, "%s\n", hierarchy.status().ToString().c_str());
    return 1;
  }
  // Impressions are built incrementally as data loads; here one bulk batch.
  Status st = hierarchy->IngestBatch(base);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s\n\n", hierarchy->ToString().c_str());

  // ---- 3. A bounded query: COUNT + AVG(redshift) near a sky position. ---
  AggregateQuery query;
  query.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "redshift"}};
  query.filter = FGetNearbyObjEq(/*ra=*/185.0, /*dec=*/30.0, /*radius=*/5.0);
  std::printf("query: %s\n", query.ToString().c_str());

  BoundedExecutor executor(&base, &hierarchy.value());
  QualityBound bound;
  bound.max_relative_error = 0.08;   // accept ±8% at 95% confidence
  bound.time_budget_seconds = 1.0;   // ... within one second
  Result<BoundedAnswer> answer = executor.Answer(query, bound);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", answer->ToString().c_str());

  // Compare against the exact answer.
  Result<std::vector<QueryResultRow>> exact = RunExact(base, query);
  std::printf("\nexact: count=%.0f avg_redshift=%.4f (full scan of %lld rows)\n",
              exact->at(0).values[0], exact->at(0).values[1],
              static_cast<long long>(base.num_rows()));
  return 0;
}
