#ifndef SCIBORQ_WORKLOAD_JOINT_TRACKER_H_
#define SCIBORQ_WORKLOAD_JOINT_TRACKER_H_

#include <string>
#include <vector>

#include "column/table.h"
#include "exec/query.h"
#include "stats/histogram2d.h"
#include "util/result.h"

namespace sciborq {

/// The multi-dimensional interest tracker the paper sketches as future work
/// (footnote 3, §6): one *joint* 2-D histogram over an attribute pair
/// instead of two independent marginals. The joint f̆₂ weights capture the
/// correlation of the workload's focal points — independent marginals also
/// assign high weight to the phantom cross-combinations (focus-A's ra with
/// focus-B's dec), wasting impression capacity on never-queried sky.
///
/// Drop-in alternative weight source for ImpressionBuilder (see
/// ImpressionSpec::joint_tracker).
class JointInterestTracker {
 public:
  /// Grid geometry over the (column_x, column_y) plane.
  struct Spec {
    std::string column_x;
    std::string column_y;
    double min_x = 0.0;
    double width_x = 1.0;
    int bins_x = 32;
    double min_y = 0.0;
    double width_y = 1.0;
    int bins_y = 32;
  };

  static Result<JointInterestTracker> Make(Spec spec);

  /// Folds every predicate *pair* of the query matching the tracked columns
  /// (either order) into the joint histogram.
  void ObserveQuery(const AggregateQuery& query);
  void ObservePair(double x, double y);

  /// Tuple weight w = f̆₂(x, y) · N; 1.0 while cold (degrades to Algorithm R).
  double TupleWeight(const Table& table, const std::vector<int>& bound_columns,
                     int64_t row) const;

  /// Resolves {column_x, column_y} against a schema (-1 when absent).
  std::vector<int> BindColumns(const Schema& schema) const;

  void Decay(double factor) { hist_.Decay(factor); }

  int64_t observed_pairs() const { return hist_.total_count(); }
  const StreamingHistogram2D& histogram() const { return hist_; }
  const std::string& column_x() const { return spec_.column_x; }
  const std::string& column_y() const { return spec_.column_y; }

 private:
  JointInterestTracker(Spec spec, StreamingHistogram2D hist)
      : spec_(std::move(spec)), hist_(std::move(hist)) {}

  Spec spec_;
  StreamingHistogram2D hist_;
};

}  // namespace sciborq

#endif  // SCIBORQ_WORKLOAD_JOINT_TRACKER_H_
