#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sciborq {

void RunningMoments::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningMoments RunningMoments::FromState(int64_t count, double mean, double m2,
                                         double min, double max) {
  RunningMoments m;
  m.count_ = count;
  m.mean_ = mean;
  m.m2_ = m2;
  m.min_ = min;
  m.max_ = max;
  return m;
}

double RunningMoments::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

double QuantileSorted(const std::vector<double>& sorted, double q) {
  SCIBORQ_DCHECK(!sorted.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<int64_t> BinCounts(const std::vector<double>& data, double lo,
                               double hi, int num_bins) {
  SCIBORQ_DCHECK(num_bins > 0);
  SCIBORQ_DCHECK(hi > lo);
  std::vector<int64_t> counts(static_cast<size_t>(num_bins), 0);
  const double width = (hi - lo) / num_bins;
  for (const double v : data) {
    int idx = static_cast<int>((v - lo) / width);
    idx = std::clamp(idx, 0, num_bins - 1);
    ++counts[static_cast<size_t>(idx)];
  }
  return counts;
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  SCIBORQ_DCHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

double L2Distance(const std::vector<double>& a, const std::vector<double>& b) {
  SCIBORQ_DCHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace sciborq
