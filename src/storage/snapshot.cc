#include "storage/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "column/serde.h"
#include "storage/file_io.h"
#include "util/errno_string.h"
#include "util/crc32c.h"
#include "util/string_util.h"

namespace sciborq {

namespace {

void EncodeRng(const Rng::State& state, BinaryWriter* w) {
  for (const uint64_t lane : state.s) w->PutU64(lane);
  w->PutF64(state.cached_gaussian);
  w->PutBool(state.has_cached_gaussian);
}

Result<Rng::State> DecodeRng(BinaryReader* r) {
  Rng::State state;
  uint64_t any = 0;
  for (auto& lane : state.s) {
    SCIBORQ_ASSIGN_OR_RETURN(lane, r->ReadU64());
    any |= lane;
  }
  if (any == 0) {
    // The all-zero state is a fixed point of xoshiro256** and can never be
    // produced by a live generator.
    return Status::InvalidArgument("snapshot: degenerate all-zero RNG state");
  }
  SCIBORQ_ASSIGN_OR_RETURN(state.cached_gaussian, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(state.has_cached_gaussian, r->ReadBool());
  return state;
}

/// u32 count + count fixed 8-byte LE elements, bulk-copied on LE hosts
/// (byte-identical to the element loop either way).
template <typename T>
void EncodeFixed64Vector(const std::vector<T>& v, BinaryWriter* w) {
  static_assert(sizeof(T) == 8, "fixed 8-byte elements expected");
  w->PutU32(static_cast<uint32_t>(v.size()));
  if (kHostLittleEndian) {
    w->PutRaw(v.data(), v.size() * sizeof(T));
    return;
  }
  for (const T x : v) {
    uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    w->PutU64(bits);
  }
}

template <typename T>
Result<std::vector<T>> DecodeFixed64Vector(BinaryReader* r,
                                           const char* what) {
  static_assert(sizeof(T) == 8, "fixed 8-byte elements expected");
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t n, r->ReadU32());
  SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(n, 8, *r, what));
  std::vector<T> out(n);
  if (kHostLittleEndian) {
    SCIBORQ_ASSIGN_OR_RETURN(const std::string_view raw,
                             r->ReadRaw(static_cast<size_t>(n) * sizeof(T)));
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }
  for (uint32_t i = 0; i < n; ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(const uint64_t bits, r->ReadU64());
    std::memcpy(&out[i], &bits, sizeof(bits));
  }
  return out;
}

void EncodeF64Vector(const std::vector<double>& v, BinaryWriter* w) {
  EncodeFixed64Vector(v, w);
}

Result<std::vector<double>> DecodeF64Vector(BinaryReader* r,
                                            const char* what) {
  return DecodeFixed64Vector<double>(r, what);
}

void EncodeI64Vector(const std::vector<int64_t>& v, BinaryWriter* w) {
  EncodeFixed64Vector(v, w);
}

Result<std::vector<int64_t>> DecodeI64Vector(BinaryReader* r,
                                             const char* what) {
  return DecodeFixed64Vector<int64_t>(r, what);
}

Result<SamplingPolicy> PolicyFromTag(uint8_t tag) {
  switch (tag) {
    case 0:
      return SamplingPolicy::kUniform;
    case 1:
      return SamplingPolicy::kLastSeen;
    case 2:
      return SamplingPolicy::kBiased;
    default:
      return Status::InvalidArgument(
          StrFormat("snapshot: unknown sampling policy tag %u", tag));
  }
}

/// Page-format dispatch: v2 snapshots store tables as encoded pages.
void EncodeTableVersioned(const Table& t, BinaryWriter* w, uint32_t version) {
  if (version >= 2) {
    EncodeTableEncoded(t, w);
  } else {
    EncodeTable(t, w);
  }
}

Result<Table> DecodeTableVersioned(BinaryReader* r, uint32_t version) {
  if (version >= 2) return DecodeTableEncoded(r);
  return DecodeTable(r);
}

void EncodeImpressionState(const ImpressionState& s, BinaryWriter* w,
                           uint32_t version) {
  w->PutString(s.name);
  w->PutI64(s.capacity);
  w->PutU8(static_cast<uint8_t>(s.policy));
  EncodeTableVersioned(s.rows, w, version);
  EncodeF64Vector(s.weights, w);
  EncodeI64Vector(s.source_ids, w);
  EncodeF64Vector(s.explicit_probs, w);
  w->PutI64(s.population_seen);
  w->PutF64(s.population_weight);
  w->PutI64(s.freshness_k);
  w->PutI64(s.expected_ingest);
  EncodeI64Vector(s.acceptance_curve, w);
  w->PutI64(s.curve_interval);
  w->PutI64(s.total_accepted);
}

Result<ImpressionState> DecodeImpressionState(BinaryReader* r,
                                              uint32_t version) {
  ImpressionState s;
  SCIBORQ_ASSIGN_OR_RETURN(s.name, r->ReadString());
  SCIBORQ_ASSIGN_OR_RETURN(s.capacity, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t policy_tag, r->ReadU8());
  SCIBORQ_ASSIGN_OR_RETURN(s.policy, PolicyFromTag(policy_tag));
  SCIBORQ_ASSIGN_OR_RETURN(s.rows, DecodeTableVersioned(r, version));
  SCIBORQ_ASSIGN_OR_RETURN(s.weights, DecodeF64Vector(r, "weight"));
  SCIBORQ_ASSIGN_OR_RETURN(s.source_ids, DecodeI64Vector(r, "source id"));
  SCIBORQ_ASSIGN_OR_RETURN(s.explicit_probs,
                           DecodeF64Vector(r, "inclusion probability"));
  SCIBORQ_ASSIGN_OR_RETURN(s.population_seen, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(s.population_weight, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(s.freshness_k, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(s.expected_ingest, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(s.acceptance_curve,
                           DecodeI64Vector(r, "acceptance checkpoint"));
  SCIBORQ_ASSIGN_OR_RETURN(s.curve_interval, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(s.total_accepted, r->ReadI64());
  return s;
}

// Sampler state tags inside an ImpressionBuilderState.
constexpr uint8_t kSamplerUniform = 0;
constexpr uint8_t kSamplerLastSeen = 1;
constexpr uint8_t kSamplerBiased = 2;

void EncodeBuilderState(const ImpressionBuilderState& s, BinaryWriter* w,
                        uint32_t version) {
  EncodeImpressionState(s.impression, w, version);
  if (s.uniform) {
    w->PutU8(kSamplerUniform);
    w->PutI64(s.uniform->seen);
    EncodeRng(s.uniform->rng, w);
  } else if (s.last_seen) {
    w->PutU8(kSamplerLastSeen);
    w->PutI64(s.last_seen->seen);
    EncodeRng(s.last_seen->rng, w);
  } else if (s.biased) {
    w->PutU8(kSamplerBiased);
    w->PutI64(s.biased->seen);
    w->PutF64(s.biased->total_weight);
    w->PutI64(s.biased->accepted_post_fill);
    w->PutI64(s.biased->curve_interval);
    EncodeI64Vector(s.biased->curve, w);
    EncodeRng(s.biased->rng, w);
  } else {
    // A live builder always has exactly one sampler engaged; encode a tag
    // the decoder rejects so a programming error cannot produce a file that
    // silently loses the sampler.
    w->PutU8(0xFF);
  }
}

Result<ImpressionBuilderState> DecodeBuilderState(BinaryReader* r,
                                                  uint32_t version) {
  ImpressionBuilderState s;
  SCIBORQ_ASSIGN_OR_RETURN(s.impression, DecodeImpressionState(r, version));
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t tag, r->ReadU8());
  switch (tag) {
    case kSamplerUniform: {
      ReservoirSampler::State sampler;
      SCIBORQ_ASSIGN_OR_RETURN(sampler.seen, r->ReadI64());
      SCIBORQ_ASSIGN_OR_RETURN(sampler.rng, DecodeRng(r));
      s.uniform = sampler;
      break;
    }
    case kSamplerLastSeen: {
      LastSeenSampler::State sampler;
      SCIBORQ_ASSIGN_OR_RETURN(sampler.seen, r->ReadI64());
      SCIBORQ_ASSIGN_OR_RETURN(sampler.rng, DecodeRng(r));
      s.last_seen = sampler;
      break;
    }
    case kSamplerBiased: {
      BiasedReservoirSampler::State sampler;
      SCIBORQ_ASSIGN_OR_RETURN(sampler.seen, r->ReadI64());
      SCIBORQ_ASSIGN_OR_RETURN(sampler.total_weight, r->ReadF64());
      SCIBORQ_ASSIGN_OR_RETURN(sampler.accepted_post_fill, r->ReadI64());
      SCIBORQ_ASSIGN_OR_RETURN(sampler.curve_interval, r->ReadI64());
      SCIBORQ_ASSIGN_OR_RETURN(sampler.curve,
                               DecodeI64Vector(r, "acceptance checkpoint"));
      SCIBORQ_ASSIGN_OR_RETURN(sampler.rng, DecodeRng(r));
      s.biased = std::move(sampler);
      break;
    }
    default:
      return Status::InvalidArgument(
          StrFormat("snapshot: unknown sampler state tag %u", tag));
  }
  return s;
}

void EncodeHierarchyState(const HierarchyState& s, BinaryWriter* w,
                          uint32_t version) {
  EncodeRng(s.derive_rng, w);
  w->PutI64(s.ingested_since_refresh);
  w->PutI64(s.refresh_interval);
  w->PutU32(static_cast<uint32_t>(s.top.size()));
  for (const auto& shard : s.top) EncodeBuilderState(shard, w, version);
  w->PutBool(s.merged_top.has_value());
  if (s.merged_top) EncodeImpressionState(*s.merged_top, w, version);
  w->PutU32(static_cast<uint32_t>(s.derived.size()));
  for (const auto& layer : s.derived) {
    EncodeImpressionState(layer, w, version);
  }
}

Result<HierarchyState> DecodeHierarchyState(BinaryReader* r,
                                            uint32_t version) {
  HierarchyState s;
  SCIBORQ_ASSIGN_OR_RETURN(s.derive_rng, DecodeRng(r));
  SCIBORQ_ASSIGN_OR_RETURN(s.ingested_since_refresh, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(s.refresh_interval, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t shards, r->ReadU32());
  // The smallest possible builder state is still dozens of bytes; 8 is a
  // safe lower bound for the count guard.
  SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(shards, 8, *r, "top builder"));
  s.top.reserve(shards);
  for (uint32_t i = 0; i < shards; ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(ImpressionBuilderState shard,
                             DecodeBuilderState(r, version));
    s.top.push_back(std::move(shard));
  }
  SCIBORQ_ASSIGN_OR_RETURN(const bool has_merged, r->ReadBool());
  if (has_merged) {
    SCIBORQ_ASSIGN_OR_RETURN(ImpressionState merged,
                             DecodeImpressionState(r, version));
    s.merged_top = std::move(merged);
  }
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t derived, r->ReadU32());
  SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(derived, 8, *r, "derived layer"));
  s.derived.reserve(derived);
  for (uint32_t i = 0; i < derived; ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(ImpressionState layer,
                             DecodeImpressionState(r, version));
    s.derived.push_back(std::move(layer));
  }
  return s;
}

Result<CombineMode> CombineModeFromTag(uint8_t tag) {
  switch (tag) {
    case 0:
      return CombineMode::kGeometricMean;
    case 1:
      return CombineMode::kProduct;
    case 2:
      return CombineMode::kSum;
    case 3:
      return CombineMode::kMax;
    default:
      return Status::InvalidArgument(
          StrFormat("snapshot: unknown combine mode tag %u", tag));
  }
}

void EncodeTrackerState(const InterestTrackerState& s, BinaryWriter* w) {
  w->PutU8(static_cast<uint8_t>(s.mode));
  w->PutI64(s.observed_points);
  w->PutU32(static_cast<uint32_t>(s.attributes.size()));
  for (const auto& attr : s.attributes) {
    w->PutString(attr.column);
    w->PutF64(attr.hist.domain_min);
    w->PutF64(attr.hist.bin_width);
    w->PutU32(static_cast<uint32_t>(attr.hist.bins.size()));
    for (const auto& bin : attr.hist.bins) {
      w->PutF64(bin.count);
      w->PutF64(bin.mean);
    }
    w->PutI64(attr.hist.total_count);
    w->PutI64(attr.hist.clamped_count);
    w->PutF64(attr.hist.weighted_total);
  }
}

Result<InterestTrackerState> DecodeTrackerState(BinaryReader* r) {
  InterestTrackerState s;
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t mode_tag, r->ReadU8());
  SCIBORQ_ASSIGN_OR_RETURN(s.mode, CombineModeFromTag(mode_tag));
  SCIBORQ_ASSIGN_OR_RETURN(s.observed_points, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t attrs, r->ReadU32());
  SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(attrs, 8, *r, "tracked attribute"));
  s.attributes.reserve(attrs);
  for (uint32_t i = 0; i < attrs; ++i) {
    InterestTrackerState::Attribute attr;
    SCIBORQ_ASSIGN_OR_RETURN(attr.column, r->ReadString());
    SCIBORQ_ASSIGN_OR_RETURN(attr.hist.domain_min, r->ReadF64());
    SCIBORQ_ASSIGN_OR_RETURN(attr.hist.bin_width, r->ReadF64());
    SCIBORQ_ASSIGN_OR_RETURN(const uint32_t bins, r->ReadU32());
    SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(bins, 16, *r, "histogram bin"));
    attr.hist.bins.reserve(bins);
    for (uint32_t b = 0; b < bins; ++b) {
      StreamingHistogram::BinStats bin;
      SCIBORQ_ASSIGN_OR_RETURN(bin.count, r->ReadF64());
      SCIBORQ_ASSIGN_OR_RETURN(bin.mean, r->ReadF64());
      attr.hist.bins.push_back(bin);
    }
    SCIBORQ_ASSIGN_OR_RETURN(attr.hist.total_count, r->ReadI64());
    SCIBORQ_ASSIGN_OR_RETURN(attr.hist.clamped_count, r->ReadI64());
    SCIBORQ_ASSIGN_OR_RETURN(attr.hist.weighted_total, r->ReadF64());
    s.attributes.push_back(std::move(attr));
  }
  return s;
}


}  // namespace

void EncodePersistedConfig(const PersistedTableConfig& c, BinaryWriter* w,
                           bool with_retention) {
  w->PutU32(static_cast<uint32_t>(c.layers.size()));
  for (const auto& layer : c.layers) {
    w->PutString(layer.name);
    w->PutI64(layer.capacity);
  }
  w->PutU32(static_cast<uint32_t>(c.tracked_attributes.size()));
  for (const auto& attr : c.tracked_attributes) {
    w->PutString(attr.column);
    w->PutF64(attr.domain_min);
    w->PutF64(attr.bin_width);
    w->PutU32(static_cast<uint32_t>(attr.num_bins));
  }
  w->PutU64(c.seed);
  w->PutI64(c.refresh_interval);
  if (with_retention) {
    w->PutBool(c.retention.enabled());
    if (c.retention.enabled()) {
      w->PutString(c.retention.time_column);
      w->PutI64(c.retention.bucket_width);
      w->PutI64(c.retention.window_buckets);
      w->PutBool(c.retention.checkpoint_on_evict);
      w->PutI64(c.retention.last_seen_capacity);
      w->PutI64(c.retention.last_seen_expected_ingest);
    }
  }
}

Result<PersistedTableConfig> DecodePersistedConfig(BinaryReader* r,
                                                   bool with_retention) {
  PersistedTableConfig c;
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t layers, r->ReadU32());
  SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(layers, 12, *r, "layer spec"));
  c.layers.reserve(layers);
  for (uint32_t i = 0; i < layers; ++i) {
    ImpressionHierarchy::LayerSpec spec;
    SCIBORQ_ASSIGN_OR_RETURN(spec.name, r->ReadString());
    SCIBORQ_ASSIGN_OR_RETURN(spec.capacity, r->ReadI64());
    c.layers.push_back(std::move(spec));
  }
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t attrs, r->ReadU32());
  SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(attrs, 24, *r, "tracked attribute spec"));
  c.tracked_attributes.reserve(attrs);
  for (uint32_t i = 0; i < attrs; ++i) {
    InterestTracker::AttributeSpec spec;
    SCIBORQ_ASSIGN_OR_RETURN(spec.column, r->ReadString());
    SCIBORQ_ASSIGN_OR_RETURN(spec.domain_min, r->ReadF64());
    SCIBORQ_ASSIGN_OR_RETURN(spec.bin_width, r->ReadF64());
    SCIBORQ_ASSIGN_OR_RETURN(const uint32_t bins, r->ReadU32());
    spec.num_bins = static_cast<int>(bins);
    c.tracked_attributes.push_back(std::move(spec));
  }
  SCIBORQ_ASSIGN_OR_RETURN(c.seed, r->ReadU64());
  SCIBORQ_ASSIGN_OR_RETURN(c.refresh_interval, r->ReadI64());
  if (with_retention) {
    SCIBORQ_ASSIGN_OR_RETURN(const bool has_retention, r->ReadBool());
    if (has_retention) {
      SCIBORQ_ASSIGN_OR_RETURN(c.retention.time_column, r->ReadString());
      SCIBORQ_ASSIGN_OR_RETURN(c.retention.bucket_width, r->ReadI64());
      SCIBORQ_ASSIGN_OR_RETURN(c.retention.window_buckets, r->ReadI64());
      SCIBORQ_ASSIGN_OR_RETURN(c.retention.checkpoint_on_evict, r->ReadBool());
      SCIBORQ_ASSIGN_OR_RETURN(c.retention.last_seen_capacity, r->ReadI64());
      SCIBORQ_ASSIGN_OR_RETURN(c.retention.last_seen_expected_ingest,
                               r->ReadI64());
      if (c.retention.time_column.empty()) {
        return Status::InvalidArgument(
            "snapshot: retention block without a time column");
      }
    }
  }
  return c;
}

void EncodeImpressionBuilderState(const ImpressionBuilderState& state,
                                  BinaryWriter* w, uint32_t version) {
  EncodeBuilderState(state, w, version);
}

Result<ImpressionBuilderState> DecodeImpressionBuilderState(BinaryReader* r,
                                                            uint32_t version) {
  return DecodeBuilderState(r, version);
}

void EncodeTableSnapshot(const TableSnapshot& snap, BinaryWriter* w,
                         uint32_t version) {
  w->PutString(snap.table);
  EncodePersistedConfig(snap.config, w, /*with_retention=*/version >= 3);
  w->PutI64(snap.last_seq);
  EncodeTableVersioned(snap.base, w, version);
  EncodeHierarchyState(snap.hierarchy, w, version);
  w->PutBool(snap.tracker.has_value());
  if (snap.tracker) EncodeTrackerState(*snap.tracker, w);
  w->PutI64(snap.log.total_recorded);
  w->PutU32(static_cast<uint32_t>(snap.log.entries.size()));
  for (const auto& entry : snap.log.entries) {
    w->PutI64(entry.sequence);
    w->PutString(entry.sql);
  }
  if (version >= 3) {
    w->PutBool(snap.last_seen.has_value());
    if (snap.last_seen) EncodeBuilderState(*snap.last_seen, w, version);
  }
}

Result<TableSnapshot> DecodeTableSnapshot(BinaryReader* r,
                                          uint32_t version) {
  TableSnapshot snap;
  SCIBORQ_ASSIGN_OR_RETURN(snap.table, r->ReadString());
  SCIBORQ_ASSIGN_OR_RETURN(
      snap.config, DecodePersistedConfig(r, /*with_retention=*/version >= 3));
  SCIBORQ_ASSIGN_OR_RETURN(snap.last_seq, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(snap.base, DecodeTableVersioned(r, version));
  SCIBORQ_ASSIGN_OR_RETURN(snap.hierarchy, DecodeHierarchyState(r, version));
  SCIBORQ_ASSIGN_OR_RETURN(const bool has_tracker, r->ReadBool());
  if (has_tracker) {
    SCIBORQ_ASSIGN_OR_RETURN(InterestTrackerState tracker,
                             DecodeTrackerState(r));
    snap.tracker = std::move(tracker);
  }
  SCIBORQ_ASSIGN_OR_RETURN(snap.log.total_recorded, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t entries, r->ReadU32());
  SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(entries, 12, *r, "query log entry"));
  snap.log.entries.reserve(entries);
  for (uint32_t i = 0; i < entries; ++i) {
    PersistedQueryLog::Entry entry;
    SCIBORQ_ASSIGN_OR_RETURN(entry.sequence, r->ReadI64());
    SCIBORQ_ASSIGN_OR_RETURN(entry.sql, r->ReadString());
    snap.log.entries.push_back(std::move(entry));
  }
  if (version >= 3) {
    SCIBORQ_ASSIGN_OR_RETURN(const bool has_last_seen, r->ReadBool());
    if (has_last_seen) {
      SCIBORQ_ASSIGN_OR_RETURN(ImpressionBuilderState state,
                               DecodeBuilderState(r, version));
      snap.last_seen = std::move(state);
    }
  }
  SCIBORQ_RETURN_NOT_OK(r->ExpectEnd());
  return snap;
}

Status WriteTableSnapshot(const TableSnapshot& snap, const std::string& path,
                          uint32_t version) {
  if (version < kMinSnapshotFormatVersion ||
      version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(StrFormat(
        "snapshot: cannot write format version %u (this build writes v%u-v%u)",
        version, kMinSnapshotFormatVersion, kSnapshotFormatVersion));
  }
  BinaryWriter body;
  EncodeTableSnapshot(snap, &body, version);

  BinaryWriter header;
  header.PutU32(kSnapshotMagic);
  header.PutU32(version);
  header.PutU64(body.buffer().size());
  BinaryWriter footer;
  footer.PutU32(Crc32c(body.buffer()));

  const std::string tmp = path + ".tmp";
  // Three back-to-back writes: the body (the dominant allocation for a big
  // table) is never copied into a combined buffer.
  SCIBORQ_RETURN_NOT_OK(WriteFileDurably(
      tmp, {std::string_view(header.buffer()), std::string_view(body.buffer()),
            std::string_view(footer.buffer())}));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status st = Status::IOError(StrFormat(
        "rename %s -> %s: %s", tmp.c_str(), path.c_str(),
        ErrnoString(errno).c_str()));
    ::unlink(tmp.c_str());
    return st;
  }
  return SyncParentDir(path);
}

Result<TableSnapshot> ReadTableSnapshot(const std::string& path) {
  SCIBORQ_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  BinaryReader header(bytes);
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t magic, header.ReadU32());
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument(
        StrFormat("snapshot %s: bad magic 0x%08x", path.c_str(), magic));
  }
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t version, header.ReadU32());
  if (version < kMinSnapshotFormatVersion ||
      version > kSnapshotFormatVersion) {
    // The file may be perfectly intact — just written by a build with a
    // newer (or ancient) page format. DataLoss, not a crash or a silent
    // skip, so the operator knows to upgrade instead of re-ingesting.
    return Status::DataLoss(StrFormat(
        "snapshot %s: page-format version %u not supported (this build reads "
        "v%u-v%u); upgrade the binary to read this file",
        path.c_str(), version, kMinSnapshotFormatVersion,
        kSnapshotFormatVersion));
  }
  SCIBORQ_ASSIGN_OR_RETURN(const uint64_t body_len, header.ReadU64());
  if (header.remaining() < 4 ||
      body_len != static_cast<uint64_t>(header.remaining()) - 4) {
    return Status::InvalidArgument(StrFormat(
        "snapshot %s: declared body length %llu does not match the file "
        "(truncated or trailing bytes)",
        path.c_str(), static_cast<unsigned long long>(body_len)));
  }
  const std::string_view body(bytes.data() + 16, body_len);
  BinaryReader footer(
      std::string_view(bytes.data() + 16 + body_len, 4));
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t expected_crc, footer.ReadU32());
  const uint32_t actual_crc = Crc32c(body);
  if (actual_crc != expected_crc) {
    return Status::InvalidArgument(StrFormat(
        "snapshot %s: checksum mismatch (stored 0x%08x, computed 0x%08x) — "
        "the file is corrupt",
        path.c_str(), expected_crc, actual_crc));
  }
  BinaryReader reader(body);
  Result<TableSnapshot> snap = DecodeTableSnapshot(&reader, version);
  if (!snap.ok()) {
    return Status::InvalidArgument(StrFormat(
        "snapshot %s: %s", path.c_str(), snap.status().message().c_str()));
  }
  return snap;
}

}  // namespace sciborq
