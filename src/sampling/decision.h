#ifndef SCIBORQ_SAMPLING_DECISION_H_
#define SCIBORQ_SAMPLING_DECISION_H_

#include <cstdint>

namespace sciborq {

/// The outcome of offering one streaming tuple to a reservoir-style sampler.
/// Samplers only decide; the caller owns the storage (an Impression stores
/// whole rows column-wise) and applies the decision:
///   if (d.accepted) storage[d.slot] = tuple;   // slot < capacity
/// Slots are dense: while the reservoir is filling, slot == number of rows
/// stored so far; afterwards it names the victim row to overwrite.
struct ReservoirDecision {
  bool accepted = false;
  int64_t slot = -1;
};

}  // namespace sciborq

#endif  // SCIBORQ_SAMPLING_DECISION_H_
