#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the library, tools, benches,
# and tests, using the compile database the CMake build exports.
#
# Usage:
#   tools/run_lint.sh [build_dir]
#
# build_dir defaults to ./build and must contain compile_commands.json
# (every configure writes one: CMAKE_EXPORT_COMPILE_COMMANDS is ON in
# CMakeLists.txt). Exits non-zero on any finding — the same contract the
# clang-tidy CI job enforces.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: ${build_dir}/compile_commands.json not found." >&2
  echo "Configure first: cmake -B ${build_dir} -S ." >&2
  exit 2
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy}" >/dev/null 2>&1; then
  echo "error: ${tidy} not found (set CLANG_TIDY to the binary to use)." >&2
  exit 2
fi

# Every translation unit in the compile database that belongs to the repo
# (excludes external sources like GTest's main).
mapfile -t files < <(python3 - "${build_dir}" <<'EOF'
import json, os, sys
root = os.getcwd()
seen = []
for entry in json.load(open(os.path.join(sys.argv[1], "compile_commands.json"))):
    path = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
    if path.startswith(root + os.sep) and path not in seen:
        seen.append(path)
print("\n".join(seen))
EOF
)

echo "clang-tidy (${#files[@]} files, config .clang-tidy)..."
"${tidy}" -p "${build_dir}" --quiet "${files[@]}"
echo "clang-tidy: clean"
