#ifndef SCIBORQ_SERVER_WIRE_H_
#define SCIBORQ_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/engine.h"
#include "column/value.h"
#include "exec/query.h"
#include "util/result.h"

namespace sciborq {

// ---------------------------------------------------------------------------
// SciBORQ wire protocol — the network face of the bounded-query contract.
//
// Every message travels in one *frame*:
//
//   u32 length (little-endian) | body (`length` bytes)
//
// where body = u8 version | u8 opcode | payload. Frames larger than the
// receiver's max_frame_bytes are rejected without being read.
//
// v1 requests (client -> server), encoded with version byte 1 — byte
// identical to every older build:
//   kQuery     payload = string sql         (session table/bounds fill gaps)
//   kUse       payload = string table       (sets the session default table)
//   kSetBounds payload = QueryBounds        (session defaults for bare SQL)
//   kCatalog   payload = (empty)            (list tables + metadata)
//   kPing      payload = (empty)
//
// v2 adds prepared statements (parse once, bind, execute many), encoded
// with version byte 2; a peer that only speaks v1 rejects them cleanly:
//   kPrepare   payload = string sql          (`?` placeholder template)
//   kExecute   payload = i64 id | params     (params = u32 n + n Value)
//   kCloseStmt payload = i64 id
//
// Responses (server -> client) echo the request opcode and carry
//   u8 status_code | string status_message | payload-if-OK
// with payload: kQuery/kExecute -> QueryOutcome, kCatalog -> u32 n +
// n TableInfo, kPrepare -> StatementInfo, others empty. Frame-level
// failures (oversized/undecodable request) are reported with opcode
// kInvalid and the connection is closed.
//
// All integers are little-endian and fixed-width; doubles are IEEE-754 bit
// patterns (NaN/Inf round-trip exactly); strings are u32 length + raw bytes.
// The encoding is bijective: encode(decode(encode(x))) == encode(x), which
// the wire tests assert byte-for-byte.
// ---------------------------------------------------------------------------

/// The original opcode set. Frames carrying v1 opcodes are still encoded
/// with this version byte, so v1 request/response encodings never change.
inline constexpr uint8_t kWireVersionV1 = 1;
/// Adds kPrepare/kExecute/kCloseStmt.
inline constexpr uint8_t kWireVersionV2 = 2;
/// Highest protocol version this build speaks.
inline constexpr uint8_t kWireVersion = kWireVersionV2;

/// Default ceiling for one frame. Generous for result batches (a row of
/// doubles is tens of bytes) while bounding a malicious length prefix.
inline constexpr int64_t kMaxFrameBytes = 64ll * 1024 * 1024;

enum class Opcode : uint8_t {
  kInvalid = 0,  ///< response-only: frame-level protocol failure
  kQuery = 1,
  kUse = 2,
  kSetBounds = 3,
  kCatalog = 4,
  kPing = 5,
  // -- v2: prepared statements --
  kPrepare = 6,
  kExecute = 7,
  kCloseStmt = 8,
};

std::string_view OpcodeToString(Opcode op);

/// The version byte a frame carrying `op` is encoded with: v1 opcodes stay
/// v1 (byte-identical to older builds), v2 opcodes are stamped v2.
uint8_t WireVersionFor(Opcode op);

/// Appends primitive values to a growing byte buffer.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v);
  /// u32 length + raw bytes (embedded NULs are fine).
  void PutString(std::string_view s);

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked sequential reads over one decoded frame body. Every read
/// fails with InvalidArgument instead of walking off the end, so truncated
/// or hostile frames surface as Status, never as UB.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<bool> ReadBool();  ///< rejects bytes other than 0/1
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  Result<std::string> ReadString();

  int64_t remaining() const {
    return static_cast<int64_t>(data_.size() - pos_);
  }
  /// InvalidArgument unless the whole body was consumed — trailing garbage
  /// means a framing bug or a tampered message.
  Status ExpectEnd() const;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// -- Typed encode/decode pairs ----------------------------------------------

void EncodeValue(const Value& v, WireWriter* w);
Result<Value> DecodeValue(WireReader* r);

void EncodeSchema(const Schema& schema, WireWriter* w);
Result<Schema> DecodeSchema(WireReader* r);

void EncodeBounds(const QueryBounds& bounds, WireWriter* w);
Result<QueryBounds> DecodeBounds(WireReader* r);

void EncodeStatus(const Status& status, WireWriter* w);
/// The return value reports wire-decoding success; `*decoded` receives the
/// transported status (which may itself be any code, including OK).
Status DecodeStatus(WireReader* r, Status* decoded);

void EncodeEstimate(const AggregateEstimate& est, WireWriter* w);
Result<AggregateEstimate> DecodeEstimate(WireReader* r);

void EncodeAttempt(const LayerAttempt& attempt, WireWriter* w);
Result<LayerAttempt> DecodeAttempt(WireReader* r);

void EncodeResultRow(const QueryResultRow& row, WireWriter* w);
Result<QueryResultRow> DecodeResultRow(WireReader* r);

void EncodeOutcome(const QueryOutcome& outcome, WireWriter* w);
Result<QueryOutcome> DecodeOutcome(WireReader* r);

void EncodeTableInfo(const TableInfo& info, WireWriter* w);
Result<TableInfo> DecodeTableInfo(WireReader* r);

/// Parameter lists for kExecute: u32 count + count Values. Decode rejects a
/// count larger than the bytes that could possibly back it before
/// allocating (hostile-length defense, like ReadString).
void EncodeParams(const std::vector<Value>& params, WireWriter* w);
Result<std::vector<Value>> DecodeParams(WireReader* r);

/// kPrepare response payload: handle id, target table, normalized template
/// SQL, parameter count.
void EncodeStatementInfo(const StatementInfo& info, WireWriter* w);
Result<StatementInfo> DecodeStatementInfo(WireReader* r);

// -- Message envelopes ------------------------------------------------------

/// A decoded request: opcode plus its payload reader (positioned after the
/// envelope; the handler decodes the op-specific payload).
struct RequestFrame {
  Opcode opcode = Opcode::kInvalid;
  std::string payload;  ///< op-specific bytes
};

/// version | opcode | payload.
std::string EncodeRequest(Opcode op, std::string_view payload);
/// Rejects unknown versions and opcodes.
Result<RequestFrame> DecodeRequest(std::string_view body);

/// version | opcode | status | payload (payload only meaningful when OK).
std::string EncodeResponse(Opcode op, const Status& status,
                           std::string_view payload);

struct ResponseFrame {
  Opcode opcode = Opcode::kInvalid;
  Status status;
  std::string payload;  ///< empty unless status.ok()
};
Result<ResponseFrame> DecodeResponse(std::string_view body);

}  // namespace sciborq

#endif  // SCIBORQ_SERVER_WIRE_H_
