#ifndef SCIBORQ_WORKLOAD_GENERATOR_H_
#define SCIBORQ_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "exec/query.h"
#include "util/result.h"
#include "util/rng.h"

namespace sciborq {

/// One center of scientific attention on the sky, with the spread of queries
/// around it. Weights give the relative share of queries per focal point.
struct FocalPoint {
  double ra = 0.0;
  double dec = 0.0;
  double weight = 1.0;
  double jitter_sd = 3.0;  ///< degrees; how tightly queries cluster
};

/// Configuration of a cone-query workload in the shape of the SkyServer logs
/// (§2.1: "select * from Galaxy G, fGetNearbyObjEq(185, 0, 3) N ..."):
/// each query picks a focal point, jitters the center, draws a radius, and
/// aggregates over the matching objects.
struct ConeWorkloadConfig {
  std::vector<FocalPoint> focal_points;
  double radius_mean = 2.0;
  double radius_sd = 0.5;
  double min_radius = 0.25;
  std::string ra_column = "ra";
  std::string dec_column = "dec";
  /// Numeric measure aggregated by the queries (AVG + COUNT are generated).
  std::string measure_column = "redshift";
};

/// Generates an endless stream of cone aggregate queries around fixed focal
/// points. Deterministic given the seed.
class ConeWorkloadGenerator {
 public:
  /// InvalidArgument when no focal points or non-positive weights.
  static Result<ConeWorkloadGenerator> Make(ConeWorkloadConfig config,
                                            uint64_t seed);

  AggregateQuery Next();

  const ConeWorkloadConfig& config() const { return config_; }
  int64_t generated() const { return generated_; }

 private:
  ConeWorkloadGenerator(ConeWorkloadConfig config, uint64_t seed)
      : config_(std::move(config)), rng_(seed) {}

  const FocalPoint& PickFocalPoint();

  ConeWorkloadConfig config_;
  Rng rng_;
  int64_t generated_ = 0;
};

/// A workload whose focus *moves*: a sequence of phases, each a full cone
/// workload, switched after `queries_per_phase` queries. Drives the
/// adaptivity experiment (paper §3.1: impressions "adapt to query workload
/// shifts").
class ShiftingWorkloadGenerator {
 public:
  static Result<ShiftingWorkloadGenerator> Make(
      std::vector<ConeWorkloadConfig> phases, int64_t queries_per_phase,
      uint64_t seed);

  AggregateQuery Next();

  int current_phase() const { return phase_; }
  int num_phases() const { return static_cast<int>(generators_.size()); }
  int64_t generated() const { return generated_; }

 private:
  ShiftingWorkloadGenerator(std::vector<ConeWorkloadGenerator> generators,
                            int64_t queries_per_phase)
      : generators_(std::move(generators)),
        queries_per_phase_(queries_per_phase) {}

  std::vector<ConeWorkloadGenerator> generators_;
  int64_t queries_per_phase_;
  int64_t generated_ = 0;
  int phase_ = 0;
};

/// The workload behind the paper's Figure 4: ~400 predicate values on ra and
/// dec, bimodal on both attributes (ra peaks near 150/215 over [120, 240],
/// dec peaks near 12/40 over [0, 60]).
ConeWorkloadConfig PaperFigure4WorkloadConfig();

}  // namespace sciborq

#endif  // SCIBORQ_WORKLOAD_GENERATOR_H_
