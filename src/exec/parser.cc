#include "exec/parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <vector>

#include "util/string_util.h"

namespace sciborq {

namespace {

enum class TokenKind {
  kIdent,    // bare word (also keywords; matched case-insensitively)
  kNumber,
  kString,   // 'quoted'
  kSymbol,   // one of ( ) , ; * = ? % and the comparison operators
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier/symbol text, or string contents
  double number = 0.0;
  bool number_is_int = false;
  size_t offset = 0;  // for error messages
};

/// Every parse error names the byte offset and shows a caret excerpt of the
/// surrounding text, so the offending token is visible without counting
/// characters:
///
///   expected 'ms' at offset 30
///     ...ELECT COUNT(*) WITHIN 50 SEC...
///                                 ^
Status ParseErrorAt(const std::string& text, size_t offset,
                    const std::string& message) {
  constexpr size_t kContext = 26;
  const size_t at = std::min(offset, text.size());
  const size_t begin = at > kContext ? at - kContext : 0;
  const size_t end = std::min(text.size(), at + kContext);
  std::string excerpt = text.substr(begin, end - begin);
  // Whitespace runs render as single spaces so the caret column is exact.
  for (char& c : excerpt) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  const std::string lead = begin > 0 ? "..." : "";
  const std::string trail = end < text.size() ? "..." : "";
  const size_t caret = lead.size() + (at - begin);
  return Status::InvalidArgument(
      StrFormat("%s at offset %zu\n  %s%s%s\n  %s^", message.c_str(), offset,
                lead.c_str(), excerpt.c_str(), trail.c_str(),
                std::string(caret, ' ').c_str()));
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespace();
      Token token;
      token.offset = pos_;
      if (pos_ >= text_.size()) {
        token.kind = TokenKind::kEnd;
        out.push_back(token);
        return out;
      }
      const char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        token.kind = TokenKind::kIdent;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          token.text += text_[pos_++];
        }
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
                 ((c == '-' || c == '+') && pos_ + 1 < text_.size() &&
                  (std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) ||
                   text_[pos_ + 1] == '.'))) {
        token.kind = TokenKind::kNumber;
        const size_t start = pos_;
        char* end = nullptr;
        token.number = std::strtod(text_.c_str() + start, &end);
        pos_ = static_cast<size_t>(end - text_.c_str());
        const std::string slice = text_.substr(start, pos_ - start);
        token.number_is_int =
            slice.find_first_of(".eE") == std::string::npos;
        token.text = slice;
      } else if (c == '\'') {
        token.kind = TokenKind::kString;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '\'') {
          token.text += text_[pos_++];
        }
        if (pos_ >= text_.size()) {
          return ParseErrorAt(text_, token.offset,
                              "unterminated string literal");
        }
        ++pos_;  // closing quote
      } else if (c == '<' || c == '>') {
        token.kind = TokenKind::kSymbol;
        token.text += text_[pos_++];
        if (pos_ < text_.size() &&
            (text_[pos_] == '=' || (c == '<' && text_[pos_] == '>'))) {
          token.text += text_[pos_++];
        }
      } else if (c == '(' || c == ')' || c == ',' || c == ';' || c == '*' ||
                 c == '=' || c == '%' || c == '?') {
        token.kind = TokenKind::kSymbol;
        token.text = std::string(1, c);
        ++pos_;
      } else {
        return ParseErrorAt(text_, pos_,
                            StrFormat("unexpected character '%c'", c));
      }
      out.push_back(std::move(token));
    }
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::string Lowered(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

class Parser {
 public:
  /// `allow_params` enables `?` placeholders (the ParsePreparedQuery mode);
  /// `text` is kept for caret excerpts in error messages.
  Parser(std::vector<Token> tokens, const std::string& text, bool allow_params)
      : tokens_(std::move(tokens)), text_(text), allow_params_(allow_params) {}

  Result<AggregateQuery> ParseQueryText() {
    SCIBORQ_ASSIGN_OR_RETURN(BoundedQuery bounded, ParseBoundedQueryText());
    if (bounded.bounds.any()) {
      return Status::InvalidArgument(
          "query carries a bounds clause; use ParseBoundedQuery");
    }
    return std::move(bounded.query);
  }

  Result<BoundedQuery> ParseBoundedQueryText() {
    BoundedQuery bounded;
    AggregateQuery& query = bounded.query;
    SCIBORQ_RETURN_NOT_OK(ExpectKeyword("select"));
    SCIBORQ_ASSIGN_OR_RETURN(AggregateSpec first, ParseAggregate());
    query.aggregates.push_back(std::move(first));
    while (AcceptSymbol(",")) {
      SCIBORQ_ASSIGN_OR_RETURN(AggregateSpec next, ParseAggregate());
      query.aggregates.push_back(std::move(next));
    }
    if (AcceptKeyword("from")) {
      SCIBORQ_ASSIGN_OR_RETURN(query.table, ExpectIdent());
    }
    if (AcceptKeyword("where")) {
      SCIBORQ_ASSIGN_OR_RETURN(query.filter, ParseOr());
    }
    if (AcceptKeyword("group")) {
      SCIBORQ_RETURN_NOT_OK(ExpectKeyword("by"));
      SCIBORQ_ASSIGN_OR_RETURN(query.group_by, ExpectIdent());
    } else if (AcceptKeyword("by")) {
      // Telemetry shorthand: `LAST(value) BY station` == `... GROUP BY
      // station`. ToString renders the canonical GROUP BY form, so the
      // round-trip guarantee is unaffected.
      SCIBORQ_ASSIGN_OR_RETURN(query.group_by, ExpectIdent());
    }
    SCIBORQ_RETURN_NOT_OK(ParseBounds(&bounded.bounds));
    SCIBORQ_RETURN_NOT_OK(ExpectEnd());
    return bounded;
  }

  Result<PreparedQuery> ParsePreparedQueryText() {
    SCIBORQ_ASSIGN_OR_RETURN(BoundedQuery bounded, ParseBoundedQueryText());
    PreparedQuery prepared;
    prepared.query = std::move(bounded.query);
    prepared.bounds = bounded.bounds;
    prepared.slots = std::move(slots_);
    prepared.time_budget_slot = within_slot_;
    prepared.error_slot = error_slot_;
    return prepared;
  }

  Result<PredicatePtr> ParsePredicateText() {
    SCIBORQ_ASSIGN_OR_RETURN(PredicatePtr pred, ParseOr());
    SCIBORQ_RETURN_NOT_OK(ExpectEnd());
    return pred;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  const Token& Advance() { return tokens_[index_++]; }

  Status ErrorHere(const std::string& message) const {
    return ParseErrorAt(text_, Peek().offset, message);
  }

  bool AcceptKeyword(const std::string& word) {
    if (Peek().kind == TokenKind::kIdent && Lowered(Peek().text) == word) {
      ++index_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& word) {
    if (!AcceptKeyword(word)) {
      return ErrorHere(StrFormat("expected '%s'", word.c_str()));
    }
    return Status::OK();
  }
  bool AcceptSymbol(const std::string& symbol) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == symbol) {
      ++index_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const std::string& symbol) {
    if (!AcceptSymbol(symbol)) {
      return ErrorHere(StrFormat("expected '%s'", symbol.c_str()));
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return ErrorHere("expected identifier");
    }
    return Advance().text;
  }
  Result<double> ExpectNumber() {
    if (Peek().kind != TokenKind::kNumber) {
      return ErrorHere("expected number");
    }
    return Advance().number;
  }
  Status ExpectEnd() {
    if (Peek().kind != TokenKind::kEnd) {
      return ErrorHere("unexpected trailing input");
    }
    return Status::OK();
  }

  bool AtPlaceholder() const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == "?";
  }

  Status PlaceholdersNotAllowed() const {
    return ErrorHere(
        "'?' placeholders are only valid in prepared statements "
        "(ParsePreparedQuery / Engine::Prepare)");
  }

  /// Consumes the `?` at the cursor and records its slot. Precondition:
  /// AtPlaceholder() and allow_params_.
  size_t TakeSlot(ParamKind kind, std::string column) {
    const Token& mark = Advance();
    const size_t slot = slots_.size();
    slots_.push_back(ParamSlot{kind, std::move(column), mark.offset});
    return slot;
  }

  Result<AggregateSpec> ParseAggregate() {
    const size_t name_at = Peek().offset;
    SCIBORQ_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    const std::string fn = Lowered(name);
    AggregateSpec spec;
    if (fn == "count") {
      spec.kind = AggKind::kCount;
    } else if (fn == "sum") {
      spec.kind = AggKind::kSum;
    } else if (fn == "avg") {
      spec.kind = AggKind::kAvg;
    } else if (fn == "min") {
      spec.kind = AggKind::kMin;
    } else if (fn == "max") {
      spec.kind = AggKind::kMax;
    } else if (fn == "var" || fn == "variance") {
      spec.kind = AggKind::kVariance;
    } else if (fn == "last") {
      spec.kind = AggKind::kLast;
    } else {
      return ParseErrorAt(text_, name_at,
                          StrFormat("unknown aggregate '%s'", name.c_str()));
    }
    SCIBORQ_RETURN_NOT_OK(ExpectSymbol("("));
    const size_t star_at = Peek().offset;
    if (AcceptSymbol("*")) {
      if (spec.kind != AggKind::kCount) {
        return ParseErrorAt(text_, star_at, "only COUNT accepts '*'");
      }
    } else {
      SCIBORQ_ASSIGN_OR_RETURN(spec.column, ExpectIdent());
    }
    SCIBORQ_RETURN_NOT_OK(ExpectSymbol(")"));
    return spec;
  }

  /// bounds := [WITHIN number MS] [ERROR number '%'] [CONFIDENCE number '%']
  ///           [EXACT] — every term optional, fixed order. In prepared mode
  ///   the WITHIN and ERROR numbers may each be a `?` placeholder.
  Status ParseBounds(QueryBounds* bounds) {
    if (AcceptKeyword("within")) {
      if (AtPlaceholder()) {
        if (!allow_params_) return PlaceholdersNotAllowed();
        within_slot_ = static_cast<int>(TakeSlot(ParamKind::kWithinMs, ""));
        SCIBORQ_RETURN_NOT_OK(ExpectKeyword("ms"));
      } else {
        const size_t at = Peek().offset;
        SCIBORQ_ASSIGN_OR_RETURN(double ms, ExpectNumber());
        SCIBORQ_RETURN_NOT_OK(ExpectKeyword("ms"));
        if (ms <= 0.0) {
          return ParseErrorAt(
              text_, at,
              StrFormat("WITHIN budget must be positive, got %g", ms));
        }
        bounds->time_budget_ms = ms;
      }
    }
    if (AcceptKeyword("error")) {
      if (AtPlaceholder()) {
        if (!allow_params_) return PlaceholdersNotAllowed();
        error_slot_ = static_cast<int>(TakeSlot(ParamKind::kErrorPct, ""));
        SCIBORQ_RETURN_NOT_OK(ExpectSymbol("%"));
      } else {
        const size_t at = Peek().offset;
        SCIBORQ_ASSIGN_OR_RETURN(double pct, ExpectNumber());
        SCIBORQ_RETURN_NOT_OK(ExpectSymbol("%"));
        if (pct < 0.0) {
          return ParseErrorAt(
              text_, at,
              StrFormat("ERROR bound must be non-negative, got %g%%", pct));
        }
        bounds->max_relative_error = pct / 100.0;
      }
    }
    if (AcceptKeyword("confidence")) {
      const size_t at = Peek().offset;
      SCIBORQ_ASSIGN_OR_RETURN(double pct, ExpectNumber());
      SCIBORQ_RETURN_NOT_OK(ExpectSymbol("%"));
      if (pct <= 0.0 || pct >= 100.0) {
        return ParseErrorAt(
            text_, at,
            StrFormat("CONFIDENCE must be in (0, 100)%%, got %g%%", pct));
      }
      bounds->confidence = pct / 100.0;
    }
    if (AcceptKeyword("exact")) bounds->exact = true;
    return Status::OK();
  }

  Result<PredicatePtr> ParseOr() {
    SCIBORQ_ASSIGN_OR_RETURN(PredicatePtr first, ParseAnd());
    std::vector<PredicatePtr> children;
    children.push_back(std::move(first));
    while (AcceptKeyword("or")) {
      SCIBORQ_ASSIGN_OR_RETURN(PredicatePtr next, ParseAnd());
      children.push_back(std::move(next));
    }
    if (children.size() == 1) return std::move(children[0]);
    return Or(std::move(children));
  }

  Result<PredicatePtr> ParseAnd() {
    SCIBORQ_ASSIGN_OR_RETURN(PredicatePtr first, ParseUnary());
    std::vector<PredicatePtr> children;
    children.push_back(std::move(first));
    while (AcceptKeyword("and")) {
      SCIBORQ_ASSIGN_OR_RETURN(PredicatePtr next, ParseUnary());
      children.push_back(std::move(next));
    }
    if (children.size() == 1) return std::move(children[0]);
    return And(std::move(children));
  }

  Result<PredicatePtr> ParseUnary() {
    if (AcceptKeyword("not")) {
      SCIBORQ_ASSIGN_OR_RETURN(PredicatePtr child, ParseUnary());
      return Not(std::move(child));
    }
    if (AcceptKeyword("cone")) return ParseCone();
    if (AcceptSymbol("(")) {
      SCIBORQ_ASSIGN_OR_RETURN(PredicatePtr inner, ParseOr());
      SCIBORQ_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    return ParseComparison();
  }

  Result<PredicatePtr> ParseCone() {
    // cone(col_x, col_y; x, y; [r=]radius) — ',' accepted for ';'.
    SCIBORQ_RETURN_NOT_OK(ExpectSymbol("("));
    SCIBORQ_ASSIGN_OR_RETURN(std::string cx, ExpectIdent());
    SCIBORQ_RETURN_NOT_OK(ExpectSymbol(","));
    SCIBORQ_ASSIGN_OR_RETURN(std::string cy, ExpectIdent());
    SCIBORQ_RETURN_NOT_OK(ExpectSeparator());
    SCIBORQ_ASSIGN_OR_RETURN(double x0, ExpectNumber());
    SCIBORQ_RETURN_NOT_OK(ExpectSymbol(","));
    SCIBORQ_ASSIGN_OR_RETURN(double y0, ExpectNumber());
    SCIBORQ_RETURN_NOT_OK(ExpectSeparator());
    if (AcceptKeyword("r")) SCIBORQ_RETURN_NOT_OK(ExpectSymbol("="));
    SCIBORQ_ASSIGN_OR_RETURN(double radius, ExpectNumber());
    SCIBORQ_RETURN_NOT_OK(ExpectSymbol(")"));
    return Cone(std::move(cx), std::move(cy), x0, y0, radius);
  }

  Status ExpectSeparator() {
    if (AcceptSymbol(";") || AcceptSymbol(",")) return Status::OK();
    return ErrorHere("expected ';' or ','");
  }

  Result<PredicatePtr> ParseComparison() {
    SCIBORQ_ASSIGN_OR_RETURN(std::string column, ExpectIdent());
    if (AcceptKeyword("between")) {
      SCIBORQ_ASSIGN_OR_RETURN(double lo, ExpectNumber());
      SCIBORQ_RETURN_NOT_OK(ExpectKeyword("and"));
      SCIBORQ_ASSIGN_OR_RETURN(double hi, ExpectNumber());
      return Between(std::move(column), lo, hi);
    }
    if (Peek().kind != TokenKind::kSymbol) {
      return ErrorHere("expected comparison operator");
    }
    const size_t op_at = Peek().offset;
    const std::string op_text = Advance().text;
    CompareOp op;
    if (op_text == "=") {
      op = CompareOp::kEq;
    } else if (op_text == "<>") {
      op = CompareOp::kNe;
    } else if (op_text == "<") {
      op = CompareOp::kLt;
    } else if (op_text == "<=") {
      op = CompareOp::kLe;
    } else if (op_text == ">") {
      op = CompareOp::kGt;
    } else if (op_text == ">=") {
      op = CompareOp::kGe;
    } else {
      return ParseErrorAt(
          text_, op_at, StrFormat("unknown operator '%s'", op_text.c_str()));
    }
    if (AtPlaceholder()) {
      if (!allow_params_) return PlaceholdersNotAllowed();
      const size_t slot = TakeSlot(ParamKind::kCompareLiteral, column);
      return Param(std::move(column), op, slot);
    }
    Value literal;
    if (Peek().kind == TokenKind::kString) {
      literal = Value(Advance().text);
    } else if (Peek().kind == TokenKind::kNumber) {
      const Token& t = Advance();
      literal = t.number_is_int ? Value(static_cast<int64_t>(t.number))
                                : Value(t.number);
    } else {
      return ErrorHere("expected literal");
    }
    return Compare(std::move(column), op, std::move(literal));
  }

  std::vector<Token> tokens_;
  const std::string& text_;
  bool allow_params_;
  size_t index_ = 0;
  std::vector<ParamSlot> slots_;
  int within_slot_ = -1;
  int error_slot_ = -1;
};

}  // namespace

Result<AggregateQuery> ParseQuery(const std::string& text) {
  Lexer lexer(text);
  SCIBORQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), text, /*allow_params=*/false);
  return parser.ParseQueryText();
}

Result<BoundedQuery> ParseBoundedQuery(const std::string& text) {
  Lexer lexer(text);
  SCIBORQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), text, /*allow_params=*/false);
  return parser.ParseBoundedQueryText();
}

Result<PreparedQuery> ParsePreparedQuery(const std::string& text) {
  Lexer lexer(text);
  SCIBORQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), text, /*allow_params=*/true);
  return parser.ParsePreparedQueryText();
}

Result<PredicatePtr> ParsePredicate(const std::string& text) {
  Lexer lexer(text);
  SCIBORQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), text, /*allow_params=*/false);
  return parser.ParsePredicateText();
}

}  // namespace sciborq
