#include <gtest/gtest.h>

#include <cmath>

#include "stats/noncentral_hypergeometric.h"

namespace sciborq {
namespace {

using FNCH = FisherNoncentralHypergeometric;

TEST(FnchTest, MakeValidation) {
  EXPECT_FALSE(FNCH::Make(-1, 10, 5, 1.0).ok());
  EXPECT_FALSE(FNCH::Make(10, -1, 5, 1.0).ok());
  EXPECT_FALSE(FNCH::Make(10, 10, 21, 1.0).ok());
  EXPECT_FALSE(FNCH::Make(10, 10, -1, 1.0).ok());
  EXPECT_FALSE(FNCH::Make(10, 10, 5, 0.0).ok());
  EXPECT_FALSE(FNCH::Make(10, 10, 5, -2.0).ok());
  EXPECT_TRUE(FNCH::Make(10, 10, 5, 1.0).ok());
}

TEST(FnchTest, SupportBounds) {
  const FNCH d = FNCH::Make(6, 4, 8, 1.0).value();
  EXPECT_EQ(d.support_min(), 4);  // n - m2 = 8 - 4
  EXPECT_EQ(d.support_max(), 6);  // min(n, m1)
}

TEST(FnchTest, CentralCaseMatchesHypergeometric) {
  // omega = 1 is the central hypergeometric: mean = n*m1/(m1+m2),
  // var = n * (m1/N) * (m2/N) * (N-n)/(N-1).
  const int64_t m1 = 30;
  const int64_t m2 = 70;
  const int64_t n = 20;
  const FNCH d = FNCH::Make(m1, m2, n, 1.0).value();
  const double N = 100.0;
  const double expected_mean = n * m1 / N;
  const double expected_var =
      n * (m1 / N) * (m2 / N) * (N - n) / (N - 1.0);
  EXPECT_NEAR(d.Mean(), expected_mean, 1e-9);
  EXPECT_NEAR(d.Variance(), expected_var, 1e-9);
}

TEST(FnchTest, PmfSumsToOne) {
  const FNCH d = FNCH::Make(15, 25, 12, 2.5).value();
  double total = 0.0;
  for (int64_t x = d.support_min(); x <= d.support_max(); ++x) {
    total += d.Pmf(x);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(FnchTest, PmfZeroOutsideSupport) {
  const FNCH d = FNCH::Make(5, 5, 4, 1.5).value();
  EXPECT_DOUBLE_EQ(d.Pmf(-1), 0.0);
  EXPECT_DOUBLE_EQ(d.Pmf(5), 0.0);
}

TEST(FnchTest, ModeIsArgmax) {
  const FNCH d = FNCH::Make(20, 30, 15, 3.0).value();
  const int64_t mode = d.Mode();
  const double p_mode = d.Pmf(mode);
  for (int64_t x = d.support_min(); x <= d.support_max(); ++x) {
    EXPECT_LE(d.Pmf(x), p_mode + 1e-12);
  }
}

TEST(FnchTest, LargerOddsShiftMeanUp) {
  const FNCH low = FNCH::Make(50, 50, 30, 0.5).value();
  const FNCH mid = FNCH::Make(50, 50, 30, 1.0).value();
  const FNCH high = FNCH::Make(50, 50, 30, 4.0).value();
  EXPECT_LT(low.Mean(), mid.Mean());
  EXPECT_LT(mid.Mean(), high.Mean());
}

TEST(FnchTest, ExtremeOddsSaturateSupport) {
  const FNCH high = FNCH::Make(10, 90, 10, 1e6).value();
  EXPECT_NEAR(high.Mean(), 10.0, 0.01);
  const FNCH low = FNCH::Make(10, 90, 10, 1e-6).value();
  EXPECT_NEAR(low.Mean(), 0.0, 0.01);
}

TEST(FnchTest, SymmetryUnderGroupSwap) {
  // X ~ FNCH(m1, m2, n, w)  <=>  n - X ~ FNCH(m2, m1, n, 1/w).
  const FNCH d = FNCH::Make(12, 20, 10, 2.0).value();
  const FNCH swapped = FNCH::Make(20, 12, 10, 0.5).value();
  EXPECT_NEAR(d.Mean() + swapped.Mean(), 10.0, 1e-9);
  EXPECT_NEAR(d.Variance(), swapped.Variance(), 1e-9);
  for (int64_t x = d.support_min(); x <= d.support_max(); ++x) {
    EXPECT_NEAR(d.Pmf(x), swapped.Pmf(10 - x), 1e-12);
  }
}

TEST(FnchTest, CdfMonotoneAndBounded) {
  const FNCH d = FNCH::Make(18, 22, 14, 1.7).value();
  double prev = 0.0;
  for (int64_t x = d.support_min(); x <= d.support_max(); ++x) {
    const double c = d.Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(d.Cdf(d.support_min() - 1), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(d.support_max()), 1.0);
  EXPECT_DOUBLE_EQ(d.Cdf(d.support_max() + 5), 1.0);
}

TEST(FnchTest, ApproxMeanTracksExactMean) {
  for (const double omega : {0.25, 0.5, 1.0, 2.0, 5.0}) {
    const FNCH d = FNCH::Make(200, 300, 100, omega).value();
    EXPECT_NEAR(d.ApproxMean(), d.Mean(), 1.0)
        << "omega=" << omega;
  }
}

TEST(FnchTest, LargePopulationIsFast) {
  // The SciBORQ use case: impression of 100k rows from 10M tuples, focal
  // region of 1M tuples, odds 3. Moment computation must stay exact but
  // cheap (mode-centered summation, not full-support scan).
  const FNCH d = FNCH::Make(1'000'000, 9'000'000, 100'000, 3.0).value();
  const double mean = d.Mean();
  // Expected share of focal rows in the sample well above the uniform 10%.
  EXPECT_GT(mean, 100'000 * 0.20);
  EXPECT_LT(mean, 100'000 * 0.40);
  EXPECT_GT(d.Variance(), 0.0);
}

TEST(FnchTest, DegenerateSampleSizes) {
  const FNCH none = FNCH::Make(5, 5, 0, 2.0).value();
  EXPECT_DOUBLE_EQ(none.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(none.Variance(), 0.0);
  const FNCH all = FNCH::Make(5, 5, 10, 2.0).value();
  EXPECT_DOUBLE_EQ(all.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(all.Variance(), 0.0);
}

TEST(FnchTest, OneSidedSupport) {
  const FNCH d = FNCH::Make(3, 0, 2, 4.0).value();
  EXPECT_EQ(d.support_min(), 2);
  EXPECT_EQ(d.support_max(), 2);
  EXPECT_DOUBLE_EQ(d.Pmf(2), 1.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 2.0);
}

// Sweep over odds: mean within support, variance non-negative, pmf sums to 1.
class FnchOmegaSweep : public ::testing::TestWithParam<double> {};

TEST_P(FnchOmegaSweep, BasicInvariants) {
  const double omega = GetParam();
  const FNCH d = FNCH::Make(40, 60, 30, omega).value();
  const double mean = d.Mean();
  EXPECT_GE(mean, static_cast<double>(d.support_min()));
  EXPECT_LE(mean, static_cast<double>(d.support_max()));
  EXPECT_GE(d.Variance(), 0.0);
  double total = 0.0;
  for (int64_t x = d.support_min(); x <= d.support_max(); ++x) {
    total += d.Pmf(x);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Omegas, FnchOmegaSweep,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 1.5, 3.0, 10.0,
                                           100.0));

}  // namespace
}  // namespace sciborq
