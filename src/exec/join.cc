#include "exec/join.h"

#include <unordered_map>
#include <vector>

#include "util/string_util.h"

namespace sciborq {

namespace {

Result<const Column*> Int64Key(const Table& table, const std::string& name) {
  SCIBORQ_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(name));
  if (col->type() != DataType::kInt64) {
    return Status::InvalidArgument(
        StrFormat("join key '%s' must be int64", name.c_str()));
  }
  return col;
}

}  // namespace

Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const Table& right, const std::string& right_key) {
  SCIBORQ_ASSIGN_OR_RETURN(const Column* lk, Int64Key(left, left_key));
  SCIBORQ_ASSIGN_OR_RETURN(const Column* rk, Int64Key(right, right_key));

  // Build: key -> right row ids (multimap shape via bucket vectors).
  std::unordered_map<int64_t, std::vector<int64_t>> build;
  build.reserve(static_cast<size_t>(right.num_rows()));
  for (int64_t row = 0; row < right.num_rows(); ++row) {
    if (rk->IsNull(row)) continue;
    build[rk->GetInt64(row)].push_back(row);
  }

  // Output schema: left fields + right fields (minus right key, clash-prefixed).
  std::vector<Field> fields = left.schema().fields();
  std::vector<int> right_cols;
  for (int i = 0; i < right.schema().num_fields(); ++i) {
    const Field& f = right.schema().field(i);
    if (f.name == right_key) continue;
    Field out = f;
    if (left.schema().HasField(out.name)) out.name = "right_" + out.name;
    fields.push_back(out);
    right_cols.push_back(i);
  }
  Schema out_schema(std::move(fields));

  // Probe.
  SelectionVector left_matches;
  SelectionVector right_matches;
  for (int64_t row = 0; row < left.num_rows(); ++row) {
    if (lk->IsNull(row)) continue;
    const auto it = build.find(lk->GetInt64(row));
    if (it == build.end()) continue;
    for (const int64_t rrow : it->second) {
      left_matches.push_back(row);
      right_matches.push_back(rrow);
    }
  }

  // Materialize column-at-a-time.
  std::vector<Column> columns;
  columns.reserve(static_cast<size_t>(out_schema.num_fields()));
  for (int i = 0; i < left.num_columns(); ++i) {
    columns.push_back(left.column(i).Take(left_matches));
  }
  for (const int rcol : right_cols) {
    columns.push_back(right.column(rcol).Take(right_matches));
  }
  return Table::FromColumns(std::move(out_schema), std::move(columns));
}

Result<int64_t> CountJoinMatches(const Table& left, const std::string& left_key,
                                 const SelectionVector& left_rows,
                                 const Table& right,
                                 const std::string& right_key) {
  SCIBORQ_ASSIGN_OR_RETURN(const Column* lk, Int64Key(left, left_key));
  SCIBORQ_ASSIGN_OR_RETURN(const Column* rk, Int64Key(right, right_key));
  std::unordered_map<int64_t, int64_t> counts;
  counts.reserve(static_cast<size_t>(right.num_rows()));
  for (int64_t row = 0; row < right.num_rows(); ++row) {
    if (rk->IsNull(row)) continue;
    ++counts[rk->GetInt64(row)];
  }
  int64_t total = 0;
  for (const int64_t row : left_rows) {
    if (lk->IsNull(row)) continue;
    const auto it = counts.find(lk->GetInt64(row));
    if (it != counts.end()) total += it->second;
  }
  return total;
}

}  // namespace sciborq
