// Bounded query processing in depth: the same query answered under a range
// of error bounds and time budgets, showing the escalation trace, grouped
// estimates, and the MIN/MAX escape hatch (extremes cannot be bounded from a
// sample, so they fall through to the base data).

#include <cstdio>

#include "core/bounded_executor.h"
#include "skyserver/catalog.h"
#include "skyserver/functions.h"

using namespace sciborq;

namespace {

template <typename T>
T OrDie(Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "fatal: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

void Show(const char* label, const BoundedAnswer& ans) {
  std::printf("\n[%s]\n%s\n", label, ans.ToString().c_str());
  std::printf("  escalation trace:");
  for (const auto& attempt : ans.attempts) {
    std::printf(" %s(%.4f, %.2fms)", attempt.layer_name.c_str(),
                attempt.worst_relative_error, attempt.elapsed_seconds * 1e3);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  SkyCatalogConfig config;
  config.num_rows = 400'000;
  const SkyCatalog catalog = OrDie(GenerateSkyCatalog(config, 99));
  ImpressionSpec spec;
  spec.seed = 99;
  auto hierarchy = OrDie(ImpressionHierarchy::Make(
      catalog.photo_obj_all.schema(),
      {{"L0", 40'000}, {"L1", 4'000}, {"L2", 400}}, spec));
  if (Status st = hierarchy.IngestBatch(catalog.photo_obj_all); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  BoundedExecutor executor(&catalog.photo_obj_all, &hierarchy);

  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "r"}};
  q.filter = FGetNearbyObjEq(170.0, 30.0, 10.0);
  std::printf("query: %s\n", q.ToString().c_str());

  // (a) Loose error bound: the smallest layer suffices.
  QualityBound loose;
  loose.max_relative_error = 0.25;
  Show("error <= 25%", OrDie(executor.Answer(q, loose)));

  // (b) Tight error bound: escalation up the hierarchy.
  QualityBound tight;
  tight.max_relative_error = 0.01;
  Show("error <= 1%", OrDie(executor.Answer(q, tight)));

  // (c) Time-bounded: "the most representative result within the budget".
  QualityBound timed;
  timed.max_relative_error = 1e-6;   // unreachable by sampling
  timed.time_budget_seconds = 0.002;  // 2 ms
  Show("2ms budget, unreachable error", OrDie(executor.Answer(q, timed)));

  // (d) Grouped estimates: per-class statistics with per-group intervals.
  AggregateQuery grouped;
  grouped.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "redshift"}};
  grouped.group_by = "obj_class";
  grouped.filter = FGetNearbyObjEq(170.0, 30.0, 15.0);
  QualityBound group_bound;
  group_bound.max_relative_error = 0.15;
  Show("GROUP BY obj_class, error <= 15%",
       OrDie(executor.Answer(grouped, group_bound)));

  // (e) MAX cannot be certified from a sample: watch it go to base.
  AggregateQuery extremes;
  extremes.aggregates = {{AggKind::kMax, "redshift"}};
  QualityBound any;
  any.max_relative_error = 0.5;
  Show("MAX(redshift) — escalates to base by design",
       OrDie(executor.Answer(extremes, any)));
  return 0;
}
