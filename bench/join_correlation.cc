// ABL-JOIN (§3.1 "Correlations"): join attributes must stay correlated
// across sampled relations; the paper adopts the join-synopsis insight that
// per-table *independent* samples destroy the join. Compares three designs
// for estimating a fact⋈dimension aggregate:
//   (a) truth: base PhotoObjAll ⋈ Field;
//   (b) SciBORQ: fact impression ⋈ full dimension (dimensions are small —
//       keep them whole, the join-synopsis strategy for FK joins);
//   (c) naive: independent uniform samples of BOTH tables, joined, scaled
//       by 1/(pi_fact · pi_dim).

#include <cstdio>
#include <unordered_set>

#include "bench/bench_util.h"
#include "core/impression_builder.h"
#include "exec/join.h"
#include "skyserver/catalog.h"
#include "skyserver/functions.h"
#include "stats/descriptive.h"
#include "util/rng.h"

namespace sciborq {
namespace {

/// AVG(seeing) over fact rows in a cone, via fact ⋈ field.
Result<double> JoinedAvgSeeing(const Table& fact, const Table& field) {
  SCIBORQ_ASSIGN_OR_RETURN(Table joined,
                           HashJoin(fact, "field_id", field, "field_id"));
  AggregateQuery q;
  q.aggregates = {{AggKind::kAvg, "seeing"}};
  q.filter = FGetNearbyObjEq(150.0, 12.0, 6.0);
  SCIBORQ_ASSIGN_OR_RETURN(auto rows, RunExact(joined, q));
  return rows[0].values[0];
}

/// Uniform row sample of a table (Bernoulli p).
Table BernoulliSample(const Table& table, double p, Rng* rng) {
  SelectionVector rows;
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    if (rng->Bernoulli(p)) rows.push_back(i);
  }
  return table.TakeRows(rows);
}

}  // namespace
}  // namespace sciborq

int main() {
  using namespace sciborq;
  bench::Header("ABL-JOIN: FK-join estimation with and without correlation");
  bench::Expectation(
      "fact-impression ⋈ full-dimension tracks the true join aggregate and "
      "keeps ~p·|join| rows; independently sampling both sides retains only "
      "~p_f·p_d of the join and its estimate is visibly noisier");

  SkyCatalogConfig config;
  config.num_rows = 300'000;
  const SkyCatalog catalog = bench::Unwrap(GenerateSkyCatalog(config, 37));
  const double truth =
      bench::Unwrap(JoinedAvgSeeing(catalog.photo_obj_all, catalog.field));
  std::printf("truth: AVG(seeing) over cone join = %.5f\n\n", truth);

  std::printf("%-34s %10s %12s %12s %10s\n", "design", "trial",
              "join_rows", "avg_seeing", "rel_err");
  RunningMoments sciborq_err;
  RunningMoments naive_err;
  for (int trial = 0; trial < 5; ++trial) {
    Rng rng(1000 + static_cast<uint64_t>(trial));
    // (b) SciBORQ: 5% fact impression, dimension kept whole.
    ImpressionSpec spec;
    spec.capacity = 15'000;
    spec.seed = 2000 + static_cast<uint64_t>(trial);
    auto builder = bench::Unwrap(
        ImpressionBuilder::Make(catalog.photo_obj_all.schema(), spec));
    SCIBORQ_CHECK(builder.IngestBatch(catalog.photo_obj_all).ok());
    const Table& fact_sample = builder.impression().rows();
    const Table joined_b = bench::Unwrap(
        HashJoin(fact_sample, "field_id", catalog.field, "field_id"));
    const double avg_b =
        bench::Unwrap(JoinedAvgSeeing(fact_sample, catalog.field));
    const double err_b = std::abs(avg_b - truth) / truth;
    sciborq_err.Add(err_b);
    std::printf("%-34s %10d %12lld %12.5f %10.4f\n",
                "impression ⋈ full dim", trial,
                static_cast<long long>(joined_b.num_rows()), avg_b, err_b);

    // (c) naive: independent 5% fact sample and 22% dimension sample — the
    // combined join survival is ~1.1%.
    const Table fact_naive =
        BernoulliSample(catalog.photo_obj_all, 0.05, &rng);
    const Table dim_naive = BernoulliSample(catalog.field, 0.22, &rng);
    const Table joined_c =
        bench::Unwrap(HashJoin(fact_naive, "field_id", dim_naive, "field_id"));
    const auto avg_c_result = JoinedAvgSeeing(fact_naive, dim_naive);
    const double avg_c = avg_c_result.ok() ? avg_c_result.value() : 0.0;
    const double err_c = std::abs(avg_c - truth) / truth;
    naive_err.Add(err_c);
    std::printf("%-34s %10d %12lld %12.5f %10.4f\n",
                "independent samples both sides", trial,
                static_cast<long long>(joined_c.num_rows()), avg_c, err_c);
  }
  std::printf("\nmean rel_err: impression⋈dim=%.4f  independent=%.4f\n",
              sciborq_err.mean(), naive_err.mean());
  bench::Measured(StrFormat(
      "correlated design %.2fx more accurate on average",
      naive_err.mean() / std::max(1e-9, sciborq_err.mean())));
  return 0;
}
