#ifndef SCIBORQ_UTIL_THREAD_POOL_H_
#define SCIBORQ_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace sciborq {

/// A fixed-size worker pool — the execution substrate for morsel-driven
/// parallel scans (exec/) and parallel database loads (core/, §1). Tasks are
/// plain closures; the library's Status-based error handling means tasks
/// never throw.
class ThreadPool {
 public:
  /// Resolves a `num_threads` knob to an actual worker count:
  ///   0  => std::thread::hardware_concurrency() (at least 1),
  ///   n  => n.
  /// Negative values clamp to 1 (serial).
  static int ResolveThreadCount(int requested);

  /// Spawns ResolveThreadCount(num_threads) workers.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Enqueues one task for execution on some worker.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until every task submitted so far has finished.
  void Wait() EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  /// Guards the queue and its bookkeeping; the condition variables pair
  /// with it (waits run under a MutexLock on mu_).
  Mutex mu_;
  std::condition_variable_any task_ready_;
  std::condition_variable_any all_done_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mu_);
  int64_t in_flight_ GUARDED_BY(mu_) = 0;  ///< queued + currently running
  bool shutdown_ GUARDED_BY(mu_) = false;
};

/// Default morsel granularity for parallel scans: big enough to amortize
/// dispatch, small enough to load-balance skewed predicates.
inline constexpr int64_t kDefaultMorselRows = 16 * 1024;

/// Number of morsels covering [0, total) at `morsel_rows` granularity.
int64_t NumMorsels(int64_t total, int64_t morsel_rows);

/// Runs body(morsel_index, begin, end) over [0, total) split into fixed
/// contiguous morsels. Morsels are claimed dynamically by the pool's workers;
/// runs inline (in morsel order) when `pool` is null, single-threaded, or the
/// range fits one morsel. Blocks until every morsel is done. `body` must be
/// safe to invoke concurrently for disjoint morsels.
void ParallelFor(ThreadPool* pool, int64_t total, int64_t morsel_rows,
                 const std::function<void(int64_t morsel, int64_t begin,
                                          int64_t end)>& body);

/// Morsel map-reduce with a deterministic fold: `map` computes one partial
/// per morsel (in parallel), `fold` consumes the partials serially in morsel
/// index order. Because the serial path executes the exact same
/// fold(map(morsel 0)), fold(map(morsel 1)), ... sequence, results are
/// bit-identical for every thread count — the invariant the parallel scan
/// paths in exec/ rely on.
template <typename Partial>
void ParallelMorselReduce(
    ThreadPool* pool, int64_t total, int64_t morsel_rows,
    const std::function<Partial(int64_t begin, int64_t end)>& map,
    const std::function<void(Partial&&)>& fold) {
  const int64_t num_morsels = NumMorsels(total, morsel_rows);
  if (pool == nullptr || pool->num_threads() <= 1 || num_morsels <= 1) {
    for (int64_t m = 0; m < num_morsels; ++m) {
      const int64_t begin = m * morsel_rows;
      const int64_t end = std::min(total, begin + morsel_rows);
      fold(map(begin, end));
    }
    return;
  }
  std::vector<std::optional<Partial>> partials(
      static_cast<size_t>(num_morsels));
  ParallelFor(pool, total, morsel_rows,
              [&](int64_t m, int64_t begin, int64_t end) {
                partials[static_cast<size_t>(m)].emplace(map(begin, end));
              });
  for (auto& partial : partials) fold(std::move(*partial));
}

}  // namespace sciborq

#endif  // SCIBORQ_UTIL_THREAD_POOL_H_
