#ifndef SCIBORQ_UTIL_CHECK_H_
#define SCIBORQ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant check: aborts with location info when `cond` is false.
/// Used for programming errors (API misuse is reported via Status instead).
#define SCIBORQ_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "SCIBORQ_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #cond);                            \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define SCIBORQ_DCHECK(cond) \
  do {                       \
  } while (false)
#else
#define SCIBORQ_DCHECK(cond) SCIBORQ_CHECK(cond)
#endif

#endif  // SCIBORQ_UTIL_CHECK_H_
