#ifndef SCIBORQ_STATS_NONCENTRAL_HYPERGEOMETRIC_H_
#define SCIBORQ_STATS_NONCENTRAL_HYPERGEOMETRIC_H_

#include <cstdint>

#include "util/result.h"

namespace sciborq {

/// Fisher's noncentral hypergeometric distribution (Fog 2008, the paper's
/// reference [6] for the error theory of biased samples).
///
/// Model: a population of m1 "interesting" and m2 "other" items; each
/// interesting item is sampled with odds `omega` relative to the others,
/// independently, conditioned on a total draw of n items. X = number of
/// interesting items in the sample. omega = 1 recovers the central
/// hypergeometric of uniform sampling.
///
/// SciBORQ uses this to bound the error of estimates computed on a biased
/// impression: the count of focal-area rows in an impression of size n is
/// Fisher-NCH distributed, and its variance drives the confidence interval.
///
/// Moments are computed exactly by summing the probability mass outward from
/// the mode with the pmf ratio recurrence, which is numerically robust and
/// costs O(effective support width) — fast even for n in the millions because
/// the mass concentrates in O(sqrt(variance)) terms.
class FisherNoncentralHypergeometric {
 public:
  /// InvalidArgument unless m1, m2 >= 0, 0 <= n <= m1 + m2 and omega > 0.
  static Result<FisherNoncentralHypergeometric> Make(int64_t m1, int64_t m2,
                                                     int64_t n, double omega);

  int64_t m1() const { return m1_; }
  int64_t m2() const { return m2_; }
  int64_t n() const { return n_; }
  double omega() const { return omega_; }

  /// Support bounds: x in [support_min, support_max].
  int64_t support_min() const { return support_min_; }
  int64_t support_max() const { return support_max_; }

  /// The most probable value of X.
  int64_t Mode() const;

  /// Exact mean / variance by mode-centered summation.
  double Mean() const;
  double Variance() const;

  /// Closed-form approximation of the mean: the fixed point of
  ///   x (m2 - n + x) = omega (m1 - x)(n - x)
  /// clamped into the support — O(1), used on hot paths.
  double ApproxMean() const;

  /// P(X = x); 0 outside the support.
  double Pmf(int64_t x) const;

  /// P(X <= x).
  double Cdf(int64_t x) const;

 private:
  FisherNoncentralHypergeometric(int64_t m1, int64_t m2, int64_t n,
                                 double omega);

  /// log of the unnormalized mass C(m1,x) C(m2,n-x) omega^x.
  double LogUnnormalized(int64_t x) const;
  /// pmf(x+1)/pmf(x).
  double Ratio(int64_t x) const;
  /// Sums g(x) * pmf(x) over the support for g in {1, x, x^2}; the results
  /// are reported normalized. Also accumulates mass below `cdf_limit` when
  /// `cdf_mass` is non-null.
  void Moments(double* mean, double* variance) const;

  int64_t m1_;
  int64_t m2_;
  int64_t n_;
  double omega_;
  int64_t support_min_;
  int64_t support_max_;
};

}  // namespace sciborq

#endif  // SCIBORQ_STATS_NONCENTRAL_HYPERGEOMETRIC_H_
