#include "workload/query_log.h"

#include <algorithm>
#include <set>

namespace sciborq {

void QueryLog::Record(const AggregateQuery& query) {
  LoggedQuery entry;
  entry.sequence = next_sequence_++;
  entry.query = query.Clone();
  entries_.push_back(std::move(entry));
  if (window_size_ > 0 &&
      static_cast<int64_t>(entries_.size()) > window_size_) {
    entries_.pop_front();
  }
}

void QueryLog::Record(const BoundedQuery& query) {
  Record(query.query);
  entries_.back().bounds = query.bounds;
}

std::string LoggedQuery::Sql() const { return RenderSql(query, bounds); }

std::vector<double> QueryLog::PredicateSet(const std::string& column) const {
  std::vector<double> out;
  for (const auto& entry : entries_) {
    for (const auto& point : entry.query.PredicatePoints()) {
      if (point.column == column) out.push_back(point.value);
    }
  }
  return out;
}

std::vector<std::string> QueryLog::PredicateColumns() const {
  std::set<std::string> names;
  for (const auto& entry : entries_) {
    for (const auto& point : entry.query.PredicatePoints()) {
      names.insert(point.column);
    }
  }
  return {names.begin(), names.end()};
}

void QueryLog::Clear() {
  entries_.clear();
  next_sequence_ = 0;
}

void QueryLog::RestoreState(int64_t total_recorded,
                            std::deque<LoggedQuery> entries) {
  entries_ = std::move(entries);
  next_sequence_ = total_recorded;
  while (window_size_ > 0 &&
         static_cast<int64_t>(entries_.size()) > window_size_) {
    entries_.pop_front();
  }
}

}  // namespace sciborq
