#include "exec/aggregate.h"

#include <limits>
#include <unordered_map>

#include "stats/descriptive.h"
#include "util/string_util.h"

namespace sciborq {

std::string_view AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kVariance:
      return "VAR";
  }
  return "?";
}

std::string AggregateSpec::ToString() const {
  if (kind == AggKind::kCount && column.empty()) return "COUNT(*)";
  return StrFormat("%s(%s)", std::string(AggKindToString(kind)).c_str(),
                   column.c_str());
}

namespace {

Result<const Column*> NumericColumn(const Table& table,
                                    const std::string& name) {
  SCIBORQ_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(name));
  if (!IsNumeric(col->type())) {
    return Status::InvalidArgument(
        StrFormat("aggregate requires numeric column, got '%s'", name.c_str()));
  }
  return col;
}

/// Accumulates one aggregate over a stream of values.
class AggAccumulator {
 public:
  explicit AggAccumulator(AggKind kind) : kind_(kind) {}

  void Add(double v) {
    moments_.Add(v);
  }
  void AddRowOnly() { ++count_only_; }

  Result<double> Finish() const {
    switch (kind_) {
      case AggKind::kCount:
        return static_cast<double>(count_only_ + moments_.count());
      case AggKind::kSum:
        return moments_.mean() * static_cast<double>(moments_.count());
      case AggKind::kAvg:
        if (moments_.count() == 0) {
          return Status::InvalidArgument("AVG over zero rows");
        }
        return moments_.mean();
      case AggKind::kMin:
        if (moments_.count() == 0) {
          return Status::InvalidArgument("MIN over zero rows");
        }
        return moments_.min();
      case AggKind::kMax:
        if (moments_.count() == 0) {
          return Status::InvalidArgument("MAX over zero rows");
        }
        return moments_.max();
      case AggKind::kVariance:
        if (moments_.count() < 2) {
          return Status::InvalidArgument("VAR needs at least two rows");
        }
        return moments_.variance();
    }
    return Status::Internal("unreachable aggregate kind");
  }

 private:
  AggKind kind_;
  RunningMoments moments_;
  int64_t count_only_ = 0;
};

}  // namespace

Result<double> ComputeAggregate(const Table& table, const SelectionVector& rows,
                                const AggregateSpec& spec) {
  AggAccumulator acc(spec.kind);
  if (spec.kind == AggKind::kCount && spec.column.empty()) {
    return static_cast<double>(rows.size());
  }
  SCIBORQ_ASSIGN_OR_RETURN(const Column* col, NumericColumn(table, spec.column));
  for (const int64_t row : rows) {
    if (col->IsNull(row)) continue;
    acc.Add(col->NumericAt(row));
  }
  return acc.Finish();
}

Result<std::vector<double>> GatherNumeric(const Table& table,
                                          const SelectionVector& rows,
                                          const std::string& column) {
  SCIBORQ_ASSIGN_OR_RETURN(const Column* col, NumericColumn(table, column));
  std::vector<double> out;
  out.reserve(rows.size());
  for (const int64_t row : rows) {
    if (col->IsNull(row)) continue;
    out.push_back(col->NumericAt(row));
  }
  return out;
}

Result<std::vector<GroupRow>> ComputeGroupedAggregates(
    const Table& table, const SelectionVector& rows,
    const std::string& group_column, const std::vector<AggregateSpec>& specs) {
  SCIBORQ_ASSIGN_OR_RETURN(const Column* key_col,
                           table.ColumnByName(group_column));
  if (key_col->type() == DataType::kDouble) {
    return Status::InvalidArgument(
        "grouping on double columns is not supported (bin them first)");
  }

  // Pre-resolve aggregate input columns once.
  std::vector<const Column*> inputs(specs.size(), nullptr);
  for (size_t s = 0; s < specs.size(); ++s) {
    if (specs[s].kind == AggKind::kCount && specs[s].column.empty()) continue;
    SCIBORQ_ASSIGN_OR_RETURN(inputs[s], NumericColumn(table, specs[s].column));
  }

  std::vector<GroupRow> out;
  std::vector<std::vector<AggAccumulator>> accs;
  std::unordered_map<int64_t, size_t> int_groups;
  std::unordered_map<std::string, size_t> str_groups;

  const auto group_index = [&](int64_t row) -> size_t {
    size_t idx = 0;
    if (key_col->type() == DataType::kInt64) {
      const auto [it, inserted] =
          int_groups.emplace(key_col->GetInt64(row), accs.size());
      idx = it->second;
      if (inserted) {
        out.push_back(GroupRow{Value(key_col->GetInt64(row)), {}, 0});
      }
    } else {
      const auto [it, inserted] =
          str_groups.emplace(key_col->GetString(row), accs.size());
      idx = it->second;
      if (inserted) {
        out.push_back(GroupRow{Value(key_col->GetString(row)), {}, 0});
      }
    }
    if (idx == accs.size()) {
      std::vector<AggAccumulator> group_accs;
      group_accs.reserve(specs.size());
      for (const auto& spec : specs) group_accs.emplace_back(spec.kind);
      accs.push_back(std::move(group_accs));
    }
    return idx;
  };

  for (const int64_t row : rows) {
    if (key_col->IsNull(row)) continue;  // SQL semantics: NULL keys dropped
    const size_t g = group_index(row);
    ++out[g].group_rows;
    for (size_t s = 0; s < specs.size(); ++s) {
      if (inputs[s] == nullptr) {
        accs[g][s].AddRowOnly();
      } else if (!inputs[s]->IsNull(row)) {
        accs[g][s].Add(inputs[s]->NumericAt(row));
      }
    }
  }

  for (size_t g = 0; g < accs.size(); ++g) {
    out[g].aggregates.reserve(specs.size());
    for (size_t s = 0; s < specs.size(); ++s) {
      SCIBORQ_ASSIGN_OR_RETURN(double v, accs[g][s].Finish());
      out[g].aggregates.push_back(v);
    }
  }
  return out;
}

}  // namespace sciborq
