// Wire-protocol round-trips: every QueryOutcome shape the engine can
// produce must encode/decode bit-identically (asserted by re-encoding and
// comparing bytes), and malformed bytes — truncations at every offset,
// hostile lengths, trailing garbage — must surface as Status, never as
// crashes or wrong data.

#include "server/wire.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"

namespace sciborq {
namespace {

std::string EncodedOutcome(const QueryOutcome& outcome) {
  WireWriter w;
  EncodeOutcome(outcome, &w);
  return w.Take();
}

/// encode -> decode -> re-encode must reproduce the original bytes: the
/// protocol is bijective, so "bit-identical round trip" is a byte equality.
void ExpectOutcomeRoundTripsBitIdentically(const QueryOutcome& outcome) {
  const std::string bytes = EncodedOutcome(outcome);
  WireReader r(bytes);
  Result<QueryOutcome> decoded = DecodeOutcome(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(bytes, EncodedOutcome(*decoded));
  EXPECT_TRUE(EquivalentAnswers(outcome, *decoded));
  // Timing survives too (EquivalentAnswers deliberately ignores it).
  EXPECT_EQ(outcome.elapsed_seconds, decoded->elapsed_seconds);
}

AggregateEstimate MakeEstimate(double est, double half_width, bool exact,
                               int64_t n) {
  AggregateEstimate e;
  e.estimate = est;
  e.std_error = half_width / 1.96;
  e.ci_lo = est - half_width;
  e.ci_hi = est + half_width;
  e.confidence = 0.95;
  e.sample_rows = n;
  e.exact = exact;
  return e;
}

TEST(WireWriterReaderTest, PrimitivesRoundTrip) {
  WireWriter w;
  w.PutU8(0);
  w.PutU8(255);
  w.PutBool(true);
  w.PutBool(false);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  w.PutI64(-42);
  w.PutF64(3.14159);
  w.PutF64(-0.0);
  w.PutF64(std::numeric_limits<double>::infinity());
  w.PutF64(std::numeric_limits<double>::quiet_NaN());
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string("nul\0byte", 8));

  WireReader r(w.buffer());
  EXPECT_EQ(0u, *r.ReadU8());
  EXPECT_EQ(255u, *r.ReadU8());
  EXPECT_TRUE(*r.ReadBool());
  EXPECT_FALSE(*r.ReadBool());
  EXPECT_EQ(0xdeadbeefu, *r.ReadU32());
  EXPECT_EQ(0x0123456789abcdefull, *r.ReadU64());
  EXPECT_EQ(-42, *r.ReadI64());
  EXPECT_EQ(3.14159, *r.ReadF64());
  const double neg_zero = *r.ReadF64();
  EXPECT_EQ(0.0, neg_zero);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit pattern, not just value
  EXPECT_TRUE(std::isinf(*r.ReadF64()));
  EXPECT_TRUE(std::isnan(*r.ReadF64()));
  EXPECT_EQ("hello", *r.ReadString());
  EXPECT_EQ("", *r.ReadString());
  EXPECT_EQ(std::string("nul\0byte", 8), *r.ReadString());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(WireWriterReaderTest, ReadsPastEndFail) {
  WireReader r("");
  EXPECT_FALSE(r.ReadU8().ok());
  EXPECT_FALSE(r.ReadU32().ok());
  EXPECT_FALSE(r.ReadU64().ok());
  EXPECT_FALSE(r.ReadF64().ok());
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(WireWriterReaderTest, BoolRejectsNonBinaryBytes) {
  WireReader r("\x02");
  EXPECT_FALSE(r.ReadBool().ok());
}

TEST(WireWriterReaderTest, HostileStringLengthRejected) {
  // Claims 1 GiB of string payload with 3 bytes behind it.
  WireWriter w;
  w.PutU32(1u << 30);
  std::string bytes = w.Take() + "abc";
  WireReader r(bytes);
  const Result<std::string> s = r.ReadString();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, s.status().code());
}

TEST(WireWriterReaderTest, TrailingGarbageDetected) {
  WireWriter w;
  w.PutU32(7);
  std::string bytes = w.Take() + "x";
  WireReader r(bytes);
  ASSERT_TRUE(r.ReadU32().ok());
  EXPECT_FALSE(r.ExpectEnd().ok());
}

TEST(WireValueTest, AllTagsRoundTrip) {
  const std::vector<Value> values = {Value::Null(), Value(int64_t{-7}),
                                     Value(2.5), Value("GALAXY"), Value("")};
  for (const Value& v : values) {
    WireWriter w;
    EncodeValue(v, &w);
    WireReader r(w.buffer());
    Result<Value> decoded = DecodeValue(&r);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(v == *decoded);
    EXPECT_TRUE(r.ExpectEnd().ok());
  }
}

TEST(WireValueTest, UnknownTagRejected) {
  WireReader r("\x09");
  EXPECT_FALSE(DecodeValue(&r).ok());
}

TEST(WireBoundsTest, RoundTrip) {
  QueryBounds bounds;
  bounds.time_budget_ms = 50.0;
  bounds.max_relative_error = 0.05;
  bounds.confidence = 0.99;
  bounds.exact = true;
  WireWriter w;
  EncodeBounds(bounds, &w);
  WireReader r(w.buffer());
  Result<QueryBounds> decoded = DecodeBounds(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(bounds.time_budget_ms, decoded->time_budget_ms);
  EXPECT_EQ(bounds.max_relative_error, decoded->max_relative_error);
  EXPECT_EQ(bounds.confidence, decoded->confidence);
  EXPECT_EQ(bounds.exact, decoded->exact);
}

TEST(WireStatusTest, EveryCodeRoundTrips) {
  const std::vector<Status> statuses = {
      Status::OK(),
      Status::InvalidArgument("bad sql"),
      Status::OutOfRange("layer 9"),
      Status::NotFound("unknown table 'x'"),
      Status::AlreadyExists("dup"),
      Status::FailedPrecondition("no tracker"),
      Status::ResourceExhausted("frame too big"),
      Status::DeadlineExceeded("50ms"),
      Status::QualityBoundExceeded("5%"),
      Status::NotImplemented("soon"),
      Status::IOError("recv"),
      Status::Internal("bug")};
  for (const Status& st : statuses) {
    WireWriter w;
    EncodeStatus(st, &w);
    WireReader r(w.buffer());
    Status decoded;
    ASSERT_TRUE(DecodeStatus(&r, &decoded).ok());
    EXPECT_TRUE(st == decoded) << st.ToString();
  }
}

TEST(WireStatusTest, UnknownCodeRejected) {
  WireWriter w;
  w.PutU8(200);
  w.PutString("???");
  WireReader r(w.buffer());
  Status decoded;
  EXPECT_FALSE(DecodeStatus(&r, &decoded).ok());
}

// -- QueryOutcome shapes ----------------------------------------------------

TEST(WireOutcomeTest, ExactUngroupedAnswer) {
  QueryOutcome outcome;
  outcome.table = "photo_obj_all";
  outcome.sql = "SELECT COUNT(*) FROM photo_obj_all EXACT";
  outcome.answered_by = "base";
  outcome.exact = true;
  outcome.error_bound_met = true;
  outcome.elapsed_seconds = 0.0125;
  QueryResultRow row;
  row.group_key = Value::Null();
  row.values = {600000.0};
  row.input_rows = 600000;
  outcome.rows.push_back(row);
  outcome.estimates = {{MakeEstimate(600000.0, 0.0, /*exact=*/true, 600000)}};
  LayerAttempt base;
  base.layer_name = "base";
  base.layer_rows = 600000;
  base.matching_rows = 600000;
  base.met_error_bound = true;
  base.is_base = true;
  outcome.attempts.push_back(base);
  ExpectOutcomeRoundTripsBitIdentically(outcome);
}

TEST(WireOutcomeTest, EstimateWithCiAndEscalationTrace) {
  QueryOutcome outcome;
  outcome.table = "photo_obj_all";
  outcome.sql = "SELECT COUNT(*), AVG(r) FROM photo_obj_all ERROR 5%";
  outcome.answered_by = "l0";
  outcome.exact = false;
  outcome.error_bound_met = true;
  outcome.elapsed_seconds = 0.0021;
  QueryResultRow row;
  row.values = {21484.4, 30.26};
  row.input_rows = 440;
  outcome.rows.push_back(row);
  outcome.estimates = {{MakeEstimate(21484.4, 1986.8, false, 440),
                        MakeEstimate(30.26, 1.08, false, 440)}};
  // Two failed layers then success — the full escalation trace, including
  // an infinite relative error (MIN/MAX-style) which must survive the trip.
  for (const char* name : {"l2", "l1"}) {
    LayerAttempt attempt;
    attempt.layer_name = name;
    attempt.layer_rows = name[1] == '2' ? 1024 : 8192;
    attempt.matching_rows = 17;
    attempt.elapsed_seconds = 0.0004;
    attempt.worst_relative_error = std::numeric_limits<double>::infinity();
    attempt.met_error_bound = false;
    outcome.attempts.push_back(attempt);
  }
  LayerAttempt success;
  success.layer_name = "l0";
  success.layer_rows = 65536;
  success.matching_rows = 440;
  success.worst_relative_error = 0.0925;
  success.met_error_bound = true;
  outcome.attempts.push_back(success);
  ExpectOutcomeRoundTripsBitIdentically(outcome);
}

TEST(WireOutcomeTest, GroupedRowsWithTypedKeys) {
  QueryOutcome outcome;
  outcome.table = "t";
  outcome.sql = "SELECT SUM(r) FROM t GROUP BY obj_class ERROR 10%";
  outcome.answered_by = "l1";
  QueryResultRow galaxy;
  galaxy.group_key = Value("GALAXY");
  galaxy.values = {123.5};
  galaxy.input_rows = 99;
  QueryResultRow star;
  star.group_key = Value(int64_t{3});
  star.values = {-7.25};
  star.input_rows = 12;
  QueryResultRow qso;
  qso.group_key = Value(2.5);
  qso.values = {0.0};
  qso.input_rows = 0;
  outcome.rows = {galaxy, star, qso};
  outcome.estimates = {{MakeEstimate(123.5, 4.0, false, 99)},
                       {MakeEstimate(-7.25, 0.5, false, 12)},
                       {MakeEstimate(0.0, 0.0, false, 0)}};
  ExpectOutcomeRoundTripsBitIdentically(outcome);
}

TEST(WireOutcomeTest, EmptyOutcomeRoundTrips) {
  QueryOutcome outcome;  // no rows, no estimates, no attempts
  ExpectOutcomeRoundTripsBitIdentically(outcome);
}

TEST(WireOutcomeTest, NanValuesSurviveAndCompareEqual) {
  // A NaN in the data (e.g. AVG over a column holding NaN doubles) must
  // round-trip bit-exactly AND still satisfy EquivalentAnswers — plain
  // double == would wrongly report a mismatch for identical answers.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  QueryOutcome outcome;
  outcome.table = "t";
  outcome.sql = "SELECT AVG(x) FROM t EXACT";
  outcome.answered_by = "base";
  outcome.exact = true;
  QueryResultRow row;
  row.values = {nan};
  row.input_rows = 3;
  outcome.rows.push_back(row);
  outcome.estimates = {{MakeEstimate(nan, 0.0, /*exact=*/true, 3)}};
  LayerAttempt attempt;
  attempt.layer_name = "base";
  attempt.worst_relative_error = nan;
  attempt.is_base = true;
  outcome.attempts.push_back(attempt);
  ExpectOutcomeRoundTripsBitIdentically(outcome);
  EXPECT_TRUE(EquivalentAnswers(outcome, outcome));
}

/// Satellite requirement: decoding any truncation of a valid message fails
/// cleanly (never crashes, never "succeeds" on partial data).
TEST(WireOutcomeTest, EveryTruncationFailsCleanly) {
  QueryOutcome outcome;
  outcome.table = "t";
  outcome.sql = "SELECT COUNT(*) FROM t ERROR 5%";
  outcome.answered_by = "l0";
  QueryResultRow row;
  row.group_key = Value("key");
  row.values = {1.0, 2.0};
  row.input_rows = 5;
  outcome.rows.push_back(row);
  outcome.estimates = {{MakeEstimate(1.0, 0.1, false, 5),
                        MakeEstimate(2.0, 0.2, false, 5)}};
  LayerAttempt attempt;
  attempt.layer_name = "l0";
  outcome.attempts.push_back(attempt);

  const std::string bytes = EncodedOutcome(outcome);
  for (size_t len = 0; len < bytes.size(); ++len) {
    WireReader r(std::string_view(bytes.data(), len));
    const Result<QueryOutcome> decoded = DecodeOutcome(&r);
    // Prefixes that happen to parse (e.g. cutting only trailing attempts
    // would not — counts are encoded up front, so every cut is detected).
    EXPECT_FALSE(decoded.ok() && r.ExpectEnd().ok())
        << "truncation to " << len << " bytes decoded successfully";
  }
}

TEST(WireTableInfoTest, RoundTrip) {
  TableInfo info;
  info.name = "photo_obj_all";
  info.rows = 600000;
  info.schema = Schema({{"objid", DataType::kInt64, false},
                        {"ra", DataType::kDouble, true},
                        {"obj_class", DataType::kString, true}});
  info.layers = {{"l0", 65536, 65536, "biased"}, {"l1", 8192, 8192, "uniform"}};
  info.population_seen = 600000;
  info.biased = true;
  info.logged_queries = 17;

  WireWriter w;
  EncodeTableInfo(info, &w);
  const std::string bytes = w.Take();
  WireReader r(bytes);
  Result<TableInfo> decoded = DecodeTableInfo(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(r.ExpectEnd().ok());
  WireWriter w2;
  EncodeTableInfo(*decoded, &w2);
  EXPECT_EQ(bytes, w2.buffer());
  EXPECT_EQ("photo_obj_all", decoded->name);
  EXPECT_EQ(3, decoded->schema.num_fields());
  EXPECT_EQ(DataType::kDouble, decoded->schema.field(1).type);
  EXPECT_FALSE(decoded->schema.field(0).nullable);
  ASSERT_EQ(2u, decoded->layers.size());
  EXPECT_EQ("biased", decoded->layers[0].policy);
}

// -- Envelopes --------------------------------------------------------------

TEST(WireEnvelopeTest, RequestRoundTrip) {
  WireWriter payload;
  payload.PutString("SELECT COUNT(*) FROM t");
  const std::string body = EncodeRequest(Opcode::kQuery, payload.buffer());
  Result<RequestFrame> decoded = DecodeRequest(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(Opcode::kQuery, decoded->opcode);
  WireReader r(decoded->payload);
  EXPECT_EQ("SELECT COUNT(*) FROM t", *r.ReadString());
}

TEST(WireEnvelopeTest, WrongVersionRejected) {
  std::string body = EncodeRequest(Opcode::kPing, "");
  body[0] = 9;  // future protocol version
  EXPECT_FALSE(DecodeRequest(body).ok());
  std::string resp = EncodeResponse(Opcode::kPing, Status::OK(), "");
  resp[0] = 9;
  EXPECT_FALSE(DecodeResponse(resp).ok());
}

TEST(WireEnvelopeTest, V1OpcodesStayByteIdenticalV1) {
  // The acceptance bar for protocol v2: frames carrying v1 opcodes must not
  // change a single byte, version prefix included.
  for (const Opcode op : {Opcode::kQuery, Opcode::kUse, Opcode::kSetBounds,
                          Opcode::kCatalog, Opcode::kPing}) {
    const std::string req = EncodeRequest(op, "payload");
    EXPECT_EQ(kWireVersionV1, static_cast<uint8_t>(req[0]))
        << OpcodeToString(op);
    EXPECT_EQ(static_cast<uint8_t>(op), static_cast<uint8_t>(req[1]));
    const std::string resp = EncodeResponse(op, Status::OK(), "");
    EXPECT_EQ(kWireVersionV1, static_cast<uint8_t>(resp[0]))
        << OpcodeToString(op);
  }
  // And the new opcodes are stamped v2, so a v1-only peer rejects them
  // cleanly instead of misreading them.
  for (const Opcode op :
       {Opcode::kPrepare, Opcode::kExecute, Opcode::kCloseStmt}) {
    EXPECT_EQ(kWireVersionV2,
              static_cast<uint8_t>(EncodeRequest(op, "")[0]))
        << OpcodeToString(op);
  }
}

TEST(WireEnvelopeTest, V2OpcodesRoundTripAndRequireV2) {
  for (const Opcode op :
       {Opcode::kPrepare, Opcode::kExecute, Opcode::kCloseStmt}) {
    const std::string body = EncodeRequest(op, "xyz");
    const Result<RequestFrame> decoded = DecodeRequest(body);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(op, decoded->opcode);
    EXPECT_EQ("xyz", decoded->payload);

    // The same opcode under a v1 version byte is rejected with a version
    // hint, not treated as garbage.
    std::string v1_body = body;
    v1_body[0] = static_cast<char>(kWireVersionV1);
    const Result<RequestFrame> rejected = DecodeRequest(v1_body);
    ASSERT_FALSE(rejected.ok());
    EXPECT_NE(rejected.status().message().find("requires protocol v2"),
              std::string::npos)
        << rejected.status().message();
  }
  // A v2 envelope may still carry v1 opcodes (v2 is a superset).
  std::string query = EncodeRequest(Opcode::kQuery, "");
  query[0] = static_cast<char>(kWireVersionV2);
  EXPECT_TRUE(DecodeRequest(query).ok());
}

TEST(WireEnvelopeTest, UnknownOpcodeRejected) {
  std::string body = EncodeRequest(Opcode::kPing, "");
  body[1] = 99;
  EXPECT_FALSE(DecodeRequest(body).ok());
}

TEST(WireEnvelopeTest, ErrorResponseRoundTripsAndDropsPayload) {
  const Status err = Status::NotFound("unknown table 'xyz'");
  // Payload is ignored for error responses (never encoded).
  const std::string body = EncodeResponse(Opcode::kQuery, err, "IGNORED");
  Result<ResponseFrame> decoded = DecodeResponse(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(Opcode::kQuery, decoded->opcode);
  EXPECT_TRUE(err == decoded->status);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(WireEnvelopeTest, OkResponseCarriesPayload) {
  WireWriter payload;
  payload.PutU32(4);
  const std::string body =
      EncodeResponse(Opcode::kCatalog, Status::OK(), payload.buffer());
  Result<ResponseFrame> decoded = DecodeResponse(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->status.ok());
  WireReader r(decoded->payload);
  EXPECT_EQ(4u, *r.ReadU32());
}

// ----------------------------------------- prepared-statement envelopes ---

std::string EncodedParams(const std::vector<Value>& params) {
  WireWriter w;
  EncodeParams(params, &w);
  return w.Take();
}

TEST(WireParamsTest, RoundTripsBitIdentically) {
  const std::vector<Value> params = {
      Value(int64_t{-42}),
      Value(3.14159),
      Value(-0.0),
      Value(std::numeric_limits<double>::quiet_NaN()),
      Value("GALAXY"),
      Value(std::string("nul\0byte", 8)),
      Value::Null(),
      Value(""),
  };
  const std::string bytes = EncodedParams(params);
  WireReader r(bytes);
  const Result<std::vector<Value>> decoded = DecodeParams(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(bytes, EncodedParams(*decoded));
  ASSERT_EQ(params.size(), decoded->size());
  EXPECT_TRUE((*decoded)[3].is_double());  // NaN survives as a double
  EXPECT_TRUE((*decoded)[6].is_null());

  // Empty parameter lists are legal (zero-placeholder templates).
  const std::string empty_bytes = EncodedParams({});
  WireReader empty(empty_bytes);
  EXPECT_TRUE(DecodeParams(&empty)->empty());
}

TEST(WireParamsTest, EveryTruncationFailsCleanly) {
  const std::string bytes = EncodedParams(
      {Value(int64_t{7}), Value(2.5), Value("str"), Value::Null()});
  for (size_t len = 0; len < bytes.size(); ++len) {
    WireReader r(std::string_view(bytes.data(), len));
    const Result<std::vector<Value>> decoded = DecodeParams(&r);
    EXPECT_FALSE(decoded.ok() && r.ExpectEnd().ok())
        << "truncation to " << len << " bytes decoded successfully";
  }
}

TEST(WireParamsTest, HostileCountRejectedBeforeAllocation) {
  // Claims 2^31 parameters backed by 3 bytes.
  WireWriter w;
  w.PutU32(1u << 31);
  const std::string bytes = w.Take() + "abc";
  WireReader r(bytes);
  const Result<std::vector<Value>> decoded = DecodeParams(&r);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, decoded.status().code());
}

std::string EncodedStatementInfo(const StatementInfo& info) {
  WireWriter w;
  EncodeStatementInfo(info, &w);
  return w.Take();
}

TEST(WireStatementInfoTest, RoundTripsBitIdentically) {
  StatementInfo info;
  info.handle.id = 0x1234567890ll;
  info.table = "photo_obj_all";
  info.sql = "SELECT COUNT(*) FROM photo_obj_all WHERE ra > ? ERROR ?%";
  info.num_params = 2;
  const std::string bytes = EncodedStatementInfo(info);
  WireReader r(bytes);
  const Result<StatementInfo> decoded = DecodeStatementInfo(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(bytes, EncodedStatementInfo(*decoded));
  EXPECT_EQ(info.handle.id, decoded->handle.id);
  EXPECT_EQ(info.table, decoded->table);
  EXPECT_EQ(info.sql, decoded->sql);
  EXPECT_EQ(info.num_params, decoded->num_params);
}

TEST(WireStatementInfoTest, EveryTruncationFailsCleanly) {
  StatementInfo info;
  info.handle.id = 7;
  info.table = "t";
  info.sql = "SELECT COUNT(*) FROM t WHERE x = ?";
  info.num_params = 1;
  const std::string bytes = EncodedStatementInfo(info);
  for (size_t len = 0; len < bytes.size(); ++len) {
    WireReader r(std::string_view(bytes.data(), len));
    const Result<StatementInfo> decoded = DecodeStatementInfo(&r);
    EXPECT_FALSE(decoded.ok() && r.ExpectEnd().ok())
        << "truncation to " << len << " bytes decoded successfully";
  }
}

/// The kExecute request payload (i64 handle + params) survives every
/// truncation — the third new envelope, exercised exactly as the server
/// decodes it.
TEST(WireParamsTest, ExecuteRequestPayloadTruncationsFailCleanly) {
  WireWriter w;
  w.PutI64(42);
  EncodeParams({Value(1.5), Value("x")}, &w);
  const std::string bytes = w.Take();
  for (size_t len = 0; len < bytes.size(); ++len) {
    WireReader r(std::string_view(bytes.data(), len));
    const Result<int64_t> id = r.ReadI64();
    if (!id.ok()) continue;
    const Result<std::vector<Value>> params = DecodeParams(&r);
    EXPECT_FALSE(params.ok() && r.ExpectEnd().ok())
        << "truncation to " << len << " bytes decoded successfully";
  }
}

TEST(WireEnvelopeTest, ResponseTruncationsFailCleanly) {
  WireWriter payload;
  payload.PutString("x");
  const std::string body =
      EncodeResponse(Opcode::kQuery, Status::OK(), payload.buffer());
  // The envelope header (version, opcode, status) must detect every cut;
  // the payload's own truncations are the op decoder's job (tested above).
  for (size_t len = 0; len < 7 && len < body.size(); ++len) {
    EXPECT_FALSE(DecodeResponse(body.substr(0, len)).ok())
        << "envelope truncated to " << len << " bytes decoded";
  }
}

}  // namespace
}  // namespace sciborq
