// Distributed fan-out scaling: a SciborqCoordinator over 1/2/4 shard
// servers on TCP loopback vs the same data on a single node.
//
// Three gates, all hard (non-zero exit on failure):
//   1. Equivalence — the 2-shard merged EXACT answer matches the
//      single-node answer bit for bit (each 16384-row shard slice is
//      exactly one morsel, so the coordinator's Welford merge replays the
//      single node's own fold tree).
//   2. Throughput — bounded queries through the coordinator complete with
//      zero failures at every shard count; QPS goes out as BENCH_JSON.
//   3. Degradation — killing one of two shards mid-flight yields a flagged
//      PARTIAL answer within the query's time budget, never a hang or an
//      error.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "bench/bench_util.h"
#include "coord/coordinator.h"
#include "server/server.h"
#include "skyserver/catalog.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

using namespace sciborq;
using sciborq::bench::Header;
using sciborq::bench::JsonLine;
using sciborq::bench::Unwrap;

namespace {

// 2 x kDefaultMorselRows: the 2-shard split lands exactly on the single
// node's morsel boundaries — the precondition for gate 1's bit-identity.
constexpr int64_t kBaseRows = 32'768;
constexpr int kQueriesPerTopology = 60;

std::string BoundedSql(int index) {
  const double ra = 130.0 + 10.0 * (index % 10);
  const double dec = 5.0 + 5.0 * (index % 11);
  return StrFormat(
      "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
      "WHERE ra >= %g AND ra <= %g AND dec >= %g AND dec <= %g ERROR 25%%",
      ra - 20.0, ra + 20.0, dec - 20.0, dec + 20.0);
}

/// One shard server with its own engine, bound to an ephemeral port.
struct Shard {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<SciborqServer> server;
};

Shard StartShard() {
  Shard shard;
  shard.engine = std::make_unique<Engine>();
  ServerOptions options;
  options.port = 0;
  shard.server = std::make_unique<SciborqServer>(shard.engine.get(), options);
  if (Status st = shard.server->Start(); !st.ok()) {
    std::fprintf(stderr, "shard start: %s\n", st.ToString().c_str());
    std::abort();
  }
  return shard;
}

/// A coordinator over `n` fresh shards with the catalog distributed
/// through its own ingest routing.
struct Topology {
  std::vector<Shard> shards;
  std::unique_ptr<SciborqCoordinator> coordinator;

  void Stop() {
    coordinator.reset();
    for (Shard& shard : shards) shard.server->Stop();
  }
};

Topology BuildTopology(int n, const Table& base) {
  Topology topo;
  std::vector<ShardEndpoint> endpoints;
  for (int s = 0; s < n; ++s) {
    topo.shards.push_back(StartShard());
    endpoints.push_back({"127.0.0.1", topo.shards.back().server->port()});
  }
  ShardMap map;
  map.SetDefaultShards(std::move(endpoints));
  topo.coordinator = std::make_unique<SciborqCoordinator>(std::move(map));
  if (Status st =
          topo.coordinator->CreateTable("photo_obj_all", base.schema(), 11);
      !st.ok()) {
    std::fprintf(stderr, "distributed create: %s\n", st.ToString().c_str());
    std::abort();
  }
  const int64_t rows =
      Unwrap(topo.coordinator->IngestBatch("photo_obj_all", base));
  if (rows != base.num_rows()) {
    std::fprintf(stderr, "distributed ingest routed %lld of %lld rows\n",
                 static_cast<long long>(rows),
                 static_cast<long long>(base.num_rows()));
    std::abort();
  }
  return topo;
}

}  // namespace

int main() {
  Header("coord_scaling: distributed bounded queries over 1/2/4 shards");

  SkyCatalogConfig config;
  config.num_rows = kBaseRows;
  const SkyCatalog catalog = Unwrap(GenerateSkyCatalog(config, 11));
  const Table& base = catalog.photo_obj_all;

  Engine single;
  TableOptions table_options;
  table_options.layers = {{"l0", 8'192}, {"l1", 1'024}};
  table_options.seed = 11;
  if (!single.CreateTable("photo_obj_all", base.schema(), table_options).ok() ||
      !single.IngestBatch("photo_obj_all", base).ok()) {
    std::fprintf(stderr, "single-node setup failed\n");
    return 1;
  }

  bool gates_ok = true;

  // -- Gate 1: merged EXACT == single node, bit for bit --------------------
  {
    Topology topo = BuildTopology(2, base);
    const std::string sql =
        "SELECT COUNT(*), SUM(r), AVG(r), VAR(r), MIN(r), MAX(r) "
        "FROM photo_obj_all EXACT";
    const QueryOutcome merged = Unwrap(topo.coordinator->Query(sql));
    const QueryOutcome local = Unwrap(single.Query(sql));
    bool identical = EquivalentAnswerData(merged, local) &&
                     merged.rows.size() == local.rows.size();
    for (size_t i = 0; identical && i < local.rows[0].values.size(); ++i) {
      identical = std::memcmp(&local.rows[0].values[i],
                              &merged.rows[0].values[i], sizeof(double)) == 0;
    }
    if (!identical || merged.partial || !merged.exact ||
        merged.shards_responded != 2) {
      std::fprintf(stderr,
                   "MISMATCH: 2-shard merged answer != single node\n"
                   "merged: %s\nlocal:  %s\n",
                   merged.ToString().c_str(), local.ToString().c_str());
      gates_ok = false;
    } else {
      std::printf("equivalence: 2-shard merged == single node, bit-exact ✓\n");
    }
    JsonLine("coord_equivalence")
        .Int("shards", 2)
        .Flag("bit_identical", identical)
        .Flag("partial", merged.partial)
        .Emit();
    topo.Stop();
  }

  // -- Gate 2: bounded-query throughput at 1/2/4 shards --------------------
  std::printf("\n%-10s %12s %10s\n", "shards", "qps", "failures");
  for (const int n : {1, 2, 4}) {
    Topology topo = BuildTopology(n, base);
    int64_t failures = 0;
    Stopwatch watch;
    for (int i = 0; i < kQueriesPerTopology; ++i) {
      Result<QueryOutcome> outcome = topo.coordinator->Query(BoundedSql(i));
      if (!outcome.ok() || outcome->partial) failures++;
    }
    const double seconds = watch.ElapsedSeconds();
    const double qps = kQueriesPerTopology / seconds;
    std::printf("%-10d %12.0f %10lld\n", n, qps,
                static_cast<long long>(failures));
    JsonLine("coord_scaling")
        .Int("shards", n)
        .Num("qps", qps)
        .Int("failures", failures)
        .Int("base_rows", kBaseRows)
        .Emit();
    if (failures != 0) {
      std::fprintf(stderr, "%lld bounded queries failed at %d shards\n",
                   static_cast<long long>(failures), n);
      gates_ok = false;
    }
    topo.Stop();
  }

  // -- Gate 3: killing a shard degrades within the budget ------------------
  {
    Topology topo = BuildTopology(2, base);
    // Warm the fan-out connections, then kill shard 1.
    if (!topo.coordinator->Query(BoundedSql(0)).ok()) {
      std::fprintf(stderr, "warm-up query failed\n");
      gates_ok = false;
    }
    topo.shards[1].server->Stop();

    Stopwatch watch;
    Result<QueryOutcome> degraded = topo.coordinator->Query(
        "SELECT COUNT(*) FROM photo_obj_all WITHIN 1000 MS");
    const double wall = watch.ElapsedSeconds();
    const bool flagged = degraded.ok() && degraded->partial &&
                         degraded->shards_responded == 1 &&
                         degraded->shards_total == 2;
    // The client budget plus connect slack; nowhere near a hang.
    const bool in_budget = wall < 5.0;
    if (!flagged || !in_budget) {
      std::fprintf(stderr,
                   "killed-shard gate failed: status=%s wall=%.2fs%s\n",
                   degraded.ok() ? "OK" : degraded.status().ToString().c_str(),
                   wall,
                   degraded.ok() && !degraded->partial ? " (not flagged)" : "");
      gates_ok = false;
    } else {
      std::printf(
          "\ndegradation: killed shard -> PARTIAL (1/2 shards) in %.0fms ✓\n",
          wall * 1000.0);
    }
    JsonLine("coord_degraded")
        .Flag("partial_flagged", flagged)
        .Num("wall_ms", wall * 1000.0)
        .Flag("in_budget", in_budget)
        .Emit();
    topo.Stop();
  }

  if (!gates_ok) {
    std::fprintf(stderr, "\ncoord_scaling: GATES FAILED\n");
    return 1;
  }
  std::printf("\ncoord_scaling: all gates passed\n");
  return 0;
}
