#include "exec/expr.h"

#include <cmath>
#include <numeric>

#include "column/encoding/encoding.h"
#include "exec/kernels.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/string_util.h"

namespace sciborq {

// A scan morsel maps 1:1 onto an encoded morsel, so FindEncodedMorsel can
// resolve every aligned scan range to its zone map.
static_assert(kEncodingMorselRows == kDefaultMorselRows,
              "scan morsels must align with the encoding sidecar");

namespace {

/// Morsels dismissed wholesale by zone-map pruning, across all tables.
/// Function-local static: registered once, then a cached pointer — safe to
/// Inc from pool workers (magic-static init + atomic counter).
obs::Counter* MorselsSkippedCounter() {
  static obs::Counter* counter = obs::DefaultRegistry()->GetCounter(
      "sciborq_morsels_skipped_total",
      "Scan morsels skipped entirely by zone-map pruning");
  return counter;
}

void FillDense(int64_t begin, int64_t end, SelectionVector* out) {
  out->resize(static_cast<size_t>(end - begin));
  std::iota(out->begin(), out->end(), begin);
}

}  // namespace

Result<SelectionVector> SelectAll(const Table& table, const Predicate& pred,
                                  ThreadPool* pool) {
  SCIBORQ_RETURN_NOT_OK(pred.Validate(table.schema()));
  // Morsel-driven scan: each morsel filters its contiguous row range into a
  // private selection, and the partials concatenate in morsel order — the
  // result is the exact selection the one-shot serial scan produces,
  // regardless of thread count. Zone maps rule first: a morsel whose verdict
  // is decided never touches column data.
  SelectionVector out;
  Status first_error = Status::OK();
  ParallelMorselReduce<Result<SelectionVector>>(
      pool, table.num_rows(), kDefaultMorselRows,
      [&table, &pred](int64_t begin, int64_t end) -> Result<SelectionVector> {
        SelectionVector selected;
        switch (pred.TestMorsel(table, begin, end)) {
          case MorselVerdict::kSkipAll:
            MorselsSkippedCounter()->Inc();
            return selected;
          case MorselVerdict::kMatchAll:
            FillDense(begin, end, &selected);
            return selected;
          case MorselVerdict::kScanRows:
            break;
        }
        SCIBORQ_RETURN_NOT_OK(pred.SelectRange(table, begin, end, &selected));
        return selected;
      },
      [&out, &first_error](Result<SelectionVector>&& partial) {
        if (!partial.ok()) {
          if (first_error.ok()) first_error = partial.status();
          return;
        }
        const SelectionVector& selected = partial.value();
        out.insert(out.end(), selected.begin(), selected.end());
      });
  SCIBORQ_RETURN_NOT_OK(first_error);
  return out;
}

Result<std::unique_ptr<Predicate>> Predicate::BindParams(
    const std::vector<Value>& params) const {
  (void)params;
  return Clone();
}

Status Predicate::SelectRange(const Table& table, int64_t begin, int64_t end,
                              SelectionVector* out) const {
  SelectionVector candidates;
  FillDense(begin, end, &candidates);
  return Select(table, candidates, out);
}

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

/// column <op> literal. Numeric literals compare against any numeric column;
/// string literals require a string column.
class ComparePredicate final : public Predicate {
 public:
  ComparePredicate(std::string column, CompareOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  Status Validate(const Schema& schema) const override {
    SCIBORQ_ASSIGN_OR_RETURN(int idx, schema.FieldIndex(column_));
    const DataType type = schema.field(idx).type;
    if (literal_.is_string() != (type == DataType::kString)) {
      return Status::InvalidArgument(
          StrFormat("predicate on '%s': literal/column type mismatch",
                    column_.c_str()));
    }
    if (literal_.is_null()) {
      return Status::InvalidArgument("comparisons against NULL never match");
    }
    return Status::OK();
  }

  Status Select(const Table& table, const SelectionVector& candidates,
                SelectionVector* out) const override {
    out->clear();
    SCIBORQ_RETURN_NOT_OK(Validate(table.schema()));
    SCIBORQ_ASSIGN_OR_RETURN(const Column* col,
                             table.ColumnByName(column_));
    if (col->type() == DataType::kString) {
      const std::string& want = literal_.str();
      for (const int64_t row : candidates) {
        if (col->IsNull(row)) continue;
        if (MatchesOrdering(col->GetString(row).compare(want))) {
          out->push_back(row);
        }
      }
      return Status::OK();
    }
    const double want = literal_.AsDouble();
    for (const int64_t row : candidates) {
      if (col->IsNull(row)) continue;
      const double v = col->NumericAt(row);
      if (MatchesValue(v, want)) out->push_back(row);
    }
    return Status::OK();
  }

  bool Matches(const Table& table, int64_t row) const override {
    const Column* col = table.ColumnByName(column_).value_or(nullptr);
    if (col == nullptr || col->IsNull(row)) return false;
    if (col->type() == DataType::kString) {
      return MatchesOrdering(col->GetString(row).compare(literal_.str()));
    }
    return MatchesValue(col->NumericAt(row), literal_.AsDouble());
  }

  MorselVerdict TestMorsel(const Table& table, int64_t begin,
                           int64_t end) const override {
    const Column* col = table.ColumnByName(column_).value_or(nullptr);
    if (col == nullptr) return MorselVerdict::kScanRows;
    const EncodedMorsel* m = FindEncodedMorsel(*col, begin, end);
    if (m == nullptr) return MorselVerdict::kScanRows;
    if (col->type() == DataType::kString || literal_.is_string()) {
      if (col->type() != DataType::kString || !literal_.is_string()) {
        return MorselVerdict::kScanRows;  // mistyped; Validate rejects it
      }
      return TestStringMorsel(*m);
    }
    if (literal_.is_null()) return MorselVerdict::kScanRows;
    return TestNumericMorsel(m->zone);
  }

  Status SelectRange(const Table& table, int64_t begin, int64_t end,
                     SelectionVector* out) const override {
    out->clear();
    SCIBORQ_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(column_));
    const EncodedMorsel* m = FindEncodedMorsel(*col, begin, end);
    if (col->type() == DataType::kString) {
      const std::string& want = literal_.str();
      if (m != nullptr && m->encoding == ColumnEncoding::kDict) {
        // Compressed-domain scan: one comparison per distinct value, then a
        // code-indexed mask lookup per row instead of a string compare.
        std::vector<uint8_t> code_matches(m->dict_values.size());
        for (size_t c = 0; c < m->dict_values.size(); ++c) {
          code_matches[c] = MatchesOrdering(m->dict_values[c].compare(want));
        }
        for (int64_t row = begin; row < end; ++row) {
          if (col->IsNull(row)) continue;
          if (code_matches[m->dict_codes[static_cast<size_t>(row - begin)]]) {
            out->push_back(row);
          }
        }
        return Status::OK();
      }
      for (int64_t row = begin; row < end; ++row) {
        if (col->IsNull(row)) continue;
        if (MatchesOrdering(col->GetString(row).compare(want))) {
          out->push_back(row);
        }
      }
      return Status::OK();
    }
    const double want = literal_.AsDouble();
    if (m != nullptr && m->encoding == ColumnEncoding::kRle) {
      // Compressed-domain scan: one comparison per run.
      const bool no_nulls = m->zone.null_count == 0;
      int64_t row = begin;
      for (size_t r = 0; r < m->rle_values.size(); ++r) {
        const int64_t len = m->rle_lengths[r];
        if (MatchesValue(static_cast<double>(m->rle_values[r]), want)) {
          for (int64_t j = 0; j < len; ++j) {
            if (no_nulls || !col->IsNull(row + j)) out->push_back(row + j);
          }
        }
        row += len;
      }
      return Status::OK();
    }
    if (!col->has_nulls()) {
      out->resize(static_cast<size_t>(end - begin));
      const int64_t k =
          col->type() == DataType::kDouble
              ? FilterDoubleCompare(col->data_double().data(), begin, end, op_,
                                    want, out->data())
              : FilterInt64Compare(col->data_int64().data(), begin, end, op_,
                                   want, out->data());
      out->resize(static_cast<size_t>(k));
      return Status::OK();
    }
    for (int64_t row = begin; row < end; ++row) {
      if (col->IsNull(row)) continue;
      if (MatchesValue(col->NumericAt(row), want)) out->push_back(row);
    }
    return Status::OK();
  }

  void CollectPredicatePoints(
      std::vector<PredicatePoint>* points) const override {
    if (!literal_.is_string() && !literal_.is_null()) {
      points->push_back(PredicatePoint{column_, literal_.AsDouble()});
    }
  }

  std::string ToString() const override {
    return StrFormat("%s %s %s", column_.c_str(),
                     std::string(CompareOpToString(op_)).c_str(),
                     literal_.is_string()
                         ? ("'" + literal_.str() + "'").c_str()
                         : literal_.ToString().c_str());
  }

  std::unique_ptr<Predicate> Clone() const override {
    return std::make_unique<ComparePredicate>(column_, op_, literal_);
  }

 private:
  bool MatchesValue(double v, double want) const {
    switch (op_) {
      case CompareOp::kEq:
        return v == want;
      case CompareOp::kNe:
        return v != want;
      case CompareOp::kLt:
        return v < want;
      case CompareOp::kLe:
        return v <= want;
      case CompareOp::kGt:
        return v > want;
      case CompareOp::kGe:
        return v >= want;
    }
    return false;
  }
  bool MatchesOrdering(int cmp) const {
    switch (op_) {
      case CompareOp::kEq:
        return cmp == 0;
      case CompareOp::kNe:
        return cmp != 0;
      case CompareOp::kLt:
        return cmp < 0;
      case CompareOp::kLe:
        return cmp <= 0;
      case CompareOp::kGt:
        return cmp > 0;
      case CompareOp::kGe:
        return cmp >= 0;
    }
    return false;
  }

  /// Zone verdict for a numeric morsel. The invariants that make each branch
  /// sound: null rows never match any comparison; NaN values fail every op
  /// except kNe (which they always pass when `want` is not NaN); zone
  /// min/max bound exactly the non-null, non-NaN values as doubles — the
  /// same cast the scan compares with.
  MorselVerdict TestNumericMorsel(const ZoneMap& z) const {
    if (z.row_count == 0) return MorselVerdict::kScanRows;
    if (z.null_count == z.row_count) return MorselVerdict::kSkipAll;
    const double want = literal_.AsDouble();
    if (std::isnan(want)) {
      // v <op> NaN is false for every ordered op and true for kNe.
      if (op_ != CompareOp::kNe) return MorselVerdict::kSkipAll;
      return z.null_count == 0 ? MorselVerdict::kMatchAll
                               : MorselVerdict::kScanRows;
    }
    if (!z.has_min_max) {
      // Every non-null value is NaN.
      if (op_ != CompareOp::kNe) return MorselVerdict::kSkipAll;
      return z.null_count == 0 ? MorselVerdict::kMatchAll
                               : MorselVerdict::kScanRows;
    }
    // `clean` = every row is a non-null, non-NaN value inside [min, max] —
    // the precondition for blanket-matching.
    const bool clean = z.null_count == 0 && !z.has_nan;
    switch (op_) {
      case CompareOp::kEq:
        if (want < z.min || want > z.max) return MorselVerdict::kSkipAll;
        if (clean && z.min == z.max && z.min == want) {
          return MorselVerdict::kMatchAll;
        }
        break;
      case CompareOp::kNe:
        if (z.min == z.max && z.min == want && !z.has_nan) {
          return MorselVerdict::kSkipAll;
        }
        if (z.null_count == 0 && (want < z.min || want > z.max)) {
          return MorselVerdict::kMatchAll;  // NaN values also pass kNe
        }
        break;
      case CompareOp::kLt:
        if (z.min >= want) return MorselVerdict::kSkipAll;
        if (clean && z.max < want) return MorselVerdict::kMatchAll;
        break;
      case CompareOp::kLe:
        if (z.min > want) return MorselVerdict::kSkipAll;
        if (clean && z.max <= want) return MorselVerdict::kMatchAll;
        break;
      case CompareOp::kGt:
        if (z.max <= want) return MorselVerdict::kSkipAll;
        if (clean && z.min > want) return MorselVerdict::kMatchAll;
        break;
      case CompareOp::kGe:
        if (z.max < want) return MorselVerdict::kSkipAll;
        if (clean && z.min >= want) return MorselVerdict::kMatchAll;
        break;
    }
    return MorselVerdict::kScanRows;
  }

  /// Zone verdict for a dictionary-encoded string morsel: the dictionary
  /// lists every distinct *storage* value (null slots contribute ""), so
  /// membership answers equality questions for the whole morsel. Only
  /// kEq/kNe prune; ordered string comparisons stay scan.
  MorselVerdict TestStringMorsel(const EncodedMorsel& m) const {
    if (m.zone.row_count == 0) return MorselVerdict::kScanRows;
    if (m.zone.null_count == m.zone.row_count) return MorselVerdict::kSkipAll;
    if (m.encoding != ColumnEncoding::kDict ||
        (op_ != CompareOp::kEq && op_ != CompareOp::kNe)) {
      return MorselVerdict::kScanRows;
    }
    const std::string& want = literal_.str();
    bool in_dict = false;
    for (const std::string& v : m.dict_values) {
      if (v == want) {
        in_dict = true;
        break;
      }
    }
    if (op_ == CompareOp::kEq) {
      // Not in the dictionary → no storage slot holds `want`. (The converse
      // is unreliable: a "" entry may be backed only by null slots.)
      if (!in_dict) return MorselVerdict::kSkipAll;
      if (m.zone.null_count == 0 && m.dict_values.size() == 1 && in_dict) {
        return MorselVerdict::kMatchAll;
      }
      return MorselVerdict::kScanRows;
    }
    // kNe
    if (m.zone.null_count == 0) {
      if (!in_dict) return MorselVerdict::kMatchAll;
      if (m.dict_values.size() == 1) return MorselVerdict::kSkipAll;
    }
    return MorselVerdict::kScanRows;
  }

  std::string column_;
  CompareOp op_;
  Value literal_;
};

/// lo <= column <= hi over numeric columns.
class BetweenPredicate final : public Predicate {
 public:
  BetweenPredicate(std::string column, double lo, double hi)
      : column_(std::move(column)), lo_(lo), hi_(hi) {}

  Status Validate(const Schema& schema) const override {
    SCIBORQ_ASSIGN_OR_RETURN(int idx, schema.FieldIndex(column_));
    if (!IsNumeric(schema.field(idx).type)) {
      return Status::InvalidArgument(
          StrFormat("BETWEEN requires numeric column, got '%s'",
                    column_.c_str()));
    }
    return Status::OK();
  }

  Status Select(const Table& table, const SelectionVector& candidates,
                SelectionVector* out) const override {
    out->clear();
    SCIBORQ_RETURN_NOT_OK(Validate(table.schema()));
    SCIBORQ_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(column_));
    for (const int64_t row : candidates) {
      if (col->IsNull(row)) continue;
      const double v = col->NumericAt(row);
      if (v >= lo_ && v <= hi_) out->push_back(row);
    }
    return Status::OK();
  }

  bool Matches(const Table& table, int64_t row) const override {
    const Column* col = table.ColumnByName(column_).value_or(nullptr);
    if (col == nullptr || col->IsNull(row)) return false;
    const double v = col->NumericAt(row);
    return v >= lo_ && v <= hi_;
  }

  MorselVerdict TestMorsel(const Table& table, int64_t begin,
                           int64_t end) const override {
    const Column* col = table.ColumnByName(column_).value_or(nullptr);
    if (col == nullptr || col->type() == DataType::kString) {
      return MorselVerdict::kScanRows;
    }
    const EncodedMorsel* m = FindEncodedMorsel(*col, begin, end);
    if (m == nullptr || m->zone.row_count == 0) return MorselVerdict::kScanRows;
    const ZoneMap& z = m->zone;
    if (z.null_count == z.row_count) return MorselVerdict::kSkipAll;
    if (std::isnan(lo_) || std::isnan(hi_)) return MorselVerdict::kSkipAll;
    // NaN values fail both bounds, so !has_min_max (all-NaN) always skips.
    if (!z.has_min_max || z.max < lo_ || z.min > hi_) {
      return MorselVerdict::kSkipAll;
    }
    if (z.null_count == 0 && !z.has_nan && z.min >= lo_ && z.max <= hi_) {
      return MorselVerdict::kMatchAll;
    }
    return MorselVerdict::kScanRows;
  }

  Status SelectRange(const Table& table, int64_t begin, int64_t end,
                     SelectionVector* out) const override {
    out->clear();
    SCIBORQ_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(column_));
    if (col->type() == DataType::kString) {
      return Status::InvalidArgument(
          StrFormat("BETWEEN requires numeric column, got '%s'",
                    column_.c_str()));
    }
    const EncodedMorsel* m = FindEncodedMorsel(*col, begin, end);
    if (m != nullptr && m->encoding == ColumnEncoding::kRle) {
      const bool no_nulls = m->zone.null_count == 0;
      int64_t row = begin;
      for (size_t r = 0; r < m->rle_values.size(); ++r) {
        const int64_t len = m->rle_lengths[r];
        const double v = static_cast<double>(m->rle_values[r]);
        if (v >= lo_ && v <= hi_) {
          for (int64_t j = 0; j < len; ++j) {
            if (no_nulls || !col->IsNull(row + j)) out->push_back(row + j);
          }
        }
        row += len;
      }
      return Status::OK();
    }
    if (!col->has_nulls()) {
      out->resize(static_cast<size_t>(end - begin));
      const int64_t k =
          col->type() == DataType::kDouble
              ? FilterDoubleBetween(col->data_double().data(), begin, end, lo_,
                                    hi_, out->data())
              : FilterInt64Between(col->data_int64().data(), begin, end, lo_,
                                   hi_, out->data());
      out->resize(static_cast<size_t>(k));
      return Status::OK();
    }
    for (int64_t row = begin; row < end; ++row) {
      if (col->IsNull(row)) continue;
      const double v = col->NumericAt(row);
      if (v >= lo_ && v <= hi_) out->push_back(row);
    }
    return Status::OK();
  }

  void CollectPredicatePoints(
      std::vector<PredicatePoint>* points) const override {
    // A range request expresses interest in its whole extent; its midpoint is
    // the single best stand-in for the requested region.
    points->push_back(PredicatePoint{column_, 0.5 * (lo_ + hi_)});
  }

  std::string ToString() const override {
    return StrFormat("%s BETWEEN %g AND %g", column_.c_str(), lo_, hi_);
  }

  std::unique_ptr<Predicate> Clone() const override {
    return std::make_unique<BetweenPredicate>(column_, lo_, hi_);
  }

 private:
  std::string column_;
  double lo_;
  double hi_;
};

/// (x - x0)^2 + (y - y0)^2 <= r^2 — the fGetNearbyObjEq shape.
class ConePredicate final : public Predicate {
 public:
  ConePredicate(std::string cx, std::string cy, double x0, double y0, double r)
      : cx_(std::move(cx)), cy_(std::move(cy)), x0_(x0), y0_(y0), r_(r) {}

  Status Validate(const Schema& schema) const override {
    for (const auto* name : {&cx_, &cy_}) {
      SCIBORQ_ASSIGN_OR_RETURN(int idx, schema.FieldIndex(*name));
      if (!IsNumeric(schema.field(idx).type)) {
        return Status::InvalidArgument(
            StrFormat("cone requires numeric column, got '%s'", name->c_str()));
      }
    }
    if (!(r_ >= 0.0)) return Status::InvalidArgument("cone radius must be >= 0");
    return Status::OK();
  }

  Status Select(const Table& table, const SelectionVector& candidates,
                SelectionVector* out) const override {
    out->clear();
    SCIBORQ_RETURN_NOT_OK(Validate(table.schema()));
    SCIBORQ_ASSIGN_OR_RETURN(const Column* colx, table.ColumnByName(cx_));
    SCIBORQ_ASSIGN_OR_RETURN(const Column* coly, table.ColumnByName(cy_));
    const double r2 = r_ * r_;
    for (const int64_t row : candidates) {
      if (colx->IsNull(row) || coly->IsNull(row)) continue;
      const double dx = colx->NumericAt(row) - x0_;
      const double dy = coly->NumericAt(row) - y0_;
      if (dx * dx + dy * dy <= r2) out->push_back(row);
    }
    return Status::OK();
  }

  bool Matches(const Table& table, int64_t row) const override {
    const Column* colx = table.ColumnByName(cx_).value_or(nullptr);
    const Column* coly = table.ColumnByName(cy_).value_or(nullptr);
    if (colx == nullptr || coly == nullptr) return false;
    if (colx->IsNull(row) || coly->IsNull(row)) return false;
    const double dx = colx->NumericAt(row) - x0_;
    const double dy = coly->NumericAt(row) - y0_;
    return dx * dx + dy * dy <= r_ * r_;
  }

  MorselVerdict TestMorsel(const Table& table, int64_t begin,
                           int64_t end) const override {
    const Column* colx = table.ColumnByName(cx_).value_or(nullptr);
    const Column* coly = table.ColumnByName(cy_).value_or(nullptr);
    if (colx == nullptr || coly == nullptr) return MorselVerdict::kScanRows;
    if (colx->type() == DataType::kString ||
        coly->type() == DataType::kString) {
      return MorselVerdict::kScanRows;
    }
    const EncodedMorsel* mx = FindEncodedMorsel(*colx, begin, end);
    const EncodedMorsel* my = FindEncodedMorsel(*coly, begin, end);
    if (mx == nullptr || my == nullptr || mx->zone.row_count == 0) {
      return MorselVerdict::kScanRows;
    }
    const ZoneMap& zx = mx->zone;
    const ZoneMap& zy = my->zone;
    // A match needs both coordinates non-null and non-NaN.
    if (zx.null_count == zx.row_count || zy.null_count == zy.row_count) {
      return MorselVerdict::kSkipAll;
    }
    if (!zx.has_min_max || !zy.has_min_max) return MorselVerdict::kSkipAll;
    if (std::isnan(x0_) || std::isnan(y0_) || std::isnan(r_)) {
      return MorselVerdict::kSkipAll;
    }
    const double r2 = r_ * r_;
    // Skip: the closest point of the zone bounding box to the center. Every
    // rounding step (subtract, square, add) is monotonic, so a row's
    // computed distance² can never round below this box distance².
    const double dx_near = NearestDelta(x0_, zx.min, zx.max);
    const double dy_near = NearestDelta(y0_, zy.min, zy.max);
    if (dx_near * dx_near + dy_near * dy_near > r2) {
      return MorselVerdict::kSkipAll;
    }
    // Match-all: the farthest corner of the box, same monotonicity argument
    // in the other direction — but only when every row is a clean value.
    const bool clean_x =
        zx.null_count == 0 && !zx.has_nan && zx.has_min_max;
    const bool clean_y =
        zy.null_count == 0 && !zy.has_nan && zy.has_min_max;
    if (clean_x && clean_y) {
      const double dx_far = FarthestDelta(x0_, zx.min, zx.max);
      const double dy_far = FarthestDelta(y0_, zy.min, zy.max);
      if (dx_far * dx_far + dy_far * dy_far <= r2) {
        return MorselVerdict::kMatchAll;
      }
    }
    return MorselVerdict::kScanRows;
  }

  void CollectPredicatePoints(
      std::vector<PredicatePoint>* points) const override {
    // fGetNearbyObjEq(ra, dec, r): the center is the focal point (§4).
    points->push_back(PredicatePoint{cx_, x0_});
    points->push_back(PredicatePoint{cy_, y0_});
  }

  void CollectPredicatePairs(
      std::vector<PredicatePair>* pairs) const override {
    pairs->push_back(PredicatePair{cx_, cy_, x0_, y0_});
  }

  std::string ToString() const override {
    return StrFormat("cone(%s, %s; %g, %g; r=%g)", cx_.c_str(), cy_.c_str(),
                     x0_, y0_, r_);
  }

  std::unique_ptr<Predicate> Clone() const override {
    return std::make_unique<ConePredicate>(cx_, cy_, x0_, y0_, r_);
  }

 private:
  /// The zone-box delta with the smallest magnitude, computed with the
  /// exact expression shape of the row path (`value - center`) so floating
  /// rounding stays comparable.
  static double NearestDelta(double center, double lo, double hi) {
    if (center < lo) return lo - center;
    if (center > hi) return hi - center;
    return 0.0;
  }
  static double FarthestDelta(double center, double lo, double hi) {
    const double a = lo - center;
    const double b = hi - center;
    return std::fabs(a) >= std::fabs(b) ? a : b;
  }

  std::string cx_;
  std::string cy_;
  double x0_;
  double y0_;
  double r_;
};

/// `column <op> ?` — an unbound parameter slot. Never executes: it exists
/// only inside a PreparedQuery template, and BindParams turns it into a
/// ComparePredicate carrying the bound value.
class ParamPredicate final : public Predicate {
 public:
  ParamPredicate(std::string column, CompareOp op, size_t slot)
      : column_(std::move(column)), op_(op), slot_(slot) {}

  Status Validate(const Schema&) const override { return Unbound(); }

  Status Select(const Table&, const SelectionVector&,
                SelectionVector* out) const override {
    out->clear();
    return Unbound();
  }

  bool Matches(const Table&, int64_t) const override { return false; }

  void CollectPredicatePoints(std::vector<PredicatePoint>*) const override {
    // No value requested yet; the bound clone contributes the focal point.
  }

  std::string ToString() const override {
    return StrFormat("%s %s ?", column_.c_str(),
                     std::string(CompareOpToString(op_)).c_str());
  }

  std::unique_ptr<Predicate> Clone() const override {
    return std::make_unique<ParamPredicate>(column_, op_, slot_);
  }

  Result<std::unique_ptr<Predicate>> BindParams(
      const std::vector<Value>& params) const override {
    if (slot_ >= params.size()) {
      return Status::InvalidArgument(StrFormat(
          "parameter slot %zu (column '%s') has no bound value (%zu "
          "parameter(s) given)",
          slot_, column_.c_str(), params.size()));
    }
    if (params[slot_].is_null()) {
      return Status::InvalidArgument(StrFormat(
          "parameter %zu (column '%s'): cannot bind NULL — comparisons "
          "against NULL never match",
          slot_, column_.c_str()));
    }
    return Compare(column_, op_, params[slot_]);
  }

  bool HasUnboundParams() const override { return true; }

 private:
  Status Unbound() const {
    return Status::FailedPrecondition(StrFormat(
        "predicate on '%s' holds an unbound '?' placeholder (slot %zu); "
        "bind parameters via Execute before running",
        column_.c_str(), slot_));
  }

  std::string column_;
  CompareOp op_;
  size_t slot_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr child) : child_(std::move(child)) {}

  Status Validate(const Schema& schema) const override {
    return child_->Validate(schema);
  }

  Status Select(const Table& table, const SelectionVector& candidates,
                SelectionVector* out) const override {
    out->clear();
    SelectionVector matched;
    SCIBORQ_RETURN_NOT_OK(child_->Select(table, candidates, &matched));
    // candidates and matched are both ascending; emit the set difference.
    size_t m = 0;
    for (const int64_t row : candidates) {
      if (m < matched.size() && matched[m] == row) {
        ++m;
      } else {
        out->push_back(row);
      }
    }
    return Status::OK();
  }

  bool Matches(const Table& table, int64_t row) const override {
    return !child_->Matches(table, row);
  }

  MorselVerdict TestMorsel(const Table& table, int64_t begin,
                           int64_t end) const override {
    // NOT is an exact complement over the morsel (null rows fail the child,
    // so NOT matches them), so decided child verdicts invert.
    switch (child_->TestMorsel(table, begin, end)) {
      case MorselVerdict::kSkipAll:
        return MorselVerdict::kMatchAll;
      case MorselVerdict::kMatchAll:
        return MorselVerdict::kSkipAll;
      case MorselVerdict::kScanRows:
        break;
    }
    return MorselVerdict::kScanRows;
  }

  Status SelectRange(const Table& table, int64_t begin, int64_t end,
                     SelectionVector* out) const override {
    out->clear();
    SelectionVector matched;
    SCIBORQ_RETURN_NOT_OK(child_->SelectRange(table, begin, end, &matched));
    // matched is ascending within [begin, end); emit the complement.
    size_t m = 0;
    for (int64_t row = begin; row < end; ++row) {
      if (m < matched.size() && matched[m] == row) {
        ++m;
      } else {
        out->push_back(row);
      }
    }
    return Status::OK();
  }

  void CollectPredicatePoints(
      std::vector<PredicatePoint>* points) const override {
    child_->CollectPredicatePoints(points);
  }

  void CollectPredicatePairs(
      std::vector<PredicatePair>* pairs) const override {
    child_->CollectPredicatePairs(pairs);
  }

  std::string ToString() const override {
    return "NOT (" + child_->ToString() + ")";
  }

  std::unique_ptr<Predicate> Clone() const override {
    return std::make_unique<NotPredicate>(child_->Clone());
  }

  Result<std::unique_ptr<Predicate>> BindParams(
      const std::vector<Value>& params) const override {
    SCIBORQ_ASSIGN_OR_RETURN(PredicatePtr bound, child_->BindParams(params));
    return PredicatePtr(std::make_unique<NotPredicate>(std::move(bound)));
  }

  bool HasUnboundParams() const override {
    return child_->HasUnboundParams();
  }

 private:
  PredicatePtr child_;
};

class AndPredicate final : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  Status Validate(const Schema& schema) const override {
    for (const auto& c : children_) SCIBORQ_RETURN_NOT_OK(c->Validate(schema));
    return Status::OK();
  }

  Status Select(const Table& table, const SelectionVector& candidates,
                SelectionVector* out) const override {
    // Conjunction = successive narrowing of the candidate list.
    SelectionVector current = candidates;
    SelectionVector next;
    for (const auto& c : children_) {
      SCIBORQ_RETURN_NOT_OK(c->Select(table, current, &next));
      current.swap(next);
    }
    *out = std::move(current);
    return Status::OK();
  }

  bool Matches(const Table& table, int64_t row) const override {
    for (const auto& c : children_) {
      if (!c->Matches(table, row)) return false;
    }
    return true;
  }

  MorselVerdict TestMorsel(const Table& table, int64_t begin,
                           int64_t end) const override {
    bool all_match = true;
    for (const auto& c : children_) {
      switch (c->TestMorsel(table, begin, end)) {
        case MorselVerdict::kSkipAll:
          return MorselVerdict::kSkipAll;  // one empty conjunct empties all
        case MorselVerdict::kScanRows:
          all_match = false;
          break;
        case MorselVerdict::kMatchAll:
          break;
      }
    }
    return all_match ? MorselVerdict::kMatchAll : MorselVerdict::kScanRows;
  }

  Status SelectRange(const Table& table, int64_t begin, int64_t end,
                     SelectionVector* out) const override {
    out->clear();
    // Per-conjunct zone verdicts first: a skipping child empties the morsel
    // outright, a blanket-matching child cannot narrow it and is elided.
    bool first = true;
    SelectionVector next;
    for (const auto& c : children_) {
      switch (c->TestMorsel(table, begin, end)) {
        case MorselVerdict::kSkipAll:
          out->clear();
          return Status::OK();
        case MorselVerdict::kMatchAll:
          continue;
        case MorselVerdict::kScanRows:
          break;
      }
      if (first) {
        SCIBORQ_RETURN_NOT_OK(c->SelectRange(table, begin, end, out));
        first = false;
      } else {
        SCIBORQ_RETURN_NOT_OK(c->Select(table, *out, &next));
        out->swap(next);
      }
    }
    if (first) FillDense(begin, end, out);  // every conjunct blanket-matched
    return Status::OK();
  }

  void CollectPredicatePoints(
      std::vector<PredicatePoint>* points) const override {
    for (const auto& c : children_) c->CollectPredicatePoints(points);
  }

  void CollectPredicatePairs(
      std::vector<PredicatePair>* pairs) const override {
    for (const auto& c : children_) c->CollectPredicatePairs(pairs);
  }

  std::string ToString() const override {
    std::vector<std::string> parts;
    parts.reserve(children_.size());
    for (const auto& c : children_) parts.push_back("(" + c->ToString() + ")");
    return Join(parts, " AND ");
  }

  std::unique_ptr<Predicate> Clone() const override {
    std::vector<PredicatePtr> copies;
    copies.reserve(children_.size());
    for (const auto& c : children_) copies.push_back(c->Clone());
    return std::make_unique<AndPredicate>(std::move(copies));
  }

  Result<std::unique_ptr<Predicate>> BindParams(
      const std::vector<Value>& params) const override {
    std::vector<PredicatePtr> bound;
    bound.reserve(children_.size());
    for (const auto& c : children_) {
      SCIBORQ_ASSIGN_OR_RETURN(PredicatePtr b, c->BindParams(params));
      bound.push_back(std::move(b));
    }
    return PredicatePtr(std::make_unique<AndPredicate>(std::move(bound)));
  }

  bool HasUnboundParams() const override {
    for (const auto& c : children_) {
      if (c->HasUnboundParams()) return true;
    }
    return false;
  }

 private:
  std::vector<PredicatePtr> children_;
};

class OrPredicate final : public Predicate {
 public:
  explicit OrPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  Status Validate(const Schema& schema) const override {
    for (const auto& c : children_) SCIBORQ_RETURN_NOT_OK(c->Validate(schema));
    return Status::OK();
  }

  Status Select(const Table& table, const SelectionVector& candidates,
                SelectionVector* out) const override {
    out->clear();
    SCIBORQ_RETURN_NOT_OK(Validate(table.schema()));
    for (const int64_t row : candidates) {
      if (Matches(table, row)) out->push_back(row);
    }
    return Status::OK();
  }

  bool Matches(const Table& table, int64_t row) const override {
    for (const auto& c : children_) {
      if (c->Matches(table, row)) return true;
    }
    return false;
  }

  MorselVerdict TestMorsel(const Table& table, int64_t begin,
                           int64_t end) const override {
    bool all_skip = !children_.empty();
    for (const auto& c : children_) {
      switch (c->TestMorsel(table, begin, end)) {
        case MorselVerdict::kMatchAll:
          return MorselVerdict::kMatchAll;  // one full disjunct fills all
        case MorselVerdict::kScanRows:
          all_skip = false;
          break;
        case MorselVerdict::kSkipAll:
          break;
      }
    }
    return all_skip ? MorselVerdict::kSkipAll : MorselVerdict::kScanRows;
  }

  Status SelectRange(const Table& table, int64_t begin, int64_t end,
                     SelectionVector* out) const override {
    out->clear();
    // Union of the disjuncts' selections via a morsel-local bitmap —
    // replaces the row-at-a-time Matches loop with each child's vectorized
    // range scan. Skipping children contribute nothing; a blanket-matching
    // child short-circuits to the dense range.
    std::vector<uint8_t> hit(static_cast<size_t>(end - begin), 0);
    SelectionVector sel;
    for (const auto& c : children_) {
      switch (c->TestMorsel(table, begin, end)) {
        case MorselVerdict::kSkipAll:
          continue;
        case MorselVerdict::kMatchAll:
          FillDense(begin, end, out);
          return Status::OK();
        case MorselVerdict::kScanRows:
          break;
      }
      SCIBORQ_RETURN_NOT_OK(c->SelectRange(table, begin, end, &sel));
      for (const int64_t row : sel) hit[static_cast<size_t>(row - begin)] = 1;
    }
    for (int64_t row = begin; row < end; ++row) {
      if (hit[static_cast<size_t>(row - begin)]) out->push_back(row);
    }
    return Status::OK();
  }

  void CollectPredicatePoints(
      std::vector<PredicatePoint>* points) const override {
    for (const auto& c : children_) c->CollectPredicatePoints(points);
  }

  void CollectPredicatePairs(
      std::vector<PredicatePair>* pairs) const override {
    for (const auto& c : children_) c->CollectPredicatePairs(pairs);
  }

  std::string ToString() const override {
    std::vector<std::string> parts;
    parts.reserve(children_.size());
    for (const auto& c : children_) parts.push_back("(" + c->ToString() + ")");
    return Join(parts, " OR ");
  }

  std::unique_ptr<Predicate> Clone() const override {
    std::vector<PredicatePtr> copies;
    copies.reserve(children_.size());
    for (const auto& c : children_) copies.push_back(c->Clone());
    return std::make_unique<OrPredicate>(std::move(copies));
  }

  Result<std::unique_ptr<Predicate>> BindParams(
      const std::vector<Value>& params) const override {
    std::vector<PredicatePtr> bound;
    bound.reserve(children_.size());
    for (const auto& c : children_) {
      SCIBORQ_ASSIGN_OR_RETURN(PredicatePtr b, c->BindParams(params));
      bound.push_back(std::move(b));
    }
    return PredicatePtr(std::make_unique<OrPredicate>(std::move(bound)));
  }

  bool HasUnboundParams() const override {
    for (const auto& c : children_) {
      if (c->HasUnboundParams()) return true;
    }
    return false;
  }

 private:
  std::vector<PredicatePtr> children_;
};

}  // namespace

PredicatePtr Compare(std::string column, CompareOp op, Value literal) {
  return std::make_unique<ComparePredicate>(std::move(column), op,
                                            std::move(literal));
}
PredicatePtr Eq(std::string column, Value literal) {
  return Compare(std::move(column), CompareOp::kEq, std::move(literal));
}
PredicatePtr Ne(std::string column, Value literal) {
  return Compare(std::move(column), CompareOp::kNe, std::move(literal));
}
PredicatePtr Lt(std::string column, Value literal) {
  return Compare(std::move(column), CompareOp::kLt, std::move(literal));
}
PredicatePtr Le(std::string column, Value literal) {
  return Compare(std::move(column), CompareOp::kLe, std::move(literal));
}
PredicatePtr Gt(std::string column, Value literal) {
  return Compare(std::move(column), CompareOp::kGt, std::move(literal));
}
PredicatePtr Ge(std::string column, Value literal) {
  return Compare(std::move(column), CompareOp::kGe, std::move(literal));
}

PredicatePtr Between(std::string column, double lo, double hi) {
  return std::make_unique<BetweenPredicate>(std::move(column), lo, hi);
}

PredicatePtr Cone(std::string column_x, std::string column_y, double x0,
                  double y0, double radius) {
  return std::make_unique<ConePredicate>(std::move(column_x),
                                         std::move(column_y), x0, y0, radius);
}

PredicatePtr Param(std::string column, CompareOp op, size_t slot) {
  return std::make_unique<ParamPredicate>(std::move(column), op, slot);
}

PredicatePtr Not(PredicatePtr child) {
  return std::make_unique<NotPredicate>(std::move(child));
}
PredicatePtr And(std::vector<PredicatePtr> children) {
  return std::make_unique<AndPredicate>(std::move(children));
}
PredicatePtr Or(std::vector<PredicatePtr> children) {
  return std::make_unique<OrPredicate>(std::move(children));
}

}  // namespace sciborq
