#ifndef SCIBORQ_OBS_METRICS_HTTP_H_
#define SCIBORQ_OBS_METRICS_HTTP_H_

#include <atomic>
#include <optional>
#include <thread>

#include "obs/metrics.h"
#include "server/socket.h"
#include "util/status.h"

namespace sciborq {
namespace obs {

/// A deliberately tiny HTTP/1.0-style server that serves exactly one
/// resource: `GET /metrics` → the registry's Prometheus text exposition.
/// Anything else gets a 404. Every response closes the connection, so no
/// keep-alive bookkeeping exists. One accept thread, requests handled
/// inline — a scrape every few seconds is the design load, not a web tier.
class MetricsHttpServer {
 public:
  /// `registry` is non-owning and must outlive the server. Port 0 picks a
  /// free ephemeral port (port() reports the bound one).
  explicit MetricsHttpServer(Registry* registry, int port = 0);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  Status Start();
  void Stop();

  int port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(TcpConn conn);

  Registry* registry_;
  int requested_port_;
  int port_ = -1;
  std::optional<TcpListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace obs
}  // namespace sciborq

#endif  // SCIBORQ_OBS_METRICS_HTTP_H_
