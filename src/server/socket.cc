#include "server/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/errno_string.h"
#include "util/string_util.h"

namespace sciborq {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, ErrnoString(errno).c_str()));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Bounded connect: flip the socket non-blocking, start the connect, poll
/// for writability with the deadline, then read SO_ERROR for the real
/// outcome and restore blocking mode. DeadlineExceeded when the poll
/// expires first.
Status ConnectWithTimeout(int fd, const struct sockaddr* addr,
                          socklen_t addr_len, int timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  Status status = Status::OK();
  if (::connect(fd, addr, addr_len) != 0) {
    if (errno != EINPROGRESS) {
      status = Errno("connect");
    } else {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      int rc;
      do {
        rc = ::poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) {
        status = Errno("poll");
      } else if (rc == 0) {
        status = Status::DeadlineExceeded(
            StrFormat("connect timed out after %dms", timeout_ms));
      } else {
        int err = 0;
        socklen_t err_len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
          status = Errno("getsockopt(SO_ERROR)");
        } else if (err != 0) {
          status = Status::IOError(
              StrFormat("connect: %s", ErrnoString(err).c_str()));
        }
      }
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0 && status.ok()) {
    status = Errno("fcntl(restore flags)");
  }
  return status;
}

}  // namespace

// -- TcpConn ----------------------------------------------------------------

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpConn> TcpConn::Connect(const std::string& host, int port,
                                 int timeout_ms) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument(StrFormat("bad port %d", port));
  }
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = StrFormat("%d", port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IOError(StrFormat("resolve '%s': %s", host.c_str(),
                                     ::gai_strerror(rc)));
  }
  Status last = Status::IOError(StrFormat("no addresses for '%s'", host.c_str()));
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (timeout_ms > 0) {
      if (Status st = ConnectWithTimeout(fd, ai->ai_addr, ai->ai_addrlen,
                                         timeout_ms);
          !st.ok()) {
        last = std::move(st);
        ::close(fd);
        continue;
      }
    } else if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("connect");
      ::close(fd);
      continue;
    }
    SetNoDelay(fd);
    ::freeaddrinfo(res);
    return TcpConn(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

TcpConn TcpConn::Adopt(int fd) {
  SetNoDelay(fd);
  return TcpConn(fd);
}

Status TcpConn::SetRecvTimeout(int timeout_ms) {
  if (!valid()) {
    return Status::FailedPrecondition("timeout on closed connection");
  }
  if (timeout_ms < 0) {
    return Status::InvalidArgument(StrFormat("bad timeout %dms", timeout_ms));
  }
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Status TcpConn::SendAll(const char* data, size_t len) {
  if (!valid()) return Status::FailedPrecondition("send on closed connection");
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpConn::RecvAll(char* data, size_t len, bool* clean_eof) {
  *clean_eof = false;
  if (!valid()) return Status::FailedPrecondition("recv on closed connection");
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired (SetRecvTimeout): report the deadline, not a
        // generic I/O failure, so callers can distinguish a slow peer.
        return Status::DeadlineExceeded("recv timed out waiting for the peer");
      }
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::IOError(StrFormat(
          "connection closed mid-frame (%zu of %zu bytes)", got, len));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpConn::SendRaw(std::string_view bytes) {
  return SendAll(bytes.data(), bytes.size());
}

Result<int64_t> TcpConn::RecvSome(char* data, size_t len) {
  if (!valid()) return Status::FailedPrecondition("recv on closed connection");
  while (true) {
    const ssize_t n = ::recv(fd_, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("recv timed out waiting for the peer");
      }
      return Errno("recv");
    }
    return static_cast<int64_t>(n);
  }
}

Status TcpConn::SendFrame(std::string_view body) {
  char prefix[4];
  const uint32_t len = static_cast<uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  // One send for prefix+body keeps a frame in as few packets as possible.
  std::string framed;
  framed.reserve(4 + body.size());
  framed.append(prefix, 4);
  framed.append(body.data(), body.size());
  return SendAll(framed.data(), framed.size());
}

Result<std::optional<std::string>> TcpConn::RecvFrame(int64_t max_frame_bytes) {
  char prefix[4];
  bool clean_eof = false;
  SCIBORQ_RETURN_NOT_OK(RecvAll(prefix, 4, &clean_eof));
  if (clean_eof) return std::optional<std::string>();
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (len == 0) {
    return Status::InvalidArgument("frame: zero-length body");
  }
  if (static_cast<int64_t>(len) > max_frame_bytes) {
    return Status::ResourceExhausted(
        StrFormat("frame: %u bytes exceeds the %lld-byte frame limit", len,
                  static_cast<long long>(max_frame_bytes)));
  }
  std::string body(len, '\0');
  SCIBORQ_RETURN_NOT_OK(RecvAll(body.data(), body.size(), &clean_eof));
  if (clean_eof) {
    return Status::IOError("connection closed before the frame body");
  }
  return std::optional<std::string>(std::move(body));
}

void TcpConn::ShutdownRead() {
  if (valid()) ::shutdown(fd_, SHUT_RD);
}

void TcpConn::Shutdown() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void TcpConn::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

// -- TcpListener ------------------------------------------------------------

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpListener> TcpListener::Bind(int port, int backlog) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument(StrFormat("bad port %d", port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &addr_len) !=
      0) {
    const Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  return TcpListener(fd, static_cast<int>(ntohs(addr.sin_port)));
}

Result<TcpConn> TcpListener::Accept() {
  if (!valid()) return Status::FailedPrecondition("accept on closed listener");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return TcpConn::Adopt(fd);
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void TcpListener::Shutdown() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace sciborq
