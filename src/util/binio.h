#ifndef SCIBORQ_UTIL_BINIO_H_
#define SCIBORQ_UTIL_BINIO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace sciborq {

/// True on little-endian hosts, where a fixed-width LE array can be bulk
/// memcpy'd instead of assembled byte by byte. The encodings themselves are
/// LE everywhere; this only selects the fast path.
inline constexpr bool kHostLittleEndian =
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__;

// ---------------------------------------------------------------------------
// Binary encoding primitives shared by the wire protocol (server/wire.h) and
// the on-disk storage formats (storage/). All integers are little-endian and
// fixed-width; doubles are IEEE-754 bit patterns (NaN/Inf round-trip
// exactly); strings are u32 length + raw bytes. The encoding is bijective:
// encode(decode(encode(x))) == encode(x), which both the wire tests and the
// storage tests assert byte-for-byte.
// ---------------------------------------------------------------------------

/// Appends primitive values to a growing byte buffer.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v);
  /// u32 length + raw bytes (embedded NULs are fine).
  void PutString(std::string_view s);
  /// Raw bytes, no length prefix (bulk fixed-width payloads whose size the
  /// reader derives from a preceding count).
  void PutRaw(const void* data, size_t n);

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked sequential reads over one decoded buffer. Every read fails
/// with InvalidArgument instead of walking off the end, so truncated or
/// hostile input surfaces as Status, never as UB.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<bool> ReadBool();  ///< rejects bytes other than 0/1
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  Result<std::string> ReadString();
  /// A bounds-checked view of the next `n` raw bytes (the PutRaw inverse);
  /// valid while the underlying buffer lives.
  Result<std::string_view> ReadRaw(size_t n);

  int64_t remaining() const {
    return static_cast<int64_t>(data_.size() - pos_);
  }
  /// InvalidArgument unless the whole buffer was consumed — trailing garbage
  /// means a framing bug or a tampered message.
  Status ExpectEnd() const;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace sciborq

#endif  // SCIBORQ_UTIL_BINIO_H_
