#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/session.h"
#include "column/csv.h"
#include "exec/parser.h"
#include "skyserver/catalog.h"
#include "util/string_util.h"

namespace sciborq {
namespace {

TableOptions SmallLayers() {
  TableOptions options;
  options.layers = {{"L0", 5'000}, {"L1", 500}};
  options.seed = 7;
  return options;
}

/// An engine preloaded with `rows` synthetic PhotoObjAll rows under `name`.
void LoadSky(Engine* engine, const std::string& name, int64_t rows,
             uint64_t seed) {
  SkyCatalogConfig config;
  config.num_rows = rows;
  const SkyCatalog catalog = GenerateSkyCatalog(config, seed).value();
  ASSERT_TRUE(engine
                  ->CreateTable(name, catalog.photo_obj_all.schema(),
                                SmallLayers())
                  .ok());
  ASSERT_TRUE(engine->IngestBatch(name, catalog.photo_obj_all).ok());
}

// ----------------------------------------------------------- catalog -----

TEST(EngineTest, MultiTableCatalog) {
  Engine engine;
  LoadSky(&engine, "sky_a", 20'000, 1);
  LoadSky(&engine, "sky_b", 10'000, 2);

  const std::vector<std::string> names = engine.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "sky_a");
  EXPECT_EQ(names[1], "sky_b");
  EXPECT_EQ(engine.TableRows("sky_a").value(), 20'000);
  EXPECT_EQ(engine.TableRows("sky_b").value(), 10'000);

  // FROM routes to the right table: exact counts differ.
  const QueryOutcome a =
      engine.Query("SELECT COUNT(*) FROM sky_a EXACT").value();
  const QueryOutcome b =
      engine.Query("SELECT COUNT(*) FROM sky_b EXACT").value();
  EXPECT_DOUBLE_EQ(a.rows[0].values[0], 20'000.0);
  EXPECT_DOUBLE_EQ(b.rows[0].values[0], 10'000.0);
  EXPECT_EQ(a.table, "sky_a");
  EXPECT_TRUE(a.exact);

  // Duplicate registration is refused.
  const Status dup =
      engine.CreateTable("sky_a", PhotoObjSchema(), SmallLayers());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(EngineTest, ErrorPaths) {
  Engine engine;
  LoadSky(&engine, "sky", 5'000, 3);

  // Unknown table.
  const auto unknown = engine.Query("SELECT COUNT(*) FROM nope EXACT");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("'nope'"), std::string::npos);
  EXPECT_NE(unknown.status().message().find("sky"), std::string::npos)
      << "error should list registered tables: "
      << unknown.status().message();

  // Unparsable SQL.
  const auto garbage = engine.Query("SELECTY COUNT(*) FROM sky");
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine.Query("SELECT COUNT(*) FROM sky WITHIN -1 MS").ok());

  // Missing FROM at the engine level (no session default to fall back on).
  const auto no_from = engine.Query("SELECT COUNT(*)");
  ASSERT_FALSE(no_from.ok());
  EXPECT_EQ(no_from.status().code(), StatusCode::kInvalidArgument);

  // Ingest schema mismatch.
  Table wrong{Schema({Field{"only", DataType::kInt64, true}})};
  EXPECT_EQ(engine.IngestBatch("sky", wrong).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.IngestBatch("nope", wrong).code(), StatusCode::kNotFound);

  // Introspection errors.
  EXPECT_EQ(engine.TableRows("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.LayerSnapshot("sky", 99).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(engine.DecayInterest("sky", 0.5).code(),
            StatusCode::kFailedPrecondition);  // no tracked attributes
}

TEST(EngineTest, RegisterCsvRoundTrip) {
  SkyCatalogConfig config;
  config.num_rows = 2'000;
  const SkyCatalog catalog = GenerateSkyCatalog(config, 4).value();
  const std::string path = testing::TempDir() + "/sciborq_engine.csv";
  ASSERT_TRUE(WriteCsv(catalog.photo_obj_all, path).ok());

  Engine engine;
  const Result<int64_t> loaded =
      engine.RegisterCsv("from_csv", path, SmallLayers());
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 2'000);
  const QueryOutcome outcome =
      engine.Query("SELECT COUNT(*) FROM from_csv EXACT").value();
  EXPECT_DOUBLE_EQ(outcome.rows[0].values[0], 2'000.0);

  // A broken CSV fails with an actionable message, and registers nothing.
  const std::string bad_path = testing::TempDir() + "/sciborq_engine_bad.csv";
  {
    std::ofstream out(bad_path);
    out << "id:int64\n1\nnot_a_number\n";
  }
  const auto bad = engine.RegisterCsv("bad", bad_path);
  std::remove(bad_path.c_str());
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos)
      << bad.status().message();
  EXPECT_EQ(engine.TableNames().size(), 1u);
}

// ----------------------------------------------------------- querying ----

TEST(EngineTest, BoundedQueryEscalatesWithTrace) {
  Engine engine;
  LoadSky(&engine, "photo_obj_all", 40'000, 5);

  // The acceptance-criteria query shape: bounds in the SQL, trace out.
  const QueryOutcome outcome =
      engine
          .Query("SELECT COUNT(*), AVG(r) FROM photo_obj_all "
                 "WHERE cone(ra, dec; 170, 30; r=10) WITHIN 50 MS ERROR 5%")
          .value();
  ASSERT_FALSE(outcome.attempts.empty());
  EXPECT_FALSE(outcome.answered_by.empty());
  ASSERT_EQ(outcome.rows.size(), 1u);
  ASSERT_EQ(outcome.estimates.size(), 1u);
  EXPECT_EQ(outcome.estimates[0].size(), 2u);
  // The trace starts at the smallest layer.
  EXPECT_EQ(outcome.attempts[0].layer_name, "L1");

  // EXACT answers carry zero-width exact intervals.
  const QueryOutcome exact =
      engine
          .Query("SELECT COUNT(*), AVG(r) FROM photo_obj_all "
                 "WHERE cone(ra, dec; 170, 30; r=10) EXACT")
          .value();
  EXPECT_TRUE(exact.exact);
  EXPECT_TRUE(exact.error_bound_met);
  EXPECT_TRUE(exact.estimates[0][0].exact);
  EXPECT_DOUBLE_EQ(exact.estimates[0][0].ci_lo, exact.estimates[0][0].ci_hi);
  // The bounded estimate's CI covers the truth here (a seeded, dense cone).
  EXPECT_LE(outcome.estimates[0][0].ci_lo, exact.rows[0].values[0]);
  EXPECT_GE(outcome.estimates[0][0].ci_hi, exact.rows[0].values[0]);
}

TEST(EngineTest, QueryLogReplaysWithBounds) {
  Engine engine;
  LoadSky(&engine, "photo_obj_all", 10'000, 6);

  const std::string sql =
      "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
      "WHERE cone(ra, dec; 170, 30; r=10) WITHIN 50 MS ERROR 5%";
  const QueryOutcome outcome = engine.Query(sql).value();
  EXPECT_EQ(outcome.sql, sql);  // already normalized

  const std::vector<std::string> logged =
      engine.LoggedSql("photo_obj_all").value();
  ASSERT_EQ(logged.size(), 1u);
  EXPECT_EQ(logged[0], sql);

  // The replayed SQL parses back to an equal query + bounds.
  const BoundedQuery replayed = ParseBoundedQuery(logged[0]).value();
  EXPECT_EQ(replayed.ToString(), sql);
  EXPECT_DOUBLE_EQ(replayed.bounds.time_budget_ms, 50.0);
  EXPECT_DOUBLE_EQ(replayed.bounds.max_relative_error, 0.05);
  // ... and re-executes through the parsed-query overload.
  EXPECT_TRUE(engine.Query(replayed).ok());
  EXPECT_EQ(engine.LoggedSql("photo_obj_all")->size(), 2u);
}

TEST(EngineTest, SessionDefaultsTableAndBounds) {
  Engine engine;
  LoadSky(&engine, "sky", 10'000, 8);

  Session session(&engine);
  // No default table yet: bare SQL is rejected.
  EXPECT_FALSE(session.Query("SELECT COUNT(*)").ok());
  EXPECT_EQ(session.Use("nope").code(), StatusCode::kNotFound);
  ASSERT_TRUE(session.Use("sky").ok());

  QueryBounds bounds;
  bounds.exact = true;
  session.set_default_bounds(bounds);
  const QueryOutcome outcome = session.Query("SELECT COUNT(*)").value();
  EXPECT_EQ(outcome.table, "sky");
  EXPECT_TRUE(outcome.exact);  // session default applied
  EXPECT_EQ(session.queries_run(), 1);

  // Explicit SQL beats session defaults.
  const QueryOutcome explicit_outcome =
      session.Query("SELECT COUNT(*) FROM sky ERROR 60%").value();
  EXPECT_EQ(explicit_outcome.answered_by, "L1");
}

TEST(EngineTest, WorkloadReplayBiasesNextIngest) {
  SkyCatalogConfig config;
  config.num_rows = 30'000;
  const SkyCatalog catalog = GenerateSkyCatalog(config, 9).value();

  Engine engine;
  TableOptions options = SmallLayers();
  options.tracked_attributes = {{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}};
  ASSERT_TRUE(
      engine.CreateTable("sky", catalog.photo_obj_all.schema(), options).ok());

  // Replay a focused historical workload, then load.
  AggregateQuery probe = ParseQuery(
      "SELECT COUNT(*) WHERE cone(ra, dec; 150, 12; r=3)").value();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine.RecordWorkload("sky", probe).ok());
  }
  ASSERT_TRUE(engine.IngestBatch("sky", catalog.photo_obj_all).ok());

  // The top layer over-represents the focus region vs the base fraction.
  const Table sample = engine.LayerSnapshot("sky", 0).value();
  const auto near = [](const Table& t, int64_t* hits) {
    const Column* ra = t.ColumnByName("ra").value();
    const Column* dec = t.ColumnByName("dec").value();
    *hits = 0;
    for (int64_t i = 0; i < t.num_rows(); ++i) {
      if (std::abs(ra->GetDouble(i) - 150.0) < 3.0 &&
          std::abs(dec->GetDouble(i) - 12.0) < 3.0) {
        ++*hits;
      }
    }
  };
  int64_t sample_hits = 0, base_hits = 0;
  near(sample, &sample_hits);
  near(catalog.photo_obj_all, &base_hits);
  const double sample_frac =
      static_cast<double>(sample_hits) / static_cast<double>(sample.num_rows());
  const double base_frac = static_cast<double>(base_hits) /
                           static_cast<double>(catalog.photo_obj_all.num_rows());
  EXPECT_GT(sample_frac, 1.5 * base_frac);
}

// -------------------------------------------------------- concurrency ----

/// Two outcomes are bit-identical when every value and interval matches
/// exactly (no tolerance): the determinism contract of Engine::Query.
void ExpectBitIdentical(const QueryOutcome& a, const QueryOutcome& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  EXPECT_EQ(a.answered_by, b.answered_by);
  EXPECT_EQ(a.error_bound_met, b.error_bound_met);
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].values.size(), b.rows[r].values.size());
    EXPECT_EQ(a.rows[r].input_rows, b.rows[r].input_rows);
    for (size_t v = 0; v < a.rows[r].values.size(); ++v) {
      EXPECT_EQ(a.rows[r].values[v], b.rows[r].values[v]);
    }
    for (size_t e = 0; e < a.estimates[r].size(); ++e) {
      EXPECT_EQ(a.estimates[r][e].estimate, b.estimates[r][e].estimate);
      EXPECT_EQ(a.estimates[r][e].std_error, b.estimates[r][e].std_error);
      EXPECT_EQ(a.estimates[r][e].ci_lo, b.estimates[r][e].ci_lo);
      EXPECT_EQ(a.estimates[r][e].ci_hi, b.estimates[r][e].ci_hi);
    }
  }
}

std::vector<std::string> ConcurrencyWorkload() {
  std::vector<std::string> sqls;
  for (int i = 0; i < 6; ++i) {
    const double ra = 140.0 + 12.0 * i;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "SELECT COUNT(*), AVG(r) FROM sky "
                  "WHERE cone(ra, dec; %.0f, 30; r=12) ERROR 40%%",
                  ra);
    sqls.emplace_back(buf);
  }
  sqls.push_back(
      "SELECT COUNT(*), AVG(redshift) FROM sky GROUP BY obj_class "
      "ERROR 50%");
  sqls.push_back("SELECT COUNT(*) FROM sky EXACT");
  sqls.push_back("SELECT VAR(redshift) FROM sky ERROR 30%");
  return sqls;
}

TEST(EngineTest, ConcurrentQueriesBitIdenticalToSerial) {
  Engine engine;
  LoadSky(&engine, "sky", 30'000, 10);
  const std::vector<std::string> sqls = ConcurrencyWorkload();

  // Serial reference. Error-bound-only contracts make escalation
  // deterministic (no wall-clock dependence), so repeated runs must agree.
  std::vector<QueryOutcome> serial;
  for (const auto& sql : sqls) {
    serial.push_back(engine.Query(sql).value());
  }

  // 4 threads x 3 rounds, every thread running the full workload.
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::vector<std::vector<QueryOutcome>> per_thread(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& sql : sqls) {
          Result<QueryOutcome> outcome = engine.Query(sql);
          if (!outcome.ok()) {
            failures.fetch_add(1);
            return;
          }
          per_thread[static_cast<size_t>(t)].push_back(
              std::move(outcome).value());
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(per_thread[static_cast<size_t>(t)].size(),
              sqls.size() * kRounds);
    for (size_t i = 0; i < per_thread[static_cast<size_t>(t)].size(); ++i) {
      ExpectBitIdentical(per_thread[static_cast<size_t>(t)][i],
                         serial[i % sqls.size()]);
    }
  }

  // Every query landed in the log exactly once.
  EXPECT_EQ(engine.LoggedSql("sky")->size(),
            sqls.size() * (1 + kThreads * kRounds));
}

TEST(EngineTest, IngestWhileQueryingIsSafe) {
  SkyCatalogConfig config;
  config.num_rows = 5'000;
  Engine engine;
  SkyStream stream(config, 11);
  ASSERT_TRUE(
      engine.CreateTable("sky", stream.schema(), SmallLayers()).ok());
  ASSERT_TRUE(engine.IngestBatch("sky", stream.NextBatch(5'000)).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Result<QueryOutcome> outcome = engine.Query(
            "SELECT COUNT(*), AVG(r) FROM sky "
            "WHERE cone(ra, dec; 170, 30; r=15) ERROR 30%");
        if (!outcome.ok() || outcome->rows.size() != 1) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (int batch = 0; batch < 10; ++batch) {
    ASSERT_TRUE(engine.IngestBatch("sky", stream.NextBatch(2'000)).ok());
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.TableRows("sky").value(), 25'000);

  // Post-race sanity: an exact count sees every ingested row.
  const QueryOutcome exact =
      engine.Query("SELECT COUNT(*) FROM sky EXACT").value();
  EXPECT_DOUBLE_EQ(exact.rows[0].values[0], 25'000.0);
}

// ------------------------------------------------ prepared statements -----

constexpr char kBoxTemplate[] =
    "SELECT COUNT(*), AVG(r) FROM sky "
    "WHERE ra >= ? AND ra <= ? AND dec >= ? AND dec <= ? ERROR 25%";

std::vector<Value> BoxParams(int i) {
  const double ra = 150.0 + 3.0 * (i % 7);
  const double dec = 20.0 + 2.0 * (i % 5);
  return {Value(ra - 15.0), Value(ra + 15.0), Value(dec - 15.0),
          Value(dec + 15.0)};
}

std::string BoxSql(int i) {
  const double ra = 150.0 + 3.0 * (i % 7);
  const double dec = 20.0 + 2.0 * (i % 5);
  return StrFormat(
      "SELECT COUNT(*), AVG(r) FROM sky "
      "WHERE ra >= %.17g AND ra <= %.17g AND dec >= %.17g AND dec <= %.17g "
      "ERROR 25%%",
      ra - 15.0, ra + 15.0, dec - 15.0, dec + 15.0);
}

TEST(PreparedStatementTest, PrepareExecuteCloseLifecycle) {
  Engine engine;
  LoadSky(&engine, "sky", 20'000, 5);
  EXPECT_EQ(engine.open_statements(), 0);

  const StatementHandle handle = engine.Prepare(kBoxTemplate).value();
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(engine.open_statements(), 1);

  const StatementInfo info = engine.GetStatement(handle).value();
  EXPECT_EQ(info.table, "sky");
  EXPECT_EQ(info.num_params, 4u);
  EXPECT_NE(info.sql.find("ra >= ?"), std::string::npos) << info.sql;

  // The acceptance bar: Execute(handle, params) is EquivalentAnswers-equal
  // to Query() of the equivalent fully-bound SQL.
  for (int i = 0; i < 10; ++i) {
    const QueryOutcome bound = engine.Execute(handle, BoxParams(i)).value();
    const QueryOutcome rendered = engine.Query(BoxSql(i)).value();
    EXPECT_TRUE(EquivalentAnswers(bound, rendered))
        << "i=" << i << "\nbound:    " << bound.ToString()
        << "\nrendered: " << rendered.ToString();
  }

  ASSERT_TRUE(engine.CloseStatement(handle).ok());
  EXPECT_EQ(engine.open_statements(), 0);
  EXPECT_EQ(engine.Execute(handle, BoxParams(0)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.CloseStatement(handle).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.GetStatement(handle).status().code(),
            StatusCode::kNotFound);
}

TEST(PreparedStatementTest, PrepareErrors) {
  Engine engine;
  LoadSky(&engine, "sky", 5'000, 6);

  // Unknown table fails at prepare time, not on the Nth execute.
  EXPECT_EQ(engine.Prepare("SELECT COUNT(*) FROM nope WHERE x = ?")
                .status()
                .code(),
            StatusCode::kNotFound);
  // Missing FROM clause.
  EXPECT_EQ(engine.Prepare("SELECT COUNT(*) WHERE x = ?").status().code(),
            StatusCode::kInvalidArgument);
  // Unparsable template (with the caret diagnostics).
  const auto bad = engine.Prepare("SELECT COUNT(* FROM sky");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("offset"), std::string::npos);
  EXPECT_EQ(engine.open_statements(), 0);
}

TEST(PreparedStatementTest, ArityAndTypeMismatchErrors) {
  Engine engine;
  LoadSky(&engine, "sky", 5'000, 7);

  const StatementHandle handle =
      engine.Prepare("SELECT COUNT(*) FROM sky WHERE ra > ? AND obj_class = ?")
          .value();

  // Arity: too few / too many.
  const auto too_few = engine.Execute(handle, {Value(150.0)});
  ASSERT_FALSE(too_few.ok());
  EXPECT_EQ(too_few.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(too_few.status().message().find("expects 2 parameter(s), got 1"),
            std::string::npos)
      << too_few.status().message();
  EXPECT_FALSE(
      engine.Execute(handle, {Value(1.0), Value("G"), Value(2.0)}).ok());

  // Type: a string bound where the column is numeric, and vice versa.
  const auto str_for_num =
      engine.Execute(handle, {Value("oops"), Value("GALAXY")});
  ASSERT_FALSE(str_for_num.ok());
  EXPECT_EQ(str_for_num.status().code(), StatusCode::kInvalidArgument);
  const auto num_for_str =
      engine.Execute(handle, {Value(150.0), Value(int64_t{3})});
  ASSERT_FALSE(num_for_str.ok());
  EXPECT_EQ(num_for_str.status().code(), StatusCode::kInvalidArgument);

  // NULL binds are rejected before execution.
  EXPECT_FALSE(engine.Execute(handle, {Value::Null(), Value("GALAXY")}).ok());

  // The statement survives failed binds and still answers good ones.
  EXPECT_TRUE(engine.Execute(handle, {Value(150.0), Value("GALAXY")}).ok());
}

TEST(PreparedStatementTest, ExecuteFeedsWorkloadLogWithBoundSql) {
  Engine engine;
  LoadSky(&engine, "sky", 5'000, 9);

  const StatementHandle handle =
      engine.Prepare("SELECT COUNT(*) FROM sky WHERE ra > ? ERROR ?%")
          .value();
  const QueryOutcome outcome =
      engine.Execute(handle, {Value(170.25), Value(int64_t{30})}).value();

  // The log holds the *bound* statement — replayable SQL with true focal
  // points, not the `?` template (workload-biased sampling depends on it).
  const std::vector<std::string> logged = engine.LoggedSql("sky").value();
  ASSERT_FALSE(logged.empty());
  EXPECT_EQ(logged.back(),
            "SELECT COUNT(*) FROM sky WHERE ra > 170.25 ERROR 30%");
  EXPECT_EQ(outcome.sql, logged.back());
}

TEST(PreparedStatementTest, ConcurrentExecutesBitIdenticalToSerial) {
  Engine engine;
  LoadSky(&engine, "sky", 20'000, 10);
  const StatementHandle handle = engine.Prepare(kBoxTemplate).value();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  // Serial baseline first (the table is static, so order cannot matter).
  std::vector<QueryOutcome> baseline;
  baseline.reserve(kPerThread);
  for (int i = 0; i < kPerThread; ++i) {
    baseline.push_back(engine.Execute(handle, BoxParams(i)).value());
  }

  std::vector<std::vector<QueryOutcome>> per_thread(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, handle, &per_thread, &failures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Result<QueryOutcome> outcome = engine.Execute(handle, BoxParams(i));
        if (!outcome.ok()) {
          failures.fetch_add(1);
          return;
        }
        per_thread[t].push_back(std::move(outcome).value());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(per_thread[t].size(), static_cast<size_t>(kPerThread));
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_TRUE(EquivalentAnswers(per_thread[t][i], baseline[i]))
          << "thread " << t << ", query " << i;
    }
  }
}

TEST(PreparedStatementTest, SessionScopesAndCleansUpHandles) {
  Engine engine;
  LoadSky(&engine, "sky", 5'000, 11);

  {
    Session session(&engine);
    ASSERT_TRUE(session.Use("sky").ok());
    QueryBounds bounds;
    bounds.exact = true;
    session.set_default_bounds(bounds);

    // FROM-less template: the session's default table fills in; a bare
    // template also inherits the session's default bounds.
    const StatementInfo info =
        session.Prepare("SELECT COUNT(*) WHERE ra > ?").value();
    EXPECT_EQ(info.table, "sky");
    EXPECT_EQ(info.num_params, 1u);
    const QueryOutcome outcome =
        session.Execute(info.handle, {Value(150.0)}).value();
    EXPECT_TRUE(outcome.exact);  // session default bounds applied

    // A template that carries its own bounds (even via `?`) does not.
    const StatementInfo bounded =
        session.Prepare("SELECT COUNT(*) WHERE ra > ? ERROR ?%").value();
    const QueryOutcome approx =
        session.Execute(bounded.handle, {Value(150.0), Value(60.0)}).value();
    EXPECT_FALSE(approx.exact);

    // Another session cannot see this session's handles...
    Session other(&engine);
    EXPECT_EQ(other.Execute(info.handle, {Value(150.0)}).status().code(),
              StatusCode::kNotFound);
    EXPECT_EQ(other.CloseStatement(info.handle).code(), StatusCode::kNotFound);
    // ...but the engine-level registry holds both.
    EXPECT_EQ(engine.open_statements(), 2);
    EXPECT_EQ(session.open_statements(), 2);

    ASSERT_TRUE(session.CloseStatement(bounded.handle).ok());
    EXPECT_EQ(engine.open_statements(), 1);
  }
  // Session destruction closes what was left open.
  EXPECT_EQ(engine.open_statements(), 0);
}

TEST(PreparedStatementTest, SessionWithoutTableRejectsFromlessTemplate) {
  Engine engine;
  LoadSky(&engine, "sky", 2'000, 12);
  Session session(&engine);
  const auto r = session.Prepare("SELECT COUNT(*) WHERE x = ?");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sciborq
