#ifndef SCIBORQ_STATS_HISTOGRAM2D_H_
#define SCIBORQ_STATS_HISTOGRAM2D_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace sciborq {

/// Two-dimensional streaming equi-width histogram: the multi-dimensional
/// generalization of Fig. 5 that the paper flags as "more attractive"
/// (footnote 3) and lists as future work (§6). Each grid cell keeps a count
/// and the running mean of both coordinates, so the joint binned density
/// estimator (stats/kde2d.h) can center its kernels on the observed mass
/// rather than cell centers — the same trick as the 1-D f̆.
///
/// The joint histogram captures the *correlation* between predicate
/// attributes: a workload touching (ra≈150, dec≈12) and (ra≈215, dec≈40)
/// has mass in exactly those two cells, whereas independent 1-D marginals
/// also light up the phantom combinations (150, 40) and (215, 12).
class StreamingHistogram2D {
 public:
  struct CellStats {
    double count = 0.0;  ///< fractional under Decay()
    double mean_x = 0.0;
    double mean_y = 0.0;
  };

  /// Grid over [min_x, min_x + bins_x*width_x) × [min_y, ...). Returns
  /// InvalidArgument for non-positive widths/bin counts.
  static Result<StreamingHistogram2D> Make(double min_x, double width_x,
                                           int bins_x, double min_y,
                                           double width_y, int bins_y);

  /// Folds one observed predicate pair into its cell.
  void Observe(double x, double y);

  int64_t total_count() const { return total_count_; }
  double weighted_total() const { return weighted_total_; }
  int64_t clamped_count() const { return clamped_count_; }

  int bins_x() const { return bins_x_; }
  int bins_y() const { return bins_y_; }
  double width_x() const { return width_x_; }
  double width_y() const { return width_y_; }
  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }

  /// Cell (i, j) with i indexing x and j indexing y; both clamped.
  const CellStats& cell(int i, int j) const {
    return cells_[static_cast<size_t>(j) * static_cast<size_t>(bins_x_) +
                  static_cast<size_t>(i)];
  }
  const std::vector<CellStats>& cells() const { return cells_; }

  int CellIndexX(double x) const;
  int CellIndexY(double y) const;

  /// Geometric aging of all cell counts (see StreamingHistogram::Decay).
  void Decay(double factor, double prune_below = 1e-6);

  /// Combines a shard histogram with identical geometry.
  Status Merge(const StreamingHistogram2D& other);

  void Reset();

  std::string ToString() const;

 private:
  StreamingHistogram2D(double min_x, double width_x, int bins_x, double min_y,
                       double width_y, int bins_y)
      : min_x_(min_x),
        width_x_(width_x),
        bins_x_(bins_x),
        min_y_(min_y),
        width_y_(width_y),
        bins_y_(bins_y),
        cells_(static_cast<size_t>(bins_x) * static_cast<size_t>(bins_y)) {}

  double min_x_;
  double width_x_;
  int bins_x_;
  double min_y_;
  double width_y_;
  int bins_y_;
  std::vector<CellStats> cells_;
  int64_t total_count_ = 0;
  int64_t clamped_count_ = 0;
  double weighted_total_ = 0.0;
};

/// The joint binned density estimator: the 2-D analogue of f̆,
///   f̆₂(x, y) = 1/(N·wx·wy) Σ_ij c_ij · K((x − mx_ij)/wx) · K((y − my_ij)/wy)
/// — O(bins_x · bins_y) per evaluation, independent of the workload size,
/// and ∫∫ f̆₂ = 1 by the same argument as the paper's 1-D derivation.
/// Non-owning; the histogram must outlive the estimator.
class BinnedKde2D {
 public:
  explicit BinnedKde2D(const StreamingHistogram2D* hist) : hist_(hist) {}

  double Evaluate(double x, double y) const;
  double total_weight() const { return hist_->weighted_total(); }

 private:
  const StreamingHistogram2D* hist_;
};

}  // namespace sciborq

#endif  // SCIBORQ_STATS_HISTOGRAM2D_H_
