#include "util/status.h"

namespace sciborq {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kQualityBoundExceeded:
      return "QualityBoundExceeded";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace sciborq
