#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "stats/estimators.h"
#include "util/rng.h"

namespace sciborq {
namespace {

// -------------------------------------------------------- NormalQuantile --

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.95), 1.644853627, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.995), 2.575829304, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.0013498980316), -3.0, 1e-5);
}

TEST(NormalQuantileTest, EdgeCases) {
  EXPECT_TRUE(std::isinf(NormalQuantile(0.0)));
  EXPECT_TRUE(std::isinf(NormalQuantile(1.0)));
  EXPECT_LT(NormalQuantile(0.0), 0.0);
  EXPECT_GT(NormalQuantile(1.0), 0.0);
}

TEST(NormalQuantileTest, Monotone) {
  double prev = NormalQuantile(0.001);
  for (double p = 0.01; p < 1.0; p += 0.01) {
    const double q = NormalQuantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

// ------------------------------------------------------------------- FPC --

TEST(FpcTest, Behaviour) {
  EXPECT_DOUBLE_EQ(FinitePopulationCorrection(10, 10), 0.0);   // census
  EXPECT_DOUBLE_EQ(FinitePopulationCorrection(20, 10), 0.0);   // oversample
  EXPECT_NEAR(FinitePopulationCorrection(1, 1'000'000), 1.0, 1e-3);
  const double half = FinitePopulationCorrection(500, 1000);
  EXPECT_NEAR(half, std::sqrt(500.0 / 999.0), 1e-12);
}

// -------------------------------------------------------------- Uniform ---

TEST(UniformEstimatorTest, MeanPointEstimate) {
  const std::vector<double> sample = {2.0, 4.0, 6.0};
  const AggregateEstimate est =
      EstimateMeanUniform(sample, 1000).value();
  EXPECT_DOUBLE_EQ(est.estimate, 4.0);
  EXPECT_GT(est.std_error, 0.0);
  EXPECT_LT(est.ci_lo, 4.0);
  EXPECT_GT(est.ci_hi, 4.0);
  EXPECT_FALSE(est.exact);
}

TEST(UniformEstimatorTest, CensusIsExact) {
  const std::vector<double> sample = {1.0, 2.0, 3.0};
  const AggregateEstimate est = EstimateMeanUniform(sample, 3).value();
  EXPECT_TRUE(est.exact);
  EXPECT_DOUBLE_EQ(est.std_error, 0.0);  // FPC kills the variance
  EXPECT_DOUBLE_EQ(est.RelativeError(), 0.0);
}

TEST(UniformEstimatorTest, SumScalesMean) {
  const std::vector<double> sample = {2.0, 4.0};
  const AggregateEstimate est = EstimateSumUniform(sample, 100).value();
  EXPECT_DOUBLE_EQ(est.estimate, 300.0);
}

TEST(UniformEstimatorTest, CountBasics) {
  const AggregateEstimate est = EstimateCountUniform(30, 100, 10000).value();
  EXPECT_DOUBLE_EQ(est.estimate, 3000.0);
  EXPECT_GE(est.ci_lo, 0.0);
  EXPECT_LE(est.ci_hi, 10000.0);
}

TEST(UniformEstimatorTest, InputValidation) {
  EXPECT_FALSE(EstimateMeanUniform({}, 10).ok());
  EXPECT_FALSE(EstimateMeanUniform({1.0}, 10, 0.0).ok());
  EXPECT_FALSE(EstimateMeanUniform({1.0}, 10, 1.0).ok());
  EXPECT_FALSE(EstimateCountUniform(5, 0, 10).ok());
  EXPECT_FALSE(EstimateCountUniform(-1, 10, 100).ok());
  EXPECT_FALSE(EstimateCountUniform(11, 10, 100).ok());
}

TEST(UniformEstimatorTest, WiderConfidenceWiderInterval) {
  const std::vector<double> sample = {1.0, 5.0, 3.0, 4.0, 2.0};
  const auto e90 = EstimateMeanUniform(sample, 1000, 0.90).value();
  const auto e99 = EstimateMeanUniform(sample, 1000, 0.99).value();
  EXPECT_GT(e99.ci_hi - e99.ci_lo, e90.ci_hi - e90.ci_lo);
}

// Simulation: the CLT interval covers the truth at roughly the nominal rate.
TEST(UniformEstimatorTest, CoverageSimulation) {
  Rng rng(42);
  std::vector<double> population(2000);
  for (auto& v : population) v = rng.Uniform(0.0, 100.0);
  double truth = 0.0;
  for (const double v : population) truth += v;
  truth /= static_cast<double>(population.size());

  const int kTrials = 400;
  const int kSample = 100;
  int covered = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> sample;
    sample.reserve(kSample);
    for (int i = 0; i < kSample; ++i) {
      sample.push_back(
          population[rng.NextBounded(population.size())]);
    }
    const auto est =
        EstimateMeanUniform(sample, static_cast<int64_t>(population.size()))
            .value();
    if (truth >= est.ci_lo && truth <= est.ci_hi) ++covered;
  }
  // 95% nominal; allow generous simulation slack.
  EXPECT_GT(covered, kTrials * 0.88);
}

// ------------------------------------------------------ Horvitz-Thompson --

TEST(HtEstimatorTest, EqualProbabilitiesMatchClassicalExpansion) {
  const std::vector<double> values = {10.0, 20.0, 30.0};
  const std::vector<double> probs = {0.01, 0.01, 0.01};
  const AggregateEstimate est =
      EstimateSumHorvitzThompson(values, probs).value();
  EXPECT_DOUBLE_EQ(est.estimate, 6000.0);
}

TEST(HtEstimatorTest, CountEstimate) {
  const std::vector<double> probs = {0.1, 0.2, 0.5};
  const AggregateEstimate est = EstimateCountHorvitzThompson(probs).value();
  EXPECT_DOUBLE_EQ(est.estimate, 10.0 + 5.0 + 2.0);
}

TEST(HtEstimatorTest, CertainInclusionHasZeroVariance) {
  const std::vector<double> values = {5.0, 7.0};
  const std::vector<double> probs = {1.0, 1.0};
  const AggregateEstimate est =
      EstimateSumHorvitzThompson(values, probs).value();
  EXPECT_DOUBLE_EQ(est.estimate, 12.0);
  EXPECT_DOUBLE_EQ(est.std_error, 0.0);
}

TEST(HtEstimatorTest, MeanIsHajekRatio) {
  const std::vector<double> values = {10.0, 20.0};
  const std::vector<double> probs = {0.5, 0.25};
  // HT sum = 20 + 80 = 100; HT count = 2 + 4 = 6; ratio = 100/6.
  const AggregateEstimate est =
      EstimateMeanHorvitzThompson(values, probs).value();
  EXPECT_NEAR(est.estimate, 100.0 / 6.0, 1e-12);
}

TEST(HtEstimatorTest, InputValidation) {
  EXPECT_FALSE(EstimateSumHorvitzThompson({1.0}, {}).ok());
  EXPECT_FALSE(EstimateSumHorvitzThompson({1.0}, {0.0}).ok());
  EXPECT_FALSE(EstimateSumHorvitzThompson({1.0}, {-0.5}).ok());
  EXPECT_FALSE(EstimateSumHorvitzThompson({1.0}, {1.5}).ok());
  EXPECT_FALSE(EstimateMeanHorvitzThompson({}, {}).ok());
  EXPECT_FALSE(EstimateSumHorvitzThompson({1.0}, {0.5}, 2.0).ok());
}

// Simulation: HT is unbiased under unequal-probability (Poisson) sampling.
TEST(HtEstimatorTest, UnbiasednessSimulation) {
  Rng rng(77);
  const int kPopulation = 1000;
  std::vector<double> y(kPopulation);
  std::vector<double> pi(kPopulation);
  double truth = 0.0;
  for (int i = 0; i < kPopulation; ++i) {
    y[i] = rng.Uniform(0.0, 10.0);
    // Inclusion roughly proportional to size: larger y sampled more often.
    pi[i] = std::min(1.0, 0.02 + 0.03 * y[i] / 10.0);
    truth += y[i];
  }
  const int kTrials = 600;
  double mean_est = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> sv;
    std::vector<double> sp;
    for (int i = 0; i < kPopulation; ++i) {
      if (rng.Bernoulli(pi[i])) {
        sv.push_back(y[i]);
        sp.push_back(pi[i]);
      }
    }
    if (sv.empty()) continue;
    mean_est += EstimateSumHorvitzThompson(sv, sp).value().estimate;
  }
  mean_est /= kTrials;
  EXPECT_NEAR(mean_est, truth, truth * 0.05);
}

TEST(HtEstimatorTest, CoverageSimulation) {
  Rng rng(99);
  const int kPopulation = 2000;
  std::vector<double> y(kPopulation);
  std::vector<double> pi(kPopulation);
  double truth = 0.0;
  for (int i = 0; i < kPopulation; ++i) {
    y[i] = rng.Uniform(1.0, 5.0);
    pi[i] = rng.Uniform(0.02, 0.10);
    truth += y[i];
  }
  const int kTrials = 300;
  int covered = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> sv;
    std::vector<double> sp;
    for (int i = 0; i < kPopulation; ++i) {
      if (rng.Bernoulli(pi[i])) {
        sv.push_back(y[i]);
        sp.push_back(pi[i]);
      }
    }
    const auto est = EstimateSumHorvitzThompson(sv, sp).value();
    if (truth >= est.ci_lo && truth <= est.ci_hi) ++covered;
  }
  EXPECT_GT(covered, kTrials * 0.88);
}

// ------------------------------------------------------ AggregateEstimate --

TEST(AggregateEstimateTest, RelativeError) {
  AggregateEstimate est;
  est.estimate = 100.0;
  est.ci_lo = 90.0;
  est.ci_hi = 110.0;
  EXPECT_DOUBLE_EQ(est.RelativeError(), 0.1);
  est.exact = true;
  EXPECT_DOUBLE_EQ(est.RelativeError(), 0.0);
}

TEST(AggregateEstimateTest, ZeroEstimateWithUncertaintyIsInfinite) {
  AggregateEstimate est;
  est.estimate = 0.0;
  est.ci_lo = -1.0;
  est.ci_hi = 1.0;
  EXPECT_TRUE(std::isinf(est.RelativeError()));
}

TEST(AggregateEstimateTest, ToStringMentionsExactness) {
  AggregateEstimate est;
  est.estimate = 5.0;
  est.exact = true;
  est.sample_rows = 3;
  EXPECT_NE(est.ToString().find("exact"), std::string::npos);
}

// ----------------------------------------------------------- descriptive --

TEST(RunningMomentsTest, MeanVarianceMinMax) {
  RunningMoments m;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(v);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
  EXPECT_EQ(m.count(), 8);
}

TEST(RunningMomentsTest, MergeMatchesCombinedStream) {
  Rng rng(3);
  RunningMoments all;
  RunningMoments a;
  RunningMoments b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    all.Add(v);
    (i % 3 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningMomentsTest, MergeWithEmpty) {
  RunningMoments a;
  a.Add(1.0);
  RunningMoments empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(QuantileSortedTest, Interpolates) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.5), 2.5);
}

TEST(BinCountsTest, ClampsAndCounts) {
  const std::vector<double> data = {-1.0, 0.5, 1.5, 9.5, 20.0};
  const auto counts = BinCounts(data, 0.0, 10.0, 10);
  EXPECT_EQ(counts[0], 2);  // -1 clamped + 0.5
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[9], 2);  // 9.5 + 20 clamped
}

TEST(DistanceTest, L1L2) {
  const std::vector<double> a = {0.0, 1.0, 2.0};
  const std::vector<double> b = {1.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(L2Distance(a, b), std::sqrt(5.0 / 3.0));
  EXPECT_DOUBLE_EQ(L1Distance({}, {}), 0.0);
}

}  // namespace
}  // namespace sciborq
