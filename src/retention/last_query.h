#ifndef SCIBORQ_RETENTION_LAST_QUERY_H_
#define SCIBORQ_RETENTION_LAST_QUERY_H_

#include <vector>

#include "column/table.h"
#include "exec/query.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace sciborq {

/// Latest-value queries: `SELECT LAST(value) [BY station]` — for every group,
/// the value carried by the newest row, "newest" judged by the table's
/// retention time column (ties broken toward the later-ingested row).
///
/// The same scan runs against two targets:
///  - under EXACT, the base table — the zero-error answer;
///  - under bounds, the table's standalone last-seen impression
///    (Fig. 3 sampler), whose recency bias makes it the natural
///    bounded-resource answer: per group it reports the newest *sampled*
///    row, which trails the true latest by the sampler's acceptance lag.
/// Because both targets are ordinary Tables, the code is shared.

/// True when any aggregate is LAST — such a query must take this path.
bool IsLastQuery(const AggregateQuery& query);

/// All aggregates must be LAST (no mixing with moment aggregates) and each
/// must name a numeric column.
Status ValidateLastQuery(const AggregateQuery& query, const Schema& schema);

/// Runs the latest-value scan over `table`. `time_col` is the index of the
/// int64 retention time column in the table's schema. Result rows are
/// ordered by ascending group key (one row with a null key when ungrouped);
/// `input_rows` counts the scanned rows feeding each group.
Result<std::vector<QueryResultRow>> RunLast(const Table& table,
                                            const AggregateQuery& query,
                                            int time_col,
                                            ThreadPool* pool = nullptr);

}  // namespace sciborq

#endif  // SCIBORQ_RETENTION_LAST_QUERY_H_
