#ifndef SCIBORQ_EXEC_QUERY_H_
#define SCIBORQ_EXEC_QUERY_H_

#include <string>
#include <vector>

#include "column/table.h"
#include "exec/aggregate.h"
#include "exec/expr.h"
#include "util/result.h"

namespace sciborq {

/// The user's contract with SciBORQ (§1: "complete control over both
/// resource consumption and query result error bounds"). In the SQL dialect
/// this is the bounds clause (WITHIN ... MS ERROR ... %); programmatic
/// callers fill it directly.
struct QualityBound {
  /// Accept an answer when every aggregate's CI half-width / |estimate| is
  /// below this. <= 0 demands exact answers (always escalates to base).
  double max_relative_error = 0.10;
  double confidence = 0.95;
  /// Wall-clock budget in seconds; <= 0 means unlimited ("error bound only").
  double time_budget_seconds = 0.0;
  /// Permit the final escalation to the base table (zero error, §3.2).
  bool allow_base_fallback = true;
};

/// A declarative aggregate query — the unit of work SciBORQ answers with
/// bounds. SELECT <aggregates> [FROM table] [WHERE filter]
/// [GROUP BY group_by]. The same descriptor runs exactly on base data
/// (RunExact) or approximately on an impression (core/bounded_executor.h),
/// and is what the workload log records to extract the predicate set.
struct AggregateQuery {
  std::vector<AggregateSpec> aggregates;
  std::string table;      ///< FROM clause: catalog table name; empty = unbound
  PredicatePtr filter;    ///< null = no WHERE clause
  std::string group_by;   ///< empty = ungrouped

  AggregateQuery() = default;
  AggregateQuery(AggregateQuery&&) = default;
  AggregateQuery& operator=(AggregateQuery&&) = default;

  /// Deep copy (predicates are unique_ptr-owned).
  AggregateQuery Clone() const;

  /// The requested values of every predicate in the query (§4).
  std::vector<PredicatePoint> PredicatePoints() const;

  /// Correlated attribute pairs requested by joint predicates (cones).
  std::vector<PredicatePair> PredicatePairs() const;

  /// SQL-ish rendering for logs.
  std::string ToString() const;
};

/// The optional bounds clause of the SQL dialect:
///   [WITHIN <n> MS] [ERROR <pct> %] [CONFIDENCE <pct> %] [EXACT]
/// Each term is independent; unspecified terms fall back to the caller's
/// defaults when resolved into a QualityBound. Percentages are stored as
/// fractions (ERROR 5% -> 0.05).
struct QueryBounds {
  double time_budget_ms = -1.0;     ///< < 0 = unspecified
  double max_relative_error = -1.0; ///< fraction; < 0 = unspecified
  double confidence = -1.0;         ///< fraction; < 0 = unspecified
  bool exact = false;               ///< EXACT: demand the zero-error answer

  /// True when any term was specified.
  bool any() const {
    return time_budget_ms >= 0.0 || max_relative_error >= 0.0 ||
           confidence >= 0.0 || exact;
  }

  /// Overlays the specified terms onto `defaults`. EXACT forces
  /// max_relative_error to 0 (the executor then escalates to the base data).
  QualityBound Resolve(const QualityBound& defaults) const;

  /// The bounds clause as SQL, e.g. "WITHIN 50 MS ERROR 5% CONFIDENCE 99%";
  /// empty when no term is specified.
  std::string ToString() const;
};

/// A query together with its in-SQL contract — what ParseBoundedQuery
/// produces and what the query log replays, so a logged query re-executes
/// under the bounds it originally ran with.
struct BoundedQuery {
  AggregateQuery query;
  QueryBounds bounds;

  BoundedQuery() = default;
  BoundedQuery(BoundedQuery&&) = default;
  BoundedQuery& operator=(BoundedQuery&&) = default;

  BoundedQuery Clone() const;

  /// query.ToString() plus the bounds clause. Round-trips through
  /// ParseBoundedQuery (tested in tests/parser_test.cc).
  std::string ToString() const;
};

/// The one SQL rendering of a query + bounds pair — BoundedQuery::ToString
/// and the query log's replayable Sql() both delegate here so the round-trip
/// guarantee has a single source of truth.
std::string RenderSql(const AggregateQuery& query, const QueryBounds& bounds);

/// Where one `?` placeholder is allowed to sit in a prepared statement.
enum class ParamKind : uint8_t {
  kCompareLiteral,  ///< RHS of `ident op ?` — any non-null literal
  kWithinMs,        ///< `WITHIN ? MS` — positive number (milliseconds)
  kErrorPct,        ///< `ERROR ? %` — non-negative number (percent)
};
std::string_view ParamKindToString(ParamKind kind);

/// One recorded `?` slot of a prepared statement, in text order (slot i is
/// the i-th `?`), with enough context for arity/type error messages.
struct ParamSlot {
  ParamKind kind = ParamKind::kCompareLiteral;
  std::string column;  ///< kCompareLiteral: the compared column; else empty
  size_t offset = 0;   ///< byte offset of the `?` in the prepared SQL
};

/// A parse-once / bind-many statement template — what ParsePreparedQuery
/// produces and Engine::Prepare caches. `query.filter` holds Param()
/// placeholder nodes; bounds terms taken by a `?` stay unspecified here and
/// are filled at bind time. BindParams() turns template + parameters into an
/// ordinary BoundedQuery with no parsing involved.
struct PreparedQuery {
  AggregateQuery query;
  QueryBounds bounds;
  std::vector<ParamSlot> slots;  ///< every `?`, left to right
  int time_budget_slot = -1;     ///< slot index of `WITHIN ? MS`, or -1
  int error_slot = -1;           ///< slot index of `ERROR ? %`, or -1

  PreparedQuery() = default;
  PreparedQuery(PreparedQuery&&) = default;
  PreparedQuery& operator=(PreparedQuery&&) = default;

  PreparedQuery Clone() const;

  size_t num_params() const { return slots.size(); }

  /// The template SQL with `?` placeholders. Round-trips through
  /// ParsePreparedQuery (tested in tests/parser_test.cc).
  std::string ToString() const;
};

/// Deep-clones `prepared` with every `?` replaced by its parameter
/// (params[i] binds slot i). InvalidArgument on arity mismatch, a NULL
/// parameter, a non-numeric value for WITHIN/ERROR, or a bound value that
/// violates the clause's validation rule (WITHIN must stay positive, ERROR
/// non-negative). The result executes exactly like the equivalent
/// fully-bound SQL.
Result<BoundedQuery> BindParams(const PreparedQuery& prepared,
                                const std::vector<Value>& params);

/// One result row: the group key (null Value for ungrouped queries) plus one
/// value per aggregate, and the number of input rows that fed the group.
struct QueryResultRow {
  Value group_key;
  std::vector<double> values;
  int64_t input_rows = 0;
};

/// Exact (bit-for-bit on doubles, so NaN == NaN) equality — execution is
/// deterministic for a fixed table state, so result rows that should agree
/// agree exactly.
inline bool operator==(const QueryResultRow& a, const QueryResultRow& b) {
  if (!(a.group_key == b.group_key) || a.input_rows != b.input_rows ||
      a.values.size() != b.values.size()) {
    return false;
  }
  for (size_t i = 0; i < a.values.size(); ++i) {
    if (!BitIdentical(a.values[i], b.values[i])) return false;
  }
  return true;
}

/// Exact evaluation against any table (base data or a materialized sample).
/// Ungrouped queries yield exactly one row. With a pool, the filter and
/// aggregation scans run morsel-parallel and produce results bit-identical
/// to the serial path (deterministic merges in morsel order).
Result<std::vector<QueryResultRow>> RunExact(const Table& table,
                                             const AggregateQuery& query,
                                             ThreadPool* pool = nullptr);

/// Knobs for the shard-mergeable variant of RunExact.
struct ExactRunOptions {
  /// Empty aggregates (AVG/MIN/MAX over zero rows, VAR under two) finish as
  /// NaN instead of failing — an empty shard slice must still answer.
  bool lenient = false;
  /// When non-null, receives one AggregateMoments per output row per
  /// aggregate — the mergeable Welford state behind each value, in the same
  /// row/aggregate order as the result rows.
  std::vector<std::vector<AggregateMoments>>* moments = nullptr;
};

/// RunExact with shard-side options. With default options this is exactly
/// the plain overload (same values, bit-for-bit).
Result<std::vector<QueryResultRow>> RunExact(const Table& table,
                                             const AggregateQuery& query,
                                             ThreadPool* pool,
                                             const ExactRunOptions& options);

}  // namespace sciborq

#endif  // SCIBORQ_EXEC_QUERY_H_
