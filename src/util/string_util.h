#ifndef SCIBORQ_UTIL_STRING_UTIL_H_
#define SCIBORQ_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace sciborq {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Human-readable quantity, e.g. 1536 -> "1.5K", 2500000 -> "2.5M".
std::string HumanCount(double n);

}  // namespace sciborq

#endif  // SCIBORQ_UTIL_STRING_UTIL_H_
