// Tests for the compressed-column subsystem: per-morsel encodings (RLE,
// frame-of-reference, dictionary), zone maps, the bit-packing primitives,
// the encoded-page serde (v2) with its corruption fuzz passes, zone-map
// pruning soundness against the row-at-a-time oracle, the vectorized filter
// kernels, and the snapshot format-version gate. The governing contract:
// every answer computed over encoded data is bit-identical to the plain
// scan, and hostile bytes surface as Status, never as UB.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "column/column.h"
#include "column/encoding/encoding.h"
#include "column/serde.h"
#include "column/table.h"
#include "exec/expr.h"
#include "exec/kernels.h"
#include "obs/metrics.h"
#include "storage/file_io.h"
#include "storage/snapshot.h"
#include "util/binio.h"
#include "util/rng.h"
#include "util/thread_pool.h"

#include "test_temp_dir.h"

namespace sciborq {
namespace {

constexpr int64_t kMorsel = kEncodingMorselRows;
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

Column Int64Col(const std::vector<int64_t>& values) {
  Column col(DataType::kInt64);
  for (int64_t v : values) col.AppendInt64(v);
  return col;
}

/// Expands an int64 payload and checks it reproduces the storage slice.
void ExpectDecodesToStorage(const EncodedMorsel& m, const Column& col) {
  std::vector<int64_t> out(static_cast<size_t>(m.zone.row_count));
  DecodeInt64Morsel(m, out.data());
  for (int64_t i = 0; i < m.zone.row_count; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], col.GetInt64(m.zone.row_begin + i))
        << "row " << m.zone.row_begin + i;
  }
}

// ----------------------------------------------------- bit packing --------

TEST(PackBitsTest, RoundTripsAcrossWidths) {
  Rng rng(11);
  for (uint8_t bits : {1, 7, 13, 31, 63}) {
    const uint64_t mask = (uint64_t{1} << bits) - 1;
    std::vector<uint64_t> values(257);
    for (uint64_t& v : values) v = rng.NextUint64() & mask;
    std::vector<uint64_t> words;
    PackBits(values.data(), static_cast<int64_t>(values.size()), bits, &words);
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(UnpackBit(words, static_cast<int64_t>(i), bits), values[i])
          << "bits " << int{bits} << " index " << i;
    }
  }
}

TEST(PackBitsTest, ZeroBitsPacksToNothing) {
  const std::vector<uint64_t> values(100, 0);
  std::vector<uint64_t> words;
  PackBits(values.data(), 100, 0, &words);
  EXPECT_TRUE(words.empty());
  EXPECT_EQ(UnpackBit(words, 42, 0), 0u);
}

TEST(PackBitsTest, CrossWordSpillPreservesEveryValue) {
  // 63-bit values straddle a word boundary at every index > 0.
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 65; ++i) {
    values.push_back(((uint64_t{1} << 62) + i * 0x0123456789ABCDEFull) &
                     ((uint64_t{1} << 63) - 1));
  }
  std::vector<uint64_t> words;
  PackBits(values.data(), static_cast<int64_t>(values.size()), 63, &words);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(UnpackBit(words, static_cast<int64_t>(i), 63), values[i]) << i;
  }
}

// ------------------------------------------------- morsel encoding --------

TEST(EncodeMorselTest, SequentialIntsPickForAndDecodeExactly) {
  std::vector<int64_t> values(kMorsel);
  for (int64_t i = 0; i < kMorsel; ++i) values[static_cast<size_t>(i)] = 1000 + i;
  const Column col = Int64Col(values);
  const EncodedMorsel m = EncodeMorsel(col, 0, kMorsel);
  EXPECT_EQ(m.encoding, ColumnEncoding::kFor);
  EXPECT_EQ(m.for_reference, 1000);
  EXPECT_EQ(int{m.for_bits}, 14);  // 16383 deltas need 14 bits
  EXPECT_EQ(m.zone.min, 1000.0);
  EXPECT_EQ(m.zone.max, 1000.0 + kMorsel - 1);
  EXPECT_EQ(m.zone.null_count, 0);
  EXPECT_TRUE(m.zone.has_min_max);
  ExpectDecodesToStorage(m, col);
}

TEST(EncodeMorselTest, RunHeavyIntsPickRleAndDecodeExactly) {
  std::vector<int64_t> values(kMorsel);
  for (int64_t i = 0; i < kMorsel; ++i) {
    // 16 runs of 1024 rows with values wide enough that FOR loses.
    values[static_cast<size_t>(i)] = (i / 1024) * 1'000'000'000'000;
  }
  const Column col = Int64Col(values);
  const EncodedMorsel m = EncodeMorsel(col, 0, kMorsel);
  ASSERT_EQ(m.encoding, ColumnEncoding::kRle);
  EXPECT_EQ(m.rle_values.size(), 16u);
  int64_t covered = 0;
  for (int32_t len : m.rle_lengths) covered += len;
  EXPECT_EQ(covered, kMorsel);
  ExpectDecodesToStorage(m, col);
}

TEST(EncodeMorselTest, ConstantIntsPackToZeroBits) {
  const Column col = Int64Col(std::vector<int64_t>(kMorsel, 77));
  const EncodedMorsel m = EncodeMorsel(col, 0, kMorsel);
  // bits = 0 makes the FOR frame 9 bytes, cheaper than one 12-byte run.
  ASSERT_EQ(m.encoding, ColumnEncoding::kFor);
  EXPECT_EQ(int{m.for_bits}, 0);
  EXPECT_TRUE(m.for_words.empty());
  EXPECT_EQ(m.for_reference, 77);
  ExpectDecodesToStorage(m, col);
}

TEST(EncodeMorselTest, WideRandomIntsStayPlain) {
  Rng rng(7);
  std::vector<int64_t> values(kMorsel);
  for (int64_t& v : values) v = static_cast<int64_t>(rng.NextUint64());
  const Column col = Int64Col(values);
  const EncodedMorsel m = EncodeMorsel(col, 0, kMorsel);
  EXPECT_EQ(m.encoding, ColumnEncoding::kPlain);
  EXPECT_EQ(m.PayloadBytes(), 0);
}

TEST(EncodeMorselTest, ForWrapsTwosComplementAtTheExtremes) {
  // min..min+1 spans 1 bit; min..max spans 2^64-1 and must fall back plain.
  const int64_t lo = std::numeric_limits<int64_t>::min();
  const int64_t hi = std::numeric_limits<int64_t>::max();
  std::vector<int64_t> narrow;
  for (int i = 0; i < 64; ++i) narrow.push_back(lo + (i % 2));
  const Column ncol = Int64Col(narrow);
  const EncodedMorsel nm = EncodeMorsel(ncol, 0, ncol.size());
  ASSERT_EQ(nm.encoding, ColumnEncoding::kFor);
  EXPECT_EQ(int{nm.for_bits}, 1);
  ExpectDecodesToStorage(nm, ncol);

  std::vector<int64_t> wide;
  for (int i = 0; i < 64; ++i) wide.push_back(i % 2 == 0 ? lo : hi);
  const Column wcol = Int64Col(wide);
  EXPECT_EQ(EncodeMorsel(wcol, 0, wcol.size()).encoding,
            ColumnEncoding::kPlain);
}

TEST(EncodeMorselTest, LowCardinalityStringsPickDict) {
  Column col(DataType::kString);
  const std::vector<std::string> cycle = {"GALAXY", "STAR", "QSO", "UNKNOWN"};
  for (int64_t i = 0; i < kMorsel; ++i) {
    if (i % 97 == 3) {
      col.AppendNull();  // storage "" joins the dictionary
    } else {
      col.AppendString(cycle[static_cast<size_t>(i % 4)]);
    }
  }
  const EncodedMorsel m = EncodeMorsel(col, 0, kMorsel);
  ASSERT_EQ(m.encoding, ColumnEncoding::kDict);
  EXPECT_EQ(m.dict_values.size(), 5u);  // 4 classes + ""
  ASSERT_EQ(m.dict_codes.size(), static_cast<size_t>(kMorsel));
  for (int64_t i = 0; i < kMorsel; ++i) {
    EXPECT_EQ(m.dict_values[m.dict_codes[static_cast<size_t>(i)]],
              col.GetString(i))
        << "row " << i;
  }
  EXPECT_GT(m.zone.null_count, 0);
}

TEST(EncodeMorselTest, UniqueStringsStayPlain) {
  Column col(DataType::kString);
  for (int64_t i = 0; i < 4096; ++i) {
    col.AppendString("object-" + std::to_string(i));
  }
  EXPECT_EQ(EncodeMorsel(col, 0, col.size()).encoding, ColumnEncoding::kPlain);
}

TEST(EncodeMorselTest, ZoneMapExcludesNullsAndNan) {
  Column col(DataType::kDouble);
  col.AppendDouble(5.0);
  col.AppendNull();  // storage 0.0 must not drag min down
  col.AppendDouble(kNan);
  col.AppendDouble(9.0);
  const EncodedMorsel m = EncodeMorsel(col, 0, col.size());
  EXPECT_EQ(m.encoding, ColumnEncoding::kPlain);
  EXPECT_TRUE(m.zone.has_min_max);
  EXPECT_TRUE(m.zone.has_nan);
  EXPECT_EQ(m.zone.null_count, 1);
  EXPECT_EQ(m.zone.min, 5.0);
  EXPECT_EQ(m.zone.max, 9.0);
}

TEST(EncodeMorselTest, AllNullAndAllNanMorselsHaveNoBounds) {
  Column nulls(DataType::kDouble);
  for (int i = 0; i < 8; ++i) nulls.AppendNull();
  const EncodedMorsel n = EncodeMorsel(nulls, 0, nulls.size());
  EXPECT_FALSE(n.zone.has_min_max);
  EXPECT_EQ(n.zone.null_count, 8);

  Column nans(DataType::kDouble);
  for (int i = 0; i < 8; ++i) nans.AppendDouble(kNan);
  const EncodedMorsel a = EncodeMorsel(nans, 0, nans.size());
  EXPECT_FALSE(a.zone.has_min_max);
  EXPECT_TRUE(a.zone.has_nan);
  EXPECT_EQ(a.zone.null_count, 0);
}

TEST(EncodeMorselTest, EmptyRangeIsPlainWithEmptyZone) {
  const Column col = Int64Col({1, 2, 3});
  const EncodedMorsel m = EncodeMorsel(col, 2, 2);
  EXPECT_EQ(m.encoding, ColumnEncoding::kPlain);
  EXPECT_EQ(m.zone.row_begin, 2);
  EXPECT_EQ(m.zone.row_count, 0);
  EXPECT_FALSE(m.zone.has_min_max);
}

// --------------------------------------------------- sidecar build --------

TEST(SidecarTest, BuildCoversCompleteMorselPrefixIncrementally) {
  Column col(DataType::kInt64);
  for (int64_t i = 0; i < kMorsel + 100; ++i) col.AppendInt64(i);
  col.BuildEncoding();
  ASSERT_NE(col.encoding(), nullptr);
  EXPECT_EQ(col.encoding()->morsels.size(), 1u);
  EXPECT_EQ(col.encoding()->covered_rows(), kMorsel);

  for (int64_t i = 0; i < kMorsel; ++i) col.AppendInt64(i);
  col.BuildEncoding();
  EXPECT_EQ(col.encoding()->morsels.size(), 2u);
  EXPECT_EQ(col.encoding()->covered_rows(), 2 * kMorsel);
}

TEST(SidecarTest, FindEncodedMorselDemandsExactAlignment) {
  Column col(DataType::kInt64);
  for (int64_t i = 0; i < 2 * kMorsel + 5; ++i) col.AppendInt64(i % 3);
  EXPECT_EQ(FindEncodedMorsel(col, 0, kMorsel), nullptr);  // no sidecar yet
  col.BuildEncoding();
  EXPECT_NE(FindEncodedMorsel(col, 0, kMorsel), nullptr);
  EXPECT_NE(FindEncodedMorsel(col, kMorsel, 2 * kMorsel), nullptr);
  // Unaligned, wrong-width, and uncovered ranges all miss.
  EXPECT_EQ(FindEncodedMorsel(col, 1, kMorsel + 1), nullptr);
  EXPECT_EQ(FindEncodedMorsel(col, 0, 2 * kMorsel), nullptr);
  EXPECT_EQ(FindEncodedMorsel(col, 2 * kMorsel, 3 * kMorsel), nullptr);
}

TEST(SidecarTest, SharedSidecarCopiesOnWrite) {
  Column col(DataType::kInt64);
  for (int64_t i = 0; i < kMorsel; ++i) col.AppendInt64(i);
  col.BuildEncoding();
  const Column snapshot_copy = col;  // shares the sidecar pointer
  const EncodedColumn* shared = snapshot_copy.encoding();
  ASSERT_NE(shared, nullptr);
  ASSERT_EQ(col.encoding(), shared);

  for (int64_t i = 0; i < kMorsel; ++i) col.AppendInt64(i);
  col.BuildEncoding();  // must not mutate the copy's view
  EXPECT_EQ(snapshot_copy.encoding(), shared);
  EXPECT_EQ(snapshot_copy.encoding()->morsels.size(), 1u);
  EXPECT_EQ(col.encoding()->morsels.size(), 2u);
}

TEST(SidecarTest, InPlaceMutationInvalidates) {
  Column col(DataType::kInt64);
  for (int64_t i = 0; i < kMorsel; ++i) col.AppendInt64(i);
  col.BuildEncoding();
  ASSERT_NE(col.encoding(), nullptr);
  const Column src = Int64Col({42});
  col.SetFrom(src, 0, 0);  // reservoir eviction path
  EXPECT_EQ(col.encoding(), nullptr);
}

// --------------------------------------------- encoded-page serde ---------

/// A table whose columns exercise every chunk encoding: RLE, FOR, dict,
/// plain doubles with NaN, plus nulls in each — sized to two complete
/// morsels and a tail so chunking boundaries are covered.
Table EncodableTable(int64_t rows) {
  Table t{Schema({Field{"flag", DataType::kInt64, true},
                  Field{"id", DataType::kInt64, false},
                  Field{"x", DataType::kDouble, true},
                  Field{"cls", DataType::kString, true}})};
  const std::vector<std::string> cycle = {"GALAXY", "STAR", "QSO"};
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    row.push_back(i % 509 == 7 ? Value::Null()
                               : Value((i / 2048) * 1'000'000'000'000));
    row.push_back(Value(i));
    row.push_back(i % 701 == 3 ? Value::Null()
                               : Value(i % 997 == 11 ? kNan : 0.25 * i));
    row.push_back(i % 613 == 5 ? Value::Null()
                               : Value(cycle[static_cast<size_t>(i % 3)]));
    EXPECT_TRUE(t.AppendRow(row).ok());
  }
  return t;
}

void ExpectTablesValueIdentical(const Table& a, const Table& b) {
  ASSERT_TRUE(a.schema().Equals(b.schema()));
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    ASSERT_EQ(ca.type(), cb.type());
    for (int64_t row = 0; row < a.num_rows(); ++row) {
      ASSERT_EQ(ca.IsNull(row), cb.IsNull(row)) << "col " << c << " row " << row;
      switch (ca.type()) {
        case DataType::kInt64:
          ASSERT_EQ(ca.GetInt64(row), cb.GetInt64(row))
              << "col " << c << " row " << row;
          break;
        case DataType::kDouble: {
          // Bit-for-bit, so NaN payloads survive too.
          uint64_t ba = 0, bb = 0;
          const double da = ca.GetDouble(row);
          const double db = cb.GetDouble(row);
          std::memcpy(&ba, &da, 8);
          std::memcpy(&bb, &db, 8);
          ASSERT_EQ(ba, bb) << "col " << c << " row " << row;
          break;
        }
        case DataType::kString:
          ASSERT_EQ(ca.GetString(row), cb.GetString(row))
              << "col " << c << " row " << row;
          break;
      }
    }
  }
}

TEST(EncodedSerdeTest, TableRoundTripsValueIdentical) {
  const Table t = EncodableTable(2 * kMorsel + 300);
  BinaryWriter w;
  EncodeTableEncoded(t, &w);
  BinaryReader r(w.buffer());
  const Table back = DecodeTableEncoded(&r).value();
  EXPECT_TRUE(r.ExpectEnd().ok());
  ExpectTablesValueIdentical(t, back);

  // The encoded page is genuinely smaller than the plain page on this data.
  BinaryWriter plain;
  EncodeTable(t, &plain);
  EXPECT_LT(w.buffer().size(), plain.buffer().size());
}

TEST(EncodedSerdeTest, EveryPrefixTruncationFailsCleanly) {
  // One complete morsel + tail keeps the buffer small enough to fuzz every
  // prefix: flag RLE-encodes (32 runs), x bit-packs down to 2 bits.
  Table t{Schema({Field{"flag", DataType::kInt64, true},
                  Field{"x", DataType::kInt64, false}})};
  for (int64_t i = 0; i < kMorsel + 9; ++i) {
    std::vector<Value> row;
    row.push_back(i % 777 == 1 ? Value::Null() : Value(i / 512));
    row.push_back(Value(i % 4));
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  BinaryWriter w;
  EncodeTableEncoded(t, &w);
  const std::string& full = w.buffer();
  for (size_t len = 0; len < full.size(); ++len) {
    BinaryReader r(std::string_view(full.data(), len));
    auto result = DecodeTableEncoded(&r);
    // A truncated buffer must either fail to decode or leave trailing-byte
    // detection to the framing layer — it can never yield the full table.
    if (result.ok()) {
      EXPECT_NE(result.value().num_rows(), t.num_rows()) << "prefix " << len;
    }
  }
  // And the untruncated buffer still decodes.
  BinaryReader r(full);
  EXPECT_TRUE(DecodeTableEncoded(&r).ok());
}

/// Hand-assembles the envelope of a single-chunk int64 encoded column:
/// type | size | has_nulls=false | chunk count 1 | chunk tag.
BinaryWriter Int64ColumnEnvelope(int64_t rows, ColumnEncoding chunk_tag) {
  BinaryWriter w;
  w.PutU8(0);  // wire tag: int64
  w.PutI64(rows);
  w.PutBool(false);
  w.PutU32(1);
  w.PutU8(static_cast<uint8_t>(chunk_tag));
  return w;
}

Status DecodeEncodedColumnBytes(const std::string& bytes) {
  BinaryReader r(bytes);
  return DecodeColumnEncoded(&r).status();
}

TEST(EncodedSerdeTest, HostileRleRunsRejected) {
  {
    // Runs overflow the chunk: 5 + 99 > 10 rows.
    BinaryWriter w = Int64ColumnEnvelope(10, ColumnEncoding::kRle);
    w.PutU32(2);
    w.PutI64(1);
    w.PutU32(5);
    w.PutI64(2);
    w.PutU32(99);
    EXPECT_FALSE(DecodeEncodedColumnBytes(w.buffer()).ok());
  }
  {
    // Runs undershoot the chunk: one 5-row run for 10 rows.
    BinaryWriter w = Int64ColumnEnvelope(10, ColumnEncoding::kRle);
    w.PutU32(1);
    w.PutI64(1);
    w.PutU32(5);
    EXPECT_FALSE(DecodeEncodedColumnBytes(w.buffer()).ok());
  }
  {
    // Zero-length run.
    BinaryWriter w = Int64ColumnEnvelope(10, ColumnEncoding::kRle);
    w.PutU32(2);
    w.PutI64(1);
    w.PutU32(0);
    w.PutI64(2);
    w.PutU32(10);
    EXPECT_FALSE(DecodeEncodedColumnBytes(w.buffer()).ok());
  }
  {
    // A hostile run count with no bytes behind it fails before allocating.
    BinaryWriter w = Int64ColumnEnvelope(10, ColumnEncoding::kRle);
    w.PutU32(0xFFFFFFFFu);
    EXPECT_FALSE(DecodeEncodedColumnBytes(w.buffer()).ok());
  }
}

TEST(EncodedSerdeTest, HostileForFramesRejected) {
  {
    // Bit width out of range.
    BinaryWriter w = Int64ColumnEnvelope(10, ColumnEncoding::kFor);
    w.PutI64(0);
    w.PutU8(64);
    w.PutU32(0);
    EXPECT_FALSE(DecodeEncodedColumnBytes(w.buffer()).ok());
  }
  {
    // Word count that does not match the packed row count.
    BinaryWriter w = Int64ColumnEnvelope(10, ColumnEncoding::kFor);
    w.PutI64(0);
    w.PutU8(1);   // 10 rows at 1 bit = 1 word
    w.PutU32(2);  // claims 2
    w.PutU64(0);
    w.PutU64(0);
    EXPECT_FALSE(DecodeEncodedColumnBytes(w.buffer()).ok());
  }
}

TEST(EncodedSerdeTest, HostileDictCodesRejected) {
  BinaryWriter w;
  w.PutU8(2);  // wire tag: string
  w.PutI64(2);
  w.PutBool(false);
  w.PutU32(1);
  w.PutU8(static_cast<uint8_t>(ColumnEncoding::kDict));
  w.PutU32(1);        // one dictionary value
  w.PutString("ab");
  w.PutU32(0);        // row 0: valid code
  w.PutU32(5);        // row 1: out of range
  EXPECT_FALSE(DecodeEncodedColumnBytes(w.buffer()).ok());
}

TEST(EncodedSerdeTest, WrongChunkCountAndTagRejected) {
  {
    // 10 rows need exactly 1 chunk; header claims 2.
    BinaryWriter w;
    w.PutU8(0);
    w.PutI64(10);
    w.PutBool(false);
    w.PutU32(2);
    EXPECT_FALSE(DecodeEncodedColumnBytes(w.buffer()).ok());
  }
  {
    // Double chunks may only be plain.
    BinaryWriter w;
    w.PutU8(1);  // wire tag: double
    w.PutI64(4);
    w.PutBool(false);
    w.PutU32(1);
    w.PutU8(static_cast<uint8_t>(ColumnEncoding::kRle));
    w.PutU32(1);
    w.PutI64(0);
    w.PutU32(4);
    EXPECT_FALSE(DecodeEncodedColumnBytes(w.buffer()).ok());
  }
  {
    // Int64 chunk with a dict tag.
    BinaryWriter w = Int64ColumnEnvelope(4, ColumnEncoding::kDict);
    w.PutU32(0);
    EXPECT_FALSE(DecodeEncodedColumnBytes(w.buffer()).ok());
  }
  {
    // A hostile row count whose implied chunk count the buffer cannot back
    // must fail before any allocation.
    BinaryWriter w;
    w.PutU8(0);
    w.PutI64(int64_t{1} << 60);
    w.PutBool(false);
    w.PutU32(static_cast<uint32_t>(((int64_t{1} << 60) + kMorsel - 1) / kMorsel));
    EXPECT_FALSE(DecodeEncodedColumnBytes(w.buffer()).ok());
  }
}

// ------------------------------------------------- zone-map pruning -------

/// A table spanning three complete morsels plus a tail, with per-morsel
/// value bands so zone maps can actually prune: morsel k holds x in
/// [10k, 10k+1]. Morsel 1 carries NaNs, morsel 2 carries nulls.
class PruningTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 3 * kMorsel + 100;

  static void SetUpTestSuite() {
    Table t{Schema({Field{"id", DataType::kInt64, false},
                    Field{"flag", DataType::kInt64, false},
                    Field{"x", DataType::kDouble, true},
                    Field{"y", DataType::kDouble, true},
                    Field{"cls", DataType::kString, true}})};
    const std::vector<std::string> cycle = {"GALAXY", "STAR", "QSO", "M31"};
    for (int64_t i = 0; i < kRows; ++i) {
      const int64_t morsel = i / kMorsel;
      std::vector<Value> row;
      row.push_back(Value(i));
      row.push_back(Value(i / 4096));
      const bool nan_row = morsel == 1 && i % 1009 == 4;
      const bool null_row = morsel == 2 && i % 811 == 9;
      const double x = 10.0 * static_cast<double>(morsel) +
                       static_cast<double>(i % 1000) / 1000.0;
      row.push_back(null_row ? Value::Null() : Value(nan_row ? kNan : x));
      row.push_back(null_row ? Value::Null() : Value(x + 1.0));
      row.push_back(morsel == 2 && i % 501 == 2
                        ? Value::Null()
                        : Value(cycle[static_cast<size_t>(i % 4)]));
      ASSERT_TRUE(t.AppendRow(row).ok());
    }
    plain_ = new Table(t);
    t.BuildEncoding();
    encoded_ = new Table(std::move(t));
    pool_ = new ThreadPool(4);
    ASSERT_EQ(plain_->column(0).encoding(), nullptr);
    ASSERT_NE(encoded_->column(0).encoding(), nullptr);
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete encoded_;
    delete plain_;
    pool_ = nullptr;
    encoded_ = nullptr;
    plain_ = nullptr;
  }

  /// The contract under test: the pruned + compressed-domain scan returns
  /// exactly the selection of the row-at-a-time oracle, serial and at 4
  /// threads.
  static void ExpectPrunedScanMatchesOracle(const Predicate& pred) {
    ASSERT_TRUE(pred.Validate(plain_->schema()).ok());
    SelectionVector oracle;
    for (int64_t row = 0; row < kRows; ++row) {
      if (pred.Matches(*plain_, row)) oracle.push_back(row);
    }
    EXPECT_EQ(SelectAll(*plain_, pred).value(), oracle);
    EXPECT_EQ(SelectAll(*encoded_, pred).value(), oracle);
    EXPECT_EQ(SelectAll(*encoded_, pred, pool_).value(), oracle);
  }

  static Table* plain_;
  static Table* encoded_;
  static ThreadPool* pool_;
};

Table* PruningTest::plain_ = nullptr;
Table* PruningTest::encoded_ = nullptr;
ThreadPool* PruningTest::pool_ = nullptr;

TEST_F(PruningTest, NumericComparisonsMatchOracle) {
  for (const double want : {-5.0, 0.5, 10.0, 20.0375, 21.2, 35.0}) {
    ExpectPrunedScanMatchesOracle(*Eq("x", Value(want)));
    ExpectPrunedScanMatchesOracle(*Ne("x", Value(want)));
    ExpectPrunedScanMatchesOracle(*Lt("x", Value(want)));
    ExpectPrunedScanMatchesOracle(*Le("x", Value(want)));
    ExpectPrunedScanMatchesOracle(*Gt("x", Value(want)));
    ExpectPrunedScanMatchesOracle(*Ge("x", Value(want)));
  }
}

TEST_F(PruningTest, NanLiteralNeverMatchesExceptNe) {
  ExpectPrunedScanMatchesOracle(*Eq("x", Value(kNan)));
  ExpectPrunedScanMatchesOracle(*Ne("x", Value(kNan)));
  ExpectPrunedScanMatchesOracle(*Lt("x", Value(kNan)));
  ExpectPrunedScanMatchesOracle(*Ge("x", Value(kNan)));
}

TEST_F(PruningTest, CompressedIntScansMatchOracle) {
  // id is FOR-encoded, flag RLE-encoded.
  ExpectPrunedScanMatchesOracle(*Between("id", 100.5, 40'000.0));
  ExpectPrunedScanMatchesOracle(*Between("id", -10.0, -1.0));
  ExpectPrunedScanMatchesOracle(*Eq("flag", Value(int64_t{3})));
  ExpectPrunedScanMatchesOracle(*Ne("flag", Value(int64_t{0})));
  ExpectPrunedScanMatchesOracle(*Gt("flag", Value(7.5)));
  ExpectPrunedScanMatchesOracle(*Eq("id", Value(2.5)));  // fractional literal
}

TEST_F(PruningTest, DictStringScansMatchOracle) {
  ExpectPrunedScanMatchesOracle(*Eq("cls", Value("STAR")));
  ExpectPrunedScanMatchesOracle(*Eq("cls", Value("NOT_A_CLASS")));
  ExpectPrunedScanMatchesOracle(*Ne("cls", Value("NOT_A_CLASS")));
  ExpectPrunedScanMatchesOracle(*Ne("cls", Value("M31")));
  // "" is a storage value (null rows) but never a match for non-null rows.
  ExpectPrunedScanMatchesOracle(*Eq("cls", Value("")));
  ExpectPrunedScanMatchesOracle(*Ne("cls", Value("")));
}

TEST_F(PruningTest, BetweenAndConeMatchOracle) {
  ExpectPrunedScanMatchesOracle(*Between("x", 9.5, 10.5));   // one morsel
  ExpectPrunedScanMatchesOracle(*Between("x", -5.0, 50.0));  // blanket-ish
  ExpectPrunedScanMatchesOracle(*Between("x", 100.0, 200.0));  // skip all
  ExpectPrunedScanMatchesOracle(*Between("x", 5.0, 1.0));      // empty range
  ExpectPrunedScanMatchesOracle(*Cone("x", "y", 10.5, 11.5, 0.4));
  ExpectPrunedScanMatchesOracle(*Cone("x", "y", -50.0, -50.0, 1.0));
  ExpectPrunedScanMatchesOracle(*Cone("x", "y", 10.0, 11.0, 1000.0));
}

TEST_F(PruningTest, BooleanCombinatorsMatchOracle) {
  ExpectPrunedScanMatchesOracle(*Not(Between("x", 9.5, 10.5)));
  ExpectPrunedScanMatchesOracle(*Not(Lt("x", -100.0)));  // NOT of skip-all
  ExpectPrunedScanMatchesOracle(*Not(Ge("x", -100.0)));  // NOT of match-all
  ExpectPrunedScanMatchesOracle(
      *And(Ge("x", 10.0), Le("x", 20.5), Eq("cls", Value("GALAXY"))));
  ExpectPrunedScanMatchesOracle(*And(Lt("x", -1.0), Eq("cls", Value("STAR"))));
  ExpectPrunedScanMatchesOracle(*Or(Lt("x", 0.5), Gt("x", 20.5)));
  ExpectPrunedScanMatchesOracle(*Or(Lt("x", -100.0), Gt("x", 1000.0)));
  ExpectPrunedScanMatchesOracle(
      *And(Or(Eq("cls", Value("QSO")), Eq("cls", Value("M31"))),
           Not(Between("x", 10.0, 30.0))));
}

TEST_F(PruningTest, SkippedMorselsAreCounted) {
  obs::Counter* counter = obs::DefaultRegistry()->GetCounter(
      "sciborq_morsels_skipped_total",
      "Scan morsels skipped entirely by zone-map pruning");
  const PredicatePtr pred = Lt("x", -100.0);  // below every zone minimum
  const int64_t before = counter->Value();
  EXPECT_TRUE(SelectAll(*encoded_, *pred).value().empty());
  // All three complete morsels skip; the 100-row tail has no zone map.
  EXPECT_EQ(counter->Value() - before, 3);
  // The plain table has no sidecar, so nothing can be skipped.
  const int64_t before_plain = counter->Value();
  EXPECT_TRUE(SelectAll(*plain_, *pred).value().empty());
  EXPECT_EQ(counter->Value(), before_plain);
}

TEST(PruningEdgeTest, EmptyAndTailOnlyTablesScanCorrectly) {
  Table t{Schema({Field{"x", DataType::kDouble, true}})};
  t.BuildEncoding();  // no complete morsel: sidecar covers zero rows
  EXPECT_TRUE(SelectAll(t, *Gt("x", 0.0)).value().empty());
  ASSERT_TRUE(t.AppendRow({Value(1.5)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  t.BuildEncoding();
  EXPECT_EQ(SelectAll(t, *Gt("x", 0.0)).value(), (SelectionVector{0}));
}

// ------------------------------------------------------ kernels -----------

TEST(KernelTest, DoubleCompareMatchesScalarSemantics) {
  Rng rng(23);
  std::vector<double> vals(10'000);
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i % 37 == 5) {
      vals[i] = kNan;
    } else if (i % 53 == 7) {
      vals[i] = 0.5;  // plant exact hits for kEq
    } else {
      vals[i] = rng.NextDouble() * 2.0 - 1.0;
    }
  }
  std::vector<int64_t> out(vals.size());
  for (const CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                             CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    const int64_t n = FilterDoubleCompare(vals.data(), 3, 9'500, op, 0.5,
                                          out.data());
    SelectionVector expect;
    for (int64_t row = 3; row < 9'500; ++row) {
      const double v = vals[static_cast<size_t>(row)];
      bool hit = false;
      switch (op) {
        case CompareOp::kEq: hit = v == 0.5; break;
        case CompareOp::kNe: hit = v != 0.5; break;  // NaN matches
        case CompareOp::kLt: hit = v < 0.5; break;
        case CompareOp::kLe: hit = v <= 0.5; break;
        case CompareOp::kGt: hit = v > 0.5; break;
        case CompareOp::kGe: hit = v >= 0.5; break;
      }
      if (hit) expect.push_back(row);
    }
    ASSERT_EQ(n, static_cast<int64_t>(expect.size()))
        << "op " << static_cast<int>(op);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[static_cast<size_t>(i)], expect[static_cast<size_t>(i)]);
    }
  }
}

TEST(KernelTest, Int64CompareUsesTheDoubleCast) {
  const std::vector<int64_t> vals = {0, 1, 2, 3, 4, 5};
  std::vector<int64_t> out(vals.size());
  // want = 2.5 sits between values: only < and > style results are sane.
  int64_t n = FilterInt64Compare(vals.data(), 0, 6, CompareOp::kLt, 2.5,
                                 out.data());
  EXPECT_EQ(n, 3);
  n = FilterInt64Compare(vals.data(), 0, 6, CompareOp::kEq, 2.5, out.data());
  EXPECT_EQ(n, 0);
  n = FilterInt64Compare(vals.data(), 0, 6, CompareOp::kGe, 2.5, out.data());
  EXPECT_EQ(n, 3);
  EXPECT_EQ(out[0], 3);
}

TEST(KernelTest, BetweenIsInclusiveAndNanSafe) {
  const std::vector<double> vals = {0.0, 1.0, kNan, 2.0, 3.0, 4.0};
  std::vector<int64_t> out(vals.size());
  int64_t n = FilterDoubleBetween(vals.data(), 0, 6, 1.0, 3.0, out.data());
  ASSERT_EQ(n, 3);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 3);
  EXPECT_EQ(out[2], 4);
  // lo > hi selects nothing; the int64 variant casts like NumericAt.
  EXPECT_EQ(FilterDoubleBetween(vals.data(), 0, 6, 3.0, 1.0, out.data()), 0);
  const std::vector<int64_t> ints = {10, 20, 30};
  n = FilterInt64Between(ints.data(), 0, 3, 15.0, 25.0, out.data());
  ASSERT_EQ(n, 1);
  EXPECT_EQ(out[0], 1);
  (void)KernelsUseAvx2();  // either answer is fine; it must simply not crash
}

// ------------------------------------------- snapshot format gate ---------

TableSnapshot SmallSnapshot() {
  TableSnapshot snap;
  snap.table = "t";
  snap.last_seq = 3;
  snap.base = EncodableTable(200);
  snap.hierarchy.derive_rng = Rng(123).SaveState();  // all-zero is rejected
  return snap;
}

TEST(SnapshotVersionTest, EveryWritableVersionRoundTrips) {
  TempDir dir;
  const TableSnapshot snap = SmallSnapshot();
  for (uint32_t version : {1u, 2u, 3u}) {
    const std::string path =
        dir.path + "/v" + std::to_string(version) + ".snapshot";
    const Status written = WriteTableSnapshot(snap, path, version);
    ASSERT_TRUE(written.ok()) << written.ToString();
    const auto read = ReadTableSnapshot(path);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    const TableSnapshot& back = read.value();
    EXPECT_EQ(back.table, "t");
    EXPECT_EQ(back.last_seq, 3);
    ExpectTablesValueIdentical(snap.base, back.base);
  }
}

TEST(SnapshotVersionTest, UnwritableVersionIsInvalidArgument) {
  TempDir dir;
  const Status st = WriteTableSnapshot(SmallSnapshot(), dir.path + "/x.snapshot",
                                       kSnapshotFormatVersion + 1);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotVersionTest, UnknownHeaderVersionIsDataLossNotCrash) {
  TempDir dir;
  const std::string path = dir.path + "/t.snapshot";
  ASSERT_TRUE(WriteTableSnapshot(SmallSnapshot(), path).ok());
  std::string bytes = ReadFileToString(path).value();
  // The format version lives at header offset 4, outside the CRC'd body, so
  // a future-version file is exactly this file with a bigger number.
  bytes[4] = 9;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  const auto result = ReadTableSnapshot(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(result.status().message().find("upgrade"), std::string::npos);
}

}  // namespace
}  // namespace sciborq
