// Time-series retention benchmark: the telemetry workload vertical end to
// end on one persistent engine.
//
//   ingest        — sustained IngestBatch throughput into a windowed table
//                   (stratified sampling + eviction + checkpoint-on-evict on
//                   the hot path) while a concurrent client hammers bounded
//                   LAST(value) BY station_id queries.
//   staleness     — how far behind the base data the last-seen sample's
//                   answer runs: avg over stations of exact LAST(ts) minus
//                   bounded LAST(ts), in event-time ms.
//   disk plateau  — on-disk bytes at steady state under continuous ingest
//                   with a 10-bucket window. Retention's whole point: the
//                   stream is endless, the files are not.
//
// Exits non-zero if steady-state disk exceeds 2x the live-window working set
// (the post-checkpoint snapshot) or if the EXACT LAST answer disagrees with
// an oracle replay of the identical generator stream.
//
// BENCH_JSON keys: timeseries_ingest_rows_per_s, latest_staleness_ms,
// disk_bytes_steady_state.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "bench/bench_util.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "workload/telemetry.h"

using namespace sciborq;
using sciborq::bench::Header;
using sciborq::bench::JsonLine;
using sciborq::bench::Unwrap;

namespace {

constexpr char kTable[] = "telemetry";
constexpr int64_t kBucketWidth = 2000;    // ts units (ms) per bucket
constexpr int64_t kWindowBuckets = 10;
constexpr int64_t kBatchRows = 1000;
constexpr int64_t kBatches = 100;         // ~50 buckets -> ~40 evictions
constexpr int64_t kStations = 64;
constexpr uint64_t kSeed = 42;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sciborq_timeseries_bench_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  return std::string(dir);
}

int64_t DirBytes(const std::string& dir) {
  int64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      total += static_cast<int64_t>(entry.file_size());
    }
  }
  return total;
}

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

TelemetryConfig StreamConfig() {
  TelemetryConfig config;
  config.num_stations = kStations;
  config.ts_increment_mean = 1;  // ~kBucketWidth rows per bucket
  return config;
}

struct OracleRow {
  int64_t station = 0;
  int64_t ts = 0;
  double value = 0.0;
};

/// Replays the identical generator stream and applies the engine's retention
/// semantics by hand: cutoff = max bucket - window, survivors are rows in
/// later buckets, LAST folds in arrival order with later-row-wins ties.
std::map<int64_t, OracleRow> OracleLast(const std::vector<OracleRow>& rows) {
  int64_t max_bucket = INT64_MIN;
  for (const OracleRow& r : rows) {
    const int64_t b = FloorDiv(r.ts, kBucketWidth);
    if (b > max_bucket) max_bucket = b;
  }
  const int64_t cutoff = max_bucket - kWindowBuckets;
  std::map<int64_t, OracleRow> last;
  for (const OracleRow& r : rows) {
    if (FloorDiv(r.ts, kBucketWidth) <= cutoff) continue;
    auto it = last.find(r.station);
    if (it == last.end() || r.ts >= it->second.ts) last[r.station] = r;
  }
  return last;
}

}  // namespace

int main() {
  Header("timeseries retention: sustained ingest, staleness, disk plateau");

  const std::string dir = MakeTempDir();
  EngineOptions engine_options;
  engine_options.wal_segment_bytes = 64 * 1024;  // exercise size rotations
  std::unique_ptr<Engine> engine = Unwrap(Engine::Open(dir, engine_options));

  TableOptions table_options;
  table_options.seed = kSeed;
  table_options.retention.time_column = "ts";
  table_options.retention.bucket_width = kBucketWidth;
  table_options.retention.window_buckets = kWindowBuckets;
  if (Status st = engine->CreateTable(kTable, TelemetryGenerator::TableSchema(),
                                      table_options);
      !st.ok()) {
    std::fprintf(stderr, "create table failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // -- Sustained ingest with a concurrent bounded-query client --------------
  TelemetryGenerator generator =
      Unwrap(TelemetryGenerator::Make(StreamConfig(), kSeed));
  std::vector<OracleRow> all_rows;
  all_rows.reserve(static_cast<size_t>(kBatches * kBatchRows));

  std::atomic<bool> ingest_done{false};
  std::atomic<int64_t> queries_ok{0};
  std::atomic<int64_t> queries_failed{0};
  std::thread query_client([&engine, &ingest_done, &queries_ok,
                            &queries_failed] {
    const std::string sql = StrFormat(
        "SELECT LAST(value) FROM %s BY station_id WITHIN 50 MS", kTable);
    while (!ingest_done.load(std::memory_order_relaxed)) {
      const Result<QueryOutcome> outcome = engine->Query(sql);
      if (outcome.ok()) {
        queries_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        queries_failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  Stopwatch ingest_watch;
  bool ingest_failed = false;
  for (int64_t b = 0; b < kBatches && !ingest_failed; ++b) {
    const Table batch = generator.NextBatch(kBatchRows);
    for (int64_t r = 0; r < batch.num_rows(); ++r) {
      OracleRow row;
      row.station = batch.column(0).GetInt64(r);
      row.ts = batch.column(1).GetInt64(r);
      row.value = batch.column(2).GetDouble(r);
      all_rows.push_back(row);
    }
    if (Status st = engine->IngestBatch(kTable, batch); !st.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
      ingest_failed = true;
    }
  }
  const double ingest_seconds = ingest_watch.ElapsedSeconds();
  ingest_done.store(true);
  query_client.join();
  if (ingest_failed) return 1;

  const double rows_per_s =
      static_cast<double>(kBatches * kBatchRows) / ingest_seconds;
  std::printf("ingested %lld rows in %.2fs (%.0f rows/s) with %lld bounded "
              "queries alongside (%lld failed)\n",
              static_cast<long long>(kBatches * kBatchRows), ingest_seconds,
              rows_per_s, static_cast<long long>(queries_ok.load()),
              static_cast<long long>(queries_failed.load()));
  if (queries_failed.load() > 0) {
    std::fprintf(stderr, "bounded queries failed during ingest\n");
    return 1;
  }

  // -- Steady-state disk, then the working set it should be bounded by ------
  const int64_t disk_steady = DirBytes(dir);
  if (Status st = engine->Checkpoint(kTable); !st.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const int64_t working_set = DirBytes(dir);
  std::printf("disk: steady-state %lld bytes, live-window working set %lld "
              "bytes (%.2fx)\n",
              static_cast<long long>(disk_steady),
              static_cast<long long>(working_set),
              static_cast<double>(disk_steady) /
                  static_cast<double>(working_set > 0 ? working_set : 1));

  // -- Latest-value staleness: bounded (last-seen sample) vs exact (base) ---
  const Result<QueryOutcome> bounded_ts = engine->Query(StrFormat(
      "SELECT LAST(ts) FROM %s BY station_id WITHIN 50 MS", kTable));
  const Result<QueryOutcome> exact_ts = engine->Query(
      StrFormat("SELECT LAST(ts) FROM %s BY station_id EXACT", kTable));
  if (!bounded_ts.ok() || !exact_ts.ok()) {
    std::fprintf(stderr, "staleness queries failed: %s / %s\n",
                 bounded_ts.status().ToString().c_str(),
                 exact_ts.status().ToString().c_str());
    return 1;
  }
  std::map<int64_t, double> bounded_by_station;
  for (const QueryResultRow& row : bounded_ts->rows) {
    bounded_by_station[row.group_key.int64()] = row.values[0];
  }
  double staleness_sum = 0.0;
  int64_t staleness_n = 0;
  for (const QueryResultRow& row : exact_ts->rows) {
    const auto it = bounded_by_station.find(row.group_key.int64());
    if (it == bounded_by_station.end()) continue;  // not in the sample yet
    staleness_sum += row.values[0] - it->second;
    ++staleness_n;
  }
  const double staleness_ms =
      staleness_n > 0 ? staleness_sum / static_cast<double>(staleness_n) : 0.0;
  std::printf("latest-value staleness: %.1fms avg over %lld stations "
              "(answered_by=%s)\n",
              staleness_ms, static_cast<long long>(staleness_n),
              bounded_ts->answered_by.c_str());

  // -- Exact-oracle gate ----------------------------------------------------
  const Result<QueryOutcome> exact_value = engine->Query(
      StrFormat("SELECT LAST(value) FROM %s BY station_id EXACT", kTable));
  if (!exact_value.ok()) {
    std::fprintf(stderr, "exact LAST failed: %s\n",
                 exact_value.status().ToString().c_str());
    return 1;
  }
  const std::map<int64_t, OracleRow> oracle = OracleLast(all_rows);
  bool oracle_ok = exact_value->rows.size() == oracle.size();
  for (const QueryResultRow& row : exact_value->rows) {
    const auto it = oracle.find(row.group_key.int64());
    if (it == oracle.end() || row.values[0] != it->second.value) {
      oracle_ok = false;
      break;
    }
  }
  std::printf("exact LAST vs oracle replay: %s (%zu stations)\n",
              oracle_ok ? "MATCH" : "MISMATCH", oracle.size());

  JsonLine("timeseries")
      .Num("timeseries_ingest_rows_per_s", rows_per_s)
      .Num("latest_staleness_ms", staleness_ms)
      .Int("disk_bytes_steady_state", disk_steady)
      .Int("working_set_bytes", working_set)
      .Int("bounded_queries_during_ingest", queries_ok.load())
      .Flag("oracle_match", oracle_ok)
      .Emit();

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  if (!oracle_ok) {
    std::fprintf(stderr, "FAIL: exact LAST disagrees with the oracle\n");
    return 1;
  }
  if (disk_steady > 2 * working_set) {
    std::fprintf(stderr,
                 "FAIL: steady-state disk %lld bytes exceeds 2x the %lld-byte "
                 "live-window working set\n",
                 static_cast<long long>(disk_steady),
                 static_cast<long long>(working_set));
    return 1;
  }
  return 0;
}
