#ifndef SCIBORQ_UTIL_STOPWATCH_H_
#define SCIBORQ_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace sciborq {

/// Monotonic wall-clock stopwatch for latency measurement.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget, e.g. "answer within 50ms". An infinite deadline is
/// represented by a non-positive budget.
class Deadline {
 public:
  /// Unlimited deadline.
  Deadline() = default;

  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.limited_ = true;
    d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    return d;
  }
  static Deadline Unlimited() { return Deadline(); }

  bool limited() const { return limited_; }

  bool Expired() const { return limited_ && Clock::now() >= expiry_; }

  /// Seconds until expiry; +infinity for unlimited, <= 0 when expired.
  double RemainingSeconds() const {
    if (!limited_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(expiry_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool limited_ = false;
  Clock::time_point expiry_{};
};

}  // namespace sciborq

#endif  // SCIBORQ_UTIL_STOPWATCH_H_
