#ifndef SCIBORQ_CORE_SHARDED_BUILDER_H_
#define SCIBORQ_CORE_SHARDED_BUILDER_H_

#include <memory>
#include <vector>

#include "core/impression.h"
#include "core/impression_builder.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace sciborq {

/// Parallel-load construction (§1: impressions are "created and updated
/// incrementally during parallel database loads"). Each load worker owns one
/// shard builder fed from its slice of the stream; Merge() combines the
/// shard impressions into a single impression of the configured capacity by
/// weighted resampling, preserving each policy's design:
///  - uniform shards merge by population-proportional subsampling,
///  - biased shards merge by workload-weight-proportional subsampling
///    (A-Res keys), keeping π_i ∝ w_i.
class ShardedImpressionBuilder {
 public:
  /// InvalidArgument when num_shards < 1 or the spec is invalid. Shards get
  /// derived seeds so results are deterministic but decorrelated.
  static Result<ShardedImpressionBuilder> Make(const Schema& schema,
                                               ImpressionSpec spec,
                                               int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// The shard builders, to be driven from load threads (one thread per
  /// shard; builders are single-writer).
  ImpressionBuilder& shard(int i) { return shards_[static_cast<size_t>(i)]; }
  const ImpressionBuilder& shard(int i) const {
    return shards_[static_cast<size_t>(i)];
  }

  /// The parallel-load driver: splits `batch` into num_shards() contiguous
  /// slices and feeds each shard from its own load thread (one thread per
  /// shard, the builders being single-writer). Every shard consumes a
  /// deterministic slice with its own seeded sampler, so the outcome is
  /// independent of thread scheduling — identical to feeding the same slices
  /// serially. Returns the first shard's error, if any.
  Status IngestBatchParallel(const Table& batch);

  /// Total base tuples streamed past all shards (live, pre-merge).
  int64_t population_seen() const;

  /// Combines all shards into one impression named `spec.name`.
  Result<Impression> Merge() const;

 private:
  ShardedImpressionBuilder(ImpressionSpec spec,
                           std::vector<ImpressionBuilder> shards)
      : spec_(std::move(spec)), shards_(std::move(shards)) {}

  ImpressionSpec spec_;
  std::vector<ImpressionBuilder> shards_;
  /// Persistent load workers (one per shard), created lazily on the first
  /// IngestBatchParallel so streaming ingest does not spawn OS threads per
  /// batch.
  std::unique_ptr<ThreadPool> loaders_;
};

}  // namespace sciborq

#endif  // SCIBORQ_CORE_SHARDED_BUILDER_H_
