// ABL-2D (footnote 3 / §6 future work): multi-dimensional interest
// histograms vs combined 1-D marginals. With two focal points, the 1-D
// marginals mark the *cross products* of the foci as interesting too — two
// phantom regions, (ra_A, dec_B) and (ra_B, dec_A), that no query ever
// touches. The joint 2-D tracker spends that capacity on the real foci.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/bounded_executor.h"
#include "core/impression_builder.h"
#include "skyserver/catalog.h"
#include "skyserver/functions.h"

namespace sciborq {
namespace {

double FracNear(const Impression& imp, double ra0, double dec0) {
  const Column* ra = imp.rows().ColumnByName("ra").value();
  const Column* dec = imp.rows().ColumnByName("dec").value();
  int64_t n = 0;
  for (int64_t i = 0; i < imp.size(); ++i) {
    if (std::abs(ra->GetDouble(i) - ra0) < 5.0 &&
        std::abs(dec->GetDouble(i) - dec0) < 5.0) {
      ++n;
    }
  }
  return static_cast<double>(n) / static_cast<double>(imp.size());
}

}  // namespace
}  // namespace sciborq

int main() {
  using namespace sciborq;
  bench::Header("ABL-2D: joint 2-D interest vs combined 1-D marginals");
  bench::Expectation(
      "both concentrate on the true foci; the 1-D marginal design also "
      "samples the phantom cross-regions; the joint design does not, and "
      "its focal error is at least as good");

  SkyCatalogConfig config;
  config.num_rows = 300'000;
  const SkyCatalog catalog = bench::Unwrap(GenerateSkyCatalog(config, 41));

  // Identical workload fed to both trackers.
  InterestTracker marginals = bench::MakeRaDecTracker();
  JointInterestTracker::Spec jspec;
  jspec.column_x = "ra";
  jspec.column_y = "dec";
  jspec.min_x = 120.0;
  jspec.width_x = 3.0;
  jspec.bins_x = 40;
  jspec.min_y = 0.0;
  jspec.width_y = 1.5;
  jspec.bins_y = 40;
  JointInterestTracker joint = bench::Unwrap(JointInterestTracker::Make(jspec));
  auto gen =
      bench::Unwrap(ConeWorkloadGenerator::Make(bench::FocusedWorkload(), 41));
  for (int i = 0; i < 400; ++i) {
    const AggregateQuery q = gen.Next();
    marginals.ObserveQuery(q);
    joint.ObserveQuery(q);
  }

  ImpressionSpec mspec;
  mspec.capacity = 10'000;
  mspec.policy = SamplingPolicy::kBiased;
  mspec.tracker = &marginals;
  mspec.seed = 41;
  auto mb = bench::Unwrap(
      ImpressionBuilder::Make(catalog.photo_obj_all.schema(), mspec));
  ImpressionSpec jspec2 = mspec;
  jspec2.tracker = nullptr;
  jspec2.joint_tracker = &joint;
  auto jb = bench::Unwrap(
      ImpressionBuilder::Make(catalog.photo_obj_all.schema(), jspec2));
  SCIBORQ_CHECK(mb.IngestBatch(catalog.photo_obj_all).ok());
  SCIBORQ_CHECK(jb.IngestBatch(catalog.photo_obj_all).ok());

  std::printf("%-28s %12s %12s\n", "region", "marginal_1d", "joint_2d");
  const struct {
    const char* label;
    double ra, dec;
  } regions[] = {{"focus A (150, 12)", 150, 12},
                 {"focus B (215, 40)", 215, 40},
                 {"phantom (150, 40)", 150, 40},
                 {"phantom (215, 12)", 215, 12}};
  for (const auto& r : regions) {
    std::printf("%-28s %12.4f %12.4f\n", r.label,
                FracNear(mb.impression(), r.ra, r.dec),
                FracNear(jb.impression(), r.ra, r.dec));
  }

  // Focal estimation quality under both designs.
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  q.filter = FGetNearbyObjEq(150.0, 12.0, 3.0);
  const double truth =
      RunExact(catalog.photo_obj_all, q).value()[0].values[0];
  const auto m_est = EstimateOnImpression(mb.impression(), q, 0.95);
  const auto j_est = EstimateOnImpression(jb.impression(), q, 0.95);
  const double m_err =
      m_est.ok() ? std::abs(m_est.value().rows[0].values[0] - truth) / truth
                 : -1.0;
  const double j_err =
      j_est.ok() ? std::abs(j_est.value().rows[0].values[0] - truth) / truth
                 : -1.0;
  std::printf("\nfocal COUNT rel_err: marginal=%.4f joint=%.4f (truth %.0f)\n",
              m_err, j_err, truth);
  bench::Measured(
      "phantom-region concentration ≈ 0 for joint_2d, > 0 for marginal_1d; "
      "focal concentration joint >= marginal");
  return 0;
}
