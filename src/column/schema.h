#ifndef SCIBORQ_COLUMN_SCHEMA_H_
#define SCIBORQ_COLUMN_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "column/types.h"
#include "util/result.h"

namespace sciborq {

/// One named, typed attribute of a relation.
struct Field {
  std::string name;
  DataType type;
  bool nullable = true;
};

/// An ordered list of fields with O(1) lookup by name.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  const std::vector<Field>& fields() const { return fields_; }
  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }

  /// Index of the field named `name`, or NotFound.
  Result<int> FieldIndex(const std::string& name) const;
  bool HasField(const std::string& name) const;

  /// Schema containing only the named fields, in the given order.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  /// "name:type, name:type, ..." for debugging.
  std::string ToString() const;

  bool Equals(const Schema& other) const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace sciborq

#endif  // SCIBORQ_COLUMN_SCHEMA_H_
