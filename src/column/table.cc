#include "column/table.h"

#include "util/check.h"
#include "util/string_util.h"

namespace sciborq {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (const auto& f : schema_.fields()) columns_.emplace_back(f.type);
}

Result<Table> Table::FromColumns(Schema schema, std::vector<Column> columns) {
  if (static_cast<int>(columns.size()) != schema.num_fields()) {
    return Status::InvalidArgument("FromColumns: column count != field count");
  }
  Table out(std::move(schema));
  out.columns_ = std::move(columns);
  out.num_rows_ = out.columns_.empty() ? 0 : out.columns_[0].size();
  SCIBORQ_RETURN_NOT_OK(out.Validate());
  return out;
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  SCIBORQ_ASSIGN_OR_RETURN(int idx, schema_.FieldIndex(name));
  return &columns_[static_cast<size_t>(idx)];
}

void Table::Reserve(int64_t rows) {
  for (auto& c : columns_) c.Reserve(rows);
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (static_cast<int>(row.size()) != schema_.num_fields()) {
    return Status::InvalidArgument(
        StrFormat("AppendRow: got %zu values for %d fields", row.size(),
                  schema_.num_fields()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null() && !schema_.field(static_cast<int>(i)).nullable) {
      return Status::InvalidArgument(
          StrFormat("AppendRow: null for non-nullable field '%s'",
                    schema_.field(static_cast<int>(i)).name.c_str()));
    }
    SCIBORQ_RETURN_NOT_OK(columns_[i].AppendValue(row[i]));
  }
  ++num_rows_;
  return Status::OK();
}

void Table::AppendNumericRow(const std::vector<double>& row) {
  SCIBORQ_DCHECK(static_cast<int>(row.size()) == schema_.num_fields());
  for (size_t i = 0; i < row.size(); ++i) {
    Column& c = columns_[i];
    if (c.type() == DataType::kInt64) {
      c.AppendInt64(static_cast<int64_t>(row[i]));
    } else {
      SCIBORQ_DCHECK(c.type() == DataType::kDouble);
      c.AppendDouble(row[i]);
    }
  }
  ++num_rows_;
}

void Table::AppendRowFrom(const Table& src, int64_t row) {
  SCIBORQ_DCHECK(src.num_columns() == num_columns());
  for (int i = 0; i < num_columns(); ++i) {
    columns_[static_cast<size_t>(i)].AppendFrom(src.column(i), row);
  }
  ++num_rows_;
}

void Table::SetRowFrom(const Table& src, int64_t src_row, int64_t dst_row) {
  SCIBORQ_DCHECK(src.num_columns() == num_columns());
  for (int i = 0; i < num_columns(); ++i) {
    columns_[static_cast<size_t>(i)].SetFrom(src.column(i), src_row, dst_row);
  }
}

Table Table::TakeRows(const SelectionVector& rows) const {
  Table out(schema_);
  out.Reserve(static_cast<int64_t>(rows.size()));
  for (int i = 0; i < num_columns(); ++i) {
    out.columns_[static_cast<size_t>(i)] = column(i).Take(rows);
  }
  out.num_rows_ = static_cast<int64_t>(rows.size());
  return out;
}

Result<Table> Table::Project(const std::vector<std::string>& names) const {
  SCIBORQ_ASSIGN_OR_RETURN(Schema projected, schema_.Project(names));
  Table out(std::move(projected));
  for (size_t i = 0; i < names.size(); ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(int idx, schema_.FieldIndex(names[i]));
    out.columns_[i] = columns_[static_cast<size_t>(idx)];
  }
  out.num_rows_ = num_rows_;
  return out;
}

Result<Value> Table::GetCell(int64_t row, const std::string& column_name) const {
  if (row < 0 || row >= num_rows_) {
    return Status::OutOfRange(StrFormat("row %lld out of range [0, %lld)",
                                        static_cast<long long>(row),
                                        static_cast<long long>(num_rows_)));
  }
  SCIBORQ_ASSIGN_OR_RETURN(const Column* col, ColumnByName(column_name));
  return col->GetValue(row);
}

void Table::BuildEncoding() {
  for (Column& col : columns_) col.BuildEncoding();
}

Status Table::Validate() const {
  if (static_cast<int>(columns_.size()) != schema_.num_fields()) {
    return Status::Internal("column count does not match schema");
  }
  for (int i = 0; i < num_columns(); ++i) {
    const Column& c = column(i);
    if (c.type() != schema_.field(i).type) {
      return Status::Internal(
          StrFormat("column %d type mismatch with schema", i));
    }
    if (c.size() != num_rows_) {
      return Status::Internal(StrFormat(
          "column %d has %lld rows, table declares %lld", i,
          static_cast<long long>(c.size()), static_cast<long long>(num_rows_)));
    }
    if (!schema_.field(i).nullable && c.null_count() > 0) {
      return Status::Internal(
          StrFormat("non-nullable column %d contains nulls", i));
    }
  }
  return Status::OK();
}

int64_t Table::MemoryUsageBytes() const {
  int64_t bytes = 0;
  for (const auto& c : columns_) bytes += c.MemoryUsageBytes();
  return bytes;
}

}  // namespace sciborq
