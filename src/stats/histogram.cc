#include "stats/histogram.h"

#include <cmath>

#include "util/string_util.h"

namespace sciborq {

Result<StreamingHistogram> StreamingHistogram::Make(double domain_min,
                                                    double bin_width,
                                                    int num_bins) {
  if (num_bins <= 0) {
    return Status::InvalidArgument("histogram needs at least one bin");
  }
  if (!(bin_width > 0.0) || !std::isfinite(bin_width)) {
    return Status::InvalidArgument("bin width must be positive and finite");
  }
  if (!std::isfinite(domain_min)) {
    return Status::InvalidArgument("domain min must be finite");
  }
  return StreamingHistogram(domain_min, bin_width, num_bins);
}

int StreamingHistogram::BinIndex(double value) const {
  const double raw = (value - domain_min_) / bin_width_;
  if (raw < 0.0) return 0;
  const int idx = static_cast<int>(raw);
  if (idx >= num_bins()) return num_bins() - 1;
  return idx;
}

void StreamingHistogram::Observe(double value) {
  const double raw = (value - domain_min_) / bin_width_;
  if (raw < 0.0 || raw >= static_cast<double>(num_bins())) ++clamped_count_;
  BinStats& b = bins_[static_cast<size_t>(BinIndex(value))];
  // Fig. 5: hs[i].m = (hs[i].m * (hs[i].c - 1) + v) / hs[i].c  after c++.
  b.count += 1.0;
  b.mean += (value - b.mean) / b.count;
  ++total_count_;
  weighted_total_ += 1.0;
}

void StreamingHistogram::Decay(double factor, double prune_below) {
  if (factor >= 1.0) return;
  weighted_total_ = 0.0;
  for (auto& b : bins_) {
    b.count *= factor;
    if (b.count < prune_below) {
      b.count = 0.0;
      b.mean = 0.0;
    }
    weighted_total_ += b.count;
  }
}

Status StreamingHistogram::Merge(const StreamingHistogram& other) {
  if (other.num_bins() != num_bins() || other.bin_width_ != bin_width_ ||
      other.domain_min_ != domain_min_) {
    return Status::InvalidArgument("cannot merge histograms with different geometry");
  }
  for (int i = 0; i < num_bins(); ++i) {
    BinStats& a = bins_[static_cast<size_t>(i)];
    const BinStats& b = other.bins_[static_cast<size_t>(i)];
    const double total = a.count + b.count;
    if (total > 0.0) {
      a.mean = (a.mean * a.count + b.mean * b.count) / total;
    }
    a.count = total;
  }
  total_count_ += other.total_count_;
  clamped_count_ += other.clamped_count_;
  weighted_total_ += other.weighted_total_;
  return Status::OK();
}

StreamingHistogram::State StreamingHistogram::SaveState() const {
  State state;
  state.domain_min = domain_min_;
  state.bin_width = bin_width_;
  state.bins = bins_;
  state.total_count = total_count_;
  state.clamped_count = clamped_count_;
  state.weighted_total = weighted_total_;
  return state;
}

Result<StreamingHistogram> StreamingHistogram::Restore(State state) {
  SCIBORQ_ASSIGN_OR_RETURN(
      StreamingHistogram hist,
      Make(state.domain_min, state.bin_width,
           static_cast<int>(state.bins.size())));
  if (state.total_count < 0 || state.clamped_count < 0) {
    return Status::InvalidArgument("histogram state: negative counters");
  }
  hist.bins_ = std::move(state.bins);
  hist.total_count_ = state.total_count;
  hist.clamped_count_ = state.clamped_count;
  hist.weighted_total_ = state.weighted_total;
  return hist;
}

void StreamingHistogram::Reset() {
  for (auto& b : bins_) b = BinStats{};
  total_count_ = 0;
  clamped_count_ = 0;
  weighted_total_ = 0.0;
}

std::vector<double> StreamingHistogram::NormalizedDensities() const {
  if (weighted_total_ <= 0.0) return {};
  std::vector<double> out(static_cast<size_t>(num_bins()));
  for (int i = 0; i < num_bins(); ++i) {
    out[static_cast<size_t>(i)] =
        bins_[static_cast<size_t>(i)].count / (weighted_total_ * bin_width_);
  }
  return out;
}

std::string StreamingHistogram::ToString() const {
  std::string out = StrFormat("StreamingHistogram(beta=%d, w=%.6g, N=%lld)",
                              num_bins(), bin_width_,
                              static_cast<long long>(total_count_));
  for (int i = 0; i < num_bins(); ++i) {
    const BinStats& b = bins_[static_cast<size_t>(i)];
    if (b.count <= 0.0) continue;
    out += StrFormat("\n  [%g, %g): c=%.3f m=%.6g", BinLeftEdge(i),
                     BinLeftEdge(i) + bin_width_, b.count, b.mean);
  }
  return out;
}

}  // namespace sciborq
