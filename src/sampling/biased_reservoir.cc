#include "sampling/biased_reservoir.h"

#include <algorithm>
#include <cmath>

namespace sciborq {

Result<BiasedReservoirSampler> BiasedReservoirSampler::Make(
    int64_t capacity, uint64_t seed, bool paper_faithful) {
  if (capacity <= 0) {
    return Status::InvalidArgument("biased reservoir capacity must be positive");
  }
  return BiasedReservoirSampler(capacity, seed, paper_faithful);
}

BiasedReservoirSampler::State BiasedReservoirSampler::SaveState() const {
  State state;
  state.seen = seen_;
  state.total_weight = total_weight_;
  state.accepted_post_fill = accepted_post_fill_;
  state.curve_interval = curve_interval_;
  state.curve = curve_;
  state.rng = rng_.SaveState();
  return state;
}

Result<BiasedReservoirSampler> BiasedReservoirSampler::Restore(
    int64_t capacity, bool paper_faithful, State state) {
  SCIBORQ_ASSIGN_OR_RETURN(BiasedReservoirSampler sampler,
                           Make(capacity, 0, paper_faithful));
  if (state.seen < 0 || state.accepted_post_fill < 0 ||
      state.curve_interval <= 0) {
    return Status::InvalidArgument(
        "biased reservoir state: negative counters or non-positive curve "
        "interval");
  }
  sampler.seen_ = state.seen;
  sampler.total_weight_ = state.total_weight;
  sampler.accepted_post_fill_ = state.accepted_post_fill;
  sampler.curve_interval_ = state.curve_interval;
  sampler.curve_ = std::move(state.curve);
  sampler.rng_ = Rng::FromState(state.rng);
  return sampler;
}

ReservoirDecision BiasedReservoirSampler::Offer(double weight) {
  if (!(weight > 0.0) || !std::isfinite(weight)) weight = 0.0;
  ++seen_;
  total_weight_ += weight;
  if (seen_ % curve_interval_ == 0) curve_.push_back(accepted_post_fill_);
  if (seen_ <= capacity_) {
    // Fig. 6: "populate the sample smp with the first n tuples".
    return ReservoirDecision{true, seen_ - 1};
  }
  const double rnd = rng_.NextDouble();
  // Fig. 6: accept iff cnt * rnd < n * N * f̆(tpl); `weight` = N * f̆(tpl).
  const double threshold = static_cast<double>(capacity_) * weight /
                           static_cast<double>(seen_);
  if (rnd >= threshold) return ReservoirDecision{false, -1};
  ++accepted_post_fill_;
  int64_t slot = 0;
  if (paper_faithful_) {
    // Verbatim Fig. 6: smp[floor(rnd * n)].
    slot = static_cast<int64_t>(
        std::floor(rnd * static_cast<double>(capacity_)));
    slot = std::clamp<int64_t>(slot, 0, capacity_ - 1);
  } else {
    slot = static_cast<int64_t>(
        rng_.NextBounded(static_cast<uint64_t>(capacity_)));
  }
  return ReservoirDecision{true, slot};
}

double BiasedReservoirSampler::InclusionProbability(double weight) const {
  if (!(weight > 0.0) || total_weight_ <= 0.0) return 0.0;
  if (seen_ <= capacity_) return 1.0;
  return std::min(1.0, static_cast<double>(capacity_) * weight / total_weight_);
}

}  // namespace sciborq
