#ifndef SCIBORQ_STORAGE_WAL_H_
#define SCIBORQ_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace sciborq {

// ---------------------------------------------------------------------------
// Append-only write-ahead log with CRC-framed records.
//
// File layout:
//
//   u32 magic "SBWL" (0x4C574253) | u32 format version (1)
//   record*
//
// where each record is
//
//   u32 payload length | u32 CRC-32C(payload) | payload bytes
//
// The payload is opaque to this layer (storage/table_store.h defines the
// table record vocabulary). Appends are durable before they return: the
// record bytes are written and fdatasync'd, which is what lets the engine
// acknowledge an ingest batch as crash-safe.
//
// Recovery contract (ScanWal): a crash mid-append can only damage the file's
// tail (appends are sequential), so the tail shapes a crash actually
// produces — an incomplete final frame, a claimed payload overrunning EOF,
// an all-zero tail (size extension committed before data), or a checksum
// failure on the *final* record — are torn tails: everything before them is
// returned along with `valid_bytes`, the offset the file should be
// truncated to, and only the unacknowledged record is lost. Shapes no crash
// can produce — a checksum mismatch or zero/over-ceiling length prefix with
// further bytes behind it — are corruption of acknowledged data and fail
// the scan outright: a refused boot beats silently dropping every record
// after the corrupt one. (Empty records are therefore not allowed: a
// zero-length frame would be indistinguishable from a zeroed tail.)
// ---------------------------------------------------------------------------

inline constexpr uint32_t kWalMagic = 0x4C574253u;  // "SBWL"
inline constexpr uint32_t kWalFormatVersion = 1;
inline constexpr int64_t kWalHeaderBytes = 8;
/// Per-record ceiling: bounds what a hostile or corrupt length prefix can
/// make the reader allocate. One ingest batch is one record, so this also
/// caps the batch size the persistent engine accepts (~1 GiB).
inline constexpr int64_t kMaxWalRecordBytes = 1ll << 30;

/// Append handle for one WAL file. Move-only; closes on destruction.
class WalWriter {
 public:
  /// Creates (or truncates) the file and writes the header, durably.
  static Result<WalWriter> Create(const std::string& path);

  /// Opens an existing WAL for appending at `append_offset` (as reported by
  /// a preceding ScanWal; the file is truncated to that offset first, which
  /// drops a torn tail). Validates the header.
  static Result<WalWriter> OpenExisting(const std::string& path,
                                        int64_t append_offset);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one framed record and makes it durable (fdatasync) before
  /// returning. InvalidArgument when the payload exceeds kMaxWalRecordBytes.
  Status Append(std::string_view payload);

  /// Truncates the log back to the bare header (the post-checkpoint reset)
  /// and makes the truncation durable.
  Status Reset();

  /// Truncates back to `offset` (a size_bytes() value captured before an
  /// append) — the undo for a record whose downstream application failed
  /// after the append itself succeeded.
  Status TruncateTo(int64_t offset);

  /// Current file size in bytes (header included).
  int64_t size_bytes() const { return size_; }

  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, int64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_ = -1;
  int64_t size_ = 0;
};

/// The result of scanning a WAL file for recovery.
struct WalScanResult {
  std::vector<std::string> records;  ///< valid payloads, in append order
  /// Offset of the first byte past the last valid record — what the file
  /// should be truncated to before appending resumes.
  int64_t valid_bytes = 0;
  /// True when bytes past valid_bytes were dropped (torn or corrupt tail).
  bool torn_tail = false;
  std::string tail_error;  ///< why the tail was dropped (empty when clean)
};

/// Reads every valid record. IOError when the file cannot be read;
/// InvalidArgument when the header itself is bad (wrong magic/version) —
/// header damage means the file cannot be trusted at all, unlike a torn
/// tail, which is expected after a crash and reported via `torn_tail`.
Result<WalScanResult> ScanWal(const std::string& path,
                              int64_t max_record_bytes = kMaxWalRecordBytes);

}  // namespace sciborq

#endif  // SCIBORQ_STORAGE_WAL_H_
