#ifndef SCIBORQ_RETENTION_RETENTION_H_
#define SCIBORQ_RETENTION_RETENTION_H_

#include <cstdint>
#include <vector>

#include "column/table.h"
#include "retention/policy.h"
#include "util/result.h"

namespace sciborq {

/// Time-bucket bookkeeping for one windowed table. The manager owns no data
/// — it tracks the maximum bucket ever ingested and derives the eviction
/// cutoff from it; the engine owns the actual filtering and rebuilds.
///
/// All state here is *derived*: it is never persisted. After a restart the
/// engine calls Reindex(base) and gets bit-identical bookkeeping back,
/// because eviction is applied atomically with the ingest that triggered it
/// (the base table never holds a row at or below the applied cutoff, so the
/// surviving rows alone determine max_bucket).
///
/// Thread safety: none — the engine mutates the manager only under the
/// owning table's exclusive data lock.
class RetentionManager {
 public:
  /// Validates the policy against the schema: time_column must exist and be
  /// int64, bucket_width and window_buckets must be positive, and the
  /// last-seen sampler parameters must satisfy 0 < capacity <= D.
  static Result<RetentionManager> Make(RetentionPolicy policy,
                                       const Schema& schema);

  const RetentionPolicy& policy() const { return policy_; }
  int time_col_index() const { return time_col_; }

  /// Bucket id of a timestamp: floor(ts / bucket_width), correct for
  /// negative timestamps (floor, not truncation toward zero).
  int64_t BucketOf(int64_t ts) const;

  /// Largest bucket id in `batch` without updating any state (the engine
  /// rotates the WAL segment *before* logging a batch that advances the
  /// maximum). Returns false via has_rows() semantics for empty batches.
  Result<int64_t> BatchMaxBucket(const Table& batch) const;

  /// Folds a batch into the bookkeeping (max bucket, observed rows).
  Status ObserveBatch(const Table& batch);

  /// Rebuilds the bookkeeping from a base table (post-recovery, or after an
  /// eviction replaced the base).
  Status Reindex(const Table& base);

  /// True once at least one row has been observed; max/cutoff are only
  /// meaningful then.
  bool any_rows() const { return rows_observed_ > 0; }
  int64_t rows_observed() const { return rows_observed_; }

  /// Largest bucket ever observed. Precondition: any_rows().
  int64_t max_bucket() const { return max_bucket_; }

  /// Eviction cutoff: every bucket <= cutoff is out of the window.
  /// Precondition: any_rows().
  int64_t cutoff_bucket() const { return max_bucket_ - policy_.window_buckets; }

  /// Row indices of `base` whose bucket is > `cutoff`, in original order —
  /// the surviving window after an eviction at that cutoff.
  SelectionVector SurvivingRows(const Table& base, int64_t cutoff) const;

  /// Groups `rows` (indices into `base`) by bucket, ascending bucket id,
  /// original order preserved within each bucket — the per-stratum feed
  /// order for rebuilding samplers after an eviction.
  std::vector<SelectionVector> GroupByBucket(const Table& base,
                                             const SelectionVector& rows) const;

 private:
  RetentionManager(RetentionPolicy policy, int time_col)
      : policy_(std::move(policy)), time_col_(time_col) {}

  RetentionPolicy policy_;
  int time_col_ = -1;
  int64_t max_bucket_ = 0;
  int64_t rows_observed_ = 0;
};

}  // namespace sciborq

#endif  // SCIBORQ_RETENTION_RETENTION_H_
