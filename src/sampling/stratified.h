#ifndef SCIBORQ_SAMPLING_STRATIFIED_H_
#define SCIBORQ_SAMPLING_STRATIFIED_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sampling/decision.h"
#include "sampling/reservoir.h"
#include "util/result.h"

namespace sciborq {

/// Per-stratum uniform reservoirs with a shared slot space — the classical
/// AQUA-style baseline (congressional/stratified sampling) the related-work
/// section positions SciBORQ against. The caller assigns each tuple a stratum
/// id (e.g. its focal-region bucket); each stratum gets an equal share of the
/// capacity, created lazily up to `max_strata`.
class StratifiedSampler {
 public:
  /// InvalidArgument unless capacity >= max_strata >= 1.
  static Result<StratifiedSampler> Make(int64_t capacity, int max_strata,
                                        uint64_t seed);

  /// Offers a tuple belonging to `stratum`. Unknown strata beyond max_strata
  /// are folded into stratum (id mod max_strata). Returned slots are global:
  /// stratum_index * per_stratum_capacity + local_slot.
  ReservoirDecision Offer(int64_t stratum);

  int64_t capacity() const { return per_stratum_ * max_strata_; }
  int64_t per_stratum_capacity() const { return per_stratum_; }
  int64_t seen() const { return seen_; }
  int num_active_strata() const { return static_cast<int>(strata_.size()); }

  /// Uniform inclusion probability within stratum `stratum` (1 while filling).
  double InclusionProbability(int64_t stratum) const;

 private:
  StratifiedSampler(int64_t per_stratum, int max_strata, uint64_t seed)
      : per_stratum_(per_stratum), max_strata_(max_strata), seed_(seed) {}

  int64_t per_stratum_;
  int max_strata_;
  uint64_t seed_;
  int64_t seen_ = 0;
  /// stratum id -> (dense stratum index, sampler)
  std::unordered_map<int64_t, std::pair<int, ReservoirSampler>> strata_;
};

}  // namespace sciborq

#endif  // SCIBORQ_SAMPLING_STRATIFIED_H_
