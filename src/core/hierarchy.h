#ifndef SCIBORQ_CORE_HIERARCHY_H_
#define SCIBORQ_CORE_HIERARCHY_H_

#include <optional>
#include <string>
#include <vector>

#include "core/impression.h"
#include "core/impression_builder.h"
#include "core/sharded_builder.h"
#include "util/result.h"
#include "util/rng.h"

namespace sciborq {

/// A multi-layer hierarchy of impressions (§3.1 "Layers"): layer 0 is the
/// largest impression, sampled directly from the base stream; every deeper
/// layer is *derived* from the layer above it by uniform subsampling, so it
/// inherits the parent's focal bias ("the focal point of the larger
/// impression is inherited by the smaller") and its maintenance touches only
/// the parent, never the base data.
///
/// Inclusion probabilities compose multiplicatively down the chain and are
/// pinned on each derived layer at refresh time, so estimates off any layer
/// remain unbiased for the base population.
///
/// The bounded executor walks layers from the *smallest* upward and falls
/// back to the base table when even layer 0 misses the error bound.
/// Tuning knobs for hierarchy maintenance.
struct HierarchyOptions {
  /// Derived layers are refreshed after this many newly ingested tuples
  /// (small layers need "fast reflexes", §3.1). 0 = refresh on every batch.
  int64_t refresh_interval = 0;
  /// Parallel database loads (§1): with more than one shard, the top layer
  /// is maintained by a ShardedImpressionBuilder whose shards each consume a
  /// contiguous slice of every ingest batch from their own load thread, and
  /// the queryable top impression is their weighted merge (materialized at
  /// refresh time). 1 = single serial builder (default), 0 = one shard per
  /// hardware thread, n = n shards. Deterministic for any fixed value.
  ///
  /// Two consequences of merge-at-refresh to plan around:
  ///  - each refresh pays an O(shards · capacity) merge pass on top of layer
  ///    derivation, so for high-frequency small batches set refresh_interval
  ///    well above the batch size (the default 0 re-merges every batch);
  ///  - between refreshes layer(0) serves the last merged snapshot (it lags
  ///    live ingest by up to refresh_interval tuples), whereas the serial
  ///    top layer is always live. population_seen() is live in both modes.
  int load_shards = 1;
};

/// The complete resumable state of an ImpressionHierarchy, as plain data.
/// Captured by SaveState(), serialized by storage/snapshot.h, rebuilt by
/// Restore(). Holds the top builder(s) (one entry = serial, several =
/// parallel-load shards), the materialized shard merge (sharded mode only),
/// every derived layer as-is (no re-derivation — that would burn RNG draws),
/// and the derivation RNG + refresh counter, so both queries *and* future
/// ingest behave exactly as if the process had never stopped.
struct HierarchyState {
  Rng::State derive_rng;
  int64_t ingested_since_refresh = 0;
  int64_t refresh_interval = 0;
  std::vector<ImpressionBuilderState> top;  ///< one per load shard
  std::optional<ImpressionState> merged_top;  ///< engaged iff top.size() > 1
  std::vector<ImpressionState> derived;       ///< layers 1..L-1
};

class ImpressionHierarchy {
 public:
  struct LayerSpec {
    std::string name;
    int64_t capacity = 0;
  };

  using Options = HierarchyOptions;

  /// `layers` ordered largest to smallest, strictly decreasing capacities.
  /// The top (largest) layer uses `top_spec` (policy/tracker/seed); its name
  /// and capacity come from layers[0].
  static Result<ImpressionHierarchy> Make(const Schema& schema,
                                          std::vector<LayerSpec> layers,
                                          ImpressionSpec top_spec,
                                          Options options = HierarchyOptions());

  /// Deep copy of the complete resumable state, for serialization. The layer
  /// geometry is implied by the contained impressions (top layer first,
  /// derived layers in order), so the state is self-describing.
  HierarchyState SaveState() const;

  /// Rebuilds a hierarchy from captured (or deserialized) state.
  /// `top_spec` supplies the runtime wiring (policy, seed, tracker pointers)
  /// while name/capacity and all sampler positions come from the state. No
  /// layer is re-derived and no RNG draw is consumed: queries answer
  /// bit-identically to the saved hierarchy, and the next IngestBatch
  /// continues the sampling streams exactly where they stopped.
  static Result<ImpressionHierarchy> Restore(const Schema& schema,
                                             ImpressionSpec top_spec,
                                             HierarchyState state);

  /// Feeds one daily-ingest batch to the top layer and refreshes derived
  /// layers when due.
  Status IngestBatch(const Table& batch);

  /// Rebuilds all derived layers from the layer above (cheap: touches only
  /// impressions).
  Status RefreshDerivedLayers();

  int num_layers() const { return static_cast<int>(layer_specs_.size()); }
  /// Layer 0 is the largest. Derived layers reflect the last refresh.
  const Impression& layer(int i) const;
  /// Layers ordered smallest first — the escalation order.
  std::vector<const Impression*> EscalationOrder() const;

  /// Live count of base tuples streamed into the top layer (across all load
  /// shards when loads are parallel).
  int64_t population_seen() const {
    return sharded_top_ ? sharded_top_->population_seen()
                        : top_builder_->impression().population_seen();
  }

  std::string ToString() const;

 private:
  ImpressionHierarchy(std::vector<LayerSpec> layer_specs, Options options,
                      uint64_t derive_seed)
      : layer_specs_(std::move(layer_specs)),
        options_(options),
        derive_rng_(derive_seed) {}

  /// The queryable top impression: the serial builder's live impression, or
  /// the materialized shard merge under parallel loads.
  const Impression& top_impression() const {
    return sharded_top_ ? *merged_top_ : top_builder_->impression();
  }

  /// Uniform without-replacement subsample of `parent` to `capacity`.
  Result<Impression> DeriveLayer(const Impression& parent,
                                 const LayerSpec& spec);

  std::vector<LayerSpec> layer_specs_;
  /// Exactly one of the two builders is engaged (load_shards == 1 vs > 1).
  std::optional<ImpressionBuilder> top_builder_;
  std::optional<ShardedImpressionBuilder> sharded_top_;
  /// Shard merge backing layer 0 under parallel loads; refreshed with the
  /// derived layers.
  std::optional<Impression> merged_top_;
  Options options_;
  Rng derive_rng_;
  std::vector<Impression> derived_;  ///< layers 1..L-1
  int64_t ingested_since_refresh_ = 0;
};

}  // namespace sciborq

#endif  // SCIBORQ_CORE_HIERARCHY_H_
