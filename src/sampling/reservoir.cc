#include "sampling/reservoir.h"

#include <cmath>

#include "util/check.h"

namespace sciborq {

Result<ReservoirSampler> ReservoirSampler::Make(int64_t capacity,
                                                uint64_t seed) {
  if (capacity <= 0) {
    return Status::InvalidArgument("reservoir capacity must be positive");
  }
  return ReservoirSampler(capacity, seed);
}

Result<ReservoirSampler> ReservoirSampler::Restore(int64_t capacity,
                                                   const State& state) {
  SCIBORQ_ASSIGN_OR_RETURN(ReservoirSampler sampler, Make(capacity, 0));
  if (state.seen < 0) {
    return Status::InvalidArgument("reservoir state: negative seen count");
  }
  sampler.seen_ = state.seen;
  sampler.rng_ = Rng::FromState(state.rng);
  return sampler;
}

ReservoirDecision ReservoirSampler::Offer() {
  ++seen_;
  if (seen_ <= capacity_) {
    // Fig. 2: "populate the sample smp with the first n tuples".
    return ReservoirDecision{true, seen_ - 1};
  }
  // Fig. 2: rnd := floor(cnt * random()); accept iff rnd < n.
  const auto rnd = static_cast<int64_t>(rng_.NextBounded(
      static_cast<uint64_t>(seen_)));
  if (rnd < capacity_) return ReservoirDecision{true, rnd};
  return ReservoirDecision{false, -1};
}

ReservoirSampler::SkipDecision ReservoirSampler::OfferWithSkip() {
  SCIBORQ_CHECK(full());
  // P(skip >= s) = Π_{i=1..s} (1 - n/(cnt+i)); invert by sequential search on
  // the product — expected O(cnt/n) iterations, amortized constant for the
  // bulk-load pattern. (A full Algorithm Z would jump in O(1); sequential
  // inversion keeps the arithmetic exact and is fast enough at our scales.)
  const double u = rng_.NextDouble();
  double prod = 1.0;
  int64_t skip = 0;
  while (true) {
    prod *= 1.0 -
            static_cast<double>(capacity_) / static_cast<double>(seen_ + skip + 1);
    if (prod <= u || prod <= 0.0) break;
    ++skip;
  }
  seen_ += skip + 1;  // the skipped tuples plus the accepted one
  const auto slot = static_cast<int64_t>(
      rng_.NextBounded(static_cast<uint64_t>(capacity_)));
  return SkipDecision{skip, slot};
}

double ReservoirSampler::InclusionProbability() const {
  if (seen_ <= capacity_) return 1.0;
  return static_cast<double>(capacity_) / static_cast<double>(seen_);
}

}  // namespace sciborq
