#ifndef SCIBORQ_UTIL_RNG_H_
#define SCIBORQ_UTIL_RNG_H_

#include <array>
#include <cstdint>

namespace sciborq {

/// Deterministic pseudo-random generator (xoshiro256**, Blackman & Vigna).
///
/// Every stochastic component of the library (reservoirs, synthetic data,
/// workload generators) draws from an explicitly seeded Rng so that tests and
/// benchmarks are reproducible. Not thread-safe; use one instance per thread.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64, which guarantees
  /// a well-mixed non-zero state for any seed value (including 0).
  explicit Rng(uint64_t seed = 0x5C1B09C1ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (cached pair).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda);

  /// Derives an independent generator; useful for sharded/parallel use.
  Rng Fork();

  /// The complete generator state (the four xoshiro lanes plus the Box-Muller
  /// cache). Capturing and restoring it lets persistent storage resume a
  /// sampler's random stream mid-sequence, bit-identically.
  struct State {
    std::array<uint64_t, 4> s{};
    double cached_gaussian = 0.0;
    bool has_cached_gaussian = false;
  };
  State SaveState() const;
  static Rng FromState(const State& state);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace sciborq

#endif  // SCIBORQ_UTIL_RNG_H_
