#include <gtest/gtest.h>

#include <cmath>

#include "exec/parser.h"
#include "stats/histogram2d.h"
#include "stats/kde.h"
#include "util/rng.h"
#include "workload/joint_tracker.h"

namespace sciborq {
namespace {

StreamingHistogram2D MakeGrid() {
  return StreamingHistogram2D::Make(0.0, 10.0, 10, 0.0, 5.0, 8).value();
}

TEST(Histogram2DTest, MakeValidation) {
  EXPECT_FALSE(StreamingHistogram2D::Make(0, 1, 0, 0, 1, 4).ok());
  EXPECT_FALSE(StreamingHistogram2D::Make(0, 1, 4, 0, 0.0, 4).ok());
  EXPECT_FALSE(StreamingHistogram2D::Make(NAN, 1, 4, 0, 1, 4).ok());
  EXPECT_TRUE(StreamingHistogram2D::Make(-5, 1, 4, -5, 1, 4).ok());
}

TEST(Histogram2DTest, ObserveTracksCellCountAndMeans) {
  StreamingHistogram2D h = MakeGrid();
  h.Observe(12.0, 7.0);
  h.Observe(18.0, 9.0);
  const auto& c = h.cell(1, 1);
  EXPECT_DOUBLE_EQ(c.count, 2.0);
  EXPECT_DOUBLE_EQ(c.mean_x, 15.0);
  EXPECT_DOUBLE_EQ(c.mean_y, 8.0);
  EXPECT_EQ(h.total_count(), 2);
}

TEST(Histogram2DTest, ClampingAtEdges) {
  StreamingHistogram2D h = MakeGrid();
  h.Observe(-100.0, -100.0);
  h.Observe(1e6, 1e6);
  EXPECT_EQ(h.clamped_count(), 2);
  EXPECT_DOUBLE_EQ(h.cell(0, 0).count, 1.0);
  EXPECT_DOUBLE_EQ(h.cell(9, 7).count, 1.0);
}

TEST(Histogram2DTest, DecayAndReset) {
  StreamingHistogram2D h = MakeGrid();
  for (int i = 0; i < 8; ++i) h.Observe(5.0, 2.0);
  h.Decay(0.25);
  EXPECT_DOUBLE_EQ(h.cell(0, 0).count, 2.0);
  EXPECT_DOUBLE_EQ(h.weighted_total(), 2.0);
  h.Reset();
  EXPECT_DOUBLE_EQ(h.cell(0, 0).count, 0.0);
  EXPECT_EQ(h.total_count(), 0);
}

TEST(Histogram2DTest, MergeMatchesUnion) {
  StreamingHistogram2D whole = MakeGrid();
  StreamingHistogram2D a = MakeGrid();
  StreamingHistogram2D b = MakeGrid();
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 40);
    whole.Observe(x, y);
    (i % 2 ? a : b).Observe(x, y);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(a.cell(i, j).count, whole.cell(i, j).count);
      EXPECT_NEAR(a.cell(i, j).mean_x, whole.cell(i, j).mean_x, 1e-9);
    }
  }
  StreamingHistogram2D other =
      StreamingHistogram2D::Make(0, 10, 10, 0, 5, 9).value();
  EXPECT_FALSE(a.Merge(other).ok());
}

TEST(BinnedKde2DTest, IntegratesToOne) {
  StreamingHistogram2D h =
      StreamingHistogram2D::Make(120, 7.5, 16, 0, 3.75, 16).value();
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    if (rng.Bernoulli(0.5)) {
      h.Observe(rng.Gaussian(150, 3), rng.Gaussian(12, 2));
    } else {
      h.Observe(rng.Gaussian(215, 3), rng.Gaussian(40, 2));
    }
  }
  const BinnedKde2D kde(&h);
  // 2-D Simpson via iterated 1-D integration.
  const auto inner = [&](double x) {
    return IntegrateDensity([&](double y) { return kde.Evaluate(x, y); },
                            -40.0, 100.0, 400);
  };
  const double integral = IntegrateDensity(inner, 60.0, 300.0, 400);
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(BinnedKde2DTest, JointDensityKillsPhantomCombinations) {
  // Foci at (150,12) and (215,40). The joint density must be high at the
  // true foci and near-zero at the phantom cross-products (150,40), (215,12)
  // — which independent marginals cannot distinguish.
  StreamingHistogram2D h =
      StreamingHistogram2D::Make(120, 3.0, 40, 0, 1.5, 40).value();
  Rng rng(9);
  for (int i = 0; i < 400; ++i) {
    if (rng.Bernoulli(0.5)) {
      h.Observe(rng.Gaussian(150, 2), rng.Gaussian(12, 1.5));
    } else {
      h.Observe(rng.Gaussian(215, 2), rng.Gaussian(40, 1.5));
    }
  }
  const BinnedKde2D kde(&h);
  const double real1 = kde.Evaluate(150, 12);
  const double real2 = kde.Evaluate(215, 40);
  const double phantom1 = kde.Evaluate(150, 40);
  const double phantom2 = kde.Evaluate(215, 12);
  EXPECT_GT(real1, 100.0 * phantom1);
  EXPECT_GT(real2, 100.0 * phantom2);
}

TEST(JointTrackerTest, MakeValidation) {
  JointInterestTracker::Spec spec;
  spec.column_x = "ra";
  spec.column_y = "ra";
  EXPECT_FALSE(JointInterestTracker::Make(spec).ok());
  spec.column_y = "dec";
  spec.bins_x = 0;
  EXPECT_FALSE(JointInterestTracker::Make(spec).ok());
}

JointInterestTracker MakeRaDecJoint() {
  JointInterestTracker::Spec spec;
  spec.column_x = "ra";
  spec.column_y = "dec";
  spec.min_x = 120.0;
  spec.width_x = 3.0;
  spec.bins_x = 40;
  spec.min_y = 0.0;
  spec.width_y = 1.5;
  spec.bins_y = 40;
  return JointInterestTracker::Make(spec).value();
}

TEST(JointTrackerTest, ObservesConePairsFromQueries) {
  JointInterestTracker tracker = MakeRaDecJoint();
  const AggregateQuery q =
      ParseQuery("SELECT COUNT(*) WHERE cone(ra, dec; 150, 12; r=3)").value();
  tracker.ObserveQuery(q);
  EXPECT_EQ(tracker.observed_pairs(), 1);
  // Swapped column order is normalized.
  const AggregateQuery swapped =
      ParseQuery("SELECT COUNT(*) WHERE cone(dec, ra; 12, 150; r=3)").value();
  tracker.ObserveQuery(swapped);
  EXPECT_EQ(tracker.observed_pairs(), 2);
  EXPECT_DOUBLE_EQ(tracker.histogram().cell(10, 8).count, 2.0);
}

TEST(JointTrackerTest, TupleWeightsFavorJointFocus) {
  JointInterestTracker tracker = MakeRaDecJoint();
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    if (rng.Bernoulli(0.5)) {
      tracker.ObservePair(rng.Gaussian(150, 2), rng.Gaussian(12, 1.5));
    } else {
      tracker.ObservePair(rng.Gaussian(215, 2), rng.Gaussian(40, 1.5));
    }
  }
  Table rows{Schema({Field{"ra", DataType::kDouble, false},
                     Field{"dec", DataType::kDouble, false}})};
  rows.AppendNumericRow({150.0, 12.0});  // true focus
  rows.AppendNumericRow({150.0, 40.0});  // phantom cross-product
  rows.AppendNumericRow({180.0, 25.0});  // nowhere
  const auto bound = tracker.BindColumns(rows.schema());
  const double w_real = tracker.TupleWeight(rows, bound, 0);
  const double w_phantom = tracker.TupleWeight(rows, bound, 1);
  const double w_far = tracker.TupleWeight(rows, bound, 2);
  EXPECT_GT(w_real, 50.0 * w_phantom);
  EXPECT_GT(w_real, 50.0 * w_far);
}

TEST(JointTrackerTest, ColdTrackerIsNeutral) {
  JointInterestTracker tracker = MakeRaDecJoint();
  Table rows{Schema({Field{"ra", DataType::kDouble, false},
                     Field{"dec", DataType::kDouble, false}})};
  rows.AppendNumericRow({150.0, 12.0});
  const auto bound = tracker.BindColumns(rows.schema());
  EXPECT_DOUBLE_EQ(tracker.TupleWeight(rows, bound, 0), 1.0);
}

TEST(JointTrackerTest, MissingColumnsAreNeutral) {
  JointInterestTracker tracker = MakeRaDecJoint();
  tracker.ObservePair(150.0, 12.0);
  Table rows{Schema({Field{"ra", DataType::kDouble, false}})};  // no dec
  rows.AppendNumericRow({150.0});
  const auto bound = tracker.BindColumns(rows.schema());
  EXPECT_DOUBLE_EQ(tracker.TupleWeight(rows, bound, 0), 1.0);
}

}  // namespace
}  // namespace sciborq
