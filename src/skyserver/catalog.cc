#include "skyserver/catalog.h"

#include <algorithm>
#include <cmath>

#include "exec/expr.h"
#include "util/string_util.h"

namespace sciborq {

Schema PhotoObjSchema() {
  return Schema({
      Field{"objid", DataType::kInt64, false},
      Field{"field_id", DataType::kInt64, false},
      Field{"ra", DataType::kDouble, false},
      Field{"dec", DataType::kDouble, false},
      Field{"u", DataType::kDouble, false},
      Field{"g", DataType::kDouble, false},
      Field{"r", DataType::kDouble, false},
      Field{"i", DataType::kDouble, false},
      Field{"z", DataType::kDouble, false},
      Field{"redshift", DataType::kDouble, false},
      Field{"obj_class", DataType::kString, false},
  });
}

SkyStream::SkyStream(const SkyCatalogConfig& config, uint64_t seed)
    : config_(config), rng_(seed), schema_(PhotoObjSchema()) {
  // Cluster centers: fixed for the stream's lifetime so that every daily
  // batch draws from the same (non-uniform) sky.
  cluster_ra_.reserve(static_cast<size_t>(config_.num_clusters));
  cluster_dec_.reserve(static_cast<size_t>(config_.num_clusters));
  for (int c = 0; c < config_.num_clusters; ++c) {
    cluster_ra_.push_back(rng_.Uniform(config_.ra_min, config_.ra_max));
    cluster_dec_.push_back(rng_.Uniform(config_.dec_min, config_.dec_max));
  }
}

void SkyStream::AppendRow(Table* table) {
  double ra = 0.0;
  double dec = 0.0;
  if (rng_.NextDouble() < config_.background_fraction ||
      cluster_ra_.empty()) {
    ra = rng_.Uniform(config_.ra_min, config_.ra_max);
    dec = rng_.Uniform(config_.dec_min, config_.dec_max);
  } else {
    const auto c = static_cast<size_t>(
        rng_.NextBounded(cluster_ra_.size()));
    ra = std::clamp(rng_.Gaussian(cluster_ra_[c], config_.cluster_sd),
                    config_.ra_min, config_.ra_max);
    dec = std::clamp(rng_.Gaussian(cluster_dec_[c], config_.cluster_sd),
                     config_.dec_min, config_.dec_max);
  }

  // Field id: equi-sized sky tiles.
  const int fpa = std::max(1, config_.fields_per_axis);
  const double fx = (ra - config_.ra_min) / (config_.ra_max - config_.ra_min);
  const double fy =
      (dec - config_.dec_min) / (config_.dec_max - config_.dec_min);
  const int64_t field_x = std::clamp<int64_t>(
      static_cast<int64_t>(fx * fpa), 0, fpa - 1);
  const int64_t field_y = std::clamp<int64_t>(
      static_cast<int64_t>(fy * fpa), 0, fpa - 1);
  const int64_t field_id = field_y * fpa + field_x;

  // Object class mix and photometry. Redshift correlates with class
  // (quasars far, stars at ~0) so aggregates differ between sky regions.
  const double class_draw = rng_.NextDouble();
  std::string obj_class;
  double redshift = 0.0;
  if (class_draw < 0.62) {
    obj_class = "GALAXY";
    redshift = std::max(0.0, rng_.Gaussian(config_.redshift_mean,
                                           config_.redshift_sd));
  } else if (class_draw < 0.92) {
    obj_class = "STAR";
    redshift = std::abs(rng_.Gaussian(0.0, 1e-4));
  } else {
    obj_class = "QSO";
    redshift = std::max(0.0, rng_.Gaussian(1.4, 0.6));
  }
  // Magnitudes: a crude color model around an r-band base.
  const double r_mag = rng_.Uniform(14.0, 24.0);
  const double g_r = rng_.Gaussian(0.6, 0.3);
  const double u_g = rng_.Gaussian(1.1, 0.4);
  const double r_i = rng_.Gaussian(0.3, 0.2);
  const double i_z = rng_.Gaussian(0.2, 0.2);

  const int64_t objid = ++produced_;
  Column& objid_col = table->column(0);
  (void)objid_col;
  // Columns: objid, field_id, ra, dec, u, g, r, i, z, redshift, obj_class.
  table->column(0).AppendInt64(objid);
  table->column(1).AppendInt64(field_id);
  table->column(2).AppendDouble(ra);
  table->column(3).AppendDouble(dec);
  table->column(4).AppendDouble(r_mag + g_r + u_g);
  table->column(5).AppendDouble(r_mag + g_r);
  table->column(6).AppendDouble(r_mag);
  table->column(7).AppendDouble(r_mag - r_i);
  table->column(8).AppendDouble(r_mag - r_i - i_z);
  table->column(9).AppendDouble(redshift);
  table->column(10).AppendString(obj_class);
}

Table SkyStream::NextBatch(int64_t batch_rows) {
  Table batch(schema_);
  batch.Reserve(batch_rows);
  const int64_t before = produced_;
  while (produced_ - before < batch_rows) AppendRow(&batch);
  // AppendRow fills columns directly; rebuild the row count via FromColumns.
  std::vector<Column> columns;
  columns.reserve(static_cast<size_t>(batch.num_columns()));
  for (int i = 0; i < batch.num_columns(); ++i) {
    columns.push_back(std::move(batch.column(i)));
  }
  return Table::FromColumns(schema_, std::move(columns)).value();
}

Result<SkyCatalog> GenerateSkyCatalog(const SkyCatalogConfig& config,
                                      uint64_t seed) {
  if (config.num_rows <= 0) {
    return Status::InvalidArgument("catalog needs a positive row count");
  }
  if (!(config.ra_max > config.ra_min) || !(config.dec_max > config.dec_min)) {
    return Status::InvalidArgument("empty sky extent");
  }
  SkyCatalog catalog;
  SkyStream stream(config, seed);
  catalog.photo_obj_all = stream.NextBatch(config.num_rows);

  // Field dimension: one row per sky tile.
  const int fpa = std::max(1, config.fields_per_axis);
  Table field{Schema({
      Field{"field_id", DataType::kInt64, false},
      Field{"ra_center", DataType::kDouble, false},
      Field{"dec_center", DataType::kDouble, false},
      Field{"seeing", DataType::kDouble, false},
      Field{"airmass", DataType::kDouble, false},
  })};
  Rng dim_rng(seed ^ 0xF1E1DULL);
  const double ra_step = (config.ra_max - config.ra_min) / fpa;
  const double dec_step = (config.dec_max - config.dec_min) / fpa;
  for (int y = 0; y < fpa; ++y) {
    for (int x = 0; x < fpa; ++x) {
      SCIBORQ_RETURN_NOT_OK(field.AppendRow({
          Value(static_cast<int64_t>(y) * fpa + x),
          Value(config.ra_min + (x + 0.5) * ra_step),
          Value(config.dec_min + (y + 0.5) * dec_step),
          Value(dim_rng.Uniform(0.8, 2.2)),
          Value(dim_rng.Uniform(1.0, 1.8)),
      }));
    }
  }
  catalog.field = std::move(field);

  Table tag{Schema({
      Field{"obj_class", DataType::kString, false},
      Field{"description", DataType::kString, false},
  })};
  SCIBORQ_RETURN_NOT_OK(
      tag.AppendRow({Value("GALAXY"), Value("extended extragalactic source")}));
  SCIBORQ_RETURN_NOT_OK(
      tag.AppendRow({Value("STAR"), Value("point source, galactic")}));
  SCIBORQ_RETURN_NOT_OK(
      tag.AppendRow({Value("QSO"), Value("quasi-stellar object")}));
  catalog.photo_tag = std::move(tag);
  return catalog;
}

Result<Table> SkyCatalog::GalaxyView() const {
  const PredicatePtr pred = Eq("obj_class", Value("GALAXY"));
  SCIBORQ_ASSIGN_OR_RETURN(SelectionVector rows,
                           SelectAll(photo_obj_all, *pred));
  return photo_obj_all.TakeRows(rows);
}

}  // namespace sciborq
