#include "util/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <ctime>

#include <chrono>

namespace sciborq {

namespace {

std::atomic<int> g_floor{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

void LogV(LogLevel level, const char* fmt, va_list args) {
  if (static_cast<int>(level) < g_floor.load(std::memory_order_relaxed)) {
    return;
  }
  char message[2048];
  std::vsnprintf(message, sizeof(message), fmt, args);
  // One fprintf per line keeps concurrent loggers' lines whole (stdio locks
  // the stream per call).
  std::fprintf(stderr, "[%s] %s %s\n", LogTimestamp().c_str(),
               LevelName(level), message);
  std::fflush(stderr);
}

}  // namespace

void SetLogLevel(LogLevel floor) {
  g_floor.store(static_cast<int>(floor), std::memory_order_relaxed);
}

std::string LogTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(millis));
  return buf;
}

void LogInfo(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  LogV(LogLevel::kInfo, fmt, args);
  va_end(args);
}

void LogWarn(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  LogV(LogLevel::kWarn, fmt, args);
  va_end(args);
}

void LogError(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  LogV(LogLevel::kError, fmt, args);
  va_end(args);
}

}  // namespace sciborq
