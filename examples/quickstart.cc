// Quickstart: the smallest end-to-end SciBORQ program — CSV to bounded
// answer in five lines through the sciborq::Engine facade.
//
// 1. Generate a synthetic sky catalog and write it to CSV (stand-in for
//    your data file).
// 2. Register it with the engine: base columns, impression hierarchy, query
//    log all come up automatically.
// 3. Ask an aggregate question in SQL; the runtime/quality contract lives
//    in the SQL itself (WITHIN ... MS ERROR ... %).
//
// Build & run:   ./build/example_quickstart

#include <cstdio>

#include "api/engine.h"
#include "column/csv.h"
#include "skyserver/catalog.h"

using namespace sciborq;

int main() {
  // ---- 0. Fake a data file: 200k synthetic PhotoObjAll rows as CSV. -----
  SkyCatalogConfig config;
  config.num_rows = 200'000;
  Result<SkyCatalog> catalog = GenerateSkyCatalog(config, /*seed=*/42);
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  const std::string csv_path = "/tmp/sciborq_quickstart.csv";
  if (Status st = WriteCsv(catalog->photo_obj_all, csv_path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // ---- The five lines: CSV to bounded answer. ---------------------------
  Engine engine;
  Result<int64_t> loaded = engine.RegisterCsv("photo_obj_all", csv_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Result<QueryOutcome> outcome = engine.Query(
      "SELECT COUNT(*), AVG(redshift) FROM photo_obj_all "
      "WHERE cone(ra, dec; 185, 30; r=5) WITHIN 1000 MS ERROR 8%");
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("loaded %lld rows\n%s\n\n",
              static_cast<long long>(*loaded),
              engine.DescribeTable("photo_obj_all")->c_str());
  std::printf("%s\n", outcome->ToString().c_str());

  // Compare against the exact answer — same SQL, EXACT contract.
  Result<QueryOutcome> exact = engine.Query(
      "SELECT COUNT(*), AVG(redshift) FROM photo_obj_all "
      "WHERE cone(ra, dec; 185, 30; r=5) EXACT");
  if (!exact.ok()) {
    std::fprintf(stderr, "%s\n", exact.status().ToString().c_str());
    return 1;
  }
  std::printf("\nexact: count=%.0f avg_redshift=%.4f (full scan, %.1f ms)\n",
              exact->rows[0].values[0], exact->rows[0].values[1],
              exact->elapsed_seconds * 1e3);
  return 0;
}
