// Concurrency hammer tests, designed to run under ThreadSanitizer (the CI
// `tsan` job runs this binary with -fsanitize=thread). Two protocols are
// exercised:
//
//  1. Checkpoint vs IngestBatch vs Query on one table. Queries must only
//     ever observe batch boundaries (the shared data lock makes ingest
//     atomic), and a checkpoint cut anywhere in the stream must reopen into
//     an engine that answers bit-identically to the one that wrote it.
//
//  2. Execute vs CloseStatement on one handle. Every Execute must either
//     produce the correct answer or fail NotFound — never crash, never
//     return a torn statement — because FindStatement hands Execute a
//     shared_ptr that keeps the template alive across a concurrent close.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "skyserver/catalog.h"

#include "test_temp_dir.h"

namespace sciborq {
namespace {

Table SkyRows(int64_t rows, uint64_t seed) {
  SkyCatalogConfig config;
  config.num_rows = rows;
  return GenerateSkyCatalog(config, seed).value().photo_obj_all;
}

Table SliceRows(const Table& src, int64_t begin, int64_t end) {
  Table out(src.schema());
  for (int64_t row = begin; row < end; ++row) out.AppendRowFrom(src, row);
  return out;
}

TableOptions SmallBiased() {
  TableOptions options;
  options.layers = {{"L0", 2'000}, {"L1", 200}};
  options.seed = 11;
  // A tracker makes ingest read the interest histograms mid-stream — the
  // aliased tracker path the static analysis cannot see; TSan watches it
  // here.
  options.tracked_attributes = {{"ra", 120.0, 3.0, 40}};
  return options;
}

/// Checkpoint, ingest, and query the same table from concurrent threads.
/// The count query runs EXACT under the shared data lock, so every answer
/// must land exactly on a batch boundary: kInitialRows + k * kBatchRows.
TEST(RaceTest, CheckpointVsIngestVsQuery) {
  constexpr int64_t kInitialRows = 3'000;
  constexpr int64_t kBatchRows = 500;
  constexpr int kBatches = 8;

  TempDir dir;
  std::unique_ptr<Engine> engine = Engine::Open(dir.path).value();
  const Table all = SkyRows(kInitialRows + kBatches * kBatchRows, 5);
  ASSERT_TRUE(engine
                  ->CreateTable("sky", all.schema(), SmallBiased())
                  .ok());
  ASSERT_TRUE(
      engine->IngestBatch("sky", SliceRows(all, 0, kInitialRows)).ok());

  // Every thread runs a fixed number of iterations rather than spinning
  // until the ingester finishes: a run-until-done reader loop would keep the
  // shared data lock continuously held and starve the exclusive ingester
  // (glibc rwlocks prefer readers), turning the test into a minutes-long
  // stall on small machines.
  std::thread ingester([&] {
    for (int b = 0; b < kBatches; ++b) {
      const int64_t begin = kInitialRows + b * kBatchRows;
      const Status st =
          engine->IngestBatch("sky", SliceRows(all, begin, begin + kBatchRows));
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  });

  std::thread checkpointer([&] {
    for (int i = 0; i < 6; ++i) {
      const Status st = engine->Checkpoint("sky");
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  });

  std::vector<std::thread> queriers;
  for (int t = 0; t < 2; ++t) {
    queriers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        const Result<QueryOutcome> outcome =
            engine->Query("SELECT COUNT(*) FROM sky EXACT");
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        const int64_t count =
            static_cast<int64_t>(outcome.value().rows[0].values[0]);
        // Ingest is atomic under the exclusive data lock: a reader can only
        // ever see whole batches.
        EXPECT_GE(count, kInitialRows);
        EXPECT_EQ((count - kInitialRows) % kBatchRows, 0)
            << "query observed a half-ingested batch: " << count;
      }
    });
  }

  ingester.join();
  for (auto& q : queriers) q.join();
  checkpointer.join();

  // Whatever interleaving ran, the final state must checkpoint and reopen
  // bit-identically (the recovery_test property, now under contention
  // beforehand).
  ASSERT_TRUE(engine->Checkpoint("sky").ok());
  const QueryOutcome pre =
      engine->Query("SELECT AVG(r) FROM sky WITHIN 10000 MS ERROR 20%")
          .value();
  EXPECT_EQ(engine->TableRows("sky").value(),
            kInitialRows + kBatches * kBatchRows);
  engine.reset();

  std::unique_ptr<Engine> reopened = Engine::Open(dir.path).value();
  const QueryOutcome post =
      reopened->Query("SELECT AVG(r) FROM sky WITHIN 10000 MS ERROR 20%")
          .value();
  EXPECT_TRUE(EquivalentAnswers(pre, post))
      << "pre: " << pre.ToString() << "\npost: " << post.ToString();
}

/// Execute racing CloseStatement on the same handle: each Execute either
/// answers correctly (it looked up the statement before the close landed)
/// or fails NotFound (after). Anything else — a crash, a torn template, a
/// wrong answer — is the bug this test exists to catch.
TEST(RaceTest, ExecuteVsCloseStatement) {
  constexpr int kRounds = 40;
  constexpr int64_t kRows = 2'000;

  Engine engine;
  const Table rows = SkyRows(kRows, 9);
  TableOptions options;
  options.layers = {{"L0", 1'000}, {"L1", 100}};
  ASSERT_TRUE(engine.CreateTable("sky", rows.schema(), options).ok());
  ASSERT_TRUE(engine.IngestBatch("sky", rows).ok());

  const std::string sql = "SELECT COUNT(*) FROM sky EXACT";
  const double expect = static_cast<double>(kRows);

  for (int round = 0; round < kRounds; ++round) {
    const StatementHandle handle = engine.Prepare(sql).value();

    std::vector<std::thread> executors;
    for (int t = 0; t < 2; ++t) {
      executors.emplace_back([&] {
        for (int i = 0; i < 4; ++i) {
          const Result<QueryOutcome> outcome = engine.Execute(handle, {});
          if (outcome.ok()) {
            EXPECT_DOUBLE_EQ(outcome.value().rows[0].values[0], expect);
          } else {
            EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound)
                << outcome.status().ToString();
          }
        }
      });
    }
    std::thread closer([&] {
      const Status st = engine.CloseStatement(handle);
      EXPECT_TRUE(st.ok()) << st.ToString();
    });

    for (auto& e : executors) e.join();
    closer.join();

    // The close won exactly once; nothing leaked.
    EXPECT_EQ(engine.CloseStatement(handle).code(), StatusCode::kNotFound);
    EXPECT_EQ(engine.open_statements(), 0);
  }
}

}  // namespace
}  // namespace sciborq
