#include "core/impression_builder.h"

#include "util/string_util.h"

namespace sciborq {

Result<ImpressionBuilder> ImpressionBuilder::Make(const Schema& schema,
                                                  ImpressionSpec spec) {
  if (spec.capacity <= 0) {
    return Status::InvalidArgument("impression capacity must be positive");
  }
  Impression impression(spec.name, schema, spec.capacity, spec.policy);
  ImpressionBuilder builder(spec, std::move(impression));
  switch (spec.policy) {
    case SamplingPolicy::kUniform: {
      SCIBORQ_ASSIGN_OR_RETURN(ReservoirSampler s,
                               ReservoirSampler::Make(spec.capacity, spec.seed));
      builder.uniform_ = std::move(s);
      break;
    }
    case SamplingPolicy::kLastSeen: {
      const int64_t k = spec.freshness_k > 0 ? spec.freshness_k : spec.capacity;
      if (spec.expected_ingest <= 0) {
        return Status::InvalidArgument(
            "last-seen impressions need expected_ingest (D)");
      }
      SCIBORQ_ASSIGN_OR_RETURN(
          LastSeenSampler s,
          LastSeenSampler::Make(spec.capacity, k, spec.expected_ingest,
                                spec.seed, spec.paper_faithful));
      builder.last_seen_ = std::move(s);
      builder.impression_.set_last_seen_params(k, spec.expected_ingest);
      break;
    }
    case SamplingPolicy::kBiased: {
      if (spec.tracker == nullptr && spec.joint_tracker == nullptr) {
        return Status::InvalidArgument(
            "biased impressions need an InterestTracker or a "
            "JointInterestTracker");
      }
      SCIBORQ_ASSIGN_OR_RETURN(
          BiasedReservoirSampler s,
          BiasedReservoirSampler::Make(spec.capacity, spec.seed,
                                       spec.paper_faithful));
      builder.biased_ = std::move(s);
      break;
    }
  }
  return builder;
}

Status ImpressionBuilder::IngestBatch(const Table& batch) {
  return IngestRows(batch, 0, batch.num_rows());
}

Status ImpressionBuilder::IngestRows(const Table& batch, int64_t begin,
                                     int64_t end) {
  if (!batch.schema().Equals(impression_.rows().schema())) {
    return Status::InvalidArgument(
        "batch schema does not match the impression schema");
  }
  if (begin < 0 || end > batch.num_rows() || begin > end) {
    return Status::OutOfRange("ingest slice outside the batch");
  }
  std::vector<int> bound;
  if (spec_.policy == SamplingPolicy::kBiased) {
    bound = spec_.joint_tracker != nullptr
                ? spec_.joint_tracker->BindColumns(batch.schema())
                : spec_.tracker->BindColumns(batch.schema());
  }
  for (int64_t row = begin; row < end; ++row) {
    double weight = 1.0;
    ReservoirDecision decision;
    switch (spec_.policy) {
      case SamplingPolicy::kUniform:
        decision = uniform_->Offer();
        break;
      case SamplingPolicy::kLastSeen:
        decision = last_seen_->Offer();
        break;
      case SamplingPolicy::kBiased:
        weight = spec_.joint_tracker != nullptr
                     ? spec_.joint_tracker->TupleWeight(batch, bound, row)
                     : spec_.tracker->TupleWeight(batch, bound, row);
        decision = biased_->Offer(weight);
        break;
    }
    if (decision.accepted) {
      // Source id: the global position of the tuple in the base stream.
      const int64_t source_id = impression_.population_seen();
      if (decision.slot < impression_.size()) {
        impression_.ReplaceSampledRow(decision.slot, batch, row, weight,
                                      source_id);
      } else {
        impression_.AppendSampledRow(batch, row, weight, source_id);
      }
    }
    impression_.set_population_seen(impression_.population_seen() + 1);
    if (spec_.policy == SamplingPolicy::kBiased) {
      impression_.set_population_weight(biased_->total_weight());
    }
  }
  if (spec_.policy == SamplingPolicy::kBiased) {
    impression_.set_acceptance_model(biased_->acceptance_curve(),
                                     biased_->curve_interval(),
                                     biased_->accepted_post_fill());
  }
  return Status::OK();
}

Impression ImpressionBuilder::Snapshot(const std::string& name) const {
  return impression_.Clone(name);
}

ImpressionBuilderState ImpressionBuilder::SaveState() const {
  ImpressionBuilderState state;
  state.impression = impression_.SaveState();
  if (uniform_) state.uniform = uniform_->SaveState();
  if (last_seen_) state.last_seen = last_seen_->SaveState();
  if (biased_) state.biased = biased_->SaveState();
  return state;
}

Status ImpressionBuilder::RestoreState(ImpressionBuilderState state) {
  if (state.impression.policy != spec_.policy) {
    return Status::InvalidArgument(
        "builder state: sampling policy does not match the builder spec");
  }
  if (!state.impression.rows.schema().Equals(impression_.rows().schema())) {
    return Status::InvalidArgument(
        "builder state: schema does not match the builder schema");
  }
  if (state.impression.capacity != spec_.capacity) {
    return Status::InvalidArgument(
        "builder state: capacity does not match the builder spec");
  }
  SCIBORQ_ASSIGN_OR_RETURN(Impression restored,
                           Impression::FromState(std::move(state.impression)));
  switch (spec_.policy) {
    case SamplingPolicy::kUniform: {
      if (!state.uniform) {
        return Status::InvalidArgument(
            "builder state: uniform policy needs a reservoir sampler state");
      }
      SCIBORQ_ASSIGN_OR_RETURN(
          ReservoirSampler sampler,
          ReservoirSampler::Restore(spec_.capacity, *state.uniform));
      uniform_ = std::move(sampler);
      break;
    }
    case SamplingPolicy::kLastSeen: {
      if (!state.last_seen) {
        return Status::InvalidArgument(
            "builder state: last-seen policy needs a last-seen sampler state");
      }
      const int64_t k = spec_.freshness_k > 0 ? spec_.freshness_k : spec_.capacity;
      SCIBORQ_ASSIGN_OR_RETURN(
          LastSeenSampler sampler,
          LastSeenSampler::Restore(spec_.capacity, k, spec_.expected_ingest,
                                   spec_.paper_faithful, *state.last_seen));
      last_seen_ = std::move(sampler);
      break;
    }
    case SamplingPolicy::kBiased: {
      if (!state.biased) {
        return Status::InvalidArgument(
            "builder state: biased policy needs a biased sampler state");
      }
      SCIBORQ_ASSIGN_OR_RETURN(
          BiasedReservoirSampler sampler,
          BiasedReservoirSampler::Restore(spec_.capacity, spec_.paper_faithful,
                                          std::move(*state.biased)));
      biased_ = std::move(sampler);
      break;
    }
  }
  impression_ = std::move(restored);
  return Status::OK();
}

}  // namespace sciborq
