#ifndef SCIBORQ_EXEC_EXPR_H_
#define SCIBORQ_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "column/table.h"
#include "column/types.h"
#include "column/value.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace sciborq {

/// One scalar value requested by a query predicate on one attribute — the
/// atoms of the paper's *predicate set* (§4). The workload tracker folds
/// these into per-attribute histograms that steer the sampling bias.
struct PredicatePoint {
  std::string column;
  double value;
};

/// A *correlated* pair of requested values on two attributes — emitted by
/// predicates that constrain two attributes jointly (the cone shape of
/// fGetNearbyObjEq). Feeds the 2-D joint interest histograms (the paper's
/// footnote-3 / §6 multi-dimensional extension).
struct PredicatePair {
  std::string column_x;
  std::string column_y;
  double x;
  double y;
};

/// What a predicate can conclude about one contiguous row range from its
/// zone maps alone (column/encoding/encoding.h), without touching data.
enum class MorselVerdict {
  kScanRows,  ///< undecided — evaluate the rows
  kSkipAll,   ///< no row in the range can match
  kMatchAll,  ///< every row in the range matches (nulls included)
};

/// A boolean filter over table rows. Implementations are vectorized: Select()
/// intersects a candidate list in one pass, MonetDB-style. Predicates are
/// immutable after construction and shared between base tables and
/// impressions (identical schemas).
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Narrows `candidates` to the rows satisfying the predicate, appending to
  /// `out` (which is cleared first). Error when a referenced column is
  /// missing or mistyped.
  virtual Status Select(const Table& table, const SelectionVector& candidates,
                        SelectionVector* out) const = 0;

  /// Row-at-a-time evaluation for streaming paths. Precondition: the schema
  /// was validated by a prior Select or Validate call.
  virtual bool Matches(const Table& table, int64_t row) const = 0;

  /// Zone-map verdict for rows [begin, end). Sound but not complete: a
  /// kSkipAll/kMatchAll answer is a guarantee, kScanRows just means the zone
  /// maps could not decide (no sidecar, unaligned range, or genuinely mixed
  /// rows). The default — and any predicate without pruning support —
  /// returns kScanRows, which is always correct.
  virtual MorselVerdict TestMorsel(const Table& table, int64_t begin,
                                   int64_t end) const {
    (void)table, (void)begin, (void)end;
    return MorselVerdict::kScanRows;
  }

  /// Selects the matching rows of the contiguous range [begin, end) into
  /// `out` (cleared first, emitted ascending) — the morsel scan path.
  /// Equivalent to Select() over the dense candidate list, but overrides
  /// run vectorized kernels (exec/kernels.h) or compressed-domain scans
  /// instead of materializing candidates. Precondition: the schema was
  /// validated (SelectAll validates once before fanning out).
  virtual Status SelectRange(const Table& table, int64_t begin, int64_t end,
                             SelectionVector* out) const;

  /// Checks column references/types against a schema without running.
  virtual Status Validate(const Schema& schema) const = 0;

  /// Contributes this predicate's requested values (see PredicatePoint).
  virtual void CollectPredicatePoints(
      std::vector<PredicatePoint>* points) const = 0;

  /// Contributes correlated attribute pairs (see PredicatePair). Default:
  /// none — only jointly-constraining predicates (cones) emit pairs;
  /// boolean combinators forward to their children.
  virtual void CollectPredicatePairs(std::vector<PredicatePair>*) const {}

  /// SQL-ish rendering for logs and debugging.
  virtual std::string ToString() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<Predicate> Clone() const = 0;

  /// Deep copy with every `?` parameter placeholder replaced by its bound
  /// value (`params` is indexed by slot). Placeholder-free predicates just
  /// Clone; combinators rebind their children. InvalidArgument when a
  /// parameter is unbindable (out-of-range slot, NULL value).
  virtual Result<std::unique_ptr<Predicate>> BindParams(
      const std::vector<Value>& params) const;

  /// True when the tree still contains unbound `?` placeholders — such a
  /// tree renders and clones but refuses to execute.
  virtual bool HasUnboundParams() const { return false; }
};

using PredicatePtr = std::unique_ptr<Predicate>;

/// Runs a predicate against all rows of a table. With a pool, the scan is
/// morsel-parallel: contiguous morsels filter on the pool's workers and the
/// per-morsel selections concatenate in morsel order, so the result is
/// identical to the serial scan. Each morsel first consults the predicate's
/// zone-map verdict (TestMorsel): skipped morsels never touch data (counted
/// in sciborq_morsels_skipped_total), blanket-matching morsels emit their
/// dense row range, and only undecided morsels run SelectRange.
Result<SelectionVector> SelectAll(const Table& table, const Predicate& pred,
                                  ThreadPool* pool = nullptr);

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
std::string_view CompareOpToString(CompareOp op);

// ---------------------------------------------------------------------------
// Factory functions — the public way to build predicate trees:
//   auto p = And(Ge("ra", 180.0), Le("ra", 190.0), Eq("class", "GALAXY"));
// ---------------------------------------------------------------------------

PredicatePtr Compare(std::string column, CompareOp op, Value literal);
PredicatePtr Eq(std::string column, Value literal);
PredicatePtr Ne(std::string column, Value literal);
PredicatePtr Lt(std::string column, Value literal);
PredicatePtr Le(std::string column, Value literal);
PredicatePtr Gt(std::string column, Value literal);
PredicatePtr Ge(std::string column, Value literal);

/// lo <= column <= hi (numeric).
PredicatePtr Between(std::string column, double lo, double hi);

/// Euclidean cone in two attributes (the SkyServer fGetNearbyObjEq shape):
/// (c1 - x0)^2 + (c2 - y0)^2 <= radius^2. The paper's focal-point queries.
PredicatePtr Cone(std::string column_x, std::string column_y, double x0,
                  double y0, double radius);

PredicatePtr Not(PredicatePtr child);
PredicatePtr And(std::vector<PredicatePtr> children);
PredicatePtr Or(std::vector<PredicatePtr> children);

/// A `?` parameter placeholder in comparison position: `column <op> ?`,
/// the building block of prepared statements (exec/parser.h's
/// ParsePreparedQuery). Renders as "column <op> ?"; Select/Validate fail
/// with FailedPrecondition until BindParams substitutes params[slot],
/// producing a plain comparison.
PredicatePtr Param(std::string column, CompareOp op, size_t slot);

/// Variadic conveniences.
template <typename... Ps>
PredicatePtr And(Ps... preds) {
  std::vector<PredicatePtr> children;
  (children.push_back(std::move(preds)), ...);
  return And(std::move(children));
}
template <typename... Ps>
PredicatePtr Or(Ps... preds) {
  std::vector<PredicatePtr> children;
  (children.push_back(std::move(preds)), ...);
  return Or(std::move(children));
}

}  // namespace sciborq

#endif  // SCIBORQ_EXEC_EXPR_H_
