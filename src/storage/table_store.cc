#include "storage/table_store.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <utility>

#include "column/serde.h"
#include "obs/metrics.h"
#include "storage/file_io.h"
#include "util/string_util.h"

namespace sciborq {

namespace {

constexpr uint8_t kRecordCreateTable = 1;
constexpr uint8_t kRecordIngestBatch = 2;
constexpr uint8_t kRecordCreateTableRetention = 3;

constexpr char kSnapshotSuffix[] = ".snapshot";
constexpr char kWalSuffix[] = ".wal";
constexpr char kTombstoneSuffix[] = ".dropped";

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() > n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string StripSuffix(const std::string& s, const char* suffix) {
  return s.substr(0, s.size() - std::strlen(suffix));
}

/// True when `filename` is `<table>.wal.<index>`. Parsed from the right so
/// table names containing dots (including ones ending in ".wal") resolve
/// unambiguously: the trailing `.wal.<digits>` is stripped as one unit.
bool ParseSegmentName(const std::string& filename, std::string* table,
                      int64_t* index) {
  const size_t dot = filename.rfind('.');
  if (dot == std::string::npos || dot + 1 >= filename.size()) return false;
  const std::string digits = filename.substr(dot + 1);
  if (digits.size() > 18) return false;  // fits in int64 comfortably
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  const std::string prefix = filename.substr(0, dot);
  if (!HasSuffix(prefix, kWalSuffix)) return false;
  *table = StripSuffix(prefix, kWalSuffix);
  if (table->empty()) return false;
  *index = 0;
  for (const char c : digits) *index = *index * 10 + (c - '0');
  return true;
}

}  // namespace

Status TableStore::ValidateTableName(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (name == "." || name == "..") {
    return Status::InvalidArgument("table name must not be '.' or '..'");
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) {
      return Status::InvalidArgument(StrFormat(
          "table name '%s' cannot be persisted: names become file names and "
          "may only contain [A-Za-z0-9_.-]",
          name.c_str()));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<TableStore>> TableStore::Open(std::string db_dir) {
  if (db_dir.empty()) {
    return Status::InvalidArgument("db directory path must be non-empty");
  }
  std::error_code ec;
  std::filesystem::create_directories(db_dir, ec);
  if (ec) {
    return Status::IOError(StrFormat("cannot create db directory %s: %s",
                                     db_dir.c_str(), ec.message().c_str()));
  }
  // A checkpoint interrupted before its rename leaves a *.tmp sibling; it
  // was never the live snapshot, so it is safe to discard.
  for (const auto& entry : std::filesystem::directory_iterator(db_dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tmp") {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  return std::unique_ptr<TableStore>(new TableStore(std::move(db_dir)));
}

std::string TableStore::SnapshotPath(const std::string& table) const {
  return dir_ + "/" + table + kSnapshotSuffix;
}

std::string TableStore::SegmentPath(const std::string& table,
                                    int64_t index) const {
  return dir_ + "/" + table + kWalSuffix + "." + std::to_string(index);
}

std::string TableStore::TombstonePath(const std::string& table) const {
  return dir_ + "/" + table + kTombstoneSuffix;
}

std::string TableStore::LegacyWalPath(const std::string& table) const {
  return dir_ + "/" + table + kWalSuffix;
}

bool TableStore::HasSnapshot(const std::string& table) const {
  return PathExists(SnapshotPath(table));
}

void TableStore::UpdateSegmentsGauge(const std::string& name, int64_t count) {
  obs::DefaultRegistry()
      ->GetGauge("sciborq_wal_segments",
                 "On-disk WAL segments per table (sealed plus active).",
                 {{"table", name}})
      ->Set(static_cast<double>(count));
}

void TableStore::UnlinkTableFiles(const std::string& name) {
  ::unlink(SnapshotPath(name).c_str());
  ::unlink((SnapshotPath(name) + ".tmp").c_str());
  ::unlink(LegacyWalPath(name).c_str());
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string table;
    int64_t index = 0;
    if (ParseSegmentName(entry.path().filename().string(), &table, &index) &&
        table == name) {
      ::unlink(entry.path().c_str());
    }
  }
}

Result<std::vector<RecoveredTable>> TableStore::Recover() {
  // Pass 1: finish interrupted drops. A tombstone means the drop decision
  // was already durable — the table must not come back, whatever subset of
  // its files the crash left behind.
  {
    std::vector<std::string> dropped;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string filename = entry.path().filename().string();
      if (HasSuffix(filename, kTombstoneSuffix)) {
        dropped.push_back(StripSuffix(filename, kTombstoneSuffix));
      }
    }
    for (const std::string& name : dropped) {
      UnlinkTableFiles(name);
      ::unlink(TombstonePath(name).c_str());
    }
    if (!dropped.empty()) {
      SCIBORQ_RETURN_NOT_OK(SyncParentDir(TombstonePath(dropped.front())));
    }
  }

  // Pass 2: discover every table's files.
  struct FoundFiles {
    bool snapshot = false;
    bool legacy_wal = false;
    std::vector<int64_t> segments;
  };
  std::map<std::string, FoundFiles> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string filename = entry.path().filename().string();
    std::string table;
    int64_t index = 0;
    if (ParseSegmentName(filename, &table, &index)) {
      found[table].segments.push_back(index);
    } else if (HasSuffix(filename, kSnapshotSuffix)) {
      found[StripSuffix(filename, kSnapshotSuffix)].snapshot = true;
    } else if (HasSuffix(filename, kWalSuffix)) {
      found[StripSuffix(filename, kWalSuffix)].legacy_wal = true;
    }
  }
  if (ec) {
    return Status::IOError(StrFormat("cannot scan db directory %s: %s",
                                     dir_.c_str(), ec.message().c_str()));
  }

  std::vector<RecoveredTable> out;
  for (auto& [name, files] : found) {
    SCIBORQ_RETURN_NOT_OK(ValidateTableName(name));

    // Migrate a pre-segmentation WAL: it becomes segment 0. Coexistence of
    // both forms cannot arise from any crash of this code (the rename is
    // the only writer of the legacy name) — refuse rather than guess which
    // file holds the truth.
    if (files.legacy_wal) {
      if (!files.segments.empty()) {
        return Status::InvalidArgument(StrFormat(
            "table '%s' has both a legacy WAL and numbered segments — the "
            "db directory is damaged",
            name.c_str()));
      }
      if (::rename(LegacyWalPath(name).c_str(),
                   SegmentPath(name, 0).c_str()) != 0) {
        return ErrnoStatus("rename", LegacyWalPath(name));
      }
      SCIBORQ_RETURN_NOT_OK(SyncParentDir(SegmentPath(name, 0)));
      files.segments.push_back(0);
    }

    RecoveredTable recovered;
    recovered.name = name;
    int64_t last_seq = 0;
    if (files.snapshot) {
      const std::string snapshot_path = SnapshotPath(name);
      SCIBORQ_ASSIGN_OR_RETURN(TableSnapshot snap,
                               ReadTableSnapshot(snapshot_path));
      if (snap.table != name) {
        return Status::InvalidArgument(StrFormat(
            "snapshot %s claims to hold table '%s'", snapshot_path.c_str(),
            snap.table.c_str()));
      }
      last_seq = snap.last_seq;
      recovered.snapshot = std::move(snap);
    }

    std::sort(files.segments.begin(), files.segments.end());
    // Segment GC deletes prefixes only, so the run must be contiguous; a
    // hole in the middle is a deleted-but-uncovered segment — acknowledged
    // data is gone and replay past the hole would be silently wrong.
    for (size_t i = 1; i < files.segments.size(); ++i) {
      if (files.segments[i] != files.segments[i - 1] + 1) {
        return Status::InvalidArgument(StrFormat(
            "table '%s' is missing WAL segment %lld (found %lld then %lld) — "
            "acknowledged batches are lost; refusing recovery",
            name.c_str(), static_cast<long long>(files.segments[i - 1] + 1),
            static_cast<long long>(files.segments[i - 1]),
            static_cast<long long>(files.segments[i])));
      }
    }

    struct ScannedSegment {
      int64_t index = 0;
      int64_t max_seq = 0;
      int64_t record_count = 0;
      int64_t valid_bytes = 0;
    };
    std::vector<ScannedSegment> scanned;
    int64_t total_records = 0;
    for (size_t i = 0; i < files.segments.size(); ++i) {
      const int64_t index = files.segments[i];
      const bool is_highest = i + 1 == files.segments.size();
      const std::string path = SegmentPath(name, index);
      SCIBORQ_ASSIGN_OR_RETURN(const WalScanResult scan, ScanWal(path));
      if (scan.torn_tail && !is_highest) {
        // Appends only ever ran in the highest-numbered segment; a torn
        // tail anywhere else is damage to acknowledged, sealed data.
        return Status::InvalidArgument(StrFormat(
            "wal segment %s has a torn tail (%s) but is not the newest "
            "segment — corruption in acknowledged data",
            path.c_str(), scan.tail_error.c_str()));
      }
      if (scan.torn_tail) {
        recovered.wal_tail_dropped = true;
        recovered.wal_tail_error = scan.tail_error;
      }
      ScannedSegment seg;
      seg.index = index;
      seg.valid_bytes = scan.valid_bytes;
      seg.record_count = static_cast<int64_t>(scan.records.size());
      total_records += seg.record_count;
      for (const std::string& payload : scan.records) {
        Result<WalRecord> record = DecodeWalRecord(payload);
        if (!record.ok()) {
          return Status::InvalidArgument(StrFormat(
              "wal %s: %s", path.c_str(), record.status().message().c_str()));
        }
        if (record->type == WalRecord::Type::kCreateTable) {
          recovered.created_schema = std::move(record->schema);
          recovered.created_config = std::move(record->config);
        } else {
          seg.max_seq = std::max(seg.max_seq, record->seq);
          if (record->seq > last_seq) {
            // seq <= last_seq means the batch is already folded into the
            // snapshot (a crash between snapshot rename and segment GC).
            recovered.batches.push_back(
                PendingBatch{record->seq, std::move(*record->batch)});
          }
        }
      }
      scanned.push_back(seg);
    }

    if (!recovered.snapshot && total_records == 0) {
      // Segments with no snapshot behind them and no complete record: a
      // crash interrupted the very first CreateTable before its create
      // record became durable. Nothing was ever acknowledged, so drop the
      // stray files instead of refusing the whole boot.
      for (const ScannedSegment& seg : scanned) {
        ::unlink(SegmentPath(name, seg.index).c_str());
      }
      continue;
    }
    if (!recovered.snapshot && !recovered.created_schema) {
      return Status::InvalidArgument(StrFormat(
          "table '%s' has neither a snapshot nor a create-table WAL record — "
          "the db directory is damaged",
          name.c_str()));
    }

    // Recovery-time GC: re-delete sealed segments the snapshot fully covers.
    // This is the convergence half of checkpoint/eviction GC — a crash
    // between the snapshot rename and the segment unlinks finishes here, so
    // re-running GC is idempotent instead of accumulating covered segments.
    if (recovered.snapshot) {
      size_t keep_from = 0;
      while (keep_from + 1 < scanned.size() &&
             scanned[keep_from].max_seq <= last_seq) {
        ::unlink(SegmentPath(name, scanned[keep_from].index).c_str());
        ++keep_from;
      }
      if (keep_from > 0) {
        SCIBORQ_RETURN_NOT_OK(SyncParentDir(SnapshotPath(name)));
        scanned.erase(scanned.begin(),
                      scanned.begin() + static_cast<ptrdiff_t>(keep_from));
      }
    }

    // Open (or create) the active segment and record the sealed ledger.
    auto wal = std::make_unique<TableWal>();
    if (scanned.empty()) {
      SCIBORQ_ASSIGN_OR_RETURN(WalWriter writer,
                               WalWriter::Create(SegmentPath(name, 0)));
      wal->active = std::make_unique<WalWriter>(std::move(writer));
      wal->active_index = 0;
    } else {
      const ScannedSegment& newest = scanned.back();
      // Reopening truncates the torn tail on disk.
      SCIBORQ_ASSIGN_OR_RETURN(
          WalWriter writer,
          WalWriter::OpenExisting(SegmentPath(name, newest.index),
                                  newest.valid_bytes));
      wal->active = std::make_unique<WalWriter>(std::move(writer));
      wal->active_index = newest.index;
      wal->active_records = newest.record_count;
      wal->active_last_seq = newest.max_seq;
      for (size_t i = 0; i + 1 < scanned.size(); ++i) {
        wal->sealed.push_back(
            SealedSegment{scanned[i].index, scanned[i].max_seq});
      }
    }

    std::sort(recovered.batches.begin(), recovered.batches.end(),
              [](const PendingBatch& a, const PendingBatch& b) {
                return a.seq < b.seq;
              });
    UpdateSegmentsGauge(name,
                        static_cast<int64_t>(wal->sealed.size()) + 1);
    {
      MutexLock lock(&mu_);
      wals_[name] = std::move(wal);
    }
    out.push_back(std::move(recovered));
  }
  return out;
}

Result<TableStore::TableWal*> TableStore::FindWal(const std::string& name) {
  MutexLock lock(&mu_);
  const auto it = wals_.find(name);
  if (it == wals_.end()) {
    return Status::NotFound(
        StrFormat("no WAL open for table '%s'", name.c_str()));
  }
  return it->second.get();
}

Status TableStore::LogCreate(const std::string& name, const Schema& schema,
                             const PersistedTableConfig& config) {
  SCIBORQ_RETURN_NOT_OK(ValidateTableName(name));
  SCIBORQ_ASSIGN_OR_RETURN(WalWriter writer,
                           WalWriter::Create(SegmentPath(name, 0)));
  SCIBORQ_RETURN_NOT_OK(writer.Append(EncodeCreateRecord(schema, config)));
  auto wal = std::make_unique<TableWal>();
  wal->active = std::make_unique<WalWriter>(std::move(writer));
  wal->active_index = 0;
  wal->active_records = 1;  // the create record
  UpdateSegmentsGauge(name, 1);
  MutexLock lock(&mu_);
  wals_[name] = std::move(wal);
  return Status::OK();
}

Status TableStore::RotateLocked(const std::string& name, TableWal* wal) {
  if (wal->active_records == 0) {
    // Never seal a header-only segment: it would sit mid-run holding
    // nothing, and the crash-shape analysis relies on "records exist in
    // every sealed segment up to its recorded last_seq".
    return Status::OK();
  }
  const int64_t next = wal->active_index + 1;
  // Create the successor first; only once it is durable does the current
  // segment seal. A crash in between leaves a header-only highest segment,
  // which recovery simply reopens as the active one.
  SCIBORQ_ASSIGN_OR_RETURN(WalWriter writer,
                           WalWriter::Create(SegmentPath(name, next)));
  wal->sealed.push_back(SealedSegment{wal->active_index, wal->active_last_seq});
  wal->active = std::make_unique<WalWriter>(std::move(writer));  // closes old fd
  wal->active_index = next;
  wal->active_records = 0;
  wal->active_last_seq = 0;
  UpdateSegmentsGauge(name, static_cast<int64_t>(wal->sealed.size()) + 1);
  return Status::OK();
}

Status TableStore::RotateWal(const std::string& name) {
  SCIBORQ_ASSIGN_OR_RETURN(TableWal * wal, FindWal(name));
  return RotateLocked(name, wal);
}

Result<int64_t> TableStore::LogBatch(const std::string& name,
                                     const Table& batch, int64_t seq) {
  SCIBORQ_ASSIGN_OR_RETURN(TableWal * wal, FindWal(name));
  if (wal->active->size_bytes() >= segment_bytes_) {
    SCIBORQ_RETURN_NOT_OK(RotateLocked(name, wal));
  }
  const int64_t offset_before = wal->active->size_bytes();
  SCIBORQ_RETURN_NOT_OK(wal->active->Append(EncodeBatchRecord(seq, batch)));
  ++wal->active_records;
  wal->active_last_seq = seq;
  return offset_before;
}

Status TableStore::UnlogBatch(const std::string& name, int64_t offset_before) {
  SCIBORQ_ASSIGN_OR_RETURN(TableWal * wal, FindWal(name));
  SCIBORQ_RETURN_NOT_OK(wal->active->TruncateTo(offset_before));
  if (wal->active_records > 0) --wal->active_records;
  // active_last_seq deliberately stays at the unlogged batch's sequence:
  // sealing with a too-high last_seq only delays GC (conservative), while
  // rewinding it without knowing the previous record's sequence could let
  // GC delete a segment whose records it misjudged.
  return Status::OK();
}

Result<int> TableStore::GcWalSegments(const std::string& name,
                                      int64_t covered_seq) {
  SCIBORQ_ASSIGN_OR_RETURN(TableWal * wal, FindWal(name));
  if (!HasSnapshot(name)) {
    return Status::FailedPrecondition(StrFormat(
        "cannot GC WAL segments of '%s': no snapshot exists, so segment 0's "
        "create-table record is the only durable record of the table",
        name.c_str()));
  }
  int deleted = 0;
  while (!wal->sealed.empty() && wal->sealed.front().last_seq <= covered_seq) {
    const std::string path = SegmentPath(name, wal->sealed.front().index);
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink", path);
    }
    wal->sealed.erase(wal->sealed.begin());
    ++deleted;
  }
  if (deleted > 0) {
    SCIBORQ_RETURN_NOT_OK(SyncParentDir(SnapshotPath(name)));
    UpdateSegmentsGauge(name, static_cast<int64_t>(wal->sealed.size()) + 1);
  }
  return deleted;
}

Result<std::vector<WalSegmentInfo>> TableStore::WalSegments(
    const std::string& name) {
  SCIBORQ_ASSIGN_OR_RETURN(TableWal * wal, FindWal(name));
  std::vector<WalSegmentInfo> out;
  out.reserve(wal->sealed.size() + 1);
  for (const SealedSegment& s : wal->sealed) {
    out.push_back(WalSegmentInfo{s.index, s.last_seq, /*sealed=*/true});
  }
  out.push_back(WalSegmentInfo{wal->active_index, wal->active_last_seq,
                               /*sealed=*/false});
  return out;
}

void TableStore::DropWal(const std::string& name) {
  {
    MutexLock lock(&mu_);
    wals_.erase(name);  // closes the fd
  }
  ::unlink(LegacyWalPath(name).c_str());
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string table;
    int64_t index = 0;
    if (ParseSegmentName(entry.path().filename().string(), &table, &index) &&
        table == name) {
      ::unlink(entry.path().c_str());
    }
  }
  UpdateSegmentsGauge(name, 0);
}

Status TableStore::DropTable(const std::string& name) {
  SCIBORQ_RETURN_NOT_OK(ValidateTableName(name));
  {
    MutexLock lock(&mu_);
    wals_.erase(name);  // closes the fds
  }
  // The tombstone is the commit point: once it is durable, the drop happens
  // even if the process dies before the unlinks below (recovery finishes
  // them). Until then a crash leaves every file intact and the table comes
  // back whole.
  const std::string tombstone = TombstonePath(name);
  SCIBORQ_RETURN_NOT_OK(WriteFileDurably(tombstone, "dropped\n"));
  SCIBORQ_RETURN_NOT_OK(SyncParentDir(tombstone));
  UnlinkTableFiles(name);
  ::unlink(tombstone.c_str());
  SCIBORQ_RETURN_NOT_OK(SyncParentDir(tombstone));
  UpdateSegmentsGauge(name, 0);
  return Status::OK();
}

Status TableStore::WriteCheckpoint(const TableSnapshot& snap) {
  SCIBORQ_ASSIGN_OR_RETURN(TableWal * wal, FindWal(snap.table));
  const uint32_t version = snap.config.retention.enabled() ? 3u : 2u;
  SCIBORQ_RETURN_NOT_OK(
      WriteTableSnapshot(snap, SnapshotPath(snap.table), version));
  // The snapshot is durable and covers every logged batch (the engine holds
  // ingest off for the build/write window), so the sealed segments can go
  // and the active one resets. A crash anywhere in here is handled by
  // recovery's seq comparison plus its re-GC of covered segments.
  const bool had_sealed = !wal->sealed.empty();
  for (const SealedSegment& s : wal->sealed) {
    const std::string path = SegmentPath(snap.table, s.index);
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink", path);
    }
  }
  wal->sealed.clear();
  if (had_sealed) {
    SCIBORQ_RETURN_NOT_OK(SyncParentDir(SnapshotPath(snap.table)));
  }
  SCIBORQ_RETURN_NOT_OK(wal->active->Reset());
  wal->active_records = 0;
  wal->active_last_seq = 0;
  UpdateSegmentsGauge(snap.table, 1);
  return Status::OK();
}

// -- WAL record codecs ------------------------------------------------------

std::string EncodeCreateRecord(const Schema& schema,
                               const PersistedTableConfig& config) {
  const bool with_retention = config.retention.enabled();
  BinaryWriter w;
  w.PutU8(with_retention ? kRecordCreateTableRetention : kRecordCreateTable);
  w.PutI64(0);
  EncodeSchema(schema, &w);
  EncodePersistedConfig(config, &w, with_retention);
  return std::move(w).Take();
}

std::string EncodeBatchRecord(int64_t seq, const Table& batch) {
  BinaryWriter w;
  w.PutU8(kRecordIngestBatch);
  w.PutI64(seq);
  EncodeTable(batch, &w);
  return std::move(w).Take();
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  BinaryReader r(payload);
  WalRecord record;
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t type, r.ReadU8());
  SCIBORQ_ASSIGN_OR_RETURN(record.seq, r.ReadI64());
  switch (type) {
    case kRecordCreateTable:
    case kRecordCreateTableRetention: {
      record.type = WalRecord::Type::kCreateTable;
      SCIBORQ_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(&r));
      record.schema = std::move(schema);
      SCIBORQ_ASSIGN_OR_RETURN(
          PersistedTableConfig config,
          DecodePersistedConfig(&r, type == kRecordCreateTableRetention));
      record.config = std::move(config);
      break;
    }
    case kRecordIngestBatch: {
      record.type = WalRecord::Type::kIngestBatch;
      if (record.seq <= 0) {
        return Status::InvalidArgument(StrFormat(
            "ingest record carries non-positive sequence %lld",
            static_cast<long long>(record.seq)));
      }
      SCIBORQ_ASSIGN_OR_RETURN(Table batch, DecodeTable(&r));
      record.batch = std::move(batch);
      break;
    }
    default:
      return Status::InvalidArgument(
          StrFormat("unknown WAL record type %u", type));
  }
  SCIBORQ_RETURN_NOT_OK(r.ExpectEnd());
  return record;
}

}  // namespace sciborq
