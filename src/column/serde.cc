#include "column/serde.h"

#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace sciborq {

namespace {

constexpr uint8_t kValueTagNull = 0;
constexpr uint8_t kValueTagInt64 = 1;
constexpr uint8_t kValueTagDouble = 2;
constexpr uint8_t kValueTagString = 3;

Result<DataType> DataTypeFromWire(uint8_t tag) {
  switch (tag) {
    case 0:
      return DataType::kInt64;
    case 1:
      return DataType::kDouble;
    case 2:
      return DataType::kString;
    default:
      return Status::InvalidArgument(
          StrFormat("wire: unknown data type tag %u", tag));
  }
}

uint8_t DataTypeToWire(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return 0;
    case DataType::kDouble:
      return 1;
    case DataType::kString:
      return 2;
  }
  return 0;  // unreachable: enum is exhaustive
}

}  // namespace

Status CheckDecodeCount(int64_t count, int64_t min_bytes_each,
                        const BinaryReader& r, const char* what) {
  if (count < 0) {
    return Status::InvalidArgument(
        StrFormat("serde: negative %s count %lld", what,
                  static_cast<long long>(count)));
  }
  if (min_bytes_each > 0 && count > r.remaining() / min_bytes_each) {
    return Status::InvalidArgument(StrFormat(
        "serde: %s count %lld exceeds what the %lld remaining bytes could "
        "hold",
        what, static_cast<long long>(count),
        static_cast<long long>(r.remaining())));
  }
  return Status::OK();
}

// -- Value ------------------------------------------------------------------

void EncodeValue(const Value& v, BinaryWriter* w) {
  if (v.is_null()) {
    w->PutU8(kValueTagNull);
  } else if (v.is_int64()) {
    w->PutU8(kValueTagInt64);
    w->PutI64(v.int64());
  } else if (v.is_double()) {
    w->PutU8(kValueTagDouble);
    w->PutF64(v.dbl());
  } else {
    w->PutU8(kValueTagString);
    w->PutString(v.str());
  }
}

// GCC 12 (-O2 with sanitizers) reports a spurious maybe-uninitialized on the
// string alternative inside Result<Value>'s variant when the string was
// produced by a ReadString defined in another TU; the value is always
// initialized before use (guarded by ok()).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

Result<Value> DecodeValue(BinaryReader* r) {
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t tag, r->ReadU8());
  switch (tag) {
    case kValueTagNull:
      return Value::Null();
    case kValueTagInt64: {
      SCIBORQ_ASSIGN_OR_RETURN(const int64_t v, r->ReadI64());
      return Value(v);
    }
    case kValueTagDouble: {
      SCIBORQ_ASSIGN_OR_RETURN(const double v, r->ReadF64());
      return Value(v);
    }
    case kValueTagString: {
      SCIBORQ_ASSIGN_OR_RETURN(std::string v, r->ReadString());
      return Value(std::move(v));
    }
    default:
      return Status::InvalidArgument(
          StrFormat("wire: unknown value tag %u", tag));
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

// -- Schema -----------------------------------------------------------------

void EncodeSchema(const Schema& schema, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(schema.num_fields()));
  for (const Field& field : schema.fields()) {
    w->PutString(field.name);
    w->PutU8(DataTypeToWire(field.type));
    w->PutBool(field.nullable);
  }
}

Result<Schema> DecodeSchema(BinaryReader* r) {
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t n, r->ReadU32());
  // Each field needs at least a 4-byte name length + type + nullable.
  SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(n, 6, *r, "schema field"));
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Field field;
    SCIBORQ_ASSIGN_OR_RETURN(field.name, r->ReadString());
    SCIBORQ_ASSIGN_OR_RETURN(const uint8_t tag, r->ReadU8());
    SCIBORQ_ASSIGN_OR_RETURN(field.type, DataTypeFromWire(tag));
    SCIBORQ_ASSIGN_OR_RETURN(field.nullable, r->ReadBool());
    fields.push_back(std::move(field));
  }
  return Schema(std::move(fields));
}

// -- Column -----------------------------------------------------------------

void EncodeColumn(const Column& col, BinaryWriter* w) {
  w->PutU8(DataTypeToWire(col.type()));
  w->PutI64(col.size());
  const bool has_nulls = col.has_nulls();
  w->PutBool(has_nulls);
  if (has_nulls) {
    for (int64_t row = 0; row < col.size(); ++row) {
      w->PutBool(!col.IsNull(row));
    }
  }
  // Null-free numeric columns (the common science-data shape) are written
  // with one bulk copy on little-endian hosts — byte-identical to the
  // element loop, an order of magnitude faster for checkpoint throughput.
  if (kHostLittleEndian && !has_nulls && col.type() == DataType::kInt64) {
    w->PutRaw(col.data_int64().data(),
              static_cast<size_t>(col.size()) * sizeof(int64_t));
    return;
  }
  if (kHostLittleEndian && !has_nulls && col.type() == DataType::kDouble) {
    w->PutRaw(col.data_double().data(),
              static_cast<size_t>(col.size()) * sizeof(double));
    return;
  }
  for (int64_t row = 0; row < col.size(); ++row) {
    if (col.IsNull(row)) continue;
    switch (col.type()) {
      case DataType::kInt64:
        w->PutI64(col.GetInt64(row));
        break;
      case DataType::kDouble:
        w->PutF64(col.GetDouble(row));
        break;
      case DataType::kString:
        w->PutString(col.GetString(row));
        break;
    }
  }
}

Result<Column> DecodeColumn(BinaryReader* r) {
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t tag, r->ReadU8());
  SCIBORQ_ASSIGN_OR_RETURN(const DataType type, DataTypeFromWire(tag));
  SCIBORQ_ASSIGN_OR_RETURN(const int64_t size, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(const bool has_nulls, r->ReadBool());
  // Minimum bytes per row: 1 validity byte when nulls are present, else the
  // smallest possible value (a 4-byte string length).
  SCIBORQ_RETURN_NOT_OK(CheckDecodeCount(size, has_nulls ? 1 : 4, *r, "column row"));
  // Bulk fast path, mirroring EncodeColumn: a null-free numeric column is
  // one contiguous LE array.
  if (kHostLittleEndian && !has_nulls && type != DataType::kString) {
    SCIBORQ_ASSIGN_OR_RETURN(
        const std::string_view raw,
        r->ReadRaw(static_cast<size_t>(size) * sizeof(int64_t)));
    if (type == DataType::kInt64) {
      std::vector<int64_t> values(static_cast<size_t>(size));
      if (!raw.empty()) std::memcpy(values.data(), raw.data(), raw.size());
      return Column::FromInt64Vector(std::move(values));
    }
    std::vector<double> values(static_cast<size_t>(size));
    if (!raw.empty()) std::memcpy(values.data(), raw.data(), raw.size());
    return Column::FromDoubleVector(std::move(values));
  }
  Column col(type);
  col.Reserve(size);
  std::vector<uint8_t> valid;
  if (has_nulls) {
    valid.resize(static_cast<size_t>(size));
    for (int64_t row = 0; row < size; ++row) {
      SCIBORQ_ASSIGN_OR_RETURN(const bool v, r->ReadBool());
      valid[static_cast<size_t>(row)] = v ? 1 : 0;
    }
  }
  for (int64_t row = 0; row < size; ++row) {
    if (has_nulls && valid[static_cast<size_t>(row)] == 0) {
      col.AppendNull();
      continue;
    }
    switch (type) {
      case DataType::kInt64: {
        SCIBORQ_ASSIGN_OR_RETURN(const int64_t v, r->ReadI64());
        col.AppendInt64(v);
        break;
      }
      case DataType::kDouble: {
        SCIBORQ_ASSIGN_OR_RETURN(const double v, r->ReadF64());
        col.AppendDouble(v);
        break;
      }
      case DataType::kString: {
        SCIBORQ_ASSIGN_OR_RETURN(std::string v, r->ReadString());
        col.AppendString(std::move(v));
        break;
      }
    }
  }
  return col;
}

// -- Table ------------------------------------------------------------------

void EncodeTable(const Table& table, BinaryWriter* w) {
  EncodeSchema(table.schema(), w);
  w->PutI64(table.num_rows());
  for (int i = 0; i < table.num_columns(); ++i) {
    EncodeColumn(table.column(i), w);
  }
}

Result<Table> DecodeTable(BinaryReader* r) {
  SCIBORQ_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(r));
  SCIBORQ_ASSIGN_OR_RETURN(const int64_t rows, r->ReadI64());
  if (rows < 0) {
    return Status::InvalidArgument(StrFormat(
        "serde: negative table row count %lld", static_cast<long long>(rows)));
  }
  std::vector<Column> columns;
  columns.reserve(static_cast<size_t>(schema.num_fields()));
  for (int i = 0; i < schema.num_fields(); ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(Column col, DecodeColumn(r));
    if (col.type() != schema.field(i).type) {
      return Status::InvalidArgument(StrFormat(
          "serde: column %d type does not match its schema field", i));
    }
    if (col.size() != rows) {
      return Status::InvalidArgument(StrFormat(
          "serde: column %d has %lld rows, table declares %lld", i,
          static_cast<long long>(col.size()), static_cast<long long>(rows)));
    }
    columns.push_back(std::move(col));
  }
  return Table::FromColumns(std::move(schema), std::move(columns));
}

}  // namespace sciborq
