#include "sampling/last_seen.h"

#include <cmath>

namespace sciborq {

Result<LastSeenSampler> LastSeenSampler::Make(int64_t capacity, int64_t k,
                                              int64_t expected_ingest,
                                              uint64_t seed,
                                              bool paper_faithful) {
  if (capacity <= 0) {
    return Status::InvalidArgument("last-seen capacity must be positive");
  }
  if (expected_ingest <= 0) {
    return Status::InvalidArgument("expected ingest D must be positive");
  }
  if (k <= 0 || k > expected_ingest) {
    return Status::InvalidArgument("freshness k must be in (0, D]");
  }
  return LastSeenSampler(capacity, k, expected_ingest, seed, paper_faithful);
}

Result<LastSeenSampler> LastSeenSampler::Restore(int64_t capacity, int64_t k,
                                                 int64_t expected_ingest,
                                                 bool paper_faithful,
                                                 const State& state) {
  SCIBORQ_ASSIGN_OR_RETURN(
      LastSeenSampler sampler,
      Make(capacity, k, expected_ingest, 0, paper_faithful));
  if (state.seen < 0) {
    return Status::InvalidArgument("last-seen state: negative seen count");
  }
  sampler.seen_ = state.seen;
  sampler.rng_ = Rng::FromState(state.rng);
  return sampler;
}

ReservoirDecision LastSeenSampler::Offer() {
  ++seen_;
  if (seen_ <= capacity_) {
    // Fig. 3: "populate the sample smp with the first n tuples".
    return ReservoirDecision{true, seen_ - 1};
  }
  const double rnd = rng_.NextDouble();
  // Fig. 3: accept iff D * rnd < k.
  if (static_cast<double>(expected_ingest_) * rnd >=
      static_cast<double>(k_)) {
    return ReservoirDecision{false, -1};
  }
  int64_t slot = 0;
  if (paper_faithful_) {
    // Verbatim Fig. 3: smp[floor(n * rnd)] — rnd is conditioned on rnd < k/D,
    // so victims land only in the first ceil(n*k/D) slots.
    slot = static_cast<int64_t>(std::floor(static_cast<double>(capacity_) * rnd));
    if (slot >= capacity_) slot = capacity_ - 1;
  } else {
    slot = static_cast<int64_t>(
        rng_.NextBounded(static_cast<uint64_t>(capacity_)));
  }
  return ReservoirDecision{true, slot};
}

}  // namespace sciborq
