#include "storage/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/errno_string.h"
#include "util/string_util.h"

namespace sciborq {

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::IOError(
      StrFormat("%s %s: %s", op, path.c_str(), ErrnoString(errno).c_str()));
}

Status WriteAllToFd(int fd, const char* data, size_t n,
                    const std::string& path) {
  size_t written = 0;
  while (written < n) {
    const ssize_t rc = ::write(fd, data + written, n - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    written += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status WriteFileDurably(const std::string& path, const std::string& bytes) {
  return WriteFileDurably(path, {std::string_view(bytes)});
}

Status WriteFileDurably(const std::string& path,
                        std::initializer_list<std::string_view> pieces) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  for (const std::string_view piece : pieces) {
    if (Status st = WriteAllToFd(fd, piece.data(), piece.size(), path);
        !st.ok()) {
      ::close(fd);
      return st;
    }
  }
  if (::fsync(fd) != 0) {
    const Status st = ErrnoStatus("fsync", path);
    ::close(fd);
    return st;
  }
  if (::close(fd) != 0) return ErrnoStatus("close", path);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = ErrnoStatus("read", path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync dir", dir);
  return Status::OK();
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace sciborq
