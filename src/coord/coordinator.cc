#include "coord/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "column/csv.h"
#include "exec/parser.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace sciborq {

namespace {

/// Distinct `instance` label per coordinator object (mirrors the server's
/// scheme) so tests running several coordinators keep exact per-instance
/// counters.
std::string NextCoordInstance() {
  static std::atomic<int64_t> next{0};
  return StrFormat("coord-%lld", static_cast<long long>(next.fetch_add(
                                     1, std::memory_order_relaxed)));
}

/// Coordinator-side query-id source; the `qc-` prefix keeps coordinator ids
/// from colliding with engine-assigned `q-` ids in mixed traces.
std::string NextCoordQueryId() {
  static std::atomic<int64_t> next{1};
  return StrFormat("qc-%lld", static_cast<long long>(next.fetch_add(
                                  1, std::memory_order_relaxed)));
}

}  // namespace

SciborqCoordinator::SciborqCoordinator(ShardMap shards,
                                       CoordinatorOptions options)
    : shards_(std::move(shards)), options_(options) {
  // Size the fan-out pool to the widest shard list so every round trip of
  // one query runs concurrently (waiting serially would burn the budget
  // margin shard by shard).
  size_t widest = shards_.default_shards().size();
  for (const std::string& table : shards_.MappedTables()) {
    widest = std::max(widest, shards_.ShardsFor(table).size());
  }
  fanout_pool_ =
      std::make_unique<ThreadPool>(static_cast<int>(std::max<size_t>(1, widest)));

  obs::Registry* reg = obs::DefaultRegistry();
  const std::string instance = NextCoordInstance();
  const obs::Labels by_instance = {{"instance", instance}};
  metrics_.connections_accepted =
      reg->GetCounter("sciborq_coord_connections_total",
                      "TCP connections accepted.", by_instance);
  metrics_.queries_served =
      reg->GetCounter("sciborq_coord_queries_total",
                      "Distributed queries merged and answered.", by_instance);
  metrics_.protocol_errors =
      reg->GetCounter("sciborq_coord_protocol_errors_total",
                      "Undecodable or misframed requests.", by_instance);
  metrics_.partial_answers = reg->GetCounter(
      "sciborq_coord_partial_answers_total",
      "Merged answers missing at least one shard (PARTIAL).", by_instance);
  metrics_.deadline_exceeded = reg->GetCounter(
      "sciborq_coord_deadline_exceeded_total",
      "Merged answers that blew the client's time budget.", by_instance);
  metrics_.shard_errors = reg->GetCounter(
      "sciborq_coord_shard_errors_total",
      "Shard round trips that failed (timeout, refusal, error).", by_instance);
  metrics_.query_seconds = reg->GetHistogram(
      "sciborq_coord_query_seconds",
      "Distributed query wall clock (fan-out + merge).",
      obs::DefaultLatencyBounds(), by_instance);
  // The shard set is fixed at construction, so per-shard series pre-register
  // here and fan-out tasks read the map without locks.
  for (const ShardEndpoint& endpoint : shards_.AllEndpoints()) {
    const std::string key = endpoint.ToString();
    metrics_.shard_rtt.emplace(
        key, reg->GetHistogram("sciborq_coord_shard_rtt_seconds",
                               "Per-shard query round-trip latency.",
                               obs::DefaultLatencyBounds(),
                               {{"instance", instance}, {"shard", key}}));
  }
}

SciborqCoordinator::~SciborqCoordinator() { Stop(); }

Status SciborqCoordinator::Start() {
  if (started_.load()) {
    return Status::FailedPrecondition("coordinator already started");
  }
  SCIBORQ_ASSIGN_OR_RETURN(TcpListener listener,
                           TcpListener::Bind(options_.port));
  port_ = listener.port();
  listener_.emplace(std::move(listener));
  handler_pool_ =
      std::make_unique<ThreadPool>(std::max(1, options_.max_connections));
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SciborqCoordinator::Stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  listener_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    MutexLock lock(&conns_mu_);
    for (auto& [id, conn] : active_conns_) conn->ShutdownRead();
  }
  if (handler_pool_) {
    handler_pool_->Wait();
    handler_pool_.reset();
  }
  listener_->Close();
}

void SciborqCoordinator::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<TcpConn> accepted = listener_->Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    metrics_.connections_accepted->Inc();
    auto conn = std::make_shared<TcpConn>(std::move(accepted).value());
    int64_t id;
    {
      MutexLock lock(&conns_mu_);
      id = next_conn_id_++;
      active_conns_.emplace(id, conn.get());
    }
    handler_pool_->Submit([this, id, conn]() mutable {
      HandleConnection(conn);
      MutexLock lock(&conns_mu_);
      active_conns_.erase(id);
    });
  }
}

void SciborqCoordinator::HandleConnection(std::shared_ptr<TcpConn> conn) {
  CoordSession session;
  session.bounds = QueryBounds();
  for (;;) {
    Result<std::optional<std::string>> frame =
        conn->RecvFrame(options_.max_frame_bytes);
    if (!frame.ok()) {
      metrics_.protocol_errors->Inc();
      (void)conn->SendFrame(
          EncodeResponse(Opcode::kInvalid, frame.status(), ""));
      break;
    }
    if (!frame->has_value()) break;
    Result<RequestFrame> request = DecodeRequest(**frame);
    if (!request.ok()) {
      metrics_.protocol_errors->Inc();
      (void)conn->SendFrame(
          EncodeResponse(Opcode::kInvalid, request.status(), ""));
      break;
    }
    const std::string response = HandleRequest(*request, &session);
    if (!conn->SendFrame(response).ok()) break;
  }
}

SciborqCoordinator::BudgetSplit SciborqCoordinator::SplitBudget(
    double client_budget_ms) const {
  BudgetSplit split;
  if (client_budget_ms > 0.0) {
    const double margin =
        std::max(options_.min_margin_ms,
                 options_.budget_margin_fraction * client_budget_ms);
    split.shard_budget_ms = std::max(1.0, client_budget_ms - margin);
    // The socket deadline sits between the shard budget and the client
    // budget: a shard that overruns its share a little still answers, one
    // that hangs is cut before the client's clock runs out.
    split.recv_timeout_ms = std::max(
        1, static_cast<int>(client_budget_ms - margin * 0.5));
  } else {
    split.shard_budget_ms = 0.0;  // unlimited, like the client asked
    split.recv_timeout_ms = options_.default_shard_timeout_ms;
  }
  return split;
}

SciborqCoordinator::ClientSlot* SciborqCoordinator::SlotFor(
    CoordSession* session, const ShardEndpoint& endpoint) {
  const std::string key = endpoint.ToString();
  auto it = session->clients.find(key);
  if (it == session->clients.end()) {
    it = session->clients.emplace(key, std::make_unique<ClientSlot>()).first;
  }
  return it->second.get();
}

Status SciborqCoordinator::EnsureConnected(ClientSlot* slot,
                                           const ShardEndpoint& endpoint,
                                           int recv_timeout_ms) {
  if (!slot->client.has_value() || !slot->client->connected()) {
    ClientOptions client_options;
    client_options.max_frame_bytes = options_.max_frame_bytes;
    client_options.connect_timeout_ms = options_.connect_timeout_ms;
    client_options.recv_timeout_ms = recv_timeout_ms;
    SCIBORQ_ASSIGN_OR_RETURN(
        SciborqClient client,
        SciborqClient::Connect(endpoint.host, endpoint.port, client_options));
    slot->client.emplace(std::move(client));
    return Status::OK();
  }
  return slot->client->SetRecvTimeout(recv_timeout_ms);
}

Status SciborqCoordinator::FillSessionDefaults(const CoordSession& session,
                                               BoundedQuery* bounded) const {
  if (bounded->query.table.empty()) {
    if (session.table.empty()) {
      return Status::InvalidArgument(
          "SQL has no FROM clause and the session has no default table: "
          "call Use() first");
    }
    bounded->query.table = session.table;
  }
  if (!bounded->bounds.any()) bounded->bounds = session.bounds;
  return Status::OK();
}

Result<QueryOutcome> SciborqCoordinator::DistributedQuery(
    CoordSession* session, const BoundedQuery& bounded,
    std::string query_id) {
  const std::vector<ShardEndpoint>& endpoints =
      shards_.ShardsFor(bounded.query.table);
  if (endpoints.empty()) {
    return Status::FailedPrecondition(StrFormat(
        "no shards mapped for table '%s'", bounded.query.table.c_str()));
  }

  if (query_id.empty()) query_id = NextCoordQueryId();
  // The wall clock starts before the tracer's origin, so every span's end
  // stays <= the reported elapsed_seconds.
  Stopwatch wall;
  obs::PhaseTracer tracer;
  tracer.Begin("plan");
  const BudgetSplit split = SplitBudget(bounded.bounds.time_budget_ms);
  QueryBounds shard_bounds = bounded.bounds;
  if (bounded.bounds.time_budget_ms > 0.0) {
    shard_bounds.time_budget_ms = split.shard_budget_ms;
  }
  const std::string shard_sql = RenderSql(bounded.query, shard_bounds);

  // Pre-create every slot serially: the fan-out tasks then touch disjoint
  // slots and never mutate the session map concurrently.
  std::vector<ClientSlot*> slots;
  slots.reserve(endpoints.size());
  for (const ShardEndpoint& endpoint : endpoints) {
    slots.push_back(SlotFor(session, endpoint));
  }

  tracer.Begin("fanout");
  const double fanout_start = tracer.ElapsedSeconds();
  std::vector<ShardAnswer> answers(endpoints.size());
  ParallelFor(fanout_pool_.get(), static_cast<int64_t>(endpoints.size()), 1,
              [&](int64_t i, int64_t, int64_t) {
                const size_t s = static_cast<size_t>(i);
                ShardAnswer& answer = answers[s];
                answer.label = StrFormat("shard%d", static_cast<int>(s));
                Stopwatch timer;
                Status st = EnsureConnected(slots[s], endpoints[s],
                                            split.recv_timeout_ms);
                if (st.ok()) {
                  Result<QueryOutcome> outcome =
                      slots[s]->client->QueryMergeable(shard_sql, query_id);
                  if (outcome.ok()) {
                    answer.outcome = std::move(outcome).value();
                  } else {
                    st = outcome.status();
                  }
                }
                if (!st.ok()) {
                  answer.status = std::move(st);
                  metrics_.shard_errors->Inc();
                  // A timed-out or broken connection cannot be reused — the
                  // late response would desync the stream. Reconnect lazily
                  // on the next query.
                  slots[s]->client.reset();
                }
                answer.elapsed_seconds = timer.ElapsedSeconds();
                const auto rtt =
                    metrics_.shard_rtt.find(endpoints[s].ToString());
                if (rtt != metrics_.shard_rtt.end()) {
                  rtt->second->Observe(answer.elapsed_seconds);
                }
              });

  tracer.Begin("merge");
  MergeOptions merge_options;
  for (const AggregateSpec& spec : bounded.query.aggregates) {
    merge_options.aggregates.push_back(spec);
  }
  merge_options.confidence = bounded.bounds.confidence >= 0.0
                                 ? bounded.bounds.confidence
                                 : options_.default_bound.confidence;
  merge_options.shards_total = static_cast<int>(endpoints.size());
  SCIBORQ_ASSIGN_OR_RETURN(QueryOutcome merged,
                           MergeShardOutcomes(answers, merge_options));
  merged.table = bounded.query.table;
  merged.sql = RenderSql(bounded.query, bounded.bounds);
  merged.elapsed_seconds = wall.ElapsedSeconds();
  merged.query_id = query_id;
  merged.spans = tracer.Take();
  // Stitch the shards' traces into the coordinator's timeline: each shard's
  // spans ride under a `shardN/` prefix, starts offset by the moment the
  // fan-out began (shard-local zero = coordinator's fan-out start).
  for (const ShardAnswer& answer : answers) {
    if (!answer.status.ok()) continue;
    for (const PhaseSpan& span : answer.outcome.spans) {
      merged.spans.push_back({answer.label + "/" + span.name,
                              fanout_start + span.start_seconds,
                              span.duration_seconds});
    }
  }

  metrics_.queries_served->Inc();
  metrics_.query_seconds->Observe(merged.elapsed_seconds);
  if (merged.partial) metrics_.partial_answers->Inc();
  if (merged.deadline_exceeded) metrics_.deadline_exceeded->Inc();
  if (!merged.error_bound_met || merged.deadline_exceeded || merged.partial) {
    obs::SlowQueryEntry slow;
    slow.query_id = merged.query_id;
    slow.table = merged.table;
    slow.sql = merged.sql;
    slow.asked_max_ms = bounded.bounds.time_budget_ms;
    slow.asked_max_error = bounded.bounds.max_relative_error;
    slow.asked_confidence = bounded.bounds.confidence;
    slow.asked_exact = bounded.bounds.exact;
    slow.error_bound_met = merged.error_bound_met;
    slow.deadline_exceeded = merged.deadline_exceeded;
    slow.elapsed_seconds = merged.elapsed_seconds;
    slow.answered_by = merged.answered_by;
    slow.trace = RenderTrace(merged);
    slow_log_.Record(std::move(slow));
  }
  return merged;
}

Result<std::vector<TableInfo>> SciborqCoordinator::FanOutCatalog(
    CoordSession* session) {
  const std::vector<ShardEndpoint> endpoints = shards_.AllEndpoints();
  if (endpoints.empty()) {
    return Status::FailedPrecondition("coordinator has no shards configured");
  }
  std::vector<ClientSlot*> slots;
  slots.reserve(endpoints.size());
  for (const ShardEndpoint& endpoint : endpoints) {
    slots.push_back(SlotFor(session, endpoint));
  }
  std::vector<std::vector<TableInfo>> per_shard(endpoints.size());
  std::vector<Status> statuses(endpoints.size(), Status::OK());
  ParallelFor(fanout_pool_.get(), static_cast<int64_t>(endpoints.size()), 1,
              [&](int64_t i, int64_t, int64_t) {
                const size_t s = static_cast<size_t>(i);
                Status st = EnsureConnected(slots[s], endpoints[s],
                                            options_.default_shard_timeout_ms);
                if (st.ok()) {
                  Result<std::vector<TableInfo>> tables =
                      slots[s]->client->ListTables();
                  if (tables.ok()) {
                    per_shard[s] = std::move(tables).value();
                  } else {
                    st = tables.status();
                  }
                }
                if (!st.ok()) {
                  statuses[s] = std::move(st);
                  slots[s]->client.reset();
                }
              });
  // Catalog listing tolerates down shards (their tables just report fewer
  // shards) but not a total outage.
  bool any_ok = false;
  for (const Status& st : statuses) any_ok = any_ok || st.ok();
  if (!any_ok) {
    return Status::IOError(StrFormat("no shard reachable: %s",
                                     statuses.front().message().c_str()));
  }
  return MergeTableInfos(per_shard);
}

Status SciborqCoordinator::CreateTableOn(CoordSession* session,
                                         const std::string& name,
                                         const Schema& schema, uint64_t seed) {
  const std::vector<ShardEndpoint>& endpoints = shards_.ShardsFor(name);
  if (endpoints.empty()) {
    return Status::FailedPrecondition(
        StrFormat("no shards mapped for table '%s'", name.c_str()));
  }
  // Derived per-shard seeds, like ShardedImpressionBuilder: one seeder
  // stream, one draw per shard, so shard samples are mutually independent
  // yet fully reproducible from the table seed.
  Rng seeder(seed);
  for (const ShardEndpoint& endpoint : endpoints) {
    const uint64_t shard_seed = seeder.NextUint64();
    ClientSlot* slot = SlotFor(session, endpoint);
    SCIBORQ_RETURN_NOT_OK(EnsureConnected(slot, endpoint,
                                          options_.default_shard_timeout_ms));
    if (Status st = slot->client->CreateTable(name, schema, shard_seed);
        !st.ok()) {
      return st;
    }
  }
  return Status::OK();
}

Result<int64_t> SciborqCoordinator::IngestOn(CoordSession* session,
                                             const std::string& table,
                                             const Table& batch) {
  const std::vector<ShardEndpoint>& endpoints = shards_.ShardsFor(table);
  if (endpoints.empty()) {
    return Status::FailedPrecondition(
        StrFormat("no shards mapped for table '%s'", table.c_str()));
  }
  // Contiguous routing: shard s gets rows [offset, offset + per (+1)), the
  // same deterministic split ShardedImpressionBuilder uses, so a sharded
  // load concatenates back to the single-node row order.
  const int64_t n = batch.num_rows();
  const int64_t num_shards = static_cast<int64_t>(endpoints.size());
  const int64_t per = n / num_shards;
  const int64_t rem = n % num_shards;
  int64_t offset = 0;
  int64_t total = 0;
  for (int64_t s = 0; s < num_shards; ++s) {
    const int64_t rows = per + (s < rem ? 1 : 0);
    Table slice(batch.schema());
    slice.Reserve(rows);
    for (int64_t r = 0; r < rows; ++r) {
      slice.AppendRowFrom(batch, offset + r);
    }
    offset += rows;
    if (rows == 0) continue;
    ClientSlot* slot = SlotFor(session, endpoints[static_cast<size_t>(s)]);
    SCIBORQ_RETURN_NOT_OK(EnsureConnected(
        slot, endpoints[static_cast<size_t>(s)],
        options_.default_shard_timeout_ms));
    Result<int64_t> ingested =
        slot->client->Ingest(table, slice);
    if (!ingested.ok()) {
      slot->client.reset();
      return ingested.status();
    }
    total += *ingested;
  }
  return total;
}

// -- In-process admin face ---------------------------------------------------

Result<QueryOutcome> SciborqCoordinator::Query(std::string_view sql) {
  SCIBORQ_ASSIGN_OR_RETURN(BoundedQuery bounded,
                           ParseBoundedQuery(std::string(sql)));
  MutexLock lock(&admin_mu_);
  SCIBORQ_RETURN_NOT_OK(FillSessionDefaults(admin_session_, &bounded));
  return DistributedQuery(&admin_session_, bounded);
}

Result<int64_t> SciborqCoordinator::RegisterCsv(const std::string& name,
                                                const std::string& path,
                                                uint64_t seed) {
  SCIBORQ_ASSIGN_OR_RETURN(const Table table, ReadCsv(path));
  MutexLock lock(&admin_mu_);
  SCIBORQ_RETURN_NOT_OK(
      CreateTableOn(&admin_session_, name, table.schema(), seed));
  return IngestOn(&admin_session_, name, table);
}

Status SciborqCoordinator::CreateTable(const std::string& name,
                                       const Schema& schema, uint64_t seed) {
  MutexLock lock(&admin_mu_);
  return CreateTableOn(&admin_session_, name, schema, seed);
}

Result<int64_t> SciborqCoordinator::IngestBatch(const std::string& table,
                                                const Table& batch) {
  MutexLock lock(&admin_mu_);
  return IngestOn(&admin_session_, table, batch);
}

Result<std::vector<TableInfo>> SciborqCoordinator::ListTables() {
  MutexLock lock(&admin_mu_);
  return FanOutCatalog(&admin_session_);
}

// -- Wire face ---------------------------------------------------------------

std::string SciborqCoordinator::HandleRequest(const RequestFrame& request,
                                              CoordSession* session) {
  WireReader payload(request.payload);
  const uint8_t version = request.version;
  switch (request.opcode) {
    case Opcode::kQuery: {
      Result<std::string> sql = payload.ReadString();
      if (!sql.ok()) {
        return EncodeResponse(request.opcode, sql.status(), "", version);
      }
      if (version >= kWireVersionV3) {
        // The coordinator merges for itself; a client's mergeable flag is
        // accepted and ignored (re-sharding a merged answer is not
        // supported).
        Result<uint8_t> flags = payload.ReadU8();
        if (!flags.ok()) {
          return EncodeResponse(request.opcode, flags.status(), "", version);
        }
      }
      std::string query_id;
      if (version >= kWireVersionV4) {
        Result<std::string> id = payload.ReadString();
        if (!id.ok()) {
          return EncodeResponse(request.opcode, id.status(), "", version);
        }
        query_id = std::move(*id);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      Result<BoundedQuery> bounded = ParseBoundedQuery(*sql);
      if (!bounded.ok()) {
        return EncodeResponse(request.opcode, bounded.status(), "", version);
      }
      if (Status st = FillSessionDefaults(*session, &*bounded); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      Result<QueryOutcome> outcome =
          DistributedQuery(session, *bounded, std::move(query_id));
      if (!outcome.ok()) {
        return EncodeResponse(request.opcode, outcome.status(), "", version);
      }
      WireWriter w;
      EncodeOutcome(*outcome, &w, version);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kUse: {
      Result<std::string> table = payload.ReadString();
      if (!table.ok()) {
        return EncodeResponse(request.opcode, table.status(), "", version);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      // USE validates existence like api/Session: the merged catalog must
      // list the table.
      Result<std::vector<TableInfo>> tables = FanOutCatalog(session);
      if (!tables.ok()) {
        return EncodeResponse(request.opcode, tables.status(), "", version);
      }
      const bool known =
          std::any_of(tables->begin(), tables->end(),
                      [&](const TableInfo& t) { return t.name == *table; });
      if (!known) {
        return EncodeResponse(
            request.opcode,
            Status::NotFound(StrFormat("table '%s' is not registered on any "
                                       "shard",
                                       table->c_str())),
            "", version);
      }
      session->table = *table;
      return EncodeResponse(request.opcode, Status::OK(), "", version);
    }
    case Opcode::kSetBounds: {
      Result<QueryBounds> bounds = DecodeBounds(&payload);
      if (!bounds.ok()) {
        return EncodeResponse(request.opcode, bounds.status(), "", version);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      session->bounds = *bounds;
      return EncodeResponse(request.opcode, Status::OK(), "", version);
    }
    case Opcode::kCatalog: {
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      Result<std::vector<TableInfo>> tables = FanOutCatalog(session);
      if (!tables.ok()) {
        return EncodeResponse(request.opcode, tables.status(), "", version);
      }
      WireWriter w;
      w.PutU32(static_cast<uint32_t>(tables->size()));
      for (const TableInfo& info : *tables) EncodeTableInfo(info, &w, version);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kPing: {
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      return EncodeResponse(request.opcode, Status::OK(), "", version);
    }
    case Opcode::kPrepare: {
      Result<std::string> sql = payload.ReadString();
      if (!sql.ok()) {
        return EncodeResponse(request.opcode, sql.status(), "", version);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      // Parse-once happens on the coordinator; Execute binds locally and
      // fans the bound SQL out, so shards stay stateless for statements.
      Result<PreparedQuery> prepared = ParsePreparedQuery(*sql);
      if (!prepared.ok()) {
        return EncodeResponse(request.opcode, prepared.status(), "", version);
      }
      if (prepared->query.table.empty()) {
        if (session->table.empty()) {
          return EncodeResponse(
              request.opcode,
              Status::InvalidArgument(
                  "SQL has no FROM clause and the session has no default "
                  "table: call Use() first"),
              "", version);
        }
        prepared->query.table = session->table;
      }
      const bool has_bounds = prepared->bounds.any() ||
                              prepared->time_budget_slot >= 0 ||
                              prepared->error_slot >= 0;
      if (!has_bounds) prepared->bounds = session->bounds;
      StatementInfo info;
      info.handle = StatementHandle{session->next_stmt++};
      info.table = prepared->query.table;
      info.sql = prepared->ToString();
      info.num_params = prepared->num_params();
      session->statements.emplace(info.handle.id, std::move(*prepared));
      WireWriter w;
      EncodeStatementInfo(info, &w);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kExecute: {
      Result<int64_t> id = payload.ReadI64();
      if (!id.ok()) {
        return EncodeResponse(request.opcode, id.status(), "", version);
      }
      Result<std::vector<Value>> params = DecodeParams(&payload);
      if (!params.ok()) {
        return EncodeResponse(request.opcode, params.status(), "", version);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      const auto it = session->statements.find(*id);
      if (it == session->statements.end()) {
        return EncodeResponse(
            request.opcode,
            Status::NotFound(StrFormat(
                "statement handle %lld was not prepared on this session",
                static_cast<long long>(*id))),
            "", version);
      }
      Result<BoundedQuery> bound = BindParams(it->second, *params);
      if (!bound.ok()) {
        return EncodeResponse(request.opcode, bound.status(), "", version);
      }
      Result<QueryOutcome> outcome = DistributedQuery(session, *bound);
      if (!outcome.ok()) {
        return EncodeResponse(request.opcode, outcome.status(), "", version);
      }
      WireWriter w;
      EncodeOutcome(*outcome, &w, version);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kCloseStmt: {
      Result<int64_t> id = payload.ReadI64();
      if (!id.ok()) {
        return EncodeResponse(request.opcode, id.status(), "", version);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      if (session->statements.erase(*id) == 0) {
        return EncodeResponse(
            request.opcode,
            Status::NotFound(StrFormat(
                "statement handle %lld was not prepared on this session",
                static_cast<long long>(*id))),
            "", version);
      }
      return EncodeResponse(request.opcode, Status::OK(), "", version);
    }
    case Opcode::kCheckpoint: {
      Result<std::string> table = payload.ReadString();
      if (!table.ok()) {
        return EncodeResponse(request.opcode, table.status(), "", version);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      // Fan the checkpoint to every shard and sum how many tables were
      // written; any shard failing fails the call (durability is all or
      // nothing per request).
      int64_t count = 0;
      for (const ShardEndpoint& endpoint : shards_.AllEndpoints()) {
        ClientSlot* slot = SlotFor(session, endpoint);
        if (Status st = EnsureConnected(slot, endpoint,
                                       options_.default_shard_timeout_ms);
            !st.ok()) {
          return EncodeResponse(request.opcode, st, "", version);
        }
        Result<int64_t> n = slot->client->Checkpoint(*table);
        if (!n.ok()) {
          return EncodeResponse(request.opcode, n.status(), "", version);
        }
        count += *n;
      }
      WireWriter w;
      w.PutU32(static_cast<uint32_t>(count));
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kCreateTable: {
      Result<std::string> name = payload.ReadString();
      if (!name.ok()) {
        return EncodeResponse(request.opcode, name.status(), "", version);
      }
      Result<Schema> schema = DecodeSchema(&payload);
      if (!schema.ok()) {
        return EncodeResponse(request.opcode, schema.status(), "", version);
      }
      Result<uint64_t> seed = payload.ReadU64();
      if (!seed.ok()) {
        return EncodeResponse(request.opcode, seed.status(), "", version);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      return EncodeResponse(request.opcode,
                            CreateTableOn(session, *name, *schema, *seed), "",
                            version);
    }
    case Opcode::kIngest: {
      Result<std::string> table = payload.ReadString();
      if (!table.ok()) {
        return EncodeResponse(request.opcode, table.status(), "", version);
      }
      Result<Table> batch = DecodeTable(&payload);
      if (!batch.ok()) {
        return EncodeResponse(request.opcode, batch.status(), "", version);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      Result<int64_t> rows = IngestOn(session, *table, *batch);
      if (!rows.ok()) {
        return EncodeResponse(request.opcode, rows.status(), "", version);
      }
      WireWriter w;
      w.PutI64(*rows);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kStats: {
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      // The whole process registry: this coordinator's own series plus any
      // in-process shard engines' (the test topology).
      WireWriter w;
      EncodeStatSamples(obs::DefaultRegistry()->Samples(), &w);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kSlowLog: {
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      WireWriter w;
      EncodeSlowQueries(SlowQueries(), &w);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kDropTable: {
      // v6: fan the drop out to every shard the table maps to. Like
      // checkpointing, removal is all-or-nothing per request — the first
      // failing shard fails the call (a retry is idempotent: an
      // already-dropped shard answers NotFound, which the client surfaces).
      Result<std::string> table = payload.ReadString();
      if (!table.ok()) {
        return EncodeResponse(request.opcode, table.status(), "", version);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      const std::vector<ShardEndpoint>& endpoints = shards_.ShardsFor(*table);
      if (endpoints.empty()) {
        return EncodeResponse(
            request.opcode,
            Status::FailedPrecondition(StrFormat(
                "no shards mapped for table '%s'", table->c_str())),
            "", version);
      }
      for (const ShardEndpoint& endpoint : endpoints) {
        ClientSlot* slot = SlotFor(session, endpoint);
        if (Status st = EnsureConnected(slot, endpoint,
                                        options_.default_shard_timeout_ms);
            !st.ok()) {
          return EncodeResponse(request.opcode, st, "", version);
        }
        if (Status st = slot->client->DropTable(*table); !st.ok()) {
          return EncodeResponse(request.opcode, st, "", version);
        }
      }
      return EncodeResponse(request.opcode, Status::OK(), "", version);
    }
    case Opcode::kInvalid:
      break;
  }
  return EncodeResponse(Opcode::kInvalid,
                        Status::Internal("unhandled opcode"), "");
}

}  // namespace sciborq
