#ifndef SCIBORQ_CORE_BOUNDED_EXECUTOR_H_
#define SCIBORQ_CORE_BOUNDED_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "core/impression.h"
#include "exec/query.h"
#include "stats/estimators.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "workload/interest_tracker.h"
#include "workload/query_log.h"

namespace sciborq {

// QualityBound lives in exec/query.h (included above): the contract is part
// of the query dialect now that bounds are stated in the SQL text.

/// What happened on one layer during escalation.
struct LayerAttempt {
  std::string layer_name;
  int64_t layer_rows = 0;
  int64_t matching_rows = 0;
  double elapsed_seconds = 0.0;
  double worst_relative_error = 0.0;
  bool met_error_bound = false;
  bool is_base = false;
};

/// A bounded answer: point estimates in the shape of RunExact's rows, plus a
/// parallel matrix of AggregateEstimate (CI, stderr) per row per aggregate,
/// and the full escalation trace.
struct BoundedAnswer {
  std::vector<QueryResultRow> rows;
  std::vector<std::vector<AggregateEstimate>> estimates;
  std::string answered_by;      ///< layer name or "base"
  bool error_bound_met = false;
  bool deadline_exceeded = false;
  double elapsed_seconds = 0.0;
  std::vector<LayerAttempt> attempts;

  std::string ToString() const;
};

/// Statistical evaluation of an aggregate query against one impression:
/// Horvitz–Thompson expansion through the impression's inclusion
/// probabilities (exact-scaling for uniform impressions, weight-aware for
/// biased ones). MIN/MAX report the sample extreme with an *infinite*
/// relative error — extremes carry no CLT guarantee, so an error-bounded
/// query falls through to the base data, which is the correct behaviour.
/// With a pool, the filter scan over the sampled rows runs morsel-parallel;
/// estimates are bit-identical to the serial path at any thread count.
Result<BoundedAnswer> EstimateOnImpression(const Impression& impression,
                                           const AggregateQuery& query,
                                           double confidence,
                                           ThreadPool* pool = nullptr);

/// Multi-layer bounded query processing (§3.2): walk the hierarchy from the
/// smallest impression upward; accept the first answer within the error
/// bound; stop early when the time budget would be blown; fall back to the
/// base columns for a zero error margin.
/// Tuning knobs for the bounded executor.
struct BoundedExecutorOptions {
  /// Record every answered query into the log / interest tracker — the
  /// adaptive feedback loop of §3.1 ("as a side-effect of query
  /// processing").
  bool adapt = true;
  /// Worker threads for the executor's scans (layer estimation and the base
  /// fallback): 0 = hardware concurrency, 1 = serial (the default — callers
  /// that pin exact latencies keep single-threaded determinism; results are
  /// bit-identical either way).
  int num_threads = 1;
  /// Non-owning pool to run scans on instead of spawning one per executor;
  /// takes precedence over num_threads. ParallelFor tracks completion per
  /// call, so many executors (the Engine's concurrent queries) can share one
  /// pool without waiting on each other's work.
  ThreadPool* shared_pool = nullptr;
};

class BoundedExecutor {
 public:
  using Options = BoundedExecutorOptions;

  /// All pointers non-owning; base/hierarchy required, log/tracker optional.
  BoundedExecutor(const Table* base, const ImpressionHierarchy* hierarchy,
                  QueryLog* log = nullptr, InterestTracker* tracker = nullptr,
                  Options options = BoundedExecutorOptions());

  /// Answers `query` under `bound`. Always returns an answer (the best one
  /// achievable within the budget); inspect error_bound_met /
  /// deadline_exceeded for the contract outcome. Fails only on malformed
  /// queries.
  Result<BoundedAnswer> Answer(const AggregateQuery& query,
                               const QualityBound& bound);

 private:
  const Table* base_;
  const ImpressionHierarchy* hierarchy_;
  QueryLog* log_;
  InterestTracker* tracker_;
  Options options_;
  /// Owned worker pool; null when a shared pool is configured or
  /// options_.num_threads resolves to 1.
  std::unique_ptr<ThreadPool> owned_pool_;
  /// The pool scans actually run on (owned or shared); null = serial.
  ThreadPool* pool_ = nullptr;
  /// Rolling per-row cost estimate (seconds/row) used to predict whether the
  /// next layer fits the remaining budget.
  double est_seconds_per_row_ = 0.0;
};

}  // namespace sciborq

#endif  // SCIBORQ_CORE_BOUNDED_EXECUTOR_H_
