#include "stats/noncentral_hypergeometric.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace sciborq {

namespace {
/// Terms smaller than this fraction of the accumulated sum are negligible.
constexpr double kTermEpsilon = 1e-16;
}  // namespace

Result<FisherNoncentralHypergeometric> FisherNoncentralHypergeometric::Make(
    int64_t m1, int64_t m2, int64_t n, double omega) {
  if (m1 < 0 || m2 < 0) {
    return Status::InvalidArgument("group sizes must be non-negative");
  }
  if (n < 0 || n > m1 + m2) {
    return Status::InvalidArgument(
        StrFormat("sample size %lld outside [0, %lld]",
                  static_cast<long long>(n), static_cast<long long>(m1 + m2)));
  }
  if (!(omega > 0.0) || !std::isfinite(omega)) {
    return Status::InvalidArgument("odds ratio must be positive and finite");
  }
  return FisherNoncentralHypergeometric(m1, m2, n, omega);
}

FisherNoncentralHypergeometric::FisherNoncentralHypergeometric(int64_t m1,
                                                               int64_t m2,
                                                               int64_t n,
                                                               double omega)
    : m1_(m1),
      m2_(m2),
      n_(n),
      omega_(omega),
      support_min_(std::max<int64_t>(0, n - m2)),
      support_max_(std::min(n, m1)) {}

double FisherNoncentralHypergeometric::LogUnnormalized(int64_t x) const {
  SCIBORQ_DCHECK(x >= support_min_ && x <= support_max_);
  const auto log_choose = [](int64_t a, int64_t b) {
    return std::lgamma(static_cast<double>(a + 1)) -
           std::lgamma(static_cast<double>(b + 1)) -
           std::lgamma(static_cast<double>(a - b + 1));
  };
  return log_choose(m1_, x) + log_choose(m2_, n_ - x) +
         static_cast<double>(x) * std::log(omega_);
}

double FisherNoncentralHypergeometric::Ratio(int64_t x) const {
  // pmf(x+1)/pmf(x) = omega (m1-x)(n-x) / ((x+1)(m2-n+x+1)).
  const double num = omega_ * static_cast<double>(m1_ - x) *
                     static_cast<double>(n_ - x);
  const double den = static_cast<double>(x + 1) *
                     static_cast<double>(m2_ - n_ + x + 1);
  return num / den;
}

int64_t FisherNoncentralHypergeometric::Mode() const {
  // Ratio(x) is strictly decreasing in x, so the mode is the smallest x in
  // the support with Ratio(x) < 1 — binary search.
  int64_t lo = support_min_;
  int64_t hi = support_max_;
  if (lo == hi) return lo;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (Ratio(mid) >= 1.0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void FisherNoncentralHypergeometric::Moments(double* mean,
                                             double* variance) const {
  const int64_t mode = Mode();
  // Accumulate relative masses outward from the mode (mass(mode) = 1).
  double sum = 1.0;
  double sum_x = static_cast<double>(mode);
  double sum_xx = static_cast<double>(mode) * static_cast<double>(mode);

  double mass = 1.0;
  for (int64_t x = mode; x < support_max_; ++x) {
    mass *= Ratio(x);
    const auto xv = static_cast<double>(x + 1);
    sum += mass;
    sum_x += mass * xv;
    sum_xx += mass * xv * xv;
    if (mass < kTermEpsilon * sum) break;
  }
  mass = 1.0;
  for (int64_t x = mode; x > support_min_; --x) {
    mass /= Ratio(x - 1);
    const auto xv = static_cast<double>(x - 1);
    sum += mass;
    sum_x += mass * xv;
    sum_xx += mass * xv * xv;
    if (mass < kTermEpsilon * sum) break;
  }
  const double mu = sum_x / sum;
  *mean = mu;
  *variance = std::max(0.0, sum_xx / sum - mu * mu);
}

double FisherNoncentralHypergeometric::Mean() const {
  double mean = 0.0;
  double variance = 0.0;
  Moments(&mean, &variance);
  return mean;
}

double FisherNoncentralHypergeometric::Variance() const {
  double mean = 0.0;
  double variance = 0.0;
  Moments(&mean, &variance);
  return variance;
}

double FisherNoncentralHypergeometric::ApproxMean() const {
  const double w = omega_;
  const auto m1 = static_cast<double>(m1_);
  const auto m2 = static_cast<double>(m2_);
  const auto n = static_cast<double>(n_);
  if (std::abs(w - 1.0) < 1e-12) {
    return n * m1 / (m1 + m2);  // central hypergeometric mean
  }
  // Fixed point of the conditional odds identity
  //   x (m2 - n + x) = omega (m1 - x)(n - x)
  // (Levin-style approximation): (w-1) x^2 - [w(m1+n) + m2-n] x + w m1 n = 0.
  const double a = w - 1.0;
  const double b = -(w * (m1 + n) + m2 - n);
  const double c = w * m1 * n;
  const double disc = std::sqrt(std::max(0.0, b * b - 4.0 * a * c));
  // Citardauq + classic forms; pick the root that lies inside the support.
  const double q = -0.5 * (b + (b >= 0 ? disc : -disc));
  const double root1 = q / a;
  const double root2 = (q != 0.0) ? c / q : root1;
  const auto lo = static_cast<double>(support_min_);
  const auto hi = static_cast<double>(support_max_);
  const bool root1_in = root1 >= lo - 0.5 && root1 <= hi + 0.5;
  const double root = root1_in ? root1 : root2;
  return std::clamp(root, lo, hi);
}

double FisherNoncentralHypergeometric::Pmf(int64_t x) const {
  if (x < support_min_ || x > support_max_) return 0.0;
  // Normalize against the mode-centered sum to avoid overflow.
  const int64_t mode = Mode();
  double sum = 1.0;
  double mass = 1.0;
  for (int64_t i = mode; i < support_max_; ++i) {
    mass *= Ratio(i);
    sum += mass;
    if (mass < kTermEpsilon * sum) break;
  }
  mass = 1.0;
  for (int64_t i = mode; i > support_min_; --i) {
    mass /= Ratio(i - 1);
    sum += mass;
    if (mass < kTermEpsilon * sum) break;
  }
  const double log_rel = LogUnnormalized(x) - LogUnnormalized(mode);
  return std::exp(log_rel) / sum;
}

double FisherNoncentralHypergeometric::Cdf(int64_t x) const {
  if (x < support_min_) return 0.0;
  if (x >= support_max_) return 1.0;
  double acc = 0.0;
  for (int64_t i = support_min_; i <= x; ++i) acc += Pmf(i);
  return std::min(1.0, acc);
}

}  // namespace sciborq
