// sciborq_telemetry — drives a synthetic telemetry stream into a running
// sciborq_server over the wire: registers a *windowed* table (v6 kCreateTable
// with a retention policy) and ingests batches from the deterministic
// TelemetryGenerator. The CI time-series smoke uses it to fill a server, then
// asserts that segment counts and on-disk bytes plateau while LAST(...) BY
// queries keep answering.
//
//   sciborq_telemetry --port 4242 --table telemetry --batches 200
//       --batch-rows 500 --bucket-width 1000 --window-buckets 10
//
// The table is created if absent (an AlreadyExists answer is tolerated, so
// re-runs append to the same stream). Exit code is non-zero on any failure.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "client/client.h"
#include "workload/telemetry.h"

using namespace sciborq;

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host HOST] [--port N] [--table NAME] [--batches N]\n"
      "          [--batch-rows N] [--bucket-width N] [--window-buckets N]\n"
      "          [--stations N] [--ts-increment N] [--seed N]\n"
      "  --host HOST        server host (default 127.0.0.1)\n"
      "  --port N           server port (default 4242)\n"
      "  --table NAME       target table (default telemetry)\n"
      "  --batches N        batches to ingest (default 50)\n"
      "  --batch-rows N     rows per batch (default 500)\n"
      "  --bucket-width N   retention bucket width in ts units (default 1000)\n"
      "  --window-buckets N buckets retained behind the newest (default 10)\n"
      "  --stations N       reporting stations (default 64)\n"
      "  --ts-increment N   mean ts advance per row (default 1)\n"
      "  --start-ts N       event time to start from (default 0; pass the\n"
      "                     previous run's printed watermark to continue)\n"
      "  --seed N           generator seed (default 42)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 4242;
  std::string table = "telemetry";
  int64_t batches = 50;
  int64_t batch_rows = 500;
  int64_t bucket_width = 1000;
  int64_t window_buckets = 10;
  int64_t stations = 64;
  int64_t ts_increment = 1;
  int64_t start_ts = 0;
  uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--host" && has_value) {
      host = argv[++i];
    } else if (arg == "--port" && has_value) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--table" && has_value) {
      table = argv[++i];
    } else if (arg == "--batches" && has_value) {
      batches = std::atoll(argv[++i]);
    } else if (arg == "--batch-rows" && has_value) {
      batch_rows = std::atoll(argv[++i]);
    } else if (arg == "--bucket-width" && has_value) {
      bucket_width = std::atoll(argv[++i]);
    } else if (arg == "--window-buckets" && has_value) {
      window_buckets = std::atoll(argv[++i]);
    } else if (arg == "--stations" && has_value) {
      stations = std::atoll(argv[++i]);
    } else if (arg == "--ts-increment" && has_value) {
      ts_increment = std::atoll(argv[++i]);
    } else if (arg == "--start-ts" && has_value) {
      start_ts = std::atoll(argv[++i]);
    } else if (arg == "--seed" && has_value) {
      seed = static_cast<uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  Result<SciborqClient> client = SciborqClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect %s:%d failed: %s\n", host.c_str(), port,
                 client.status().ToString().c_str());
    return 1;
  }

  RetentionPolicy retention;
  retention.time_column = "ts";
  retention.bucket_width = bucket_width;
  retention.window_buckets = window_buckets;
  const Status created = client->CreateTable(
      table, TelemetryGenerator::TableSchema(), retention, seed);
  if (!created.ok() && created.code() != StatusCode::kAlreadyExists) {
    std::fprintf(stderr, "create table '%s' failed: %s\n", table.c_str(),
                 created.ToString().c_str());
    return 1;
  }

  TelemetryConfig config;
  config.num_stations = stations;
  config.ts_increment_mean = ts_increment;
  config.start_ts = start_ts;
  Result<TelemetryGenerator> generator =
      TelemetryGenerator::Make(config, seed);
  if (!generator.ok()) {
    std::fprintf(stderr, "generator: %s\n",
                 generator.status().ToString().c_str());
    return 1;
  }

  int64_t total = 0;
  for (int64_t b = 0; b < batches; ++b) {
    const Table batch = generator->NextBatch(batch_rows);
    const Result<int64_t> rows = client->Ingest(table, batch);
    if (!rows.ok()) {
      std::fprintf(stderr, "ingest batch %lld failed: %s\n",
                   static_cast<long long>(b),
                   rows.status().ToString().c_str());
      return 1;
    }
    total += *rows;
  }
  std::printf("ingested %lld rows into '%s' (watermark ts=%lld)\n",
              static_cast<long long>(total), table.c_str(),
              static_cast<long long>(generator->watermark()));
  return 0;
}
