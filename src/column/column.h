#ifndef SCIBORQ_COLUMN_COLUMN_H_
#define SCIBORQ_COLUMN_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "column/types.h"
#include "column/value.h"
#include "util/result.h"
#include "util/status.h"

namespace sciborq {

struct EncodedColumn;

/// A typed, nullable, append-only column. Storage is a dense std::vector of
/// the physical type plus a validity vector that is only allocated once the
/// first null arrives (the common science-data case is null-free).
///
/// Columns are the unit of sampling and of query processing: impressions copy
/// selected rows column-at-a-time (see Impression), and operators scan raw
/// vectors directly via data_int64()/data_double().
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  Column(const Column&) = default;
  Column& operator=(const Column&) = default;
  Column(Column&&) = default;
  Column& operator=(Column&&) = default;

  DataType type() const { return type_; }
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Reserve(int64_t capacity);

  // -- Appends. The typed appenders SCIBORQ_DCHECK the column type. --
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendNull();
  /// Appends with runtime type checking; int64 widens to double columns.
  Status AppendValue(const Value& v);
  /// Appends row `row` of `src` (same type) to this column.
  void AppendFrom(const Column& src, int64_t row);
  /// Overwrites row `dst_row` with row `src_row` of `src` (same type) —
  /// the reservoir-eviction path. Precondition: dst_row < size().
  void SetFrom(const Column& src, int64_t src_row, int64_t dst_row);

  // -- Element access. Precondition: 0 <= row < size(). --
  bool IsNull(int64_t row) const {
    return !validity_.empty() && validity_[static_cast<size_t>(row)] == 0;
  }
  int64_t GetInt64(int64_t row) const { return ints_[static_cast<size_t>(row)]; }
  double GetDouble(int64_t row) const { return doubles_[static_cast<size_t>(row)]; }
  const std::string& GetString(int64_t row) const {
    return strings_[static_cast<size_t>(row)];
  }
  /// Numeric view of any numeric column (int64 cast to double).
  double NumericAt(int64_t row) const {
    return type_ == DataType::kInt64 ? static_cast<double>(GetInt64(row))
                                     : GetDouble(row);
  }
  /// Boxed access for API boundaries.
  Value GetValue(int64_t row) const;

  // -- Raw storage access for vectorized operators. --
  const std::vector<int64_t>& data_int64() const { return ints_; }
  const std::vector<double>& data_double() const { return doubles_; }
  const std::vector<std::string>& data_string() const { return strings_; }
  bool has_nulls() const { return !validity_.empty(); }

  /// Gathers the given rows into a new column (impression extraction path).
  Column Take(const SelectionVector& rows) const;

  /// Bulk adoption of pre-built null-free storage — the deserialization fast
  /// path (column/serde.h decodes whole numeric columns with one memcpy
  /// instead of per-element appends).
  static Column FromInt64Vector(std::vector<int64_t> values);
  static Column FromDoubleVector(std::vector<double> values);

  /// Number of null entries.
  int64_t null_count() const;

  /// Min/Max over non-null numeric values; error for string/empty columns.
  Result<double> Min() const;
  Result<double> Max() const;

  /// Approximate heap footprint in bytes (used by the impression size policy).
  int64_t MemoryUsageBytes() const;

  // -- Encoding sidecar (column/encoding/encoding.h). --

  /// The per-morsel zone-map + compression sidecar, or nullptr when none has
  /// been built. Covers only the complete-morsel prefix of the column; the
  /// tail is always scanned off the raw storage.
  const EncodedColumn* encoding() const { return encoded_.get(); }

  /// Builds (or incrementally extends) the sidecar over the complete morsels
  /// appended since the last build. Copies-on-write when the sidecar is
  /// shared with another Column copy (e.g. a checkpoint's table snapshot),
  /// so concurrent readers of that copy never observe mutation.
  void BuildEncoding();

  /// Drops the sidecar. Called by in-place mutation (SetFrom) — appends
  /// don't invalidate, since the covered prefix is untouched.
  void InvalidateEncoding() { encoded_.reset(); }

 private:
  void MaterializeValidity();

  DataType type_;
  int64_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  /// Empty means "all valid". 1 = valid, 0 = null.
  std::vector<uint8_t> validity_;
  /// Shared between copies of the same column data (copying a Column copies
  /// the pointer, not the sidecar); BuildEncoding copies-on-write.
  std::shared_ptr<EncodedColumn> encoded_;
};

}  // namespace sciborq

#endif  // SCIBORQ_COLUMN_COLUMN_H_
