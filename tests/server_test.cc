// End-to-end tests for the TCP subsystem: a real SciborqServer on an
// ephemeral loopback port, real SciborqClients, and — for the malformed
// frame cases — a raw TcpConn speaking deliberately broken bytes.

#include "server/server.h"

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "client/client.h"
#include "server/socket.h"
#include "server/wire.h"
#include "skyserver/catalog.h"
#include "util/string_util.h"

namespace sciborq {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SkyCatalogConfig config;
    config.num_rows = 20'000;
    Result<SkyCatalog> catalog = GenerateSkyCatalog(config, 7);
    ASSERT_TRUE(catalog.ok());
    TableOptions options;
    options.layers = {{"l0", 4096}, {"l1", 512}};
    options.seed = 7;
    ASSERT_TRUE(engine_
                    .CreateTable("photo_obj_all",
                                 catalog->photo_obj_all.schema(), options)
                    .ok());
    ASSERT_TRUE(
        engine_.IngestBatch("photo_obj_all", catalog->photo_obj_all).ok());

    ServerOptions server_options;
    server_options.port = 0;  // ephemeral: tests never collide
    server_options.max_connections = 8;
    server_.emplace(&engine_, server_options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  Result<SciborqClient> Connect() {
    return SciborqClient::Connect("127.0.0.1", server_->port());
  }

  Engine engine_;
  std::optional<SciborqServer> server_;
};

constexpr char kBoundedSql[] =
    "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
    "WHERE cone(ra, dec; 170, 30; r=10) ERROR 25%";

TEST_F(ServerTest, PingAndCatalog) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());

  Result<std::vector<TableInfo>> tables = client->ListTables();
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(1u, tables->size());
  const TableInfo& info = (*tables)[0];
  EXPECT_EQ("photo_obj_all", info.name);
  EXPECT_EQ(20'000, info.rows);
  EXPECT_EQ(20'000, info.population_seen);
  EXPECT_FALSE(info.biased);
  EXPECT_TRUE(info.schema.HasField("ra"));
  ASSERT_EQ(2u, info.layers.size());
  EXPECT_EQ("l0", info.layers[0].name);
  EXPECT_EQ(4096, info.layers[0].capacity);
  EXPECT_EQ(4096, info.layers[0].rows);
  EXPECT_EQ("uniform", info.layers[0].policy);
}

TEST_F(ServerTest, RemoteBoundedQueryEqualsInProcess) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok());
  Result<QueryOutcome> remote = client->Query(kBoundedSql);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  Result<QueryOutcome> local = engine_.Query(kBoundedSql);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(EquivalentAnswers(*remote, *local))
      << "remote: " << remote->ToString() << "\nlocal: " << local->ToString();
  EXPECT_FALSE(remote->answered_by.empty());
  ASSERT_FALSE(remote->estimates.empty());
  ASSERT_FALSE(remote->estimates[0].empty());
  EXPECT_GT(remote->estimates[0][0].sample_rows, 0);
  EXPECT_FALSE(remote->attempts.empty());
}

TEST_F(ServerTest, ExactQueryOverTheWire) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok());
  Result<QueryOutcome> remote =
      client->Query("SELECT COUNT(*) FROM photo_obj_all EXACT");
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_TRUE(remote->exact);
  EXPECT_EQ("base", remote->answered_by);
  ASSERT_EQ(1u, remote->rows.size());
  EXPECT_EQ(20'000.0, remote->rows[0].values[0]);
}

TEST_F(ServerTest, SessionStatePersistsPerConnection) {
  Result<SciborqClient> a = Connect();
  Result<SciborqClient> b = Connect();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  // Client A: USE + default bounds make bare SQL answerable.
  ASSERT_TRUE(a->Use("photo_obj_all").ok());
  QueryBounds bounds;
  bounds.exact = true;
  ASSERT_TRUE(a->SetDefaultBounds(bounds).ok());
  Result<QueryOutcome> outcome = a->Query("SELECT COUNT(*)");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ("base", outcome->answered_by);  // EXACT default applied
  EXPECT_TRUE(outcome->exact);

  // Client B shares none of A's session state.
  Result<QueryOutcome> unbound = b->Query("SELECT COUNT(*)");
  ASSERT_FALSE(unbound.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, unbound.status().code());

  // Unknown table: the engine's NotFound travels back code-intact.
  EXPECT_EQ(StatusCode::kNotFound, a->Use("nope").code());
}

TEST_F(ServerTest, EngineErrorsTravelBack) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok());
  Result<QueryOutcome> bad_sql = client->Query("SELEKT banana");
  ASSERT_FALSE(bad_sql.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, bad_sql.status().code());
  Result<QueryOutcome> bad_table =
      client->Query("SELECT COUNT(*) FROM missing ERROR 5%");
  ASSERT_FALSE(bad_table.ok());
  EXPECT_EQ(StatusCode::kNotFound, bad_table.status().code());
  // The connection survives engine-level errors.
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerTest, FourConcurrentClientsZeroProtocolErrors) {
  // The acceptance bar: ≥ 4 concurrent clients, zero protocol errors, every
  // remote answer equal to the in-process answer for the same SQL.
  Result<QueryOutcome> expected = engine_.Query(kBoundedSql);
  ASSERT_TRUE(expected.ok());

  constexpr int kClients = 4;
  constexpr int kQueriesEach = 25;
  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Result<SciborqClient> client =
          SciborqClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures.fetch_add(kQueriesEach);
        return;
      }
      for (int i = 0; i < kQueriesEach; ++i) {
        Result<QueryOutcome> outcome = client->Query(kBoundedSql);
        if (!outcome.ok()) {
          failures.fetch_add(1);
        } else if (!EquivalentAnswers(*outcome, *expected)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(0, mismatches.load());
  EXPECT_EQ(0, server_->protocol_errors());
  EXPECT_GE(server_->queries_served(), kClients * kQueriesEach);
}

TEST_F(ServerTest, OversizedFrameRejected) {
  // A raw peer claims a 256 MiB frame; the server must refuse before
  // reading (let alone allocating) the body, answer with ResourceExhausted,
  // and hang up.
  Result<TcpConn> conn = TcpConn::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  const uint32_t huge = 256u * 1024 * 1024;
  std::string prefix(4, '\0');
  for (int i = 0; i < 4; ++i) {
    prefix[static_cast<size_t>(i)] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  ASSERT_TRUE(conn->SendRaw(prefix).ok());

  Result<std::optional<std::string>> frame = conn->RecvFrame(kMaxFrameBytes);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());  // the error response, not an EOF
  Result<ResponseFrame> response = DecodeResponse(**frame);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(Opcode::kInvalid, response->opcode);
  EXPECT_EQ(StatusCode::kResourceExhausted, response->status.code());

  // ... and the server hung up: the next read is a clean EOF.
  Result<std::optional<std::string>> eof = conn->RecvFrame(kMaxFrameBytes);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof->has_value());
  EXPECT_GE(server_->protocol_errors(), 1);
}

TEST_F(ServerTest, TruncatedFrameClosesConnectionCleanly) {
  // Two bytes of a length prefix, then the peer vanishes: the server must
  // treat the mid-prefix EOF as a protocol error and close, not crash.
  Result<TcpConn> conn = TcpConn::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->SendRaw(std::string("\x08\x00", 2)).ok());
  conn->Shutdown();
  // Wait for the server to notice and finish the handler.
  for (int i = 0; i < 100 && server_->protocol_errors() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server_->protocol_errors(), 1);
  // The server stays healthy for new clients.
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerTest, GarbageEnvelopeAnsweredThenClosed) {
  // A well-framed body whose version byte is from the future: the server
  // answers with kInvalid/InvalidArgument, then hangs up.
  Result<TcpConn> conn = TcpConn::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  std::string body = EncodeRequest(Opcode::kPing, "");
  body[0] = 42;
  ASSERT_TRUE(conn->SendFrame(body).ok());
  Result<std::optional<std::string>> frame = conn->RecvFrame(kMaxFrameBytes);
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  Result<ResponseFrame> response = DecodeResponse(**frame);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(Opcode::kInvalid, response->opcode);
  EXPECT_EQ(StatusCode::kInvalidArgument, response->status.code());
  Result<std::optional<std::string>> eof = conn->RecvFrame(kMaxFrameBytes);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof->has_value());
}

// ------------------------------------------------ prepared statements -----

constexpr char kBoxTemplate[] =
    "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
    "WHERE ra >= ? AND ra <= ? AND dec >= ? AND dec <= ? ERROR 25%";

std::vector<Value> BoxParams(int i) {
  const double ra = 150.0 + 4.0 * (i % 6);
  const double dec = 15.0 + 3.0 * (i % 4);
  return {Value(ra - 18.0), Value(ra + 18.0), Value(dec - 18.0),
          Value(dec + 18.0)};
}

std::string BoxSql(int i) {
  const double ra = 150.0 + 4.0 * (i % 6);
  const double dec = 15.0 + 3.0 * (i % 4);
  return StrFormat(
      "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
      "WHERE ra >= %.17g AND ra <= %.17g AND dec >= %.17g AND dec <= %.17g "
      "ERROR 25%%",
      ra - 18.0, ra + 18.0, dec - 18.0, dec + 18.0);
}

TEST_F(ServerTest, PreparedRoundTripMatchesInProcess) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const Result<StatementInfo> stmt = client->Prepare(kBoxTemplate);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE(stmt->handle.valid());
  EXPECT_EQ("photo_obj_all", stmt->table);
  EXPECT_EQ(4u, stmt->num_params);
  EXPECT_NE(stmt->sql.find("ra >= ?"), std::string::npos) << stmt->sql;

  // Acceptance bar, over the wire: the remote bound execution equals the
  // in-process query of the equivalent fully-bound SQL.
  for (int i = 0; i < 6; ++i) {
    const Result<QueryOutcome> remote =
        client->Execute(stmt->handle, BoxParams(i));
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    const Result<QueryOutcome> local = engine_.Query(BoxSql(i));
    ASSERT_TRUE(local.ok());
    EXPECT_TRUE(EquivalentAnswers(*remote, *local))
        << "i=" << i << "\nremote: " << remote->ToString()
        << "\nlocal:  " << local->ToString();
  }
  EXPECT_EQ(1, server_->statements_prepared());

  ASSERT_TRUE(client->CloseStatement(stmt->handle).ok());
  const Result<QueryOutcome> closed =
      client->Execute(stmt->handle, BoxParams(0));
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(StatusCode::kNotFound, closed.status().code());
  // The connection survives statement-level errors.
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_EQ(0, server_->protocol_errors());
}

TEST_F(ServerTest, RemoteBindErrorsComeBackCodeIntact) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok());
  const Result<StatementInfo> stmt =
      client->Prepare("SELECT COUNT(*) FROM photo_obj_all WHERE ra > ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  // Arity mismatch: InvalidArgument with the counts named.
  const Result<QueryOutcome> wrong_arity =
      client->Execute(stmt->handle, {Value(1.0), Value(2.0)});
  ASSERT_FALSE(wrong_arity.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, wrong_arity.status().code());
  EXPECT_NE(wrong_arity.status().message().find("expects 1 parameter(s)"),
            std::string::npos)
      << wrong_arity.status().message();

  // Type mismatch: a string bound against the numeric column.
  const Result<QueryOutcome> wrong_type =
      client->Execute(stmt->handle, {Value("oops")});
  ASSERT_FALSE(wrong_type.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, wrong_type.status().code());

  // Unparsable templates report the caret diagnostics across the wire.
  const Result<StatementInfo> bad =
      client->Prepare("SELECT COUNT(* FROM photo_obj_all");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, bad.status().code());
  EXPECT_NE(bad.status().message().find("offset"), std::string::npos);

  // The connection is still healthy and the statement still works.
  EXPECT_TRUE(client->Execute(stmt->handle, {Value(150.0)}).ok());
  EXPECT_EQ(0, server_->protocol_errors());
}

TEST_F(ServerTest, StatementHandlesAreScopedPerConnection) {
  Result<SciborqClient> owner = Connect();
  Result<SciborqClient> intruder = Connect();
  ASSERT_TRUE(owner.ok());
  ASSERT_TRUE(intruder.ok());

  const Result<StatementInfo> stmt =
      owner->Prepare("SELECT COUNT(*) FROM photo_obj_all WHERE ra > ?");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(owner->Execute(stmt->handle, {Value(150.0)}).ok());

  // Another connection can neither execute nor close the handle.
  const Result<QueryOutcome> stolen =
      intruder->Execute(stmt->handle, {Value(150.0)});
  ASSERT_FALSE(stolen.ok());
  EXPECT_EQ(StatusCode::kNotFound, stolen.status().code());
  EXPECT_EQ(StatusCode::kNotFound,
            intruder->CloseStatement(stmt->handle).code());
  // The owner still can.
  EXPECT_TRUE(owner->Execute(stmt->handle, {Value(160.0)}).ok());
}

TEST_F(ServerTest, DisconnectFreesPreparedStatements) {
  {
    Result<SciborqClient> client = Connect();
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(
        client->Prepare("SELECT COUNT(*) FROM photo_obj_all WHERE ra > ?")
            .ok());
    ASSERT_TRUE(
        client->Prepare("SELECT COUNT(*) FROM photo_obj_all WHERE dec > ?")
            .ok());
    EXPECT_EQ(2, engine_.open_statements());
  }  // client hangs up
  // The handler notices the EOF and destroys the session, which closes the
  // registry entries — poll briefly for the race.
  for (int i = 0; i < 100 && engine_.open_statements() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(0, engine_.open_statements());
}

TEST_F(ServerTest, FourConcurrentClientsExecuteBitIdenticallyToRendered) {
  // Satellite requirement: Execute(handle, params) vs Query(rendered_sql)
  // bit-identity on 4 concurrent clients. The table is static, so every
  // outcome is deterministic no matter the interleaving.
  constexpr int kClients = 4;
  constexpr int kPerClient = 10;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([this, &mismatches, &failures] {
      Result<SciborqClient> client = Connect();
      if (!client.ok()) {
        failures.fetch_add(kPerClient);
        return;
      }
      const Result<StatementInfo> stmt = client->Prepare(kBoxTemplate);
      if (!stmt.ok()) {
        failures.fetch_add(kPerClient);
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const Result<QueryOutcome> remote =
            client->Execute(stmt->handle, BoxParams(i));
        const Result<QueryOutcome> rendered = client->Query(BoxSql(i));
        if (!remote.ok() || !rendered.ok()) {
          failures.fetch_add(1);
        } else if (!EquivalentAnswers(*remote, *rendered)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(0, mismatches.load());
  EXPECT_EQ(0, server_->protocol_errors());
  EXPECT_EQ(kClients, server_->statements_prepared());
}

TEST_F(ServerTest, StatsOpcodeScrapesTheRegistry) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Query(kBoundedSql).ok());

  Result<std::vector<obs::StatSample>> stats = client->ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // The scrape carries both the server-side and engine-side families, and
  // the query we just ran moved the counters.
  double server_queries = 0.0;
  double engine_queries = 0.0;
  for (const obs::StatSample& sample : *stats) {
    if (sample.name == "sciborq_server_queries_total") {
      server_queries += sample.value;
    }
    if (sample.name == "sciborq_queries_total") {
      engine_queries += sample.value;
    }
  }
  EXPECT_GE(server_queries, 1.0);
  EXPECT_GE(engine_queries, 1.0);
}

TEST_F(ServerTest, SlowLogTravelsOverTheWire) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok());
  // A 1-microsecond budget with a near-zero error bound: the first layer
  // answers but cannot meet the error, and the blown deadline forbids
  // escalating — a deterministic bound miss that must land in the ring.
  const std::string sql =
      "SELECT AVG(r) FROM photo_obj_all WITHIN 0.001 MS ERROR 0.0001%";
  Result<QueryOutcome> outcome = client->Query(sql);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->error_bound_met);

  Result<std::vector<obs::SlowQueryEntry>> slow = client->SlowQueries();
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  ASSERT_FALSE(slow->empty());
  const obs::SlowQueryEntry& entry = slow->back();
  EXPECT_EQ("photo_obj_all", entry.table);
  EXPECT_EQ(outcome->query_id, entry.query_id);
  EXPECT_FALSE(entry.error_bound_met);
  EXPECT_DOUBLE_EQ(0.001, entry.asked_max_ms);
  EXPECT_FALSE(entry.trace.empty());
}

TEST_F(ServerTest, GracefulStopDrainsAndRefusesNewConnections) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  const int port = server_->port();
  server_->Stop();
  // Existing connection: server has hung up; next round-trip fails cleanly.
  EXPECT_FALSE(client->Ping().ok());
  // New connections are refused (or reset) after Stop.
  Result<TcpConn> fresh = TcpConn::Connect("127.0.0.1", port);
  if (fresh.ok()) {
    // Connected before the OS tore the socket down — the first read fails.
    Result<std::optional<std::string>> frame = fresh->RecvFrame(kMaxFrameBytes);
    EXPECT_TRUE(!frame.ok() || !frame->has_value());
  }
  EXPECT_FALSE(server_->running());
}

}  // namespace
}  // namespace sciborq
