#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/kde.h"
#include "util/rng.h"

namespace sciborq {
namespace {

std::vector<double> BimodalSample(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    points.push_back(rng.NextDouble() < 0.55 ? rng.Gaussian(150.0, 6.0)
                                             : rng.Gaussian(215.0, 8.0));
  }
  return points;
}

TEST(KernelTest, GaussianPeakAndSymmetry) {
  EXPECT_NEAR(KernelValue(KernelType::kGaussian, 0.0), 0.3989422804, 1e-9);
  EXPECT_DOUBLE_EQ(KernelValue(KernelType::kGaussian, 1.5),
                   KernelValue(KernelType::kGaussian, -1.5));
}

TEST(KernelTest, EpanechnikovCompactSupport) {
  EXPECT_DOUBLE_EQ(KernelValue(KernelType::kEpanechnikov, 0.0), 0.75);
  EXPECT_DOUBLE_EQ(KernelValue(KernelType::kEpanechnikov, 1.01), 0.0);
  EXPECT_DOUBLE_EQ(KernelValue(KernelType::kEpanechnikov, -2.0), 0.0);
}

TEST(KernelTest, KernelsIntegrateToOne) {
  for (const auto k : {KernelType::kGaussian, KernelType::kEpanechnikov}) {
    const double integral = IntegrateDensity(
        [k](double u) { return KernelValue(k, u); }, -8.0, 8.0, 4000);
    EXPECT_NEAR(integral, 1.0, 1e-6);
  }
}

TEST(FullKdeTest, MakeValidation) {
  EXPECT_FALSE(FullKde::Make({}, 1.0).ok());
  EXPECT_FALSE(FullKde::Make({1.0}, 0.0).ok());
  EXPECT_FALSE(FullKde::Make({1.0}, -1.0).ok());
  EXPECT_TRUE(FullKde::Make({1.0}, 1.0).ok());
}

TEST(FullKdeTest, IntegratesToOne) {
  const auto points = BimodalSample(400, 3);
  const FullKde kde = FullKde::Make(points, SilvermanBandwidth(points)).value();
  const double integral =
      IntegrateDensity([&](double x) { return kde.Evaluate(x); }, 50.0, 320.0);
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(FullKdeTest, PeaksNearModes) {
  const auto points = BimodalSample(400, 5);
  const FullKde kde = FullKde::Make(points, 4.0).value();
  // Density near the modes must dominate density in the valley and tails.
  const double at_mode1 = kde.Evaluate(150.0);
  const double at_mode2 = kde.Evaluate(215.0);
  const double at_valley = kde.Evaluate(185.0);
  const double at_tail = kde.Evaluate(80.0);
  EXPECT_GT(at_mode1, 2.0 * at_valley);
  EXPECT_GT(at_mode2, 2.0 * at_valley);
  EXPECT_GT(at_valley, at_tail);
}

TEST(BandwidthTest, SilvermanShrinksWithN) {
  const auto small = BimodalSample(100, 7);
  const auto large = BimodalSample(10000, 7);
  const double h_small = SilvermanBandwidth(small);
  const double h_large = SilvermanBandwidth(large);
  EXPECT_GT(h_small, 0.0);
  EXPECT_GT(h_large, 0.0);
  EXPECT_LT(h_large, h_small);
}

TEST(BandwidthTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(SilvermanBandwidth({}), 0.0);
  EXPECT_DOUBLE_EQ(SilvermanBandwidth({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(SilvermanBandwidth({2.0, 2.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(ScottBandwidth({1.0}), 0.0);
}

TEST(BandwidthTest, ScottLargerThanSilvermanOnGaussian) {
  Rng rng(9);
  std::vector<double> points;
  for (int i = 0; i < 2000; ++i) points.push_back(rng.NextGaussian());
  EXPECT_GT(ScottBandwidth(points), SilvermanBandwidth(points));
}

// The core §4 identity: ∫ f̆(x) dx = 1 (shown in the paper's derivation).
TEST(BinnedKdeTest, IntegratesToOne) {
  StreamingHistogram hist = StreamingHistogram::Make(120.0, 3.0, 40).value();
  const auto points = BimodalSample(400, 11);
  for (const double p : points) hist.Observe(p);
  const BinnedKde kde(&hist);
  const double integral =
      IntegrateDensity([&](double x) { return kde.Evaluate(x); }, 0.0, 400.0);
  EXPECT_NEAR(integral, 1.0, 5e-3);
}

TEST(BinnedKdeTest, ZeroWithoutObservations) {
  StreamingHistogram hist = StreamingHistogram::Make(0.0, 1.0, 8).value();
  const BinnedKde kde(&hist);
  EXPECT_DOUBLE_EQ(kde.Evaluate(4.0), 0.0);
  EXPECT_DOUBLE_EQ(kde.total_weight(), 0.0);
}

// The paper's headline claim for f̆: "almost identical" to f̂ while O(β).
TEST(BinnedKdeTest, CloseToFullKde) {
  StreamingHistogram hist = StreamingHistogram::Make(120.0, 3.0, 40).value();
  const auto points = BimodalSample(400, 13);
  for (const double p : points) hist.Observe(p);
  const BinnedKde breve(&hist);
  const FullKde hat = FullKde::Make(points, 3.0).value();

  std::vector<double> f_hat;
  std::vector<double> f_breve;
  double peak = 0.0;
  for (double x = 120.0; x <= 240.0; x += 1.0) {
    f_hat.push_back(hat.Evaluate(x));
    f_breve.push_back(breve.Evaluate(x));
    peak = std::max(peak, f_hat.back());
  }
  EXPECT_LT(L1Distance(f_hat, f_breve), 0.05 * peak);
  EXPECT_LT(L2Distance(f_hat, f_breve), 0.10 * peak);
}

TEST(BinnedKdeTest, TracksLiveHistogram) {
  StreamingHistogram hist = StreamingHistogram::Make(0.0, 1.0, 10).value();
  const BinnedKde kde(&hist);
  hist.Observe(5.0);
  const double before = kde.Evaluate(5.0);
  for (int i = 0; i < 50; ++i) hist.Observe(5.0);
  // Mass concentrates: density at 5 grows relative to a far point.
  EXPECT_GT(kde.Evaluate(5.0), 0.0);
  EXPECT_GE(kde.Evaluate(5.0), before * 0.9);
  EXPECT_GT(kde.Evaluate(5.0), kde.Evaluate(0.0));
}

TEST(FrozenBinnedKdeTest, SnapshotDoesNotTrack) {
  StreamingHistogram hist = StreamingHistogram::Make(0.0, 1.0, 10).value();
  hist.Observe(5.0);
  const FrozenBinnedKde frozen(hist);
  const double before = frozen.Evaluate(5.0);
  for (int i = 0; i < 100; ++i) hist.Observe(1.0);
  EXPECT_DOUBLE_EQ(frozen.Evaluate(5.0), before);
  EXPECT_DOUBLE_EQ(frozen.total_weight(), 1.0);
}

TEST(FrozenBinnedKdeTest, MatchesLiveAtSnapshotTime) {
  StreamingHistogram hist = StreamingHistogram::Make(120.0, 3.0, 40).value();
  for (const double p : BimodalSample(200, 17)) hist.Observe(p);
  const BinnedKde live(&hist);
  const FrozenBinnedKde frozen(hist);
  for (double x = 120.0; x <= 240.0; x += 5.0) {
    EXPECT_DOUBLE_EQ(live.Evaluate(x), frozen.Evaluate(x));
  }
}

// Bandwidth pathology the paper's Figure 4 illustrates: oversmoothing washes
// out the bimodal structure; undersmoothing keeps it (roughness comparison).
TEST(Figure4Test, OversmoothingErasesValley) {
  const auto points = BimodalSample(400, 19);
  const double h_good = SilvermanBandwidth(points);
  const FullKde good = FullKde::Make(points, h_good).value();
  const FullKde oversmoothed = FullKde::Make(points, h_good * 8.0).value();
  const auto valley_depth = [](const FullKde& kde) {
    const double peak =
        std::max(kde.Evaluate(150.0), kde.Evaluate(215.0));
    return (peak - kde.Evaluate(185.0)) / peak;
  };
  EXPECT_GT(valley_depth(good), 0.3);
  EXPECT_LT(valley_depth(oversmoothed), 0.15);
}

TEST(Figure4Test, UndersmoothingIsRougher) {
  const auto points = BimodalSample(400, 23);
  const double h_good = SilvermanBandwidth(points);
  const FullKde good = FullKde::Make(points, h_good).value();
  const FullKde undersmoothed = FullKde::Make(points, h_good / 8.0).value();
  // Total variation of the curve as a roughness proxy.
  const auto roughness = [](const FullKde& kde) {
    double tv = 0.0;
    double prev = kde.Evaluate(120.0);
    for (double x = 120.5; x <= 240.0; x += 0.5) {
      const double cur = kde.Evaluate(x);
      tv += std::abs(cur - prev);
      prev = cur;
    }
    return tv;
  };
  EXPECT_GT(roughness(undersmoothed), 2.0 * roughness(good));
}

// Sweep: f̆ integrates to ~1 for any bin count (the derivation holds for all
// beta).
class BinnedKdeBetaSweep : public ::testing::TestWithParam<int> {};

TEST_P(BinnedKdeBetaSweep, IntegralIsOne) {
  const int beta = GetParam();
  StreamingHistogram hist =
      StreamingHistogram::Make(120.0, 120.0 / beta, beta).value();
  for (const double p : BimodalSample(300, 100 + beta)) hist.Observe(p);
  const BinnedKde kde(&hist);
  const double integral = IntegrateDensity(
      [&](double x) { return kde.Evaluate(x); }, -200.0, 600.0, 4000);
  EXPECT_NEAR(integral, 1.0, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Betas, BinnedKdeBetaSweep,
                         ::testing::Values(4, 8, 16, 32, 64, 128));

}  // namespace
}  // namespace sciborq
