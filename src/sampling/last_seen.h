#ifndef SCIBORQ_SAMPLING_LAST_SEEN_H_
#define SCIBORQ_SAMPLING_LAST_SEEN_H_

#include <cstdint>

#include "sampling/decision.h"
#include "util/result.h"
#include "util/rng.h"

namespace sciborq {

/// The paper's *Last Seen* impression sampler (Figure 3): tuples are accepted
/// with the *fixed* probability k/D instead of Algorithm R's shrinking n/cnt,
/// so old tuples keep being evicted and the reservoir is biased toward the
/// most recent part of the stream. D is tuned toward the expected daily
/// ingest; k = n keeps only fresh tuples, k < n retains a k/n fresh ratio.
///
/// Figure 3 as printed re-uses a single random draw both for the acceptance
/// test (D*rnd < k) and the victim slot (floor(n*rnd)), which places victims
/// only in the first n*k/D slots and makes eviction non-uniform. We implement
/// the published variant verbatim behind `paper_faithful` (its skew is
/// demonstrated in tests) and default to an independent uniform victim draw,
/// which preserves the recency bias the text describes without the placement
/// artifact.
class LastSeenSampler {
 public:
  /// InvalidArgument unless 0 < k <= capacity <= expected_ingest are sane:
  /// capacity > 0, expected_ingest > 0, 0 < k <= expected_ingest.
  static Result<LastSeenSampler> Make(int64_t capacity, int64_t k,
                                      int64_t expected_ingest, uint64_t seed,
                                      bool paper_faithful = false);

  ReservoirDecision Offer();

  int64_t capacity() const { return capacity_; }
  int64_t seen() const { return seen_; }
  int64_t size() const { return seen_ < capacity_ ? seen_ : capacity_; }
  bool full() const { return seen_ >= capacity_; }
  /// The per-tuple acceptance probability k/D.
  double acceptance_probability() const {
    return static_cast<double>(k_) / static_cast<double>(expected_ingest_);
  }

  /// Resumable sampler state (persistent storage).
  struct State {
    int64_t seen = 0;
    Rng::State rng;
  };
  State SaveState() const { return State{seen_, rng_.SaveState()}; }
  static Result<LastSeenSampler> Restore(int64_t capacity, int64_t k,
                                         int64_t expected_ingest,
                                         bool paper_faithful,
                                         const State& state);

 private:
  LastSeenSampler(int64_t capacity, int64_t k, int64_t expected_ingest,
                  uint64_t seed, bool paper_faithful)
      : capacity_(capacity),
        k_(k),
        expected_ingest_(expected_ingest),
        paper_faithful_(paper_faithful),
        rng_(seed) {}

  int64_t capacity_;
  int64_t k_;
  int64_t expected_ingest_;
  bool paper_faithful_;
  int64_t seen_ = 0;
  Rng rng_;
};

}  // namespace sciborq

#endif  // SCIBORQ_SAMPLING_LAST_SEEN_H_
