#ifndef SCIBORQ_SERVER_WIRE_H_
#define SCIBORQ_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/engine.h"
#include "column/serde.h"
#include "column/value.h"
#include "exec/query.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "util/binio.h"
#include "util/result.h"

namespace sciborq {

// ---------------------------------------------------------------------------
// SciBORQ wire protocol — the network face of the bounded-query contract.
//
// Every message travels in one *frame*:
//
//   u32 length (little-endian) | body (`length` bytes)
//
// where body = u8 version | u8 opcode | payload. Frames larger than the
// receiver's max_frame_bytes are rejected without being read.
//
// v1 requests (client -> server), encoded with version byte 1 — byte
// identical to every older build:
//   kQuery     payload = string sql         (session table/bounds fill gaps)
//   kUse       payload = string table       (sets the session default table)
//   kSetBounds payload = QueryBounds        (session defaults for bare SQL)
//   kCatalog   payload = (empty)            (list tables + metadata)
//   kPing      payload = (empty)
//
// v2 adds prepared statements (parse once, bind, execute many), encoded
// with version byte 2; a peer that only speaks v1 rejects them cleanly:
//   kPrepare   payload = string sql          (`?` placeholder template)
//   kExecute   payload = i64 id | params     (params = u32 n + n Value)
//   kCloseStmt payload = i64 id
//   kCheckpoint payload = string table       ("" = checkpoint every table;
//                                             response payload = u32 count)
//
// v3 is the distributed protocol (coordinator <-> shard). Two new opcodes:
//   kCreateTable payload = string name | Schema | u64 seed
//   kIngest      payload = string table | Table   (column/serde.h encoding;
//                                                  response payload = i64 rows)
// and version negotiation on existing opcodes: a request *stamped* v3 gets a
// v3-encoded response. A v3 kQuery request appends `u8 flags` after the SQL
// (bit 0 = mergeable: the shard also ships its Welford partials); v3
// QueryOutcome/TableInfo encodings append the distributed fields (partial
// flag, shard counts, partials matrix; shard count). Requests stamped v1/v2
// get byte-identical v1/v2 responses, so every older peer is untouched.
//
// v4 is the observability protocol. Two new opcodes:
//   kStats    payload = (empty)        (response = u32 n + n StatSample:
//                                       flattened metrics registry scrape)
//   kSlowLog  payload = (empty)        (response = u32 n + n SlowQueryEntry:
//                                       the bound-miss ring, oldest first)
// and, under the same negotiation rule as v3: a v4 kQuery request appends
// `string query_id` after the flags byte (the coordinator propagates its id
// so shard traces stitch into one); v4 QueryOutcome encodings append the
// trace fields (query id, phase spans). Requests stamped v1-v3 get
// byte-identical v1-v3 responses.
//
// v5 adds no opcodes: it extends the kCatalog response's TableInfo with the
// per-column storage block (dominant encoding, plain/encoded footprints).
//
// v6 is the retention protocol. One new opcode:
//   kDropTable payload = string name     (catalog + disk removal; response
//                                         payload empty)
// and, under the usual negotiation rule: a kCreateTable request *stamped* v6
// appends a retention block after the seed —
//   u8 has_retention | [string time_column | i64 bucket_width |
//   i64 window_buckets | u8 checkpoint_on_evict | i64 last_seen_capacity |
//   i64 last_seen_expected_ingest]
// (bracketed fields present only when has_retention = 1). Requests stamped
// v3 stay byte-identical, so pre-retention peers are untouched.
//
// Responses (server -> client) echo the request opcode and carry
//   u8 status_code | string status_message | payload-if-OK
// with payload: kQuery/kExecute -> QueryOutcome, kCatalog -> u32 n +
// n TableInfo, kPrepare -> StatementInfo, others empty. Frame-level
// failures (oversized/undecodable request) are reported with opcode
// kInvalid and the connection is closed.
//
// All integers are little-endian and fixed-width; doubles are IEEE-754 bit
// patterns (NaN/Inf round-trip exactly); strings are u32 length + raw bytes.
// The encoding is bijective: encode(decode(encode(x))) == encode(x), which
// the wire tests assert byte-for-byte.
// ---------------------------------------------------------------------------

/// The original opcode set. Frames carrying v1 opcodes are still encoded
/// with this version byte, so v1 request/response encodings never change.
inline constexpr uint8_t kWireVersionV1 = 1;
/// Adds kPrepare/kExecute/kCloseStmt.
inline constexpr uint8_t kWireVersionV2 = 2;
/// Adds kCreateTable/kIngest and the distributed QueryOutcome/TableInfo
/// fields (partial flag, shard counts, mergeable Welford partials).
inline constexpr uint8_t kWireVersionV3 = 3;
/// Adds kStats/kSlowLog and the trace QueryOutcome fields (query id, phase
/// spans) plus the kQuery query-id propagation field.
inline constexpr uint8_t kWireVersionV4 = 4;
/// Adds the TableInfo per-column storage block (dominant encoding and
/// plain/encoded byte footprints) to kCatalog responses.
inline constexpr uint8_t kWireVersionV5 = 5;
/// Adds kDropTable and the optional kCreateTable retention block (windowed
/// tables over the wire).
inline constexpr uint8_t kWireVersionV6 = 6;
/// Highest protocol version this build speaks.
inline constexpr uint8_t kWireVersion = kWireVersionV6;

/// Default ceiling for one frame. Generous for result batches (a row of
/// doubles is tens of bytes) while bounding a malicious length prefix.
inline constexpr int64_t kMaxFrameBytes = 64ll * 1024 * 1024;

enum class Opcode : uint8_t {
  kInvalid = 0,  ///< response-only: frame-level protocol failure
  kQuery = 1,
  kUse = 2,
  kSetBounds = 3,
  kCatalog = 4,
  kPing = 5,
  // -- v2: prepared statements --
  kPrepare = 6,
  kExecute = 7,
  kCloseStmt = 8,
  // -- v2: persistence --
  kCheckpoint = 9,
  // -- v3: distributed (coordinator -> shard ingest routing) --
  kCreateTable = 10,
  kIngest = 11,
  // -- v4: observability --
  kStats = 12,
  kSlowLog = 13,
  // -- v6: retention --
  kDropTable = 14,
};

std::string_view OpcodeToString(Opcode op);

/// The version byte a frame carrying `op` is encoded with: v1 opcodes stay
/// v1 (byte-identical to older builds), v2 opcodes are stamped v2.
uint8_t WireVersionFor(Opcode op);

/// The byte-buffer primitives are shared with the on-disk storage formats;
/// see util/binio.h. The wire names remain canonical in protocol code.
using WireWriter = BinaryWriter;
using WireReader = BinaryReader;

// -- Typed encode/decode pairs ----------------------------------------------
//
// Value and Schema codecs live in column/serde.h (shared with the storage
// formats, byte-identical to every older build of this protocol) and are
// re-exported through this header's includes.

void EncodeBounds(const QueryBounds& bounds, WireWriter* w);
Result<QueryBounds> DecodeBounds(WireReader* r);

void EncodeStatus(const Status& status, WireWriter* w);
/// The return value reports wire-decoding success; `*decoded` receives the
/// transported status (which may itself be any code, including OK).
Status DecodeStatus(WireReader* r, Status* decoded);

void EncodeEstimate(const AggregateEstimate& est, WireWriter* w);
Result<AggregateEstimate> DecodeEstimate(WireReader* r);

void EncodeAttempt(const LayerAttempt& attempt, WireWriter* w);
Result<LayerAttempt> DecodeAttempt(WireReader* r);

void EncodeResultRow(const QueryResultRow& row, WireWriter* w);
Result<QueryResultRow> DecodeResultRow(WireReader* r);

/// Mergeable Welford state of one aggregate (v3): i64 count_only |
/// i64 count | f64 mean | f64 m2 | f64 min | f64 max. Bit-exact round trip,
/// so merging a decoded state equals merging the original.
void EncodeMoments(const AggregateMoments& m, WireWriter* w);
Result<AggregateMoments> DecodeMoments(WireReader* r);

/// Outcome/TableInfo codecs are version-gated: v1/v2 encodings are
/// byte-identical to every older build; v3 appends the distributed fields.
void EncodeOutcome(const QueryOutcome& outcome, WireWriter* w,
                   uint8_t version = kWireVersionV1);
Result<QueryOutcome> DecodeOutcome(WireReader* r,
                                   uint8_t version = kWireVersionV1);

void EncodeTableInfo(const TableInfo& info, WireWriter* w,
                     uint8_t version = kWireVersionV1);
Result<TableInfo> DecodeTableInfo(WireReader* r,
                                  uint8_t version = kWireVersionV1);

/// Parameter lists for kExecute: u32 count + count Values. Decode rejects a
/// count larger than the bytes that could possibly back it before
/// allocating (hostile-length defense, like ReadString).
void EncodeParams(const std::vector<Value>& params, WireWriter* w);
Result<std::vector<Value>> DecodeParams(WireReader* r);

/// kPrepare response payload: handle id, target table, normalized template
/// SQL, parameter count.
void EncodeStatementInfo(const StatementInfo& info, WireWriter* w);
Result<StatementInfo> DecodeStatementInfo(WireReader* r);

/// One phase span of a query trace (v4 QueryOutcome field).
void EncodeSpan(const PhaseSpan& span, WireWriter* w);
Result<PhaseSpan> DecodeSpan(WireReader* r);

/// kStats response payload: u32 count + count samples. Decode rejects a
/// count larger than the bytes that could back it, like DecodeParams.
void EncodeStatSamples(const std::vector<obs::StatSample>& samples,
                       WireWriter* w);
Result<std::vector<obs::StatSample>> DecodeStatSamples(WireReader* r);

/// kSlowLog response payload: u32 count + count entries, oldest first.
void EncodeSlowQueries(const std::vector<obs::SlowQueryEntry>& entries,
                       WireWriter* w);
Result<std::vector<obs::SlowQueryEntry>> DecodeSlowQueries(WireReader* r);

/// The v6 kCreateTable retention block: u8 has_retention, then (when set)
/// the policy fields. An empty/disabled policy encodes as the single 0 byte.
/// Decode validates that an enabled policy carries positive bucket_width and
/// window_buckets — a malformed policy is refused at the wire, not at table
/// build time.
void EncodeRetentionPolicy(const RetentionPolicy& policy, WireWriter* w);
Result<RetentionPolicy> DecodeRetentionPolicy(WireReader* r);

// -- Message envelopes ------------------------------------------------------

/// A decoded request: opcode plus its payload reader (positioned after the
/// envelope; the handler decodes the op-specific payload). The version the
/// peer stamped drives version negotiation: the response is encoded with the
/// same version, so v1/v2 peers keep byte-identical responses.
struct RequestFrame {
  Opcode opcode = Opcode::kInvalid;
  uint8_t version = kWireVersionV1;  ///< version byte the peer stamped
  std::string payload;               ///< op-specific bytes
};

/// version | opcode | payload. `version` 0 = the opcode's default stamp
/// (WireVersionFor — byte-identical to older builds); a caller opting into
/// v3 passes kWireVersionV3 explicitly.
std::string EncodeRequest(Opcode op, std::string_view payload,
                          uint8_t version = 0);
/// Rejects unknown versions and opcodes.
Result<RequestFrame> DecodeRequest(std::string_view body);

/// version | opcode | status | payload (payload only meaningful when OK).
/// `version` 0 = the opcode's default stamp, as in EncodeRequest.
std::string EncodeResponse(Opcode op, const Status& status,
                           std::string_view payload, uint8_t version = 0);

struct ResponseFrame {
  Opcode opcode = Opcode::kInvalid;
  uint8_t version = kWireVersionV1;  ///< version byte the server stamped
  Status status;
  std::string payload;  ///< empty unless status.ok()
};
Result<ResponseFrame> DecodeResponse(std::string_view body);

}  // namespace sciborq

#endif  // SCIBORQ_SERVER_WIRE_H_
