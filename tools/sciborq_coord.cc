// sciborq_coord — the SciBORQ distributed coordinator.
//
//   sciborq_coord --shard host:port [--shard host:port ...]
//                 [--table-map FILE] [--port 4243]
//                 [--register name=path.csv ...] [--seed N]
//                 [--max-connections N] [--metrics-port N]
//
// Speaks the same wire protocol as sciborq_server, so sciborq_cli and
// SciborqClient work against it unchanged — but every query fans out over
// the shard servers and the partial answers merge with composed bounds
// (COUNT/SUM add, AVG/VAR merge Welford partials; see src/coord/). A shard
// that is down or blows its share of the time budget degrades the answer
// (PARTIAL flag + widened bounds) instead of hanging the client.
//
// --shard lists the default shard set (every table lives on all of them);
// --table-map pins tables to explicit shard lists, one
// `table: host:port, host:port` line each. --register loads a CSV through
// the coordinator, creating the table on every shard (per-shard derived
// sampler seeds) and routing the rows in contiguous slices.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "coord/coordinator.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "util/log.h"

using namespace sciborq;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --shard HOST:PORT [--shard HOST:PORT ...]\n"
      "          [--table-map FILE] [--port N] [--register NAME=CSV ...]\n"
      "          [--seed N] [--max-connections N] [--metrics-port N]\n"
      "  --shard HOST:PORT     a shard server (repeat; the default shard\n"
      "                        set for every table)\n"
      "  --table-map FILE      per-table shard lists, one\n"
      "                        'table: host:port, host:port' line each\n"
      "  --port N              TCP port to serve (default 4243; 0 = free)\n"
      "  --register NAME=CSV   load CSV as table NAME across the shards\n"
      "  --seed N              table seed for --register (default 42)\n"
      "  --max-connections N   concurrent client connections (default 8)\n"
      "  --metrics-port N      serve Prometheus text exposition on\n"
      "                        http://0.0.0.0:N/metrics (0 = pick a free\n"
      "                        port; omit to disable)\n"
      "at least one of --shard / --table-map is required\n",
      argv0);
}

bool ParseIntFlag(const char* value, int* out) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> shard_specs;
  std::vector<std::pair<std::string, std::string>> registrations;
  std::string table_map_path;
  int port = 4243;
  int max_connections = 8;
  int seed = 42;
  int metrics_port = -1;  // -1 = no metrics endpoint

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--shard" && has_value) {
      shard_specs.emplace_back(argv[++i]);
    } else if (arg == "--table-map" && has_value) {
      table_map_path = argv[++i];
    } else if (arg == "--register" && has_value) {
      const std::string spec = argv[++i];
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "bad --register value '%s' (want NAME=CSV)\n",
                     spec.c_str());
        return 2;
      }
      registrations.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--port" && has_value) {
      if (!ParseIntFlag(argv[++i], &port)) {
        std::fprintf(stderr, "bad --port value '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--max-connections" && has_value) {
      if (!ParseIntFlag(argv[++i], &max_connections)) {
        std::fprintf(stderr, "bad --max-connections value '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--seed" && has_value) {
      if (!ParseIntFlag(argv[++i], &seed)) {
        std::fprintf(stderr, "bad --seed value '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--metrics-port" && has_value) {
      if (!ParseIntFlag(argv[++i], &metrics_port)) {
        std::fprintf(stderr, "bad --metrics-port value '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  ShardMap shards;
  std::vector<ShardEndpoint> defaults;
  for (const std::string& spec : shard_specs) {
    Result<ShardEndpoint> endpoint = ParseShardEndpoint(spec);
    if (!endpoint.ok()) {
      std::fprintf(stderr, "%s\n", endpoint.status().ToString().c_str());
      return 2;
    }
    defaults.push_back(std::move(endpoint).value());
  }
  shards.SetDefaultShards(std::move(defaults));
  if (!table_map_path.empty()) {
    if (Status st = shards.LoadTableMapFile(table_map_path); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
  }
  if (shards.empty()) {
    std::fprintf(stderr, "at least one of --shard / --table-map is required\n");
    Usage(argv[0]);
    return 2;
  }

  CoordinatorOptions options;
  options.port = port;
  options.max_connections = max_connections;
  SciborqCoordinator coordinator(std::move(shards), options);

  for (const auto& [name, csv] : registrations) {
    Result<int64_t> rows =
        coordinator.RegisterCsv(name, csv, static_cast<uint64_t>(seed));
    if (!rows.ok()) {
      LogError("failed to register '%s' from %s: %s", name.c_str(),
               csv.c_str(), rows.status().ToString().c_str());
      return 1;
    }
    LogInfo("registered table '%s' (%lld rows) across %d shard(s)",
            name.c_str(), static_cast<long long>(*rows),
            static_cast<int>(
                coordinator.shard_map().ShardsFor(name).size()));
  }

  if (Status st = coordinator.Start(); !st.ok()) {
    LogError("start failed: %s", st.ToString().c_str());
    return 1;
  }
  std::optional<obs::MetricsHttpServer> metrics_server;
  if (metrics_port >= 0) {
    metrics_server.emplace(obs::DefaultRegistry(), metrics_port);
    if (Status st = metrics_server->Start(); !st.ok()) {
      LogError("metrics endpoint failed to start: %s", st.ToString().c_str());
      return 1;
    }
    LogInfo("metrics endpoint on http://0.0.0.0:%d/metrics",
            metrics_server->port());
  }
  LogInfo(
      "sciborq_coord listening on port %d (%d shard endpoint(s), %d "
      "connection slots)",
      coordinator.port(),
      static_cast<int>(coordinator.shard_map().AllEndpoints().size()),
      max_connections);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  LogInfo("shutting down: draining in-flight queries...");
  if (metrics_server.has_value()) metrics_server->Stop();
  coordinator.Stop();
  LogInfo(
      "served %lld queries over %lld connections (%lld protocol errors); "
      "bye",
      static_cast<long long>(coordinator.queries_served()),
      static_cast<long long>(coordinator.connections_accepted()),
      static_cast<long long>(coordinator.protocol_errors()));
  return 0;
}
