#ifndef SCIBORQ_UTIL_THREAD_ANNOTATIONS_H_
#define SCIBORQ_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis for the whole engine.
//
// Every mutex in the library is declared through the capability-annotated
// wrappers below, and every piece of guarded state names its lock with
// GUARDED_BY. Under Clang this turns the lock protocol into a compile-time
// contract: `-Wthread-safety -Werror` (enabled automatically by the build
// when the compiler is Clang) rejects any access to guarded state without
// the right lock held, any function call missing a REQUIRES capability, and
// any scoped lock that leaks. Under GCC (and any compiler without the
// attributes) every macro expands to nothing and the wrappers compile down
// to the std types they hold — the annotated build and the plain build are
// behaviorally identical.
//
// The macro vocabulary mirrors the one documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define SCIBORQ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SCIBORQ_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a type to be a capability (a lock) the analysis tracks.
#define CAPABILITY(x) SCIBORQ_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY SCIBORQ_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a data member is protected by the given capability: reads
/// require the capability held at least shared, writes require it exclusive.
#define GUARDED_BY(x) SCIBORQ_THREAD_ANNOTATION(guarded_by(x))

/// As GUARDED_BY, for the data *pointed to* by a pointer member.
#define PT_GUARDED_BY(x) SCIBORQ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations: this capability must be acquired before /
/// after the named ones (deadlock-freedom documentation, checked under
/// -Wthread-safety-beta).
#define ACQUIRED_BEFORE(...) SCIBORQ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) SCIBORQ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function may only be called with the named capabilities held
/// exclusively / at least shared. The caller retains them.
#define REQUIRES(...) \
  SCIBORQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SCIBORQ_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the named capabilities (no argument =
/// `this`, the form the wrapper methods below use).
#define ACQUIRE(...) SCIBORQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SCIBORQ_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SCIBORQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SCIBORQ_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Releases a capability whether it was acquired exclusively or shared —
/// the right destructor annotation for a reader lock.
#define RELEASE_GENERIC(...) \
  SCIBORQ_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  SCIBORQ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  SCIBORQ_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// The function must NOT be called with the named capabilities held (it
/// acquires them itself — the self-deadlock guard).
#define EXCLUDES(...) SCIBORQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held, teaching the analysis so.
#define ASSERT_CAPABILITY(x) SCIBORQ_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  SCIBORQ_THREAD_ANNOTATION(assert_shared_capability(x))

/// The function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) SCIBORQ_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the protocol cannot be expressed —
/// currently the only sanctioned uses are the BasicLockable shims that
/// condition_variable_any calls (the wait-time unlock/relock pair is
/// net-neutral and invisible to the analysis by design).
#define NO_THREAD_SAFETY_ANALYSIS \
  SCIBORQ_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sciborq {

/// A std::mutex the analysis can track. Methods follow the capability
/// spelling (Lock/Unlock) rather than the std one so locking reads as a
/// protocol action; prefer the scoped MutexLock below over manual pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// A std::shared_mutex the analysis can track: exclusive for writers,
/// shared for readers. Prefer WriterMutexLock / ReaderMutexLock.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex (the annotated std::lock_guard). Also a
/// BasicLockable, so a std::condition_variable_any can wait on it:
///
///   MutexLock lock(&mu_);
///   while (!condition_) cv_.wait(lock);   // condition_ GUARDED_BY(mu_)
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable shims for std::condition_variable_any, which releases the
  // lock while blocked and reacquires it before returning — the capability
  // is held on both sides of a wait, so the transient pair is deliberately
  // invisible to the analysis.
  void lock() NO_THREAD_SAFETY_ANALYSIS { mu_->Lock(); }
  void unlock() NO_THREAD_SAFETY_ANALYSIS { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace sciborq

#endif  // SCIBORQ_UTIL_THREAD_ANNOTATIONS_H_
