#include "column/column.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "column/encoding/encoding.h"
#include "util/check.h"
#include "util/string_util.h"

namespace sciborq {

void Column::Reserve(int64_t capacity) {
  const auto cap = static_cast<size_t>(capacity);
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(cap);
      break;
    case DataType::kDouble:
      doubles_.reserve(cap);
      break;
    case DataType::kString:
      strings_.reserve(cap);
      break;
  }
}

void Column::MaterializeValidity() {
  if (validity_.empty()) validity_.assign(static_cast<size_t>(size_), 1);
}

void Column::AppendInt64(int64_t v) {
  SCIBORQ_DCHECK(type_ == DataType::kInt64);
  ints_.push_back(v);
  if (!validity_.empty()) validity_.push_back(1);
  ++size_;
}

void Column::AppendDouble(double v) {
  SCIBORQ_DCHECK(type_ == DataType::kDouble);
  doubles_.push_back(v);
  if (!validity_.empty()) validity_.push_back(1);
  ++size_;
}

void Column::AppendString(std::string v) {
  SCIBORQ_DCHECK(type_ == DataType::kString);
  strings_.push_back(std::move(v));
  if (!validity_.empty()) validity_.push_back(1);
  ++size_;
}

void Column::AppendNull() {
  MaterializeValidity();
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
  }
  validity_.push_back(0);
  ++size_;
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int64()) {
        return Status::InvalidArgument("expected int64 value");
      }
      AppendInt64(v.int64());
      return Status::OK();
    case DataType::kDouble:
      if (v.is_double()) {
        AppendDouble(v.dbl());
      } else if (v.is_int64()) {
        AppendDouble(static_cast<double>(v.int64()));
      } else {
        return Status::InvalidArgument("expected numeric value");
      }
      return Status::OK();
    case DataType::kString:
      if (!v.is_string()) {
        return Status::InvalidArgument("expected string value");
      }
      AppendString(v.str());
      return Status::OK();
  }
  return Status::Internal("unreachable column type");
}

void Column::AppendFrom(const Column& src, int64_t row) {
  SCIBORQ_DCHECK(src.type_ == type_);
  SCIBORQ_DCHECK(row >= 0 && row < src.size_);
  if (src.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(src.GetInt64(row));
      break;
    case DataType::kDouble:
      AppendDouble(src.GetDouble(row));
      break;
    case DataType::kString:
      AppendString(src.GetString(row));
      break;
  }
}

void Column::SetFrom(const Column& src, int64_t src_row, int64_t dst_row) {
  InvalidateEncoding();  // in-place overwrite: the covered prefix may change
  SCIBORQ_DCHECK(src.type_ == type_);
  SCIBORQ_DCHECK(src_row >= 0 && src_row < src.size_);
  SCIBORQ_DCHECK(dst_row >= 0 && dst_row < size_);
  const bool src_null = src.IsNull(src_row);
  if (src_null) {
    MaterializeValidity();
    validity_[static_cast<size_t>(dst_row)] = 0;
  } else if (!validity_.empty()) {
    validity_[static_cast<size_t>(dst_row)] = 1;
  }
  switch (type_) {
    case DataType::kInt64:
      ints_[static_cast<size_t>(dst_row)] =
          src_null ? 0 : src.GetInt64(src_row);
      break;
    case DataType::kDouble:
      doubles_[static_cast<size_t>(dst_row)] =
          src_null ? 0.0 : src.GetDouble(src_row);
      break;
    case DataType::kString:
      strings_[static_cast<size_t>(dst_row)] =
          src_null ? std::string() : src.GetString(src_row);
      break;
  }
}

Value Column::GetValue(int64_t row) const {
  SCIBORQ_DCHECK(row >= 0 && row < size_);
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value(GetInt64(row));
    case DataType::kDouble:
      return Value(GetDouble(row));
    case DataType::kString:
      return Value(GetString(row));
  }
  return Value::Null();
}

Column Column::Take(const SelectionVector& rows) const {
  Column out(type_);
  out.Reserve(static_cast<int64_t>(rows.size()));
  for (const int64_t row : rows) out.AppendFrom(*this, row);
  return out;
}

Column Column::FromInt64Vector(std::vector<int64_t> values) {
  Column col(DataType::kInt64);
  col.size_ = static_cast<int64_t>(values.size());
  col.ints_ = std::move(values);
  return col;
}

Column Column::FromDoubleVector(std::vector<double> values) {
  Column col(DataType::kDouble);
  col.size_ = static_cast<int64_t>(values.size());
  col.doubles_ = std::move(values);
  return col;
}

int64_t Column::null_count() const {
  if (validity_.empty()) return 0;
  return static_cast<int64_t>(
      std::count(validity_.begin(), validity_.end(), uint8_t{0}));
}

Result<double> Column::Min() const {
  if (!IsNumeric(type_)) {
    return Status::InvalidArgument("Min: column is not numeric");
  }
  double best = std::numeric_limits<double>::infinity();
  bool any = false;
  for (int64_t i = 0; i < size_; ++i) {
    if (IsNull(i)) continue;
    best = std::min(best, NumericAt(i));
    any = true;
  }
  if (!any) return Status::InvalidArgument("Min: no non-null values");
  return best;
}

Result<double> Column::Max() const {
  if (!IsNumeric(type_)) {
    return Status::InvalidArgument("Max: column is not numeric");
  }
  double best = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (int64_t i = 0; i < size_; ++i) {
    if (IsNull(i)) continue;
    best = std::max(best, NumericAt(i));
    any = true;
  }
  if (!any) return Status::InvalidArgument("Max: no non-null values");
  return best;
}

void Column::BuildEncoding() {
  if (encoded_ == nullptr) {
    encoded_ = std::make_shared<EncodedColumn>();
  } else if (encoded_.use_count() > 1) {
    // Shared with another Column copy (checkpoint snapshot, impression
    // extraction): never mutate under a reader — clone, then extend.
    encoded_ = std::make_shared<EncodedColumn>(*encoded_);
  }
  AppendEncodedMorsels(*this, encoded_.get());
}

int64_t Column::MemoryUsageBytes() const {
  int64_t bytes = static_cast<int64_t>(validity_.capacity());
  bytes += static_cast<int64_t>(ints_.capacity() * sizeof(int64_t));
  bytes += static_cast<int64_t>(doubles_.capacity() * sizeof(double));
  for (const auto& s : strings_) {
    bytes += static_cast<int64_t>(sizeof(std::string) + s.capacity());
  }
  return bytes;
}

}  // namespace sciborq
