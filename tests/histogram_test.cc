#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.h"
#include "util/rng.h"

namespace sciborq {
namespace {

StreamingHistogram MakeHist(double lo = 0.0, double w = 10.0, int bins = 10) {
  return StreamingHistogram::Make(lo, w, bins).value();
}

TEST(HistogramTest, MakeRejectsBadGeometry) {
  EXPECT_FALSE(StreamingHistogram::Make(0, 1.0, 0).ok());
  EXPECT_FALSE(StreamingHistogram::Make(0, 0.0, 4).ok());
  EXPECT_FALSE(StreamingHistogram::Make(0, -1.0, 4).ok());
  EXPECT_FALSE(StreamingHistogram::Make(NAN, 1.0, 4).ok());
  EXPECT_TRUE(StreamingHistogram::Make(-10, 0.5, 4).ok());
}

TEST(HistogramTest, Fig5CountAndMeanPerBin) {
  // Fig. 5 maintains exactly (count, mean) per bin.
  StreamingHistogram h = MakeHist();
  h.Observe(12.0);
  h.Observe(18.0);
  h.Observe(15.0);
  const auto& bin = h.bin(1);
  EXPECT_DOUBLE_EQ(bin.count, 3.0);
  EXPECT_DOUBLE_EQ(bin.mean, 15.0);
  EXPECT_EQ(h.total_count(), 3);
}

TEST(HistogramTest, BinIndexMath) {
  StreamingHistogram h = MakeHist(100.0, 5.0, 4);  // [100, 120)
  EXPECT_EQ(h.BinIndex(100.0), 0);
  EXPECT_EQ(h.BinIndex(104.999), 0);
  EXPECT_EQ(h.BinIndex(105.0), 1);
  EXPECT_EQ(h.BinIndex(119.9), 3);
  EXPECT_EQ(h.BinIndex(99.0), 0);    // clamped
  EXPECT_EQ(h.BinIndex(500.0), 3);   // clamped
  EXPECT_DOUBLE_EQ(h.domain_max(), 120.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 102.5);
  EXPECT_DOUBLE_EQ(h.BinLeftEdge(2), 110.0);
}

TEST(HistogramTest, OutOfDomainValuesClampAndAreCounted) {
  StreamingHistogram h = MakeHist(0.0, 1.0, 4);
  h.Observe(-5.0);
  h.Observe(10.0);
  h.Observe(2.5);
  EXPECT_EQ(h.clamped_count(), 2);
  EXPECT_DOUBLE_EQ(h.bin(0).count, 1.0);  // -5 clamped into the first bin
  EXPECT_DOUBLE_EQ(h.bin(2).count, 1.0);  // 2.5 lands in [2, 3)
  EXPECT_DOUBLE_EQ(h.bin(3).count, 1.0);  // 10 clamped into the last bin
}

TEST(HistogramTest, MeanIsIncrementalAndExact) {
  StreamingHistogram h = MakeHist(0.0, 100.0, 1);
  double expected_sum = 0.0;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(0.0, 100.0);
    expected_sum += v;
    h.Observe(v);
  }
  EXPECT_NEAR(h.bin(0).mean, expected_sum / 1000.0, 1e-9);
}

TEST(HistogramTest, MergeCombinesCountsAndMeans) {
  StreamingHistogram a = MakeHist();
  StreamingHistogram b = MakeHist();
  a.Observe(12.0);
  b.Observe(18.0);
  b.Observe(14.0);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.bin(1).count, 3.0);
  EXPECT_NEAR(a.bin(1).mean, (12.0 + 18.0 + 14.0) / 3.0, 1e-12);
  EXPECT_EQ(a.total_count(), 3);
}

TEST(HistogramTest, MergeRejectsDifferentGeometry) {
  StreamingHistogram a = MakeHist(0, 10, 10);
  StreamingHistogram b = MakeHist(0, 10, 5);
  EXPECT_FALSE(a.Merge(b).ok());
  StreamingHistogram c = MakeHist(1, 10, 10);
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(HistogramTest, DecayAgesCounts) {
  StreamingHistogram h = MakeHist();
  for (int i = 0; i < 10; ++i) h.Observe(5.0);
  h.Decay(0.5);
  EXPECT_DOUBLE_EQ(h.bin(0).count, 5.0);
  EXPECT_DOUBLE_EQ(h.weighted_total(), 5.0);
  // total_count (observations) unchanged; weighted mass halved.
  EXPECT_EQ(h.total_count(), 10);
}

TEST(HistogramTest, DecayPrunesTinyBins) {
  StreamingHistogram h = MakeHist();
  h.Observe(5.0);
  h.Decay(1e-9, /*prune_below=*/1e-6);
  EXPECT_DOUBLE_EQ(h.bin(0).count, 0.0);
  EXPECT_DOUBLE_EQ(h.bin(0).mean, 0.0);
}

TEST(HistogramTest, DecayFactorOneIsNoop) {
  StreamingHistogram h = MakeHist();
  h.Observe(5.0);
  h.Decay(1.0);
  EXPECT_DOUBLE_EQ(h.bin(0).count, 1.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  StreamingHistogram h = MakeHist();
  h.Observe(5.0);
  h.Observe(-100.0);
  h.Reset();
  EXPECT_EQ(h.total_count(), 0);
  EXPECT_EQ(h.clamped_count(), 0);
  EXPECT_DOUBLE_EQ(h.weighted_total(), 0.0);
  EXPECT_DOUBLE_EQ(h.bin(0).count, 0.0);
}

TEST(HistogramTest, NormalizedDensitiesIntegrateToOne) {
  StreamingHistogram h = MakeHist(0.0, 2.0, 50);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) h.Observe(rng.Uniform(0.0, 100.0));
  const auto dens = h.NormalizedDensities();
  ASSERT_EQ(dens.size(), 50u);
  double integral = 0.0;
  for (const double d : dens) integral += d * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(HistogramTest, NormalizedDensitiesEmptyWhenNoData) {
  StreamingHistogram h = MakeHist();
  EXPECT_TRUE(h.NormalizedDensities().empty());
}

// Property: for in-domain observations, every bin mean lies inside its bin.
TEST(HistogramTest, PropertyBinMeansStayInsideBins) {
  StreamingHistogram h = MakeHist(0.0, 1.0, 100);
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) h.Observe(rng.Uniform(0.0, 100.0));
  for (int i = 0; i < h.num_bins(); ++i) {
    if (h.bin(i).count == 0.0) continue;
    EXPECT_GE(h.bin(i).mean, h.BinLeftEdge(i));
    EXPECT_LT(h.bin(i).mean, h.BinLeftEdge(i) + h.bin_width());
  }
}

// Property: merging shards is equivalent to observing the union stream.
TEST(HistogramTest, PropertyMergeEquivalentToUnion) {
  StreamingHistogram whole = MakeHist(0.0, 5.0, 20);
  StreamingHistogram s1 = MakeHist(0.0, 5.0, 20);
  StreamingHistogram s2 = MakeHist(0.0, 5.0, 20);
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.Uniform(0.0, 100.0);
    whole.Observe(v);
    (i % 2 == 0 ? s1 : s2).Observe(v);
  }
  ASSERT_TRUE(s1.Merge(s2).ok());
  for (int i = 0; i < whole.num_bins(); ++i) {
    EXPECT_DOUBLE_EQ(s1.bin(i).count, whole.bin(i).count);
    EXPECT_NEAR(s1.bin(i).mean, whole.bin(i).mean, 1e-9);
  }
}

// Parameterized sweep over bin counts: geometry invariants hold for any beta.
class HistogramBetaSweep : public ::testing::TestWithParam<int> {};

TEST_P(HistogramBetaSweep, CountsSumToObservations) {
  const int beta = GetParam();
  StreamingHistogram h =
      StreamingHistogram::Make(0.0, 100.0 / beta, beta).value();
  Rng rng(beta);
  const int n = 5000;
  for (int i = 0; i < n; ++i) h.Observe(rng.Uniform(0.0, 100.0));
  double total = 0.0;
  for (int i = 0; i < h.num_bins(); ++i) total += h.bin(i).count;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n));
  EXPECT_EQ(h.total_count(), n);
  EXPECT_EQ(h.clamped_count(), 0);
}

INSTANTIATE_TEST_SUITE_P(Betas, HistogramBetaSweep,
                         ::testing::Values(1, 2, 8, 32, 64, 128, 509));

}  // namespace
}  // namespace sciborq
