#include "core/hierarchy.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace sciborq {

namespace {

Status ValidateLayerSpecs(
    const std::vector<ImpressionHierarchy::LayerSpec>& layers) {
  if (layers.empty()) {
    return Status::InvalidArgument("hierarchy needs at least one layer");
  }
  for (size_t i = 1; i < layers.size(); ++i) {
    if (layers[i].capacity >= layers[i - 1].capacity) {
      return Status::InvalidArgument(
          "layer capacities must be strictly decreasing");
    }
  }
  if (layers[0].capacity <= 0 || layers.back().capacity <= 0) {
    return Status::InvalidArgument("layer capacities must be positive");
  }
  std::unordered_set<std::string> names;
  for (const auto& layer : layers) {
    if (layer.name == "base") {
      return Status::InvalidArgument(
          "layer name 'base' is reserved for the base-table fallback "
          "(BoundedAnswer::answered_by distinguishes layers from it by name)");
    }
    if (!names.insert(layer.name).second) {
      return Status::InvalidArgument(StrFormat(
          "duplicate layer name '%s': layer names must be unique so that "
          "name-based lookups are unambiguous",
          layer.name.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace

Result<ImpressionHierarchy> ImpressionHierarchy::Make(
    const Schema& schema, std::vector<LayerSpec> layers,
    ImpressionSpec top_spec, Options options) {
  SCIBORQ_RETURN_NOT_OK(ValidateLayerSpecs(layers));
  top_spec.name = layers[0].name;
  top_spec.capacity = layers[0].capacity;
  const uint64_t derive_seed = top_spec.seed ^ 0xDE51BEDULL;
  if (options.load_shards < 0) {
    return Status::InvalidArgument("load_shards must be >= 0");
  }
  const int shards = options.load_shards == 1
                         ? 1
                         : ThreadPool::ResolveThreadCount(options.load_shards);
  ImpressionHierarchy hierarchy(std::move(layers), options, derive_seed);
  if (shards > 1) {
    SCIBORQ_ASSIGN_OR_RETURN(
        ShardedImpressionBuilder top,
        ShardedImpressionBuilder::Make(schema, top_spec, shards));
    hierarchy.sharded_top_.emplace(std::move(top));
  } else {
    SCIBORQ_ASSIGN_OR_RETURN(ImpressionBuilder top,
                             ImpressionBuilder::Make(schema, top_spec));
    hierarchy.top_builder_.emplace(std::move(top));
  }
  SCIBORQ_RETURN_NOT_OK(hierarchy.RefreshDerivedLayers());
  return hierarchy;
}

HierarchyState ImpressionHierarchy::SaveState() const {
  HierarchyState state;
  state.derive_rng = derive_rng_.SaveState();
  state.ingested_since_refresh = ingested_since_refresh_;
  state.refresh_interval = options_.refresh_interval;
  if (sharded_top_) {
    state.top.reserve(static_cast<size_t>(sharded_top_->num_shards()));
    for (int i = 0; i < sharded_top_->num_shards(); ++i) {
      state.top.push_back(sharded_top_->shard(i).SaveState());
    }
    state.merged_top = merged_top_->SaveState();
  } else {
    state.top.push_back(top_builder_->SaveState());
  }
  state.derived.reserve(derived_.size());
  for (const Impression& layer : derived_) {
    state.derived.push_back(layer.SaveState());
  }
  return state;
}

Result<ImpressionHierarchy> ImpressionHierarchy::Restore(
    const Schema& schema, ImpressionSpec top_spec, HierarchyState state) {
  if (state.top.empty()) {
    return Status::InvalidArgument("hierarchy state: no top builder");
  }
  const bool sharded = state.top.size() > 1;
  if (sharded && !state.merged_top) {
    return Status::InvalidArgument(
        "hierarchy state: sharded top without a merged impression");
  }
  // The layer geometry is implied by the saved impressions.
  const ImpressionState& top_impression =
      sharded ? *state.merged_top : state.top[0].impression;
  std::vector<LayerSpec> layers;
  layers.push_back({top_impression.name, top_impression.capacity});
  for (const auto& layer : state.derived) {
    layers.push_back({layer.name, layer.capacity});
  }
  SCIBORQ_RETURN_NOT_OK(ValidateLayerSpecs(layers));
  top_spec.name = layers[0].name;
  top_spec.capacity = layers[0].capacity;
  Options options;
  options.refresh_interval = state.refresh_interval;
  options.load_shards = static_cast<int>(state.top.size());
  ImpressionHierarchy hierarchy(std::move(layers), options, /*derive_seed=*/0);
  hierarchy.derive_rng_ = Rng::FromState(state.derive_rng);
  hierarchy.ingested_since_refresh_ = state.ingested_since_refresh;
  if (sharded) {
    SCIBORQ_ASSIGN_OR_RETURN(
        ShardedImpressionBuilder top,
        ShardedImpressionBuilder::Make(schema, top_spec,
                                       static_cast<int>(state.top.size())));
    for (size_t i = 0; i < state.top.size(); ++i) {
      SCIBORQ_RETURN_NOT_OK(
          top.shard(static_cast<int>(i)).RestoreState(std::move(state.top[i])));
    }
    hierarchy.sharded_top_.emplace(std::move(top));
    SCIBORQ_ASSIGN_OR_RETURN(Impression merged,
                             Impression::FromState(std::move(*state.merged_top)));
    hierarchy.merged_top_.emplace(std::move(merged));
  } else {
    SCIBORQ_ASSIGN_OR_RETURN(ImpressionBuilder top,
                             ImpressionBuilder::Make(schema, top_spec));
    SCIBORQ_RETURN_NOT_OK(top.RestoreState(std::move(state.top[0])));
    hierarchy.top_builder_.emplace(std::move(top));
  }
  hierarchy.derived_.reserve(state.derived.size());
  for (auto& layer : state.derived) {
    SCIBORQ_ASSIGN_OR_RETURN(Impression restored,
                             Impression::FromState(std::move(layer)));
    hierarchy.derived_.push_back(std::move(restored));
  }
  return hierarchy;
}

Status ImpressionHierarchy::IngestBatch(const Table& batch) {
  if (sharded_top_) {
    SCIBORQ_RETURN_NOT_OK(sharded_top_->IngestBatchParallel(batch));
  } else {
    SCIBORQ_RETURN_NOT_OK(top_builder_->IngestBatch(batch));
  }
  ingested_since_refresh_ += batch.num_rows();
  if (options_.refresh_interval <= 0 ||
      ingested_since_refresh_ >= options_.refresh_interval) {
    SCIBORQ_RETURN_NOT_OK(RefreshDerivedLayers());
  }
  return Status::OK();
}

Result<Impression> ImpressionHierarchy::DeriveLayer(const Impression& parent,
                                                    const LayerSpec& spec) {
  const int64_t parent_n = parent.size();
  const int64_t child_n = std::min(spec.capacity, parent_n);
  // Partial Fisher-Yates over parent row ids: uniform without replacement.
  std::vector<int64_t> ids(static_cast<size_t>(parent_n));
  for (int64_t i = 0; i < parent_n; ++i) ids[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < child_n; ++i) {
    const int64_t j =
        i + static_cast<int64_t>(derive_rng_.NextBounded(
                static_cast<uint64_t>(parent_n - i)));
    std::swap(ids[static_cast<size_t>(i)], ids[static_cast<size_t>(j)]);
  }
  ids.resize(static_cast<size_t>(child_n));

  Impression child(spec.name, parent.rows().schema(), spec.capacity,
                   parent.policy());
  std::vector<double> probs;
  probs.reserve(static_cast<size_t>(child_n));
  const double ratio = parent_n > 0
                           ? static_cast<double>(child_n) /
                                 static_cast<double>(parent_n)
                           : 1.0;
  for (const int64_t parent_row : ids) {
    child.AppendSampledRow(parent.rows(), parent_row,
                           parent.row_weights()[static_cast<size_t>(parent_row)],
                           parent.source_ids()[static_cast<size_t>(parent_row)]);
    probs.push_back(
        std::min(1.0, parent.InclusionProbability(parent_row) * ratio));
  }
  child.set_population_seen(parent.population_seen());
  child.set_population_weight(parent.population_weight());
  SCIBORQ_RETURN_NOT_OK(child.SetExplicitInclusionProbabilities(std::move(probs)));
  return child;
}

Status ImpressionHierarchy::RefreshDerivedLayers() {
  if (sharded_top_) {
    // Materialize the queryable top layer from the load shards first; the
    // derived layers subsample this merge.
    SCIBORQ_ASSIGN_OR_RETURN(Impression merged, sharded_top_->Merge());
    merged_top_.emplace(std::move(merged));
  }
  derived_.clear();
  const Impression* parent = &top_impression();
  for (size_t i = 1; i < layer_specs_.size(); ++i) {
    if (parent->size() == 0) {
      // Nothing ingested yet: keep an empty placeholder so layer() is total.
      derived_.emplace_back(layer_specs_[i].name,
                            top_impression().rows().schema(),
                            layer_specs_[i].capacity, parent->policy());
    } else {
      SCIBORQ_ASSIGN_OR_RETURN(Impression child,
                               DeriveLayer(*parent, layer_specs_[i]));
      derived_.push_back(std::move(child));
    }
    parent = &derived_.back();
  }
  ingested_since_refresh_ = 0;
  return Status::OK();
}

const Impression& ImpressionHierarchy::layer(int i) const {
  SCIBORQ_CHECK(i >= 0 && i < num_layers());
  if (i == 0) return top_impression();
  return derived_[static_cast<size_t>(i - 1)];
}

std::vector<const Impression*> ImpressionHierarchy::EscalationOrder() const {
  std::vector<const Impression*> order;
  for (auto it = derived_.rbegin(); it != derived_.rend(); ++it) {
    order.push_back(&*it);
  }
  order.push_back(&top_impression());
  return order;
}

std::string ImpressionHierarchy::ToString() const {
  std::string out = "ImpressionHierarchy:";
  out += "\n  " + top_impression().ToString();
  for (const auto& d : derived_) out += "\n  " + d.ToString();
  return out;
}

}  // namespace sciborq
