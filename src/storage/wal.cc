#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "storage/file_io.h"
#include "util/binio.h"
#include "util/crc32c.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace sciborq {

namespace {

Status Errno(const char* op, const std::string& path) {
  return ErrnoStatus(op, path);
}

std::string EncodeHeader() {
  BinaryWriter w;
  w.PutU32(kWalMagic);
  w.PutU32(kWalFormatVersion);
  return std::move(w).Take();
}

}  // namespace

Result<WalWriter> WalWriter::Create(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", path);
  const std::string header = EncodeHeader();
  if (Status st = WriteAllToFd(fd, header.data(), header.size(), path); !st.ok()) {
    ::close(fd);
    return st;
  }
  if (::fsync(fd) != 0) {
    const Status st = Errno("fsync", path);
    ::close(fd);
    return st;
  }
  if (Status st = SyncParentDir(path); !st.ok()) {
    ::close(fd);
    return st;
  }
  return WalWriter(path, fd, kWalHeaderBytes);
}

Result<WalWriter> WalWriter::OpenExisting(const std::string& path,
                                          int64_t append_offset) {
  if (append_offset < kWalHeaderBytes) {
    return Status::InvalidArgument(
        "wal: append offset lies inside the header");
  }
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return Errno("open", path);
  char header_bytes[kWalHeaderBytes];
  const ssize_t n = ::pread(fd, header_bytes, sizeof(header_bytes), 0);
  if (n != static_cast<ssize_t>(sizeof(header_bytes))) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("wal: %s is too short to hold a header", path.c_str()));
  }
  BinaryReader r(std::string_view(header_bytes, sizeof(header_bytes)));
  const uint32_t magic = r.ReadU32().value_or(0);
  const uint32_t version = r.ReadU32().value_or(0);
  if (magic != kWalMagic || version != kWalFormatVersion) {
    ::close(fd);
    return Status::InvalidArgument(StrFormat(
        "wal: %s has bad magic/version (0x%08x v%u)", path.c_str(), magic,
        version));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status err = Errno("fstat", path);
    ::close(fd);
    return err;
  }
  if (append_offset > static_cast<int64_t>(st.st_size)) {
    // A stale offset past EOF would make the ftruncate below zero-extend
    // the file — a silent corruption the zero-tail scanner would later trip
    // over.
    ::close(fd);
    return Status::InvalidArgument(StrFormat(
        "wal: append offset %lld lies past the end of %s (%lld bytes)",
        static_cast<long long>(append_offset), path.c_str(),
        static_cast<long long>(st.st_size)));
  }
  // Drop a torn tail before resuming appends.
  if (::ftruncate(fd, static_cast<off_t>(append_offset)) != 0) {
    const Status st = Errno("ftruncate", path);
    ::close(fd);
    return st;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const Status st = Errno("lseek", path);
    ::close(fd);
    return st;
  }
  return WalWriter(path, fd, append_offset);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_), size_(other.size_) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    size_ = other.size_;
    other.fd_ = -1;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("wal: writer is closed");
  if (payload.empty()) {
    // A zero-length frame (len 0, CRC 0) is byte-identical to the start of
    // the zero-filled tail a crash can leave when the file's size extension
    // commits before its data; recovery relies on no real record ever
    // looking like that.
    return Status::InvalidArgument("wal: empty records are not allowed");
  }
  if (static_cast<int64_t>(payload.size()) > kMaxWalRecordBytes) {
    return Status::InvalidArgument(StrFormat(
        "wal: record of %zu bytes exceeds the %lld-byte record ceiling",
        payload.size(), static_cast<long long>(kMaxWalRecordBytes)));
  }
  BinaryWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32c(payload));
  std::string bytes = std::move(frame).Take();
  bytes.append(payload.data(), payload.size());
  Status st = WriteAllToFd(fd_, bytes.data(), bytes.size(), path_);
  if (st.ok()) {
    // The fsync dominates ingest latency on real disks — the one WAL number
    // worth a histogram.
    static obs::Histogram* const fsync_seconds =
        obs::DefaultRegistry()->GetHistogram(
            "sciborq_wal_fsync_seconds",
            "fdatasync latency of WAL record appends.",
            obs::DefaultLatencyBounds());
    Stopwatch fsync_watch;
    if (::fdatasync(fd_) != 0) {
      st = Errno("fdatasync", path_);
      static obs::Counter* const fsync_errors =
          obs::DefaultRegistry()->GetCounter(
              "sciborq_wal_fsync_errors_total",
              "WAL fdatasync failures (appends, truncations, resets).");
      fsync_errors->Inc();
    }
    fsync_seconds->Observe(fsync_watch.ElapsedSeconds());
  }
  if (!st.ok()) {
    // Roll the file back to the last acknowledged record. Without this, a
    // partial write (ENOSPC mid-record) would leave torn bytes that a later
    // successful append buries mid-file — which recovery rightly refuses —
    // and a failed fdatasync would leave a durable-but-unacknowledged
    // record that a retried append duplicates under a fresh sequence.
    if (::ftruncate(fd_, static_cast<off_t>(size_)) == 0) {
      (void)::lseek(fd_, 0, SEEK_END);
      (void)::fdatasync(fd_);
    }
    return st;
  }
  size_ += static_cast<int64_t>(bytes.size());
  return Status::OK();
}

Status WalWriter::Reset() { return TruncateTo(kWalHeaderBytes); }

Status WalWriter::TruncateTo(int64_t offset) {
  if (fd_ < 0) return Status::FailedPrecondition("wal: writer is closed");
  if (offset < kWalHeaderBytes || offset > size_) {
    return Status::InvalidArgument(StrFormat(
        "wal: truncate offset %lld outside [header, %lld]",
        static_cast<long long>(offset), static_cast<long long>(size_)));
  }
  if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
    return Errno("ftruncate", path_);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) return Errno("lseek", path_);
  if (::fdatasync(fd_) != 0) {
    // A truncation that is not durable can resurrect an unlogged batch (or a
    // checkpoint-covered record) at the next boot — surface it in metrics,
    // not just in the returned status.
    static obs::Counter* const fsync_errors = obs::DefaultRegistry()->GetCounter(
        "sciborq_wal_fsync_errors_total",
        "WAL fdatasync failures (appends, truncations, resets).");
    fsync_errors->Inc();
    return Errno("fdatasync", path_);
  }
  size_ = offset;
  return Status::OK();
}

Result<WalScanResult> ScanWal(const std::string& path,
                              int64_t max_record_bytes) {
  SCIBORQ_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  if (static_cast<int64_t>(bytes.size()) < kWalHeaderBytes) {
    return Status::InvalidArgument(
        StrFormat("wal: %s is too short to hold a header", path.c_str()));
  }
  BinaryReader header(std::string_view(bytes).substr(0, kWalHeaderBytes));
  const uint32_t magic = header.ReadU32().value_or(0);
  const uint32_t version = header.ReadU32().value_or(0);
  if (magic != kWalMagic) {
    return Status::InvalidArgument(
        StrFormat("wal: %s has bad magic 0x%08x", path.c_str(), magic));
  }
  if (version != kWalFormatVersion) {
    return Status::InvalidArgument(StrFormat(
        "wal: %s format version %u not supported (this build reads v%u)",
        path.c_str(), version, kWalFormatVersion));
  }

  WalScanResult result;
  result.valid_bytes = kWalHeaderBytes;
  size_t pos = kWalHeaderBytes;
  while (pos < bytes.size()) {
    // A crash mid-append can only damage the file's tail: appends are
    // sequential. The tail shapes a crash actually produces — an incomplete
    // frame, a frame whose claimed payload overruns EOF (garbage length
    // from out-of-order sector writes), a zero-filled region (file size
    // extension committed before its data), or a checksum failure on the
    // final record — are recovered by truncation, costing exactly the one
    // unacknowledged record. Shapes a crash *cannot* produce — a checksum
    // mismatch with further records behind it, or an over-ceiling length
    // with that many bytes genuinely present (the writer enforces the
    // ceiling and never writes empty records) — are corruption of
    // acknowledged data and refuse the scan: a refused boot beats silently
    // dropping every record behind the damage.
    if (bytes.size() - pos < 8) {
      result.torn_tail = true;
      result.tail_error = "incomplete record frame";
      break;
    }
    BinaryReader frame(std::string_view(bytes).substr(pos, 8));
    const uint32_t len = frame.ReadU32().value_or(0);
    const uint32_t expected_crc = frame.ReadU32().value_or(0);
    if (len == 0) {
      bool all_zero = true;
      for (size_t i = pos; i < bytes.size(); ++i) {
        if (bytes[i] != '\0') {
          all_zero = false;
          break;
        }
      }
      if (all_zero) {
        result.torn_tail = true;
        result.tail_error = "zero-filled tail";
        break;
      }
      return Status::InvalidArgument(StrFormat(
          "wal: %s record at offset %zu has a zero length prefix with "
          "non-zero bytes behind it — corruption in acknowledged data",
          path.c_str(), pos));
    }
    if (bytes.size() - pos - 8 < len) {
      result.torn_tail = true;
      result.tail_error = StrFormat(
          "record claims %u payload bytes, only %zu remain", len,
          bytes.size() - pos - 8);
      break;
    }
    if (static_cast<int64_t>(len) > max_record_bytes) {
      return Status::InvalidArgument(StrFormat(
          "wal: %s record at offset %zu claims %u bytes, over the %lld-byte "
          "ceiling, with the bytes present — corrupt length prefix in "
          "acknowledged data",
          path.c_str(), pos, len, static_cast<long long>(max_record_bytes)));
    }
    const std::string_view payload(bytes.data() + pos + 8, len);
    const uint32_t actual_crc = Crc32c(payload);
    if (actual_crc != expected_crc) {
      const bool is_last_record = pos + 8 + len == bytes.size();
      if (is_last_record) {
        result.torn_tail = true;
        result.tail_error = StrFormat(
            "final record checksum mismatch (stored 0x%08x, computed 0x%08x)",
            expected_crc, actual_crc);
        break;
      }
      return Status::InvalidArgument(StrFormat(
          "wal: %s record at offset %zu fails its checksum (stored 0x%08x, "
          "computed 0x%08x) with further records behind it — corruption in "
          "acknowledged data",
          path.c_str(), pos, expected_crc, actual_crc));
    }
    result.records.emplace_back(payload);
    pos += 8 + len;
    result.valid_bytes = static_cast<int64_t>(pos);
  }
  return result;
}

}  // namespace sciborq
