#ifndef SCIBORQ_OBS_METRICS_H_
#define SCIBORQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace sciborq {
namespace obs {

// ---------------------------------------------------------------------------
// A small Prometheus-flavored metrics registry. Hot-path updates (Inc,
// Observe, Set) are single relaxed atomic ops on pointers the caller cached
// at registration time — no lock, no map lookup, no allocation. The registry
// mutex is only taken on registration (GetOrCreate of a new labeled series)
// and on scrape (RenderPrometheus / Samples), both cold paths.
//
// Instruments are identified by (name, sorted label set). Registered series
// are never destroyed until the registry dies, so the pointers handed out
// are stable for the process lifetime — the same contract Engine gives for
// TableEntry pointers.
// ---------------------------------------------------------------------------

/// Process-wide instrumentation switch. When disabled, Inc/Add/Set/Observe
/// become a single relaxed load + branch — the baseline the bench overhead
/// gate compares against. Scrapes still work (they read whatever was
/// recorded while enabled). Defaults to enabled.
void SetEnabled(bool enabled);
bool Enabled();

/// One `key="value"` pair; a series is keyed by its sorted list of these.
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

/// Monotonically increasing 64-bit counter.
class Counter {
 public:
  void Inc(int64_t n = 1) {
    if (Enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A double that can go up and down (queue depths, warning counts, ratios).
class Gauge {
 public:
  void Set(double v) {
    if (Enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with cumulative-on-scrape semantics (Prometheus
/// `le` buckets). Observe is lock-free: one atomic increment on the bucket
/// whose upper bound first contains the value, one on the total count, and a
/// CAS-add on the running sum.
class Histogram {
 public:
  /// `bounds` are the finite upper bucket bounds, strictly increasing; an
  /// implicit +Inf bucket is always appended.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts, one per bound plus the +Inf bucket.
  std::vector<int64_t> BucketCounts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Log-spaced latency bounds from 100us to 30s — the default for every
/// *_seconds histogram in the system.
std::vector<double> DefaultLatencyBounds();
/// Linear [0, 1] ratio bounds for utilization / error-margin histograms.
std::vector<double> RatioBounds();
/// `count` bounds starting at `start`, each `factor` times the previous.
std::vector<double> ExponentialBounds(double start, double factor, int count);

/// One flattened sample, the unit the wire `stats` opcode ships. Histograms
/// flatten Prometheus-style into `<name>_bucket{le=...}`, `<name>_sum`, and
/// `<name>_count` samples.
struct StatSample {
  std::string name;    ///< e.g. "sciborq_queries_total"
  std::string labels;  ///< rendered, e.g. `{table="sky"}`; empty when none
  double value = 0.0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create the series for (name, labels). The help string and (for
  /// histograms) bucket bounds are fixed by the first registration of a
  /// name; later calls with the same name reuse them. Returned pointers are
  /// valid for the registry's lifetime — cache them on hot paths.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {}) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {}) EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          const Labels& labels = {}) EXCLUDES(mu_);

  /// Prometheus text exposition format 0.0.4: HELP/TYPE per family, series
  /// sorted by (name, labels) so output is deterministic and golden-testable.
  std::string RenderPrometheus() const EXCLUDES(mu_);

  /// Every series flattened to StatSamples, sorted like RenderPrometheus.
  std::vector<StatSample> Samples() const EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    std::string labels;  // rendered `{k="v",...}` or empty
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind;
    std::string help;
    std::vector<double> bounds;            // histograms only
    std::map<std::string, Series> series;  // keyed by rendered labels
  };

  Family* GetFamily(const std::string& name, Kind kind,
                    const std::string& help) REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Family> families_ GUARDED_BY(mu_);
};

/// The process-wide registry every subsystem registers into. The `stats`
/// wire opcode and the `/metrics` HTTP endpoint both scrape this one.
Registry* DefaultRegistry();

/// Renders a label set the way the registry keys series: sorted by key,
/// values escaped, `{k="v",k2="v2"}` (empty string for no labels).
std::string RenderLabels(const Labels& labels);

}  // namespace obs
}  // namespace sciborq

#endif  // SCIBORQ_OBS_METRICS_H_
