#include "retention/retention.h"

#include <algorithm>
#include <map>
#include <utility>

namespace sciborq {

Result<RetentionManager> RetentionManager::Make(RetentionPolicy policy,
                                                const Schema& schema) {
  if (!policy.enabled()) {
    return Status::InvalidArgument("retention policy has no time column");
  }
  if (policy.bucket_width <= 0) {
    return Status::InvalidArgument("retention bucket_width must be positive");
  }
  if (policy.window_buckets <= 0) {
    return Status::InvalidArgument("retention window_buckets must be positive");
  }
  if (policy.last_seen_capacity <= 0) {
    return Status::InvalidArgument(
        "retention last_seen_capacity must be positive");
  }
  if (policy.effective_expected_ingest() < policy.last_seen_capacity) {
    return Status::InvalidArgument(
        "retention last_seen_expected_ingest must be >= last_seen_capacity");
  }
  Result<int> col = schema.FieldIndex(policy.time_column);
  if (!col.ok()) {
    return Status::InvalidArgument("retention time column '" +
                                   policy.time_column +
                                   "' is not in the schema");
  }
  if (schema.field(*col).type != DataType::kInt64) {
    return Status::InvalidArgument("retention time column '" +
                                   policy.time_column + "' must be int64");
  }
  return RetentionManager(std::move(policy), *col);
}

int64_t RetentionManager::BucketOf(int64_t ts) const {
  const int64_t w = policy_.bucket_width;
  int64_t q = ts / w;
  if (ts % w != 0 && ((ts < 0) != (w < 0))) --q;  // floor, not trunc
  return q;
}

Result<int64_t> RetentionManager::BatchMaxBucket(const Table& batch) const {
  if (batch.num_rows() == 0) {
    return Status::InvalidArgument("empty batch has no buckets");
  }
  const Column& ts = batch.column(time_col_);
  int64_t max_ts = ts.GetInt64(0);
  for (int64_t i = 1; i < batch.num_rows(); ++i) {
    max_ts = std::max(max_ts, ts.GetInt64(i));
  }
  return BucketOf(max_ts);
}

Status RetentionManager::ObserveBatch(const Table& batch) {
  if (batch.num_rows() == 0) return Status();
  const Column& ts = batch.column(time_col_);
  if (ts.has_nulls()) {
    for (int64_t i = 0; i < batch.num_rows(); ++i) {
      if (ts.IsNull(i)) {
        return Status::InvalidArgument("retention time column '" +
                                       policy_.time_column +
                                       "' must not contain nulls");
      }
    }
  }
  Result<int64_t> max = BatchMaxBucket(batch);
  if (!max.ok()) return max.status();
  if (rows_observed_ == 0 || *max > max_bucket_) max_bucket_ = *max;
  rows_observed_ += batch.num_rows();
  return Status();
}

Status RetentionManager::Reindex(const Table& base) {
  max_bucket_ = 0;
  rows_observed_ = 0;
  return ObserveBatch(base);
}

SelectionVector RetentionManager::SurvivingRows(const Table& base,
                                                int64_t cutoff) const {
  SelectionVector keep;
  keep.reserve(static_cast<size_t>(base.num_rows()));
  const Column& ts = base.column(time_col_);
  for (int64_t i = 0; i < base.num_rows(); ++i) {
    if (BucketOf(ts.GetInt64(i)) > cutoff) keep.push_back(i);
  }
  return keep;
}

std::vector<SelectionVector> RetentionManager::GroupByBucket(
    const Table& base, const SelectionVector& rows) const {
  std::map<int64_t, SelectionVector> by_bucket;  // ordered: ascending buckets
  const Column& ts = base.column(time_col_);
  for (int64_t row : rows) {
    by_bucket[BucketOf(ts.GetInt64(row))].push_back(row);
  }
  std::vector<SelectionVector> groups;
  groups.reserve(by_bucket.size());
  for (auto& [bucket, group] : by_bucket) {
    (void)bucket;
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace sciborq
