#ifndef SCIBORQ_COLUMN_VALUE_H_
#define SCIBORQ_COLUMN_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "column/types.h"

namespace sciborq {

/// A single scalar cell: null, int64, double, or string. Used at API
/// boundaries (row append, scalar query answers); the hot paths operate on
/// typed column storage directly.
class Value {
 public:
  /// Null value.
  Value() = default;
  Value(int64_t v) : payload_(v) {}            // NOLINT(runtime/explicit)
  Value(double v) : payload_(v) {}             // NOLINT(runtime/explicit)
  Value(std::string v) : payload_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : payload_(std::string(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(payload_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(payload_); }
  bool is_double() const { return std::holds_alternative<double>(payload_); }
  bool is_string() const { return std::holds_alternative<std::string>(payload_); }

  int64_t int64() const { return std::get<int64_t>(payload_); }
  double dbl() const { return std::get<double>(payload_); }
  const std::string& str() const { return std::get<std::string>(payload_); }

  /// Numeric view: int64 and double both convert; null/string are an error to
  /// call (checked in debug builds by the std::variant access).
  double AsDouble() const {
    if (is_int64()) return static_cast<double>(int64());
    return dbl();
  }

  /// Renders the value for debugging / CSV ("" for null).
  std::string ToString() const;

  bool operator==(const Value& other) const { return payload_ == other.payload_; }

 private:
  std::variant<std::monostate, int64_t, double, std::string> payload_;
};

}  // namespace sciborq

#endif  // SCIBORQ_COLUMN_VALUE_H_
