#include "core/impression.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace sciborq {

std::string_view SamplingPolicyToString(SamplingPolicy policy) {
  switch (policy) {
    case SamplingPolicy::kUniform:
      return "uniform";
    case SamplingPolicy::kLastSeen:
      return "last-seen";
    case SamplingPolicy::kBiased:
      return "biased";
  }
  return "unknown";
}

Impression::Impression(std::string name, Schema schema, int64_t capacity,
                       SamplingPolicy policy)
    : name_(std::move(name)),
      capacity_(capacity),
      policy_(policy),
      rows_(std::move(schema)) {
  rows_.Reserve(capacity);
  weights_.reserve(static_cast<size_t>(capacity));
  source_ids_.reserve(static_cast<size_t>(capacity));
}

void Impression::AppendSampledRow(const Table& src, int64_t src_row,
                                  double weight, int64_t source_id) {
  SCIBORQ_DCHECK(size() < capacity_);
  rows_.AppendRowFrom(src, src_row);
  weights_.push_back(weight);
  source_ids_.push_back(source_id);
}

void Impression::ReplaceSampledRow(int64_t slot, const Table& src,
                                   int64_t src_row, double weight,
                                   int64_t source_id) {
  SCIBORQ_DCHECK(slot >= 0 && slot < size());
  rows_.SetRowFrom(src, src_row, slot);
  weights_[static_cast<size_t>(slot)] = weight;
  source_ids_[static_cast<size_t>(slot)] = source_id;
}

Status Impression::SetExplicitInclusionProbabilities(
    std::vector<double> probs) {
  if (static_cast<int64_t>(probs.size()) != size()) {
    return Status::InvalidArgument(
        "inclusion probability vector length must equal impression size");
  }
  for (const double p : probs) {
    if (!(p > 0.0) || p > 1.0) {
      return Status::InvalidArgument(
          "explicit inclusion probabilities must be in (0, 1]");
    }
  }
  explicit_probs_ = std::move(probs);
  return Status::OK();
}

double Impression::InclusionProbability(int64_t row) const {
  SCIBORQ_DCHECK(row >= 0 && row < size());
  if (!explicit_probs_.empty()) {
    return explicit_probs_[static_cast<size_t>(row)];
  }
  const auto n = static_cast<double>(size());
  switch (policy_) {
    case SamplingPolicy::kUniform: {
      if (population_seen_ <= size()) return 1.0;
      return n / static_cast<double>(population_seen_);
    }
    case SamplingPolicy::kBiased: {
      if (population_seen_ <= size() || population_weight_ <= 0.0) return 1.0;
      const double w = weights_[static_cast<size_t>(row)];
      if (!(w > 0.0)) return 1.0 / static_cast<double>(population_seen_);
      if (has_acceptance_model()) {
        // First-order retention model (see set_acceptance_model): arrival
        // position t (1-based), capacity n_cap.
        const double t =
            static_cast<double>(source_ids_[static_cast<size_t>(row)] + 1);
        const auto n_cap = static_cast<double>(capacity_);
        const double accept =
            t <= n_cap ? 1.0 : std::min(1.0, n_cap * w / t);
        const double later = std::max(
            0.0, static_cast<double>(total_accepted_) - AcceptancesAt(t));
        const double survival = std::exp(-later / n_cap);
        return std::clamp(accept * survival, 1e-12, 1.0);
      }
      // Fallback without a model: the coarse Σw surrogate.
      return std::min(1.0, n * w / population_weight_);
    }
    case SamplingPolicy::kLastSeen: {
      // Effective window: the sample refreshes at rate k/D per tuple, so the
      // resident rows are (approximately) a uniform draw from the most
      // recent W = n·D/k tuples.
      if (freshness_k_ <= 0 || expected_ingest_ <= 0) {
        return population_seen_ <= size()
                   ? 1.0
                   : n / static_cast<double>(population_seen_);
      }
      const double window =
          n * static_cast<double>(expected_ingest_) /
          static_cast<double>(freshness_k_);
      const double effective =
          std::min(static_cast<double>(population_seen_), window);
      if (effective <= n) return 1.0;
      return n / effective;
    }
  }
  return 1.0;
}

double Impression::AcceptancesAt(double position) const {
  if (acceptance_curve_.empty()) {
    // Single segment: interpolate 0 -> total over (capacity, population].
    const double span =
        static_cast<double>(population_seen_ - capacity_);
    if (span <= 0.0) return 0.0;
    const double frac =
        std::clamp((position - static_cast<double>(capacity_)) / span, 0.0, 1.0);
    return frac * static_cast<double>(total_accepted_);
  }
  const auto interval = static_cast<double>(curve_interval_);
  const double idx = position / interval;  // checkpoints at 1*I, 2*I, ...
  if (idx <= 1.0) {
    return idx * static_cast<double>(acceptance_curve_.front());
  }
  const auto k = static_cast<size_t>(idx - 1.0);  // checkpoint index below
  if (k + 1 >= acceptance_curve_.size()) {
    // Beyond the last checkpoint: interpolate toward the final total.
    const double last_pos =
        static_cast<double>(acceptance_curve_.size()) * interval;
    const double span = static_cast<double>(population_seen_) - last_pos;
    const auto last_val = static_cast<double>(acceptance_curve_.back());
    if (span <= 0.0) return last_val;
    const double frac = std::clamp((position - last_pos) / span, 0.0, 1.0);
    return last_val + frac * (static_cast<double>(total_accepted_) - last_val);
  }
  const auto lo = static_cast<double>(acceptance_curve_[k]);
  const auto hi = static_cast<double>(acceptance_curve_[k + 1]);
  const double frac = idx - 1.0 - static_cast<double>(k);
  return lo + frac * (hi - lo);
}

Impression Impression::Clone(std::string new_name) const {
  Impression copy = *this;
  copy.name_ = std::move(new_name);
  return copy;
}

ImpressionState Impression::SaveState() const {
  ImpressionState state;
  state.name = name_;
  state.capacity = capacity_;
  state.policy = policy_;
  state.rows = rows_;
  state.weights = weights_;
  state.source_ids = source_ids_;
  state.explicit_probs = explicit_probs_;
  state.population_seen = population_seen_;
  state.population_weight = population_weight_;
  state.freshness_k = freshness_k_;
  state.expected_ingest = expected_ingest_;
  state.acceptance_curve = acceptance_curve_;
  state.curve_interval = curve_interval_;
  state.total_accepted = total_accepted_;
  return state;
}

Result<Impression> Impression::FromState(ImpressionState state) {
  if (state.capacity <= 0) {
    return Status::InvalidArgument("impression state: non-positive capacity");
  }
  Impression out(std::move(state.name), state.rows.schema(), state.capacity,
                 state.policy);
  out.rows_ = std::move(state.rows);
  out.weights_ = std::move(state.weights);
  out.source_ids_ = std::move(state.source_ids);
  out.explicit_probs_ = std::move(state.explicit_probs);
  out.population_seen_ = state.population_seen;
  out.population_weight_ = state.population_weight;
  out.freshness_k_ = state.freshness_k;
  out.expected_ingest_ = state.expected_ingest;
  out.acceptance_curve_ = std::move(state.acceptance_curve);
  out.curve_interval_ = state.curve_interval;
  out.total_accepted_ = state.total_accepted;
  if (Status st = out.Validate(); !st.ok()) {
    // Validate reports Internal (its in-process contract); state restoration
    // is an input-validation path, so surface InvalidArgument instead.
    return Status::InvalidArgument("impression state: " + st.message());
  }
  if (!out.explicit_probs_.empty()) {
    for (const double p : out.explicit_probs_) {
      if (!(p > 0.0) || p > 1.0) {
        return Status::InvalidArgument(
            "impression state: explicit inclusion probabilities must be in "
            "(0, 1]");
      }
    }
  }
  return out;
}

Status Impression::Validate() const {
  SCIBORQ_RETURN_NOT_OK(rows_.Validate());
  if (size() > capacity_) {
    return Status::Internal("impression exceeds its capacity");
  }
  if (static_cast<int64_t>(weights_.size()) != size() ||
      static_cast<int64_t>(source_ids_.size()) != size()) {
    return Status::Internal("impression parallel arrays out of sync");
  }
  if (!explicit_probs_.empty() &&
      static_cast<int64_t>(explicit_probs_.size()) != size()) {
    return Status::Internal("explicit probability vector out of sync");
  }
  if (population_seen_ < size()) {
    return Status::Internal("population smaller than sample");
  }
  return Status::OK();
}

std::string Impression::ToString() const {
  return StrFormat(
      "Impression('%s', %s, %lld/%lld rows, population=%lld, %lld bytes)",
      name_.c_str(), std::string(SamplingPolicyToString(policy_)).c_str(),
      static_cast<long long>(size()), static_cast<long long>(capacity_),
      static_cast<long long>(population_seen_),
      static_cast<long long>(MemoryUsageBytes()));
}

}  // namespace sciborq
