#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "api/session.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace sciborq {

namespace {

/// Distinct `instance` label per server object, so several servers in one
/// process (the test and coordinator shapes) keep exact per-instance series.
std::string NextServerInstance() {
  static std::atomic<int64_t> next{0};
  return StrFormat("server-%lld", static_cast<long long>(next.fetch_add(
                                      1, std::memory_order_relaxed)));
}

}  // namespace

SciborqServer::SciborqServer(Engine* engine, ServerOptions options)
    : engine_(engine), options_(options) {
  SCIBORQ_CHECK(engine_ != nullptr);
  obs::Registry* reg = obs::DefaultRegistry();
  const obs::Labels by_instance = {{"instance", NextServerInstance()}};
  metrics_.connections_accepted =
      reg->GetCounter("sciborq_server_connections_total",
                      "TCP connections accepted.", by_instance);
  metrics_.queries_served = reg->GetCounter(
      "sciborq_server_queries_total",
      "Query/Execute requests received (before execution).", by_instance);
  metrics_.statements_prepared =
      reg->GetCounter("sciborq_server_statements_prepared_total",
                      "Statements successfully prepared.", by_instance);
  metrics_.checkpoints_taken =
      reg->GetCounter("sciborq_server_checkpoints_total",
                      "Tables checkpointed on request.", by_instance);
  metrics_.protocol_errors =
      reg->GetCounter("sciborq_server_protocol_errors_total",
                      "Undecodable or misframed requests.", by_instance);
  metrics_.bytes_in = reg->GetCounter(
      "sciborq_server_bytes_in_total",
      "Request bytes received (frame prefix included).", by_instance);
  metrics_.bytes_out = reg->GetCounter(
      "sciborq_server_bytes_out_total",
      "Response bytes sent (frame prefix included).", by_instance);
  for (uint8_t op = 0; op <= static_cast<uint8_t>(Opcode::kDropTable); ++op) {
    metrics_.request_seconds[op] = reg->GetHistogram(
        "sciborq_server_request_seconds", "Request handling latency.",
        obs::DefaultLatencyBounds(),
        {{"instance", by_instance[0].second},
         {"opcode", std::string(OpcodeToString(static_cast<Opcode>(op)))}});
  }
}

SciborqServer::~SciborqServer() { Stop(); }

Status SciborqServer::Start() {
  if (started_.load()) {
    return Status::FailedPrecondition("server already started");
  }
  SCIBORQ_ASSIGN_OR_RETURN(TcpListener listener,
                           TcpListener::Bind(options_.port));
  port_ = listener.port();
  listener_.emplace(std::move(listener));
  handler_pool_ =
      std::make_unique<ThreadPool>(std::max(1, options_.max_connections));
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SciborqServer::Stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  // 1. No new connections: wake and join the accept thread.
  listener_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // 2. Drain: half-close every live connection's read side. A handler busy
  //    with a query finishes it, sends the response over the still-open
  //    write side, then reads a clean EOF and exits; idle and queued
  //    connections see the EOF immediately.
  {
    MutexLock lock(&conns_mu_);
    for (auto& [id, conn] : active_conns_) conn->ShutdownRead();
  }
  // 3. Join the handlers.
  if (handler_pool_) {
    handler_pool_->Wait();
    handler_pool_.reset();
  }
  listener_->Close();
}

void SciborqServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<TcpConn> accepted = listener_->Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      // Transient accept failure (e.g. fd pressure): back off briefly
      // rather than spinning.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    metrics_.connections_accepted->Inc();
    auto conn = std::make_shared<TcpConn>(std::move(accepted).value());
    int64_t id;
    {
      MutexLock lock(&conns_mu_);
      id = next_conn_id_++;
      active_conns_.emplace(id, conn.get());
    }
    handler_pool_->Submit([this, id, conn]() mutable {
      HandleConnection(conn);
      MutexLock lock(&conns_mu_);
      active_conns_.erase(id);
    });
  }
}

void SciborqServer::HandleConnection(std::shared_ptr<TcpConn> conn) {
  // The connection's whole life runs on this one pool worker, so the
  // session's single-thread ownership contract holds by construction.
  Session session(engine_);
  for (;;) {
    Result<std::optional<std::string>> frame =
        conn->RecvFrame(options_.max_frame_bytes);
    if (!frame.ok()) {
      // Framing is broken (oversized/truncated prefix): report best-effort
      // and close — the stream can't be resynchronized.
      metrics_.protocol_errors->Inc();
      (void)conn->SendFrame(
          EncodeResponse(Opcode::kInvalid, frame.status(), ""));
      break;
    }
    if (!frame->has_value()) break;  // peer closed cleanly between frames
    metrics_.bytes_in->Inc(static_cast<int64_t>((*frame)->size()) + 4);
    Result<RequestFrame> request = DecodeRequest(**frame);
    if (!request.ok()) {
      // Bad version or opcode: the peer speaks something else; answer once
      // and hang up.
      metrics_.protocol_errors->Inc();
      (void)conn->SendFrame(
          EncodeResponse(Opcode::kInvalid, request.status(), ""));
      break;
    }
    Stopwatch request_watch;
    const std::string response = HandleRequest(*request, &session);
    metrics_.request_seconds[static_cast<uint8_t>(request->opcode)]->Observe(
        request_watch.ElapsedSeconds());
    metrics_.bytes_out->Inc(static_cast<int64_t>(response.size()) + 4);
    if (!conn->SendFrame(response).ok()) break;
  }
}

std::string SciborqServer::HandleRequest(const RequestFrame& request,
                                         Session* session) {
  WireReader payload(request.payload);
  // Version negotiation: the response is stamped (and its payload encoded)
  // with the version the peer's request carried, so v1/v2 peers keep
  // byte-identical responses while v3 peers get the distributed fields.
  const uint8_t version = request.version;
  switch (request.opcode) {
    case Opcode::kQuery: {
      Result<std::string> sql = payload.ReadString();
      if (!sql.ok()) {
        return EncodeResponse(request.opcode, sql.status(), "", version);
      }
      QueryExecOptions exec;
      if (version >= kWireVersionV3) {
        // v3 kQuery appends a flags byte: bit 0 = mergeable (ship the
        // Welford partials behind an exact answer).
        Result<uint8_t> flags = payload.ReadU8();
        if (!flags.ok()) {
          return EncodeResponse(request.opcode, flags.status(), "", version);
        }
        exec.mergeable = (*flags & 0x1) != 0;
      }
      if (version >= kWireVersionV4) {
        // v4 kQuery appends the caller's query id ("" = assign one) — how a
        // coordinator threads one id through every shard's trace.
        Result<std::string> query_id = payload.ReadString();
        if (!query_id.ok()) {
          return EncodeResponse(request.opcode, query_id.status(), "",
                                version);
        }
        exec.query_id = std::move(*query_id);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      metrics_.queries_served->Inc();
      Result<QueryOutcome> outcome = session->Query(*sql, exec);
      if (!outcome.ok()) {
        return EncodeResponse(request.opcode, outcome.status(), "", version);
      }
      WireWriter w;
      EncodeOutcome(*outcome, &w, version);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kUse: {
      Result<std::string> table = payload.ReadString();
      if (!table.ok()) {
        return EncodeResponse(request.opcode, table.status(), "");
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "");
      }
      return EncodeResponse(request.opcode, session->Use(*table), "");
    }
    case Opcode::kSetBounds: {
      Result<QueryBounds> bounds = DecodeBounds(&payload);
      if (!bounds.ok()) {
        return EncodeResponse(request.opcode, bounds.status(), "");
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "");
      }
      session->set_default_bounds(*bounds);
      return EncodeResponse(request.opcode, Status::OK(), "");
    }
    case Opcode::kCatalog: {
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "");
      }
      const std::vector<TableInfo> tables = engine_->ListTables();
      WireWriter w;
      w.PutU32(static_cast<uint32_t>(tables.size()));
      for (const TableInfo& info : tables) EncodeTableInfo(info, &w, version);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kPing: {
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "");
      }
      return EncodeResponse(request.opcode, Status::OK(), "");
    }
    case Opcode::kPrepare: {
      Result<std::string> sql = payload.ReadString();
      if (!sql.ok()) return EncodeResponse(request.opcode, sql.status(), "");
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "");
      }
      Result<StatementInfo> info = session->Prepare(*sql);
      if (!info.ok()) {
        return EncodeResponse(request.opcode, info.status(), "");
      }
      metrics_.statements_prepared->Inc();
      WireWriter w;
      EncodeStatementInfo(*info, &w);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer());
    }
    case Opcode::kExecute: {
      Result<int64_t> id = payload.ReadI64();
      if (!id.ok()) return EncodeResponse(request.opcode, id.status(), "");
      Result<std::vector<Value>> params = DecodeParams(&payload);
      if (!params.ok()) {
        return EncodeResponse(request.opcode, params.status(), "");
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "");
      }
      metrics_.queries_served->Inc();
      Result<QueryOutcome> outcome =
          session->Execute(StatementHandle{*id}, *params);
      if (!outcome.ok()) {
        return EncodeResponse(request.opcode, outcome.status(), "", version);
      }
      WireWriter w;
      EncodeOutcome(*outcome, &w, version);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kCloseStmt: {
      Result<int64_t> id = payload.ReadI64();
      if (!id.ok()) return EncodeResponse(request.opcode, id.status(), "");
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "");
      }
      return EncodeResponse(request.opcode,
                            session->CloseStatement(StatementHandle{*id}), "");
    }
    case Opcode::kCheckpoint: {
      // "" = checkpoint every table. Engine-wide state, not session state,
      // so this goes straight to the engine; FailedPrecondition travels back
      // code-intact when the server runs without --db-dir.
      Result<std::string> table = payload.ReadString();
      if (!table.ok()) {
        return EncodeResponse(request.opcode, table.status(), "");
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "");
      }
      int64_t count = 0;
      if (table->empty()) {
        Result<int64_t> all = engine_->CheckpointAll();
        if (!all.ok()) return EncodeResponse(request.opcode, all.status(), "");
        count = *all;
      } else {
        if (Status st = engine_->Checkpoint(*table); !st.ok()) {
          return EncodeResponse(request.opcode, st, "");
        }
        count = 1;
      }
      metrics_.checkpoints_taken->Inc(count);
      WireWriter w;
      w.PutU32(static_cast<uint32_t>(count));
      return EncodeResponse(request.opcode, Status::OK(), w.buffer());
    }
    case Opcode::kCreateTable: {
      // v3, coordinator ingest routing: register an empty table so a
      // subsequent kIngest stream has somewhere to land. The seed travels
      // explicitly so a coordinator can hand each shard a distinct sampler
      // stream (derived like ShardedImpressionBuilder's).
      Result<std::string> name = payload.ReadString();
      if (!name.ok()) {
        return EncodeResponse(request.opcode, name.status(), "", version);
      }
      Result<Schema> schema = DecodeSchema(&payload);
      if (!schema.ok()) {
        return EncodeResponse(request.opcode, schema.status(), "", version);
      }
      Result<uint64_t> seed = payload.ReadU64();
      if (!seed.ok()) {
        return EncodeResponse(request.opcode, seed.status(), "", version);
      }
      TableOptions table_options;
      table_options.seed = *seed;
      if (version >= kWireVersionV6) {
        // v6 kCreateTable appends the retention block — how a windowed
        // (time-series) table is registered over the wire.
        Result<RetentionPolicy> retention = DecodeRetentionPolicy(&payload);
        if (!retention.ok()) {
          return EncodeResponse(request.opcode, retention.status(), "",
                                version);
        }
        table_options.retention = std::move(*retention);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      return EncodeResponse(request.opcode,
                            engine_->CreateTable(*name, *schema, table_options),
                            "", version);
    }
    case Opcode::kIngest: {
      Result<std::string> table = payload.ReadString();
      if (!table.ok()) {
        return EncodeResponse(request.opcode, table.status(), "", version);
      }
      Result<Table> batch = DecodeTable(&payload);
      if (!batch.ok()) {
        return EncodeResponse(request.opcode, batch.status(), "", version);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      const int64_t rows = batch->num_rows();
      if (Status st = engine_->IngestBatch(*table, *batch); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      WireWriter w;
      w.PutI64(rows);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kStats: {
      // v4: the whole process registry, flattened — engine-, WAL-, and
      // server-level series alike (one process, one scrape).
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      WireWriter w;
      EncodeStatSamples(obs::DefaultRegistry()->Samples(), &w);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kSlowLog: {
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      WireWriter w;
      EncodeSlowQueries(engine_->SlowQueries(), &w);
      return EncodeResponse(request.opcode, Status::OK(), w.buffer(), version);
    }
    case Opcode::kDropTable: {
      // v6: permanent removal — catalog entry plus every on-disk file. The
      // engine serializes against in-flight queries and checkpoints under
      // the table's own locks, so this is safe to issue at any time.
      Result<std::string> name = payload.ReadString();
      if (!name.ok()) {
        return EncodeResponse(request.opcode, name.status(), "", version);
      }
      if (Status st = payload.ExpectEnd(); !st.ok()) {
        return EncodeResponse(request.opcode, st, "", version);
      }
      return EncodeResponse(request.opcode, engine_->DropTable(*name), "",
                            version);
    }
    case Opcode::kInvalid:
      break;  // DecodeRequest never produces it
  }
  return EncodeResponse(Opcode::kInvalid,
                        Status::Internal("unhandled opcode"), "");
}

}  // namespace sciborq
