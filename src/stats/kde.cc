#include "stats/kde.h"

#include <algorithm>
#include <cmath>

namespace sciborq {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
}  // namespace

double KernelValue(KernelType kernel, double u) {
  switch (kernel) {
    case KernelType::kGaussian:
      return kInvSqrt2Pi * std::exp(-0.5 * u * u);
    case KernelType::kEpanechnikov:
      if (u < -1.0 || u > 1.0) return 0.0;
      return 0.75 * (1.0 - u * u);
  }
  return 0.0;
}

Result<FullKde> FullKde::Make(std::vector<double> points, double bandwidth,
                              KernelType kernel) {
  if (points.empty()) {
    return Status::InvalidArgument("FullKde: need at least one point");
  }
  if (!(bandwidth > 0.0) || !std::isfinite(bandwidth)) {
    return Status::InvalidArgument("FullKde: bandwidth must be positive");
  }
  return FullKde(std::move(points), bandwidth, kernel);
}

double FullKde::Evaluate(double x) const {
  double acc = 0.0;
  for (const double xi : points_) {
    acc += KernelValue(kernel_, (x - xi) / bandwidth_);
  }
  return acc / (static_cast<double>(points_.size()) * bandwidth_);
}

namespace {

/// Sample standard deviation and interquartile range of `points`.
void SpreadStats(const std::vector<double>& points, double* sd, double* iqr) {
  const auto n = points.size();
  double mean = 0.0;
  for (const double p : points) mean += p;
  mean /= static_cast<double>(n);
  double ss = 0.0;
  for (const double p : points) ss += (p - mean) * (p - mean);
  *sd = n > 1 ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;

  std::vector<double> sorted = points;
  std::sort(sorted.begin(), sorted.end());
  const auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(n - 1);
    const auto lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, n - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  *iqr = quantile(0.75) - quantile(0.25);
}

}  // namespace

double SilvermanBandwidth(const std::vector<double>& points) {
  if (points.size() < 2) return 0.0;
  double sd = 0.0;
  double iqr = 0.0;
  SpreadStats(points, &sd, &iqr);
  double spread = sd;
  if (iqr > 0.0) spread = std::min(spread, iqr / 1.34);
  if (spread <= 0.0) return 0.0;
  return 0.9 * spread * std::pow(static_cast<double>(points.size()), -0.2);
}

double ScottBandwidth(const std::vector<double>& points) {
  if (points.size() < 2) return 0.0;
  double sd = 0.0;
  double iqr = 0.0;
  SpreadStats(points, &sd, &iqr);
  if (sd <= 0.0) return 0.0;
  return 1.06 * sd * std::pow(static_cast<double>(points.size()), -0.2);
}

double BinnedKde::Evaluate(double x) const {
  const double n = hist_->weighted_total();
  if (n <= 0.0) return 0.0;
  const double w = hist_->bin_width();
  double acc = 0.0;
  for (const auto& b : hist_->bins()) {
    if (b.count <= 0.0) continue;
    acc += b.count * KernelValue(kernel_, (x - b.mean) / w);
  }
  return acc / (n * w);
}

FrozenBinnedKde::FrozenBinnedKde(const StreamingHistogram& hist,
                                 KernelType kernel)
    : bins_(hist.bins()),
      bin_width_(hist.bin_width()),
      total_weight_(hist.weighted_total()),
      kernel_(kernel) {}

double FrozenBinnedKde::Evaluate(double x) const {
  if (total_weight_ <= 0.0) return 0.0;
  double acc = 0.0;
  for (const auto& b : bins_) {
    if (b.count <= 0.0) continue;
    acc += b.count * KernelValue(kernel_, (x - b.mean) / bin_width_);
  }
  return acc / (total_weight_ * bin_width_);
}

}  // namespace sciborq
