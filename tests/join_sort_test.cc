#include <gtest/gtest.h>

#include "column/table.h"
#include "exec/join.h"
#include "exec/sort.h"

namespace sciborq {
namespace {

Table FactTable() {
  Table t{Schema({Field{"id", DataType::kInt64, false},
                  Field{"fk", DataType::kInt64, true},
                  Field{"x", DataType::kDouble, false}})};
  auto add = [&t](int64_t id, Value fk, double x) {
    ASSERT_TRUE(t.AppendRow({Value(id), std::move(fk), Value(x)}).ok());
  };
  add(0, Value(int64_t{10}), 1.0);
  add(1, Value(int64_t{20}), 2.0);
  add(2, Value(int64_t{10}), 3.0);
  add(3, Value(int64_t{99}), 4.0);  // dangling key
  add(4, Value::Null(), 5.0);       // null key never joins
  return t;
}

Table DimTable() {
  Table t{Schema({Field{"key", DataType::kInt64, false},
                  Field{"x", DataType::kDouble, false},  // clashes with fact x
                  Field{"label", DataType::kString, false}})};
  auto add = [&t](int64_t key, double x, const char* label) {
    ASSERT_TRUE(t.AppendRow({Value(key), Value(x), Value(label)}).ok());
  };
  add(10, 100.0, "ten");
  add(20, 200.0, "twenty");
  add(30, 300.0, "thirty");
  return t;
}

TEST(HashJoinTest, InnerJoinBasics) {
  const Table joined = HashJoin(FactTable(), "fk", DimTable(), "key").value();
  EXPECT_EQ(joined.num_rows(), 3);  // ids 0, 1, 2
  // Output schema: fact columns + dim minus key, with clash prefix.
  EXPECT_TRUE(joined.schema().HasField("right_x"));
  EXPECT_TRUE(joined.schema().HasField("label"));
  EXPECT_FALSE(joined.schema().HasField("key"));
  EXPECT_EQ(joined.GetCell(0, "label").value().str(), "ten");
  EXPECT_DOUBLE_EQ(joined.GetCell(0, "right_x").value().dbl(), 100.0);
  EXPECT_EQ(joined.GetCell(1, "label").value().str(), "twenty");
  EXPECT_TRUE(joined.Validate().ok());
}

TEST(HashJoinTest, OneToManyDuplicates) {
  // Two dim rows with the same key -> fact rows fan out.
  Table dim = DimTable();
  ASSERT_TRUE(
      dim.AppendRow({Value(int64_t{10}), Value(101.0), Value("ten-b")}).ok());
  const Table joined = HashJoin(FactTable(), "fk", dim, "key").value();
  // Fact ids {0, 2} match key 10 twice each; id 1 matches once.
  EXPECT_EQ(joined.num_rows(), 5);
}

TEST(HashJoinTest, EmptyProbe) {
  Table empty_fact{FactTable().schema()};
  const Table joined = HashJoin(empty_fact, "fk", DimTable(), "key").value();
  EXPECT_EQ(joined.num_rows(), 0);
}

TEST(HashJoinTest, KeyTypeValidation) {
  EXPECT_FALSE(HashJoin(FactTable(), "x", DimTable(), "key").ok());
  EXPECT_FALSE(HashJoin(FactTable(), "fk", DimTable(), "label").ok());
  EXPECT_FALSE(HashJoin(FactTable(), "nope", DimTable(), "key").ok());
}

TEST(CountJoinMatchesTest, CountsWithoutMaterializing) {
  const Table fact = FactTable();
  const Table dim = DimTable();
  EXPECT_EQ(CountJoinMatches(fact, "fk", {0, 1, 2, 3, 4}, dim, "key").value(),
            3);
  EXPECT_EQ(CountJoinMatches(fact, "fk", {3, 4}, dim, "key").value(), 0);
  EXPECT_EQ(CountJoinMatches(fact, "fk", {0}, dim, "key").value(), 1);
}

TEST(SortTest, AscendingNumeric) {
  const Table t = FactTable();
  const Table sorted = SortTable(t, "x", /*ascending=*/false).value();
  EXPECT_DOUBLE_EQ(sorted.GetCell(0, "x").value().dbl(), 5.0);
  EXPECT_DOUBLE_EQ(sorted.GetCell(4, "x").value().dbl(), 1.0);
}

TEST(SortTest, NullsSortLast) {
  const Table t = FactTable();
  const SelectionVector order = SortedOrder(t, "fk").value();
  EXPECT_EQ(order.back(), 4);  // the null-fk row
  EXPECT_EQ(order.front(), 0);  // fk 10, first appearance (stable)
}

TEST(SortTest, StringOrder) {
  const Table t = DimTable();
  const SelectionVector order = SortedOrder(t, "label").value();
  EXPECT_EQ(order, (SelectionVector{0, 2, 1}));  // ten, thirty, twenty
}

TEST(SortTest, StableForTies) {
  const Table t = FactTable();
  const SelectionVector order = SortedOrder(t, "fk").value();
  // fk values: 10(id0), 20(id1), 10(id2), 99(id3), null(id4).
  EXPECT_EQ(order, (SelectionVector{0, 2, 1, 3, 4}));
}

TEST(TopKTest, PartialSort) {
  const Table t = FactTable();
  const SelectionVector top2 = TopK(t, "x", 2, /*ascending=*/false).value();
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], 4);
  EXPECT_EQ(top2[1], 3);
}

TEST(TopKTest, KLargerThanTable) {
  const Table t = FactTable();
  EXPECT_EQ(TopK(t, "x", 100).value().size(), 5u);
  EXPECT_FALSE(TopK(t, "x", -1).ok());
}

TEST(SortTest, MissingColumn) {
  EXPECT_FALSE(SortedOrder(FactTable(), "nope").ok());
}

}  // namespace
}  // namespace sciborq
