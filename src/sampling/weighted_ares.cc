#include "sampling/weighted_ares.h"

#include <cmath>

namespace sciborq {

Result<WeightedAResSampler> WeightedAResSampler::Make(int64_t capacity,
                                                      uint64_t seed) {
  if (capacity <= 0) {
    return Status::InvalidArgument("A-Res capacity must be positive");
  }
  return WeightedAResSampler(capacity, seed);
}

void WeightedAResSampler::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t l = 2 * i + 1;
    const size_t r = 2 * i + 2;
    size_t smallest = i;
    if (l < n && heap_[l].key < heap_[smallest].key) smallest = l;
    if (r < n && heap_[r].key < heap_[smallest].key) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void WeightedAResSampler::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (heap_[parent].key <= heap_[i].key) return;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

ReservoirDecision WeightedAResSampler::Offer(double weight) {
  ++seen_;
  if (!(weight > 0.0) || !std::isfinite(weight)) {
    // Zero-weight tuples only enter while the reservoir is filling — and even
    // then with the weakest possible key so they are evicted first.
    weight = 1e-300;
  }
  // key = u^(1/w) computed in log space: log key = log(u)/w.
  double u = rng_.NextDouble();
  if (u <= 1e-300) u = 1e-300;
  const double log_key = std::log(u) / weight;

  if (!full()) {
    const auto slot = static_cast<int64_t>(heap_.size());
    heap_.push_back(Entry{log_key, slot});
    SiftUp(heap_.size() - 1);
    return ReservoirDecision{true, slot};
  }
  if (log_key <= heap_[0].key) return ReservoirDecision{false, -1};
  const int64_t slot = heap_[0].slot;
  heap_[0] = Entry{log_key, slot};
  SiftDown(0);
  return ReservoirDecision{true, slot};
}

}  // namespace sciborq
