#include <gtest/gtest.h>

#include <set>
#include <algorithm>

#include "exec/join.h"
#include "exec/query.h"
#include "skyserver/catalog.h"
#include "skyserver/functions.h"

namespace sciborq {
namespace {

SkyCatalogConfig SmallConfig() {
  SkyCatalogConfig config;
  config.num_rows = 20'000;
  return config;
}

TEST(SkyCatalogTest, GeneratesRequestedRows) {
  const SkyCatalog catalog = GenerateSkyCatalog(SmallConfig(), 1).value();
  EXPECT_EQ(catalog.photo_obj_all.num_rows(), 20'000);
  EXPECT_TRUE(catalog.photo_obj_all.Validate().ok());
  EXPECT_TRUE(catalog.photo_obj_all.schema().Equals(PhotoObjSchema()));
}

TEST(SkyCatalogTest, ConfigValidation) {
  SkyCatalogConfig config = SmallConfig();
  config.num_rows = 0;
  EXPECT_FALSE(GenerateSkyCatalog(config, 1).ok());
  config = SmallConfig();
  config.ra_max = config.ra_min;
  EXPECT_FALSE(GenerateSkyCatalog(config, 1).ok());
}

TEST(SkyCatalogTest, CoordinatesWithinExtent) {
  const SkyCatalogConfig config = SmallConfig();
  const SkyCatalog catalog = GenerateSkyCatalog(config, 2).value();
  const Column* ra = catalog.photo_obj_all.ColumnByName("ra").value();
  const Column* dec = catalog.photo_obj_all.ColumnByName("dec").value();
  EXPECT_GE(ra->Min().value(), config.ra_min);
  EXPECT_LE(ra->Max().value(), config.ra_max);
  EXPECT_GE(dec->Min().value(), config.dec_min);
  EXPECT_LE(dec->Max().value(), config.dec_max);
}

TEST(SkyCatalogTest, SkyIsNonUniform) {
  // The clustered model must produce a visibly non-uniform ra distribution
  // (the shape behind Fig. 7's base histogram).
  const SkyCatalog catalog = GenerateSkyCatalog(SmallConfig(), 3).value();
  const Column* ra = catalog.photo_obj_all.ColumnByName("ra").value();
  std::vector<int64_t> counts(24, 0);
  for (int64_t i = 0; i < ra->size(); ++i) {
    const int bin = std::min<int>(
        23, static_cast<int>((ra->GetDouble(i) - 120.0) / 5.0));
    ++counts[static_cast<size_t>(bin)];
  }
  const auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*max_it, 2 * *min_it);
}

TEST(SkyCatalogTest, ObjidsUniqueAndDense) {
  const SkyCatalog catalog = GenerateSkyCatalog(SmallConfig(), 4).value();
  const Column* objid = catalog.photo_obj_all.ColumnByName("objid").value();
  std::set<int64_t> ids;
  for (int64_t i = 0; i < objid->size(); ++i) ids.insert(objid->GetInt64(i));
  EXPECT_EQ(ids.size(), static_cast<size_t>(objid->size()));
  EXPECT_EQ(*ids.begin(), 1);
  EXPECT_EQ(*ids.rbegin(), objid->size());
}

TEST(SkyCatalogTest, ClassMixRoughlyAsConfigured) {
  const SkyCatalog catalog = GenerateSkyCatalog(SmallConfig(), 5).value();
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  q.group_by = "obj_class";
  const auto rows = RunExact(catalog.photo_obj_all, q).value();
  ASSERT_EQ(rows.size(), 3u);
  double galaxy = 0.0;
  for (const auto& r : rows) {
    if (r.group_key.str() == "GALAXY") galaxy = r.values[0];
  }
  EXPECT_NEAR(galaxy / 20'000.0, 0.62, 0.02);
}

TEST(SkyCatalogTest, EveryFactRowJoinsToAField) {
  const SkyCatalog catalog = GenerateSkyCatalog(SmallConfig(), 6).value();
  const int64_t matches =
      CountJoinMatches(catalog.photo_obj_all, "field_id",
                       [&] {
                         SelectionVector all(
                             static_cast<size_t>(
                                 catalog.photo_obj_all.num_rows()));
                         for (int64_t i = 0;
                              i < catalog.photo_obj_all.num_rows(); ++i) {
                           all[static_cast<size_t>(i)] = i;
                         }
                         return all;
                       }(),
                       catalog.field, "field_id")
          .value();
  EXPECT_EQ(matches, catalog.photo_obj_all.num_rows());
  EXPECT_EQ(catalog.field.num_rows(), 16 * 16);
}

TEST(SkyCatalogTest, GalaxyViewFiltersClass) {
  const SkyCatalog catalog = GenerateSkyCatalog(SmallConfig(), 7).value();
  const Table galaxies = catalog.GalaxyView().value();
  EXPECT_GT(galaxies.num_rows(), 10'000);
  EXPECT_LT(galaxies.num_rows(), 14'000);
  const Column* cls = galaxies.ColumnByName("obj_class").value();
  for (int64_t i = 0; i < std::min<int64_t>(cls->size(), 100); ++i) {
    EXPECT_EQ(cls->GetString(i), "GALAXY");
  }
}

TEST(SkyCatalogTest, DeterministicForSeed) {
  const SkyCatalog a = GenerateSkyCatalog(SmallConfig(), 42).value();
  const SkyCatalog b = GenerateSkyCatalog(SmallConfig(), 42).value();
  for (const int64_t row : {int64_t{0}, int64_t{777}, int64_t{19'999}}) {
    EXPECT_EQ(a.photo_obj_all.GetCell(row, "ra").value().dbl(),
              b.photo_obj_all.GetCell(row, "ra").value().dbl());
  }
  const SkyCatalog c = GenerateSkyCatalog(SmallConfig(), 43).value();
  EXPECT_NE(a.photo_obj_all.GetCell(0, "ra").value().dbl(),
            c.photo_obj_all.GetCell(0, "ra").value().dbl());
}

TEST(SkyStreamTest, BatchesContinueTheStream) {
  SkyStream stream(SmallConfig(), 9);
  const Table b1 = stream.NextBatch(1000);
  const Table b2 = stream.NextBatch(500);
  EXPECT_EQ(b1.num_rows(), 1000);
  EXPECT_EQ(b2.num_rows(), 500);
  EXPECT_EQ(stream.produced(), 1500);
  // objids continue across batches.
  EXPECT_EQ(b1.GetCell(999, "objid").value().int64(), 1000);
  EXPECT_EQ(b2.GetCell(0, "objid").value().int64(), 1001);
}

TEST(SkyStreamTest, MatchesBulkGeneration) {
  // Streaming the same seed in batches produces the same rows as one bulk
  // generation (incremental load is a pure re-chunking).
  SkyStream stream(SmallConfig(), 10);
  const Table bulk = SkyStream(SmallConfig(), 10).NextBatch(2000);
  Table first = stream.NextBatch(1200);
  const Table second = stream.NextBatch(800);
  EXPECT_EQ(bulk.GetCell(0, "ra").value().dbl(),
            first.GetCell(0, "ra").value().dbl());
  EXPECT_EQ(bulk.GetCell(1500, "ra").value().dbl(),
            second.GetCell(300, "ra").value().dbl());
}

TEST(FunctionsTest, FGetNearbyObjEqIsACone) {
  const SkyCatalog catalog = GenerateSkyCatalog(SmallConfig(), 11).value();
  const auto pred = FGetNearbyObjEq(185.0, 30.0, 3.0);
  const auto rows = SelectAll(catalog.photo_obj_all, *pred).value();
  const Column* ra = catalog.photo_obj_all.ColumnByName("ra").value();
  const Column* dec = catalog.photo_obj_all.ColumnByName("dec").value();
  for (const int64_t r : rows) {
    const double dx = ra->GetDouble(r) - 185.0;
    const double dy = dec->GetDouble(r) - 30.0;
    EXPECT_LE(dx * dx + dy * dy, 9.0 + 1e-9);
  }
}

TEST(FunctionsTest, NearbyGalaxiesQueryShape) {
  const AggregateQuery q = NearbyGalaxiesQuery(185.0, 0.0, 3.0);
  EXPECT_EQ(q.aggregates.size(), 2u);
  const auto points = q.PredicatePoints();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].value, 185.0);
  const SkyCatalog catalog = GenerateSkyCatalog(SmallConfig(), 12).value();
  const auto rows = RunExact(catalog.photo_obj_all, q).value();
  EXPECT_GE(rows[0].values[0], 0.0);
}

}  // namespace
}  // namespace sciborq
