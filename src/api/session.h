#ifndef SCIBORQ_API_SESSION_H_
#define SCIBORQ_API_SESSION_H_

#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "util/check.h"
#include "util/result.h"

namespace sciborq {

/// A lightweight per-client handle over the Engine: carries the client's
/// default table (Use) and default bounds, so interactive SQL can stay bare
/// — "SELECT COUNT(*) WHERE ..." instead of repeating the FROM clause and
/// the contract on every statement — and keeps per-session statistics.
///
/// Sessions are intentionally NOT thread-safe: a session is owned by the
/// thread that constructed it, and debug builds abort (SCIBORQ_DCHECK) if
/// any other thread calls a mutating method. Create one session per client
/// thread — the Engine underneath is the thread-safe front door, and any
/// number of sessions can run concurrently against it. The network server
/// satisfies this by construction: each connection's session lives entirely
/// on that connection's handler thread.
class Session {
 public:
  /// `engine` is non-owning and must outlive the session. The constructing
  /// thread becomes the owner.
  explicit Session(Engine* engine);

  /// Closes every statement still prepared on this session, so a departing
  /// client (e.g. a dropped server connection) never leaks registry entries.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Sets the default table substituted into FROM-less SQL. NotFound when
  /// no such table is registered.
  Status Use(const std::string& table);
  const std::string& current_table() const { return table_; }

  /// Bounds applied when the SQL carries no bounds clause at all (individual
  /// unspecified terms still fall back to the engine default).
  void set_default_bounds(const QueryBounds& bounds) {
    CheckOwningThread();
    bounds_ = bounds;
  }
  const QueryBounds& default_bounds() const { return bounds_; }

  /// Parses and answers `sql`, filling in the session's table and bounds
  /// where the text leaves them out.
  Result<QueryOutcome> Query(std::string_view sql);

  /// Same, with per-call execution options (the server's v3 kQuery path
  /// passes the peer's mergeable flag through here).
  Result<QueryOutcome> Query(std::string_view sql,
                             const QueryExecOptions& exec);

  // -- Prepared statements ---------------------------------------------------

  /// Parses a `?` template and registers it with the engine, filling in the
  /// session's default table (when the SQL has no FROM clause) and default
  /// bounds (when it carries no bounds clause, literal or placeholder) at
  /// prepare time. The handle is scoped to this session: only this session
  /// can Execute or close it, and any still open are closed on destruction.
  Result<StatementInfo> Prepare(std::string_view sql);

  /// Binds and runs one of this session's statements. NotFound when the
  /// handle was not prepared here (other sessions' handles are invisible —
  /// the per-connection isolation the server relies on).
  Result<QueryOutcome> Execute(StatementHandle handle,
                               const std::vector<Value>& params);

  /// Closes one of this session's statements.
  Status CloseStatement(StatementHandle handle);

  /// Statements this session currently holds open.
  int64_t open_statements() const {
    return static_cast<int64_t>(statements_.size());
  }

  int64_t queries_run() const { return queries_run_; }
  double total_seconds() const { return total_seconds_; }

 private:
  /// Debug-mode enforcement of the single-thread ownership contract; free
  /// in release builds.
  void CheckOwningThread() const {
#ifndef NDEBUG
    SCIBORQ_DCHECK(std::this_thread::get_id() == owner_thread_ &&
                   "Session used from a thread other than its owner; "
                   "create one Session per client thread");
#endif
  }

  /// True when `handle` was prepared on this session.
  bool OwnsStatement(StatementHandle handle) const;

  Engine* engine_;
  std::string table_;
  QueryBounds bounds_;
  std::vector<StatementHandle> statements_;  ///< handles prepared here
  int64_t queries_run_ = 0;
  double total_seconds_ = 0.0;
#ifndef NDEBUG
  std::thread::id owner_thread_;
#endif
};

}  // namespace sciborq

#endif  // SCIBORQ_API_SESSION_H_
