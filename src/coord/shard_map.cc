#include "coord/shard_map.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "util/string_util.h"

namespace sciborq {

std::string ShardEndpoint::ToString() const {
  return StrFormat("%s:%d", host.c_str(), port);
}

bool operator==(const ShardEndpoint& a, const ShardEndpoint& b) {
  return a.host == b.host && a.port == b.port;
}

Result<ShardEndpoint> ParseShardEndpoint(const std::string& spec) {
  const std::string_view stripped = StripWhitespace(spec);
  const size_t colon = stripped.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == stripped.size()) {
    return Status::InvalidArgument(
        StrFormat("bad shard endpoint '%s': expected host:port",
                  std::string(stripped).c_str()));
  }
  const std::string host(stripped.substr(0, colon));
  const std::string port_str(stripped.substr(colon + 1));
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port <= 0 || port > 65535) {
    return Status::InvalidArgument(
        StrFormat("bad shard endpoint '%s': port '%s' is not in 1..65535",
                  std::string(stripped).c_str(), port_str.c_str()));
  }
  ShardEndpoint endpoint;
  endpoint.host = host;
  endpoint.port = static_cast<int>(port);
  return endpoint;
}

Status ShardMap::LoadTableMapFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError(StrFormat("cannot open table map '%s'",
                                     path.c_str()));
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    const size_t colon = stripped.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: expected 'table: host:port, ...'", path.c_str(),
                    line_no));
    }
    const std::string table(StripWhitespace(stripped.substr(0, colon)));
    if (table.empty()) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: empty table name", path.c_str(), line_no));
    }
    std::vector<ShardEndpoint> shards;
    for (const std::string& part :
         Split(stripped.substr(colon + 1), ',')) {
      if (StripWhitespace(part).empty()) continue;
      Result<ShardEndpoint> endpoint = ParseShardEndpoint(part);
      if (!endpoint.ok()) {
        return Status::InvalidArgument(StrFormat(
            "%s:%d: %s", path.c_str(), line_no,
            endpoint.status().message().c_str()));
      }
      shards.push_back(std::move(endpoint).value());
    }
    if (shards.empty()) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: table '%s' lists no shards", path.c_str(),
                    line_no, table.c_str()));
    }
    by_table_[table] = std::move(shards);
  }
  return Status::OK();
}

const std::vector<ShardEndpoint>& ShardMap::ShardsFor(
    const std::string& table) const {
  const auto it = by_table_.find(table);
  return it != by_table_.end() ? it->second : default_shards_;
}

std::vector<std::string> ShardMap::MappedTables() const {
  std::vector<std::string> tables;
  tables.reserve(by_table_.size());
  for (const auto& [table, shards] : by_table_) tables.push_back(table);
  return tables;
}

std::vector<ShardEndpoint> ShardMap::AllEndpoints() const {
  std::vector<ShardEndpoint> all = default_shards_;
  for (const auto& [table, shards] : by_table_) {
    for (const ShardEndpoint& endpoint : shards) {
      if (std::find(all.begin(), all.end(), endpoint) == all.end()) {
        all.push_back(endpoint);
      }
    }
  }
  return all;
}

}  // namespace sciborq
