#ifndef SCIBORQ_STORAGE_TABLE_STORE_H_
#define SCIBORQ_STORAGE_TABLE_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "column/table.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace sciborq {

// ---------------------------------------------------------------------------
// TableStore — the database directory.
//
// Layout (flat, one pair of files per table):
//
//   <db_dir>/<table>.snapshot   last checkpoint (storage/snapshot.h format)
//   <db_dir>/<table>.wal        batches ingested since (storage/wal.h frames)
//
// WAL record vocabulary (payload = u8 type | i64 seq | body):
//
//   type 1  create-table   seq 0,  body = Schema | PersistedTableConfig
//   type 2  ingest-batch   seq 1+, body = Table (column/serde.h)
//
// A table registered but never checkpointed exists as a WAL alone (its first
// record is create-table); after the first checkpoint the WAL holds only
// post-snapshot batches. Checkpoint ordering makes every crash window safe:
// the snapshot is written atomically (temp + rename + dir fsync) and only
// then is the WAL reset — a crash between the two leaves batches in the WAL
// whose sequence numbers the snapshot already covers, and recovery skips
// them by comparing against TableSnapshot::last_seq.
// ---------------------------------------------------------------------------

/// One WAL batch awaiting replay.
struct PendingBatch {
  int64_t seq = 0;
  Table batch;
};

/// Everything recovery found for one table.
struct RecoveredTable {
  std::string name;
  /// The last checkpoint, when one exists.
  std::optional<TableSnapshot> snapshot;
  /// From the WAL create-table record (present when the table was created
  /// after the last checkpoint — in particular for never-checkpointed
  /// tables).
  std::optional<Schema> created_schema;
  std::optional<PersistedTableConfig> created_config;
  /// Batches with seq > snapshot.last_seq, ascending.
  std::vector<PendingBatch> batches;
  /// True when a torn or corrupt WAL tail was dropped during recovery.
  bool wal_tail_dropped = false;
  std::string wal_tail_error;
};

/// Filesystem face of the persistence subsystem: owns the db directory and
/// one WalWriter per table. Thread-safe; per-table call ordering is the
/// engine's responsibility (it serializes under the table's data lock).
class TableStore {
 public:
  /// Opens (creating if needed) the directory. Leftover `*.tmp` files from a
  /// checkpoint interrupted before its rename are deleted.
  static Result<std::unique_ptr<TableStore>> Open(std::string db_dir);

  /// Scans the directory and reconstructs the durable state of every table:
  /// reads each snapshot, scans each WAL (truncating torn tails on disk),
  /// and opens the WAL for appending. Sorted by table name. A corrupt
  /// snapshot or WAL header fails recovery — silent data loss is worse than
  /// a refused boot.
  Result<std::vector<RecoveredTable>> Recover();

  /// Appends the create-table record to a fresh WAL for `name`.
  Status LogCreate(const std::string& name, const Schema& schema,
                   const PersistedTableConfig& config);

  /// Appends one ingest-batch record, durable before returning. Returns the
  /// WAL size *before* the append — an undo cookie for UnlogBatch.
  Result<int64_t> LogBatch(const std::string& name, const Table& batch,
                           int64_t seq);

  /// Truncates the table's WAL back to a LogBatch cookie — the undo for a
  /// batch whose in-memory application failed after it was logged (without
  /// it, the caller would be told the ingest failed while a restart
  /// resurrects the rows).
  Status UnlogBatch(const std::string& name, int64_t offset_before);

  /// Closes and deletes a table's WAL — the undo of LogCreate when a
  /// registration fails after it (otherwise the create record would
  /// resurrect an empty table at the next boot). Best-effort unlink.
  void DropWal(const std::string& name);

  /// Writes the snapshot atomically, then resets the table's WAL.
  Status WriteCheckpoint(const TableSnapshot& snap);

  /// Storage restricts table names to [A-Za-z0-9_.-] (they become file
  /// names); InvalidArgument otherwise.
  static Status ValidateTableName(const std::string& name);

  const std::string& dir() const { return dir_; }

  std::string SnapshotPath(const std::string& table) const;
  std::string WalPath(const std::string& table) const;

 private:
  explicit TableStore(std::string dir) : dir_(std::move(dir)) {}

  Result<WalWriter*> FindWal(const std::string& name);

  std::string dir_;
  Mutex mu_;
  /// Guards the map structure only: each WalWriter is owned by one table's
  /// ingest path (serialized by the engine's per-table locks), so writes to
  /// an already-registered WAL happen outside mu_.
  std::unordered_map<std::string, std::unique_ptr<WalWriter>> wals_
      GUARDED_BY(mu_);
};

/// WAL payload codecs, exposed for tests.
std::string EncodeCreateRecord(const Schema& schema,
                               const PersistedTableConfig& config);
std::string EncodeBatchRecord(int64_t seq, const Table& batch);

struct WalRecord {
  enum class Type { kCreateTable, kIngestBatch };
  Type type = Type::kIngestBatch;
  int64_t seq = 0;
  std::optional<Schema> schema;                  ///< create only
  std::optional<PersistedTableConfig> config;    ///< create only
  std::optional<Table> batch;                    ///< ingest only
};
Result<WalRecord> DecodeWalRecord(std::string_view payload);

}  // namespace sciborq

#endif  // SCIBORQ_STORAGE_TABLE_STORE_H_
