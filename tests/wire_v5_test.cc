// Version gating of the v5 wire codec: the TableInfo per-column storage
// block (dominant encoding + plain/encoded byte footprints) must round-trip
// bit-exactly at v5, stay invisible in v1-v4 encodings (byte-identical to
// older builds), and decode hostile counts and truncated buffers to clean
// errors.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "server/wire.h"

namespace sciborq {
namespace {

std::string EncodedInfo(const TableInfo& info, uint8_t version) {
  WireWriter w;
  EncodeTableInfo(info, &w, version);
  return w.Take();
}

TableInfo MakeStorageInfo() {
  TableInfo info;
  info.name = "sky";
  info.rows = 3 * 16 * 1024 + 77;
  info.population_seen = info.rows;
  info.storage = {
      {"id", "for", 409'816, 71'724},
      {"flag", "rle", 409'816, 624},
      {"ra", "plain", 409'816, 409'816},
      {"obj_class", "dict", 512'270, 201'144},
  };
  return info;
}

TEST(WireV5Test, V1ThroughV4EncodingsIgnoreStorageBlock) {
  TableInfo with = MakeStorageInfo();
  TableInfo without = MakeStorageInfo();
  without.storage.clear();
  for (uint8_t version :
       {kWireVersionV1, kWireVersionV2, kWireVersionV3, kWireVersionV4}) {
    EXPECT_EQ(EncodedInfo(with, version), EncodedInfo(without, version))
        << "version " << int{version};
  }
  // At v5 the block really travels.
  EXPECT_NE(EncodedInfo(with, kWireVersionV5),
            EncodedInfo(without, kWireVersionV5));
}

TEST(WireV5Test, V5RoundTripsStorageBlock) {
  const TableInfo info = MakeStorageInfo();
  const std::string bytes = EncodedInfo(info, kWireVersionV5);
  WireReader r(bytes);
  Result<TableInfo> decoded = DecodeTableInfo(&r, kWireVersionV5);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  ASSERT_EQ(decoded->storage.size(), info.storage.size());
  for (size_t i = 0; i < info.storage.size(); ++i) {
    EXPECT_EQ(decoded->storage[i].column, info.storage[i].column);
    EXPECT_EQ(decoded->storage[i].encoding, info.storage[i].encoding);
    EXPECT_EQ(decoded->storage[i].plain_bytes, info.storage[i].plain_bytes);
    EXPECT_EQ(decoded->storage[i].encoded_bytes, info.storage[i].encoded_bytes);
  }
  // Bijective at v5.
  EXPECT_EQ(bytes, EncodedInfo(*decoded, kWireVersionV5));
}

TEST(WireV5Test, V4DecodeLeavesStorageEmpty) {
  const std::string bytes = EncodedInfo(MakeStorageInfo(), kWireVersionV4);
  WireReader r(bytes);
  Result<TableInfo> decoded = DecodeTableInfo(&r, kWireVersionV4);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_TRUE(decoded->storage.empty());
}

TEST(WireV5Test, HostileStorageCountFailsCleanly) {
  // Take the valid v4 prefix and append a storage-column count with nothing
  // behind it: the decoder must error out, not allocate 2^31 entries.
  std::string bytes = EncodedInfo(MakeStorageInfo(), kWireVersionV4);
  WireWriter tail;
  tail.PutU32(0x7fffffffu);
  bytes += tail.buffer();
  WireReader r(bytes);
  EXPECT_FALSE(DecodeTableInfo(&r, kWireVersionV5).ok());
}

TEST(WireV5Test, TruncationFuzzNeverCrashes) {
  const std::string bytes = EncodedInfo(MakeStorageInfo(), kWireVersionV5);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WireReader r(std::string_view(bytes).substr(0, cut));
    Result<TableInfo> decoded = DecodeTableInfo(&r, kWireVersionV5);
    if (decoded.ok()) {
      EXPECT_TRUE(r.remaining() >= 0);
    }
  }
  SUCCEED();
}

TEST(WireV5Test, CatalogRequestAcceptsV5Stamp) {
  Result<RequestFrame> req =
      DecodeRequest(EncodeRequest(Opcode::kCatalog, "", kWireVersionV5));
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(Opcode::kCatalog, req->opcode);
  EXPECT_EQ(kWireVersionV5, req->version);
  // Versions beyond what this build speaks are rejected at the frame layer.
  EXPECT_FALSE(
      DecodeRequest(EncodeRequest(Opcode::kCatalog, "", kWireVersion + 1)).ok());
}

TEST(WireV5Test, DataLossStatusSurvivesTheWire) {
  // v5 raised the transportable status ceiling to kDataLoss — the code a
  // shard reports when asked to recover a future-format snapshot.
  WireWriter w;
  EncodeStatus(Status::DataLoss("snapshot needs a newer build"), &w);
  WireReader r(w.buffer());
  Status transported;
  ASSERT_TRUE(DecodeStatus(&r, &transported).ok());
  EXPECT_EQ(transported.code(), StatusCode::kDataLoss);
  EXPECT_EQ(transported.message(), "snapshot needs a newer build");
}

}  // namespace
}  // namespace sciborq
