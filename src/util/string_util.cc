#include "util/string_util.h"

#include <cstdio>

namespace sciborq {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) {
    ++b;
  }
  while (e > b &&
         (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
          s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string HumanCount(double n) {
  const char* suffix = "";
  double v = n;
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "B";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  return StrFormat("%.1f%s", v, suffix);
}

}  // namespace sciborq
