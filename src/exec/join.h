#ifndef SCIBORQ_EXEC_JOIN_H_
#define SCIBORQ_EXEC_JOIN_H_

#include <string>

#include "column/table.h"
#include "util/result.h"

namespace sciborq {

/// Inner hash join on int64 key columns (the foreign-key shape of the
/// SkyServer schema: PhotoObjAll.field_id = Field.field_id). Builds on the
/// right (dimension) side, probes with the left (fact) side. Output schema is
/// the left schema followed by the right schema minus its key column; right
/// columns clashing with a left name get a "right_" prefix.
Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const Table& right, const std::string& right_key);

/// Join selectivity helper: for each selected left row, how many right rows
/// share its key (used by the join-correlation bench without materializing).
Result<int64_t> CountJoinMatches(const Table& left, const std::string& left_key,
                                 const SelectionVector& left_rows,
                                 const Table& right,
                                 const std::string& right_key);

}  // namespace sciborq

#endif  // SCIBORQ_EXEC_JOIN_H_
