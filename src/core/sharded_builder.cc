#include "core/sharded_builder.h"

#include <algorithm>
#include <cmath>

#include "sampling/weighted_ares.h"
#include "util/rng.h"

namespace sciborq {

Result<ShardedImpressionBuilder> ShardedImpressionBuilder::Make(
    const Schema& schema, ImpressionSpec spec, int num_shards) {
  if (num_shards < 1) {
    return Status::InvalidArgument("need at least one shard");
  }
  std::vector<ImpressionBuilder> shards;
  shards.reserve(static_cast<size_t>(num_shards));
  Rng seeder(spec.seed);
  for (int s = 0; s < num_shards; ++s) {
    ImpressionSpec shard_spec = spec;
    shard_spec.seed = seeder.NextUint64();
    shard_spec.name = spec.name + "/shard" + std::to_string(s);
    // Each shard keeps the full target capacity so the merged sample never
    // starves a shard that saw more data than the others.
    SCIBORQ_ASSIGN_OR_RETURN(ImpressionBuilder b,
                             ImpressionBuilder::Make(schema, shard_spec));
    shards.push_back(std::move(b));
  }
  return ShardedImpressionBuilder(std::move(spec), std::move(shards));
}

Status ShardedImpressionBuilder::IngestBatchParallel(const Table& batch) {
  const int shards = num_shards();
  if (loaders_ == nullptr) {
    loaders_ = std::make_unique<ThreadPool>(shards);
  }
  // Contiguous zero-copy slicing: shard s owns rows [s*per + min(s, rem),
  // ...), so every shard sees a fixed substream of the load regardless of
  // thread scheduling. One pool worker per shard; the pool persists across
  // batches so streaming ingest never re-spawns OS threads.
  const int64_t per = batch.num_rows() / shards;
  const int64_t rem = batch.num_rows() % shards;
  std::vector<Status> results(static_cast<size_t>(shards));
  int64_t begin = 0;
  for (int s = 0; s < shards; ++s) {
    const int64_t end = begin + per + (s < rem ? 1 : 0);
    if (end > begin) {
      loaders_->Submit([this, s, &batch, &results, begin, end] {
        results[static_cast<size_t>(s)] =
            shards_[static_cast<size_t>(s)].IngestRows(batch, begin, end);
      });
    }
    begin = end;
  }
  loaders_->Wait();
  for (const Status& st : results) SCIBORQ_RETURN_NOT_OK(st);
  return Status::OK();
}

int64_t ShardedImpressionBuilder::population_seen() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.impression().population_seen();
  }
  return total;
}

Result<Impression> ShardedImpressionBuilder::Merge() const {
  // Candidate pool: every resident row of every shard, tagged with a merge
  // weight. Uniform/last-seen rows represent population/n rows each; biased
  // rows carry their workload weight.
  int64_t total_population = 0;
  double total_weight = 0.0;
  for (const auto& shard : shards_) {
    total_population += shard.impression().population_seen();
    total_weight += shard.impression().population_weight();
  }

  Impression merged(spec_.name, shards_[0].impression().rows().schema(),
                    spec_.capacity, spec_.policy);
  SCIBORQ_ASSIGN_OR_RETURN(
      WeightedAResSampler sampler,
      WeightedAResSampler::Make(spec_.capacity, spec_.seed ^ 0x4E26EULL));

  struct Candidate {
    const Impression* source;
    int64_t row;
    double weight;      // workload weight stored with the row
    double merge_key;   // A-Res weight for the merge draw
  };
  std::vector<Candidate> candidates;
  for (const auto& shard : shards_) {
    const Impression& imp = shard.impression();
    for (int64_t row = 0; row < imp.size(); ++row) {
      Candidate c;
      c.source = &imp;
      c.row = row;
      c.weight = imp.row_weights()[static_cast<size_t>(row)];
      // Target design: final inclusion ∝ workload weight w (∝ 1 for the
      // uniform policies). A candidate is already present with probability
      // π_row, so the merge draw must weight it w/π to land on the target:
      // P(in merged) = π · n'·(w/π)/Σv ∝ w.
      const double pi = imp.InclusionProbability(row);
      const double w = c.weight > 0.0 ? c.weight : 1e-12;
      c.merge_key = pi > 0.0 ? w / pi : w;
      candidates.push_back(c);
    }
  }

  // Stream the candidates through the exact weighted sampler; decisions give
  // reservoir slots directly.
  std::vector<const Candidate*> slots(
      static_cast<size_t>(std::min<int64_t>(spec_.capacity,
                                            static_cast<int64_t>(
                                                candidates.size()))),
      nullptr);
  for (const auto& c : candidates) {
    const ReservoirDecision d = sampler.Offer(c.merge_key);
    if (d.accepted) slots[static_cast<size_t>(d.slot)] = &c;
  }
  double sum_keys = 0.0;
  for (const auto& c : candidates) sum_keys += c.merge_key;
  std::vector<double> probs;
  for (const Candidate* c : slots) {
    if (c == nullptr) continue;
    merged.AppendSampledRow(c->source->rows(), c->row, c->weight,
                            c->source->source_ids()[static_cast<size_t>(c->row)]);
    // Chained inclusion: shard design π times the merge draw's first-order
    // inclusion n'·v/Σv.
    const double pi_shard = c->source->InclusionProbability(c->row);
    const double pi_merge =
        sum_keys > 0.0
            ? std::min(1.0, static_cast<double>(merged.capacity()) *
                                c->merge_key / sum_keys)
            : 1.0;
    probs.push_back(std::clamp(pi_shard * pi_merge, 1e-12, 1.0));
  }
  merged.set_population_seen(total_population);
  merged.set_population_weight(total_weight);
  SCIBORQ_RETURN_NOT_OK(
      merged.SetExplicitInclusionProbabilities(std::move(probs)));
  return merged;
}

}  // namespace sciborq
